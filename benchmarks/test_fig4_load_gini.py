"""Figure 4: Gini coefficient of the Calculators' processing load.

Expected shape: SCL (which optimises load balance) has the lowest Gini, DS
the highest; more partitions make balancing harder for every algorithm.
"""

import pytest

import common


@pytest.mark.parametrize("parameter", list(common.PARAMETER_GRID))
def test_fig4_load_gini(benchmark, parameter):
    reports = common.sweep(parameter)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    common.print_figure_table(
        f"Figure 4 - Processing load Gini (varying {parameter})",
        parameter,
        "load_gini",
        reports,
        paper_note="SCL lowest (<0.1), DS highest (0.3-0.6)",
    )
    for value in common.PARAMETER_GRID[parameter]:
        scl = reports["SCL"][value].load_gini
        ds = reports["DS"][value].load_gini
        assert scl <= ds
        assert scl < 0.35


def test_fig4_scl_beats_all_on_default_config(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    reports = {algo: common.default_report(algo) for algo in common.ALGORITHMS}
    scl = reports["SCL"].load_gini
    assert all(scl <= reports[algo].load_gini + 1e-9 for algo in common.ALGORITHMS)
