"""Ablation benchmarks for the design choices called out in DESIGN.md.

* **Hybrid DS+SCL** (Section 8.3 "lessons learned"): splitting over-sized
  disjoint sets recovers load balance while keeping communication far below
  SCL.
* **Single-addition threshold sn**: smaller thresholds cover new tagsets
  sooner (better accuracy) at the cost of more single additions.
* **Graph-partitioning baselines** (Section 2): Kernighan–Lin and spectral
  partitioning of the tagset graph, plus the hash/random strawmen, compared
  on the same windows the online algorithms use.
"""

import pytest

import common
from repro.core.cooccurrence import CooccurrenceStatistics
from repro.core.metrics import gini_coefficient
from repro.partitioning import make_partitioner
from repro.pipeline import TagCorrelationSystem


@pytest.fixture(scope="module")
def window_statistics():
    documents = list(common.workload(n_documents=4000))
    return CooccurrenceStatistics.from_documents(documents)


def offline_quality(assignment, statistics):
    tagsets = statistics.tagsets
    loads = assignment.expected_calculator_loads(tagsets)
    return {
        "communication": assignment.communication_load(tagsets),
        "gini": gini_coefficient(loads),
        "coverage": assignment.coverage(tagsets),
    }


def test_ablation_hybrid_splitting(benchmark, window_statistics):
    """DS vs DS+SCL vs SCL on one window (offline comparison)."""
    k = 10
    rows = {}
    for name in ("DS", "DS+SCL", "SCL"):
        partitioner = make_partitioner(name)
        assignment = benchmark.pedantic(
            partitioner.partition, args=(window_statistics, k), rounds=1, iterations=1
        ) if name == "DS" else partitioner.partition(window_statistics, k)
        rows[name] = offline_quality(assignment, window_statistics)
    print()
    print("=== Ablation - splitting over-sized disjoint sets (Section 8.3) ===")
    print(f"{'algorithm':>10} {'communication':>15} {'gini':>8} {'coverage':>10}")
    for name, row in rows.items():
        print(
            f"{name:>10} {row['communication']:>15.3f} {row['gini']:>8.3f} "
            f"{row['coverage']:>10.3f}"
        )
    assert rows["DS"]["communication"] <= rows["DS+SCL"]["communication"]
    assert rows["DS+SCL"]["communication"] <= rows["SCL"]["communication"] + 1e-9
    assert rows["DS+SCL"]["gini"] <= rows["DS"]["gini"] + 1e-9
    for row in rows.values():
        assert row["coverage"] == 1.0


def test_ablation_single_addition_threshold(benchmark):
    """Effect of the occurrence threshold sn on additions and accuracy."""
    documents = list(common.workload())
    rows = {}
    for sn in (1, 3, 6):
        config = common.system_config("DS", single_addition_threshold=sn)
        report = TagCorrelationSystem(config).run(documents)
        rows[sn] = report
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("=== Ablation - single-addition threshold sn ===")
    print(f"{'sn':>4} {'additions':>10} {'coverage':>10} {'error':>8} {'communication':>15}")
    for sn, report in rows.items():
        print(
            f"{sn:>4} {report.single_additions_applied:>10} "
            f"{report.jaccard_coverage:>10.3f} {report.jaccard_mean_error:>8.4f} "
            f"{report.communication_avg:>15.3f}"
        )
    # A lower threshold reacts to new tagsets at least as eagerly.
    assert rows[1].single_additions_applied >= rows[6].single_additions_applied


def test_ablation_graph_partitioning_baselines(benchmark, window_statistics):
    """Classic graph partitioning vs the paper's online algorithms."""
    k = 10
    rows = {}
    for name in ("DS", "SCC", "HASH", "RANDOM", "KL", "SPECTRAL"):
        partitioner = make_partitioner(name)
        assignment = partitioner.partition(window_statistics, k)
        rows[name] = offline_quality(assignment, window_statistics)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("=== Ablation - classic graph partitioning baselines (Section 2) ===")
    print(f"{'algorithm':>10} {'communication':>15} {'gini':>8} {'coverage':>10}")
    for name, row in rows.items():
        print(
            f"{name:>10} {row['communication']:>15.3f} {row['gini']:>8.3f} "
            f"{row['coverage']:>10.3f}"
        )
    for name, row in rows.items():
        assert row["coverage"] == 1.0, name
    # Hash/random partitioning replicates far more than DS.
    assert rows["DS"]["communication"] < rows["HASH"]["communication"]
    assert rows["DS"]["communication"] < rows["RANDOM"]["communication"]
