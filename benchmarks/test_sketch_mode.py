"""Approximate tracking mode: Figure-5-style error curves for both modes.

Runs the quickstart workload through the exact and the sketch Calculators
and prints the error/communication/batching figures side by side, so the
speed-accuracy tradeoff of the MinHash/Count-Min mode can be read off like
the paper's Figure 5.  The assertions encode the mode's contract:

* the sketch mode's mean Jaccard error stays within 0.05 at the default
  MinHash width (512 permutations, per-estimate stddev ~0.044),
* logical communication metrics are mode-independent (the Disseminator
  routes identically; only the Calculator estimator changes),
* the batched notification engine amortizes at least 5 physical messages
  per logical notification batch in both modes.
"""

from functools import lru_cache

import pytest

import common
from repro.pipeline import TagCorrelationSystem
from repro.workloads import TwitterLikeGenerator, WorkloadConfig


@lru_cache(maxsize=None)
def quickstart_documents():
    """The README/examples quickstart workload (seed 7, 8000 documents)."""
    config = WorkloadConfig(
        seed=7,
        tweets_per_second=50.0,
        n_topics=120,
        tags_per_topic=15,
        new_topic_rate=5.0,
        intra_topic_probability=0.92,
    )
    return tuple(TwitterLikeGenerator(config).generate(8000))


@lru_cache(maxsize=None)
def run_mode(calculator: str, notification_batch_size: int = 64):
    config = common.system_config(
        "DS",
        k=8,
        n_partitioners=5,
        calculator=calculator,
        notification_batch_size=notification_batch_size,
    )
    return TagCorrelationSystem(config).run(list(quickstart_documents()))


def test_sketch_mode_error_within_bound(benchmark):
    report = benchmark.pedantic(lambda: run_mode("sketch"), rounds=1, iterations=1)
    exact = run_mode("exact")
    print()
    print("=== Approximate tracking mode vs exact (quickstart workload) ===")
    print(f"{'metric':>28} {'exact':>10} {'sketch':>10}")
    for metric in ("communication", "jaccard_error", "jaccard_coverage",
                   "notification_messages", "batch_amortization"):
        print(f"{metric:>28} {exact.summary()[metric]:>10.3f} "
              f"{report.summary()[metric]:>10.3f}")
    stats = report.sketch_stats
    print(f"    minhash permutations: {int(stats['minhash_permutations'])}, "
          f"stddev bound {stats['estimate_stddev_bound']:.4f}, "
          f"tracked keys {int(stats['tracked_tagsets'])}")
    assert report.calculator_mode == "sketch"
    assert report.jaccard_mean_error <= 0.05
    # Routing is mode-independent: logical communication does not move.
    assert report.communication_avg == pytest.approx(exact.communication_avg)


def test_batching_amortizes_5x_in_both_modes(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for mode in ("exact", "sketch"):
        batched = run_mode(mode)
        unbatched = run_mode(mode, notification_batch_size=1)
        assert unbatched.notification_messages >= 5 * batched.notification_messages
        assert batched.batch_amortization >= 5.0
        # Batching must not change the paper's logical metrics.
        assert batched.communication_avg == unbatched.communication_avg
        assert batched.calculator_loads == unbatched.calculator_loads
