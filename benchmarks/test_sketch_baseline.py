"""Section 2 claim: probabilistic sketches inflate candidate co-occurrences.

The related-work section argues against representing per-tag document sets
with Bloom filters or Count-Min sketches: false positives make tags that
never co-occur look co-occurring, which in a workload where most tag pairs
are disjoint adds substantial wasted work.  This benchmark quantifies that
claim and also measures the accuracy of a MinHash-based estimate against the
exact Jaccard coefficients, i.e. the datasketch-style alternative design.
"""

from itertools import combinations

import pytest

import common
from repro.core.cooccurrence import CooccurrenceStatistics
from repro.core.jaccard import exact_jaccard
from repro.sketches import BloomFilter, CountMinSketch, MinHash


@pytest.fixture(scope="module")
def statistics():
    documents = list(common.workload(n_documents=4000))
    return CooccurrenceStatistics.from_documents(documents)


def popular_tags(statistics, limit=120):
    return sorted(
        statistics.tags, key=lambda t: -statistics.tag_document_count(t)
    )[:limit]


def test_bloom_filters_create_spurious_cooccurrences(benchmark, statistics):
    tags = popular_tags(statistics)
    true_pairs = {
        (a, b)
        for a, b in combinations(sorted(tags), 2)
        if statistics.documents_with_all([a, b])
    }

    def count_candidates():
        filters = {}
        for tag in tags:
            bloom = BloomFilter(expected_items=200, false_positive_rate=0.05)
            bloom.update(statistics.tag_documents.get(tag, ()))
            filters[tag] = bloom
        candidates = set()
        for a, b in combinations(sorted(tags), 2):
            documents = statistics.tag_documents.get(a, ())
            if any(doc in filters[b] for doc in documents):
                candidates.add((a, b))
        return candidates

    candidates = benchmark.pedantic(count_candidates, rounds=1, iterations=1)
    spurious = candidates - true_pairs
    print()
    print("=== Section 2 - Bloom-filter candidate inflation ===")
    print(f"  true co-occurring pairs: {len(true_pairs)}")
    print(f"  bloom candidates:        {len(candidates)}")
    print(f"  spurious candidates:     {len(spurious)}")
    # No false negatives: every true pair is found.
    assert true_pairs <= candidates
    # The paper's point: the sketch introduces spurious co-occurrences.
    assert len(spurious) > 0


def test_countmin_overestimates_pair_counts(benchmark, statistics):
    pairs = [
        frozenset(pair)
        for pair in combinations(popular_tags(statistics, 60), 2)
    ]
    true_counts = {
        pair: len(statistics.documents_with_all(pair)) for pair in pairs
    }

    def sketch_counts():
        sketch = CountMinSketch(epsilon=0.005, delta=0.01)
        for tagset, count in statistics.tagset_counts.items():
            for pair in combinations(sorted(tagset), 2):
                sketch.add(frozenset(pair), count)
        return {pair: sketch.estimate(pair) for pair in pairs}

    estimates = benchmark.pedantic(sketch_counts, rounds=1, iterations=1)
    overestimated = sum(
        1 for pair in pairs if estimates[pair] > true_counts[pair]
    )
    print()
    print("=== Section 2 - Count-Min pair-count estimates ===")
    print(f"  pairs evaluated: {len(pairs)}, over-estimated: {overestimated}")
    # Count-Min never under-estimates.
    assert all(estimates[pair] >= true_counts[pair] for pair in pairs)


def test_minhash_estimates_versus_exact(benchmark, statistics):
    """A MinHash/datasketch-style design estimates pairwise Jaccard well for
    popular pairs but is an approximation — the paper's exact counters are
    error-free for covered tagsets."""
    tags = popular_tags(statistics, 40)

    def build_signatures():
        return {
            tag: MinHash.from_items(statistics.tag_documents.get(tag, ()), num_perm=256)
            for tag in tags
        }

    signatures = benchmark.pedantic(build_signatures, rounds=1, iterations=1)
    errors = []
    for a, b in combinations(tags, 2):
        docs_a = statistics.tag_documents.get(a, set())
        docs_b = statistics.tag_documents.get(b, set())
        truth = exact_jaccard([docs_a, docs_b])
        estimate = signatures[a].jaccard(signatures[b])
        errors.append(abs(truth - estimate))
    mean_error = sum(errors) / len(errors)
    print()
    print("=== MinHash (datasketch-style) estimate vs exact Jaccard ===")
    print(f"  pairs: {len(errors)}, mean |error|: {mean_error:.4f}, max: {max(errors):.4f}")
    assert mean_error < 0.05
