"""Shared infrastructure of the benchmark harness.

Every benchmark regenerates one figure (or analysis) of the paper's
evaluation on a laptop-scale synthetic workload.  The paper's cluster
processed ~1.4 million tweets at 1300 tweets/s over 6 hours; the harness
shrinks that to a few thousand documents while preserving the ratios that
matter (window size vs. stream length, quality-check cadence, dynamics per
window).  Arrival rates are scaled down by :data:`RATE_SCALE` so that a run
still spans several simulated minutes and the trend dynamics (new topics,
decaying topics) that drive repartitions are exercised.

Results are cached per (algorithm, parameter, value) cell so that Figures
3–6, 8 and 9, which all read the same sweep, only pay for it once per
pytest session.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.documents import Document
from repro.pipeline import RunReport, SystemConfig, TagCorrelationSystem
from repro.workloads import TwitterLikeGenerator, WorkloadConfig

#: The four algorithms compared in every figure.
ALGORITHMS = ("DS", "SCI", "SCC", "SCL")

#: Documents per benchmark run (the paper: ~1.4 M over the whole experiment).
N_DOCUMENTS = 6000

#: The paper's arrival rates divided by this factor drive the simulated clock,
#: so that a 6 000-document run spans minutes of simulated time (enough for
#: trend dynamics) instead of a few seconds.
RATE_SCALE = 26.0

#: Parameter grid of Section 8.1.
PARAMETER_GRID = {
    "repartition_threshold": [0.2, 0.5],
    "n_partitioners": [3, 5, 10],
    "k": [5, 10, 20],
    "tps": [1300, 2600],
}

#: Default parameter values (Section 8.2): P=10, k=10, thr=0.5, tps=1300.
DEFAULTS = {
    "repartition_threshold": 0.5,
    "n_partitioners": 10,
    "k": 10,
    "tps": 1300,
}


@lru_cache(maxsize=None)
def workload(tps: int = 1300, n_documents: int = N_DOCUMENTS, seed: int = 42) -> tuple[Document, ...]:
    """The synthetic stand-in for the paper's 6-hour Twitter trace."""
    config = WorkloadConfig(
        tweets_per_second=tps / RATE_SCALE,
        n_topics=200,
        tags_per_topic=18,
        topic_skew=1.0,
        tag_skew=1.0,
        intra_topic_probability=0.92,
        new_topic_rate=6.0,
        topic_decay_rate=0.004,
        seed=seed,
    )
    return tuple(TwitterLikeGenerator(config).generate(n_documents))


def system_config(algorithm: str, **overrides) -> SystemConfig:
    """Scaled-down equivalent of the Section 8.2 configuration."""
    config = SystemConfig(
        algorithm=algorithm,
        k=DEFAULTS["k"],
        n_partitioners=DEFAULTS["n_partitioners"],
        repartition_threshold=DEFAULTS["repartition_threshold"],
        window_mode="count",
        window_size=1500,          # "previous 5 minutes" scaled to the stream
        bootstrap_documents=600,
        quality_check_interval=250,  # "every 1000 notified tagsets", scaled
        report_interval_seconds=60.0,
        single_addition_threshold=3,
    )
    return config.with_overrides(**overrides) if overrides else config


@lru_cache(maxsize=None)
def run_cell(algorithm: str, parameter: str, value: float) -> RunReport:
    """Run one (algorithm, parameter=value) cell of the evaluation grid."""
    overrides = {}
    tps = DEFAULTS["tps"]
    if parameter == "tps":
        tps = int(value)
    elif parameter != "default":
        overrides[parameter] = value
    config = system_config(algorithm, **overrides)
    documents = list(workload(tps=tps))
    return TagCorrelationSystem(config).run(documents)


def default_report(algorithm: str) -> RunReport:
    """The default-parameter run of one algorithm (used by Figures 8 and 9)."""
    return run_cell(algorithm, "default", 0)


def sweep(parameter: str) -> dict[str, dict[float, RunReport]]:
    """All algorithms over all values of one parameter."""
    return {
        algorithm: {
            value: run_cell(algorithm, parameter, value)
            for value in PARAMETER_GRID[parameter]
        }
        for algorithm in ALGORITHMS
    }


def print_figure_table(
    title: str,
    parameter: str,
    metric: str,
    reports: dict[str, dict[float, RunReport]],
    paper_note: str = "",
) -> None:
    """Print one figure's series in the paper's layout (rows = parameter)."""
    print()
    print(f"=== {title} ===")
    if paper_note:
        print(f"    paper: {paper_note}")
    header = f"{parameter:>24} " + "".join(f"{algo:>10}" for algo in ALGORITHMS)
    print(header)
    values = sorted(next(iter(reports.values())).keys())
    for value in values:
        row = f"{value:>24} "
        for algorithm in ALGORITHMS:
            row += f"{reports[algorithm][value].summary()[metric]:>10.3f}"
        print(row)
