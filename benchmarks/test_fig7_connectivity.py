"""Figure 7: connectivity of the tagset graph per window size.

For non-overlapping windows of 2/5/10/20 minutes the paper measures the
maximum share of tags in one connected component, the maximum share of
documents touching one component, and the number of components per window.
Expected shape: all three grow with the window size; the largest component
stays a modest fraction of the tags for short windows, which is what makes
the DS algorithm viable.
"""

import pytest

import common
from repro.analysis.connectivity import connectivity_by_window_size
from repro.workloads import TwitterLikeGenerator, WorkloadConfig

WINDOW_MINUTES = (2, 5, 10, 20)


@pytest.fixture(scope="module")
def connectivity_reports():
    # A dedicated slower stream: ~80 simulated minutes so that even the
    # 20-minute windows repeat, with a broad topic population and little
    # cross-topic mixing (the regime of the paper's measurement).
    config = WorkloadConfig(
        tweets_per_second=3.0,
        n_topics=500,
        tags_per_topic=15,
        intra_topic_probability=0.985,
        new_topic_rate=2.0,
        topic_decay_rate=0.001,
        seed=7,
    )
    documents = TwitterLikeGenerator(config).generate(15000)
    return connectivity_by_window_size(documents, window_sizes_minutes=WINDOW_MINUTES)


def test_fig7_connectivity(benchmark, connectivity_reports):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("=== Figure 7 - Tagset connectivity per window size ===")
    print("    paper: max tags% ~5-25, max load% ~10-35, #components grows with window")
    print(f"{'window (min)':>14} {'max tags %':>12} {'max load %':>12} {'#components':>14} {'np':>8}")
    for minutes in WINDOW_MINUTES:
        report = connectivity_reports[minutes]
        print(
            f"{minutes:>14} {report.max_tag_percentage():>12.1f} "
            f"{report.max_load_percentage():>12.1f} {report.mean_components():>14.1f} "
            f"{report.mean_np():>8.2f}"
        )
    small = connectivity_reports[WINDOW_MINUTES[0]]
    large = connectivity_reports[WINDOW_MINUTES[-1]]
    # Larger windows mix more topics: the dominant component grows.
    assert large.max_tag_percentage() >= small.max_tag_percentage() - 1.0
    assert large.max_load_percentage() >= small.max_load_percentage() - 1.0
    # No window is ever dominated by a single component covering all tags.
    for minutes in WINDOW_MINUTES:
        assert connectivity_reports[minutes].max_tag_percentage() < 80.0


def test_fig7_np_grows_with_window(benchmark, connectivity_reports):
    """The empirical n*p grows with window length, as Section 5.1 predicts."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    np_values = [connectivity_reports[m].mean_np() for m in WINDOW_MINUTES]
    assert np_values[-1] >= np_values[0]
