#!/usr/bin/env python3
"""Out-of-core counter-store bench: resident window state, dict vs spill.

The spill store (``SystemConfig(counter_store="spill")``) bounds the
Calculators' *resident* window-counter state by freezing cold segments
into sorted run files and k-way-merging them back at report time.  This
harness pins that story with numbers: a fanout-heavy workload whose
per-round window state is an order of magnitude beyond the throughput
bench's ``large`` cell, run once per (round size, counter store) cell,
recording per cell

* ``docs_per_second`` and elapsed wall-clock (the spill overhead, paid in
  encode/merge work);
* ``peak_rss_mb`` / ``rss_children_mb`` / ``rss_total_mb`` — the driver's
  ``getrusage`` high-water mark plus the sampled descendant RSS (inline
  cells record 0 children; the fields keep the schema aligned with
  ``BENCH_throughput.json``'s);
* ``peak_resident_counter_entries`` — the largest number of counter-table
  entries held *in RAM* by any Calculator at any point (for the dict
  store that is the full table; for the spill store the hot tail, which
  never exceeds ``spill_threshold``);
* the spill side's ``store`` block: merge wall-clock (the per-cell
  merge-phase breakdown), runs written, entries spilled, parallel merges
  and block-cache hit rates.

Both cells of a round size consume the *same* seeded document stream —
the only variable is where the counters live.  The ``xlarge`` round is
10x the ``large`` round (600 s vs 60 s report interval at 50 docs/s), so
the dict store's resident table grows with the round while the spill
store's hot tail stays flat at the threshold.

The ``xlarge-reporting`` round contrasts the *tracker* stores instead
(``SystemConfig(tracker_store=...)``, counter store pinned to dict): a
short 30 s report interval drives ~40 report rounds whose coefficients
accumulate in the Tracker's cumulative dedup table — the one figure the
counter-store cells deliberately do not claim flat.  Every cell records
``peak_resident_coefficient_entries`` (the dict tracker's full table vs
the spill tracker's hot tail, capped at ``TRACKER_SPILL_THRESHOLD``),
and spill-tracker cells add a ``tracker`` stats block.  See
docs/PERFORMANCE.md ("Out-of-core counter store" / "Out-of-core
tracker") for the committed numbers.

Usage::

    PYTHONPATH=src python benchmarks/perf/spill.py                     # full matrix
    PYTHONPATH=src python benchmarks/perf/spill.py --rounds large \
        --output BENCH_spill_new.json                                  # CI smoke

Diff a fresh snapshot against the committed one with
``tools/check_perf_regression.py`` (spill dialect: docs/sec binds
downward, RSS and resident entries bind upward).
"""

from __future__ import annotations

import argparse
import itertools
import json
import multiprocessing
import os
import platform
import resource
import sys
import tempfile
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[2]
if not any(Path(p).resolve() == _REPO_ROOT / "src" for p in sys.path if p):
    sys.path.insert(0, str(_REPO_ROOT / "src"))
_PERF_DIR = Path(__file__).resolve().parent
if str(_PERF_DIR) not in sys.path:
    sys.path.insert(0, str(_PERF_DIR))

from rss import ChildRssSampler  # noqa: E402 (needs the path shim above)

SCHEMA_VERSION = 1
GENERATED_BY = "benchmarks/perf/spill.py"

#: Documents per cell and the generator seed.  Streams are generated
#: lazily inside each cell's subprocess so the document list itself never
#: sits in RAM (out-of-core benches should not carry an in-core workload).
DOCUMENTS = 60_000
SEED = 7

#: Documents for the tracker-contrast rounds (see TRACKER_ROUNDS).  The
#: dict tracker's cumulative dedup table grows near-linearly with the
#: stream under this churning workload, so a third of the counter
#: rounds' documents already dwarfs TRACKER_SPILL_THRESHOLD by two
#: orders of magnitude while keeping the spill cell's wall clock (paid
#: in membership probes and merges) tractable.
TRACKER_DOCUMENTS = 20_000

#: Fanout-heavy workload: wide tagsets (up to 14 tags -> up to 2^14
#: subsets per notified tagset) over a churning topic pool, so the
#: per-round counter table reaches ~650k entries per Calculator at the
#: xlarge round — 15x the ~43k peak of the throughput bench's ``large``
#: cell (measured; see docs/PERFORMANCE.md).
WORKLOAD_PARAMS = dict(
    n_topics=600,
    tags_per_topic=30,
    new_topic_rate=50.0,
    intra_topic_probability=0.6,
    max_tags_per_tweet=14,
    tags_per_tweet_skew=0.8,
)

#: Round sizes: report interval in (virtual) seconds.  At 50 docs/s the
#: xlarge round accumulates 10x the documents — and therefore ~10x the
#: window state — of the large round before the report-time prune.
ROUNDS = {
    "large": 60.0,
    "xlarge": 600.0,
}

#: Tracker-contrast rounds: the counter store is pinned to dict and the
#: two cells vary ``tracker_store`` instead.  A short report interval at
#: the same document count drives ~40 report rounds, so the Tracker's
#: cumulative coefficient table — which retains every reported subset
#: for the life of the run — is the dominant resident structure.
TRACKER_ROUNDS = {
    "xlarge-reporting": 30.0,
}

#: Round name -> report interval across both matrices.
ALL_ROUNDS = {**ROUNDS, **TRACKER_ROUNDS}

STORES = ("dict", "spill")
TRACKER_STORES = ("dict", "spill")

#: Spill knobs for the spill cells: the resident hot tail is capped at
#: SPILL_THRESHOLD entries per Calculator (the headline bound).
SPILL_THRESHOLD = 16_384

#: Same bound for the Tracker's hot dedup tail on the tracker-contrast
#: round (``tracker_store="spill"`` cells).
TRACKER_SPILL_THRESHOLD = 16_384


def _system_config(
    interval: float, store: str, tracker_store: str, spill_dir: str | None
):
    from repro.pipeline import SystemConfig

    extra = {}
    if store == "spill":
        extra = dict(
            counter_store="spill",
            spill_dir=spill_dir,
            spill_threshold=SPILL_THRESHOLD,
        )
    if tracker_store == "spill":
        extra.update(
            tracker_store="spill",
            spill_dir=spill_dir,
            tracker_spill_threshold=TRACKER_SPILL_THRESHOLD,
        )
    return SystemConfig(
        algorithm="DS",
        k=4,
        n_partitioners=3,
        window_mode="count",
        window_size=1500,
        bootstrap_documents=600,
        quality_check_interval=250,
        repartition_threshold=0.5,
        report_interval_seconds=interval,
        notification_batch_size=64,
        subset_cache_size=1024,
        include_centralized_baseline=False,
        **extra,
    )


def _measure_worker(outbox, round_name: str, store: str, tracker_store: str) -> None:
    """Subprocess body: one (round, store, tracker store) cell."""
    try:
        import repro.core.jaccard as jaccard_module
        import repro.operators.tracker as tracker_module
        from repro.pipeline import TagCorrelationSystem
        from repro.workloads import TwitterLikeGenerator, WorkloadConfig

        # Peak *resident* counter entries across all Calculators: the full
        # table for the dict store, the hot (unspilled) tail for the spill
        # store.  A len() per observe is O(1) and far below measurement
        # noise at these scales.
        peak = {"entries": 0}
        original_observe = jaccard_module.SubsetCounter.observe

        def observing(self, *args, **kwargs):
            result = original_observe(self, *args, **kwargs)
            counts = self._counts
            resident = (
                len(counts._hot) if hasattr(counts, "_hot") else len(counts)
            )
            if resident > peak["entries"]:
                peak["entries"] = resident
            return result

        jaccard_module.SubsetCounter.observe = observing

        # Peak *resident* coefficient entries in the Tracker: the full
        # dedup table for the dict tracker, the hot (unspilled) tail for
        # the spill tracker.  Sampled after each ingest batch.
        tracker_peak = {"entries": 0}

        def _sample_tracker(bolt):
            resident = (
                len(bolt._store._hot)
                if bolt._store is not None
                else len(bolt._best)
            )
            if resident > tracker_peak["entries"]:
                tracker_peak["entries"] = resident

        original_ingest = tracker_module.TrackerBolt.ingest
        original_ingest_repeated = tracker_module.TrackerBolt.ingest_repeated

        def ingesting(self, *args, **kwargs):
            result = original_ingest(self, *args, **kwargs)
            _sample_tracker(self)
            return result

        def ingesting_repeated(self, *args, **kwargs):
            result = original_ingest_repeated(self, *args, **kwargs)
            _sample_tracker(self)
            return result

        tracker_module.TrackerBolt.ingest = ingesting
        tracker_module.TrackerBolt.ingest_repeated = ingesting_repeated

        generator = TwitterLikeGenerator(
            WorkloadConfig(
                seed=SEED, tweets_per_second=50.0, **WORKLOAD_PARAMS
            )
        )
        limit = (
            TRACKER_DOCUMENTS if round_name in TRACKER_ROUNDS else DOCUMENTS
        )
        documents = itertools.islice(generator.stream(), limit)
        with tempfile.TemporaryDirectory(prefix="bench-spill-") as spill_dir:
            system = TagCorrelationSystem(
                _system_config(
                    ALL_ROUNDS[round_name], store, tracker_store, spill_dir
                )
            )
            with ChildRssSampler() as rss_sampler:
                start = time.perf_counter()
                report = system.run(documents)
                elapsed = time.perf_counter() - start
        usage_self = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        to_mb = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
        peak_rss_mb = round(usage_self / to_mb, 1)
        stats = report.store_stats
        store_block = None
        if stats is not None:
            lookups = stats["block_cache_hits"] + stats["block_cache_misses"]
            store_block = {
                "runs_written": stats["runs_written"],
                "spilled_entries": stats["spilled_entries"],
                "merges": stats["merges"],
                "parallel_merges": stats["parallel_merges"],
                "merge_seconds": round(stats["merge_seconds"], 4),
                "block_cache_hit_rate": round(
                    stats["block_cache_hits"] / lookups if lookups else 0.0, 4
                ),
                "carry_blobs_written": stats.get("carry_blobs_written", 0),
            }
        tracker_stats = report.tracker_store_stats
        tracker_block = None
        if tracker_stats is not None:
            lookups = (
                tracker_stats["block_cache_hits"]
                + tracker_stats["block_cache_misses"]
            )
            tracker_block = {
                "runs_written": tracker_stats["runs_written"],
                "spilled_entries": tracker_stats["spilled_entries"],
                "run_bytes_written": tracker_stats["run_bytes_written"],
                "merges": tracker_stats["merges"],
                "merge_seconds": round(tracker_stats["merge_seconds"], 4),
                "membership_probes": tracker_stats["membership_probes"],
                "block_cache_hit_rate": round(
                    tracker_stats["block_cache_hits"] / lookups
                    if lookups else 0.0, 4
                ),
            }
        outbox.put({
            "workload": round_name,
            "counter_store": store,
            "tracker_store": tracker_store,
            "report_interval_seconds": ALL_ROUNDS[round_name],
            "documents": report.documents_processed,
            "tagged_documents": report.tagged_documents,
            "elapsed_seconds": round(elapsed, 4),
            "docs_per_second": round(report.documents_processed / elapsed, 1),
            "peak_rss_mb": peak_rss_mb,
            "rss_children_mb": rss_sampler.peak_total_mb,
            "rss_total_mb": round(peak_rss_mb + rss_sampler.peak_total_mb, 1),
            "peak_resident_counter_entries": peak["entries"],
            "peak_resident_coefficient_entries": tracker_peak["entries"],
            "spill_threshold": SPILL_THRESHOLD if store == "spill" else None,
            "tracker_spill_threshold": (
                TRACKER_SPILL_THRESHOLD if tracker_store == "spill" else None
            ),
            "store": store_block,
            "tracker": tracker_block,
        })
    except BaseException as exc:  # noqa: BLE001 - surface the failure
        import traceback

        outbox.put({"error": f"{exc}\n{traceback.format_exc()}"})


def measure(round_name: str, store: str, tracker_store: str = "dict") -> dict:
    """One cell, isolated in a forked subprocess (RSS high-water marks are
    process-lifetime figures, so cells must not share a process)."""
    import queue as queue_module

    ctx = multiprocessing.get_context()
    outbox = ctx.Queue()
    proc = ctx.Process(
        target=_measure_worker,
        args=(outbox, round_name, store, tracker_store),
    )
    proc.start()
    while True:
        try:
            result = outbox.get(timeout=2.0)
            break
        except queue_module.Empty:
            if not proc.is_alive():
                raise RuntimeError(
                    f"benchmark subprocess for {round_name}/{store}/"
                    f"{tracker_store} died with exit code {proc.exitcode}"
                ) from None
    proc.join()
    if "error" in result:
        raise RuntimeError(f"benchmark cell failed: {result['error']}")
    return result


def _comparison(runs) -> dict:
    """Per-round dict-vs-spill contrasts plus the cross-round scale story."""
    cells = {
        (
            run["workload"],
            run["counter_store"],
            run.get("tracker_store", "dict"),
        ): run
        for run in runs
    }
    comparison: dict[str, dict] = {}
    for name in ROUNDS:
        plain = cells.get((name, "dict", "dict"))
        spill = cells.get((name, "spill", "dict"))
        if not plain or not spill:
            continue
        comparison[name] = {
            "resident_entries_dict": plain["peak_resident_counter_entries"],
            "resident_entries_spill": spill["peak_resident_counter_entries"],
            "resident_shrink": round(
                plain["peak_resident_counter_entries"]
                / spill["peak_resident_counter_entries"], 1
            ),
            "rss_total_delta_mb": round(
                spill["rss_total_mb"] - plain["rss_total_mb"], 1
            ),
            "throughput_ratio": round(
                spill["docs_per_second"] / plain["docs_per_second"], 3
            ),
            "merge_seconds": (spill["store"] or {}).get("merge_seconds"),
        }
    for name in TRACKER_ROUNDS:
        plain = cells.get((name, "dict", "dict"))
        spill = cells.get((name, "dict", "spill"))
        if not plain or not spill:
            continue
        comparison[name] = {
            "resident_coefficients_dict": (
                plain["peak_resident_coefficient_entries"]
            ),
            "resident_coefficients_spill": (
                spill["peak_resident_coefficient_entries"]
            ),
            "resident_shrink": round(
                plain["peak_resident_coefficient_entries"]
                / spill["peak_resident_coefficient_entries"], 1
            ),
            "rss_total_delta_mb": round(
                spill["rss_total_mb"] - plain["rss_total_mb"], 1
            ),
            "throughput_ratio": round(
                spill["docs_per_second"] / plain["docs_per_second"], 3
            ),
            "merge_seconds": (spill["tracker"] or {}).get("merge_seconds"),
            "tracker_spill_threshold": TRACKER_SPILL_THRESHOLD,
        }
    large_dict = cells.get(("large", "dict", "dict"))
    xlarge_dict = cells.get(("xlarge", "dict", "dict"))
    xlarge_spill = cells.get(("xlarge", "spill", "dict"))
    if large_dict and xlarge_dict and xlarge_spill:
        comparison["scale"] = {
            # The dict store's resident table grows with the round; the
            # spill store's hot tail does not.
            "dict_resident_growth": round(
                xlarge_dict["peak_resident_counter_entries"]
                / large_dict["peak_resident_counter_entries"], 2
            ),
            "spill_resident_at_xlarge": (
                xlarge_spill["peak_resident_counter_entries"]
            ),
            "spill_threshold": SPILL_THRESHOLD,
        }
    return comparison


def run_matrix(round_names, stores=STORES, verbose=True) -> dict:
    runs = []
    for name in round_names:
        if name in TRACKER_ROUNDS:
            # Tracker-contrast round: counter store pinned to dict.
            cell_specs = [("dict", tracker) for tracker in TRACKER_STORES]
        else:
            cell_specs = [(store, "dict") for store in stores]
        for store, tracker_store in cell_specs:
            label = store if name not in TRACKER_ROUNDS else (
                f"tracker={tracker_store}"
            )
            if verbose:
                print(f"[bench] {name:>16} / {label:<13} ...",
                      end=" ", flush=True)
            cell = measure(name, store, tracker_store)
            runs.append(cell)
            if verbose:
                resident = (
                    cell["peak_resident_coefficient_entries"]
                    if name in TRACKER_ROUNDS
                    else cell["peak_resident_counter_entries"]
                )
                block = (
                    cell["tracker"] if name in TRACKER_ROUNDS
                    else cell["store"]
                ) or {}
                print(f"{cell['docs_per_second']:>7.1f} docs/s  "
                      f"rss {cell['rss_total_mb']:>6.1f} MB  "
                      f"resident {resident:>7d} "
                      f"entries  merge {block.get('merge_seconds', 0.0)}s")
    return {
        "schema": SCHEMA_VERSION,
        "generated_by": GENERATED_BY,
        "documents": DOCUMENTS,
        "tracker_documents": TRACKER_DOCUMENTS,
        "seed": SEED,
        "workload_params": dict(WORKLOAD_PARAMS),
        "spill_threshold": SPILL_THRESHOLD,
        "tracker_spill_threshold": TRACKER_SPILL_THRESHOLD,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "rounds": {name: ALL_ROUNDS[name] for name in round_names},
        "runs": runs,
        "comparison": _comparison(runs),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Resident window-state benchmark: dict vs spill store"
    )
    parser.add_argument("--rounds", default=",".join(ALL_ROUNDS),
                        help="comma-separated round sizes "
                             f"(available: {', '.join(ALL_ROUNDS)})")
    parser.add_argument("--stores", default=",".join(STORES),
                        help="comma-separated counter stores; tracker-"
                             "contrast rounds ignore this "
                             f"(available: {', '.join(STORES)})")
    parser.add_argument("--output", default=str(_REPO_ROOT / "BENCH_spill.json"),
                        help="output JSON path (default: repo root)")
    args = parser.parse_args(argv)
    round_names = [n.strip() for n in args.rounds.split(",") if n.strip()]
    for name in round_names:
        if name not in ALL_ROUNDS:
            parser.error(f"unknown round {name!r} "
                         f"(available: {', '.join(ALL_ROUNDS)})")
    stores = tuple(s.strip() for s in args.stores.split(",") if s.strip())
    for store in stores:
        if store not in STORES:
            parser.error(f"unknown store {store!r} "
                         f"(available: {', '.join(STORES)})")

    results = run_matrix(round_names, stores)
    output = Path(args.output)
    output.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(f"[bench] wrote {output}")
    for name, entry in results["comparison"].items():
        print(f"[bench] {name}: {entry}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
