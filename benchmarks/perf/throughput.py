#!/usr/bin/env python3
"""Seeded end-to-end throughput harness: docs/sec per execution engine.

Measures the sustained document rate of the full Figure-2 topology under the
``inline`` executor and the ``process`` executor at one or more worker
counts, on deterministic (seeded) synthetic workloads, and writes the
results to ``BENCH_throughput.json`` at the repository root — the repo's
recorded performance trajectory (see docs/PERFORMANCE.md).

Each measurement runs in a fresh forked subprocess so that peak-RSS figures
(``getrusage`` high-water marks) and allocator state do not bleed between
runs; workload generation happens inside the subprocess but outside the
timed region.

Every (workload, executor) cell runs once per reporting engine in
``--engines`` (default ``incremental,delta``), so the recorded snapshot
carries the engine matrix; per-cell ``report_rounds`` attributes the
in-stream report cost (rounds, wall-clock, dirty/clean type split and the
delta engine's ``carry_clean_rate``).

Besides the legacy ``small``/``large`` workloads, the matrix covers the
scenario presets of ``workloads.scenarios`` (``trending``, ``burst``,
``diurnal``, ``adversarial``): those cells run inline-only per engine plus
one live-repartition cell (``repartition_handoff="migrate"`` under the
threshold policy), keyed by the ``scenario``/``repartition_handoff`` fields
so ``tools/check_perf_regression.py`` compares like against like.

Usage::

    PYTHONPATH=src python benchmarks/perf/throughput.py                  # full matrix
    PYTHONPATH=src python benchmarks/perf/throughput.py --workloads small \
        --workers 2 --repeat 1 --output BENCH_throughput.json            # CI smoke
    PYTHONPATH=src python benchmarks/perf/throughput.py --engines incremental \
        --output /tmp/inc.json                                           # one engine

The committed ``BENCH_throughput.json`` was produced by the full matrix on
the machine described in its ``host`` block; regenerate it on comparable
hardware before comparing numbers across PRs.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import platform
import resource
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[2]
if not any(Path(p).resolve() == _REPO_ROOT / "src" for p in sys.path if p):
    sys.path.insert(0, str(_REPO_ROOT / "src"))
_PERF_DIR = Path(__file__).resolve().parent
if str(_PERF_DIR) not in sys.path:
    sys.path.insert(0, str(_PERF_DIR))

from rss import ChildRssSampler  # noqa: E402 (needs the path shim above)

#: Seeded legacy workload definitions: name -> (documents, generator seed).
#: ``small`` is the CI smoke size; ``large`` is the acceptance workload for
#: executor comparisons (big enough that per-run noise is a few percent).
WORKLOADS = {
    "small": (3000, 7),
    "large": (20000, 7),
}

#: Scenario workloads (``workloads.scenarios`` presets): name -> documents.
#: Scenario cells run inline-only (the engine story, not the executor
#: story) plus one live-repartition cell per scenario, so the engine/policy
#: decision tables in docs/ARCHITECTURE.md are backed by numbers per
#: workload shape instead of the single churny legacy point.
SCENARIO_WORKLOADS = {
    "trending": 24000,
    "burst": 9000,
    "diurnal": 9000,
    "adversarial": 9000,
}
#: Seed shared by every scenario workload (mirrors the legacy cells').
SCENARIO_SEED = 7
#: Per-scenario preset overrides for bench-scale runs.  Report-round
#: boundaries are grid-aligned (``_last_report`` advances by whole
#: interval multiples, so a round fires at the first document on or past
#: each interval boundary — no cumulative drift), but ticks still fire at
#: document-timestamp granularity: the trending cell thins the anchor
#: cadence to one position per 60 documents (6 s same-slot spacing, large
#: against the sub-interval boundary jitter) and stretches the plateau to
#: 240 s so each trend's anchor tagset spans several full rounds, making
#: the committed ``carry_clean_rate`` structurally nonzero rather than
#: alignment luck.
SCENARIO_OVERRIDES = {
    "trending": {
        "trend_plateau_seconds": 240.0,
        "trend_anchor_share": 1.0 / 60.0,
    },
}

#: Schema version of BENCH_throughput.json (bump on breaking layout changes).
#: v2 added per-cell ``phase_seconds`` (build/stream/reporting breakdown of
#: the best run) and the top-level/per-cell ``reporting_engine``; the
#: reporting-engine matrix (one cell per engine in ``--engines``) and the
#: per-cell ``report_rounds`` block (in-stream round count/wall-clock and
#: the dirty/clean type split from ``RunReport.report_round_stats``) are
#: additive, so the schema stays 2 — as are the sampled-RSS fields
#: (``rss_children_mb``: peak summed VmRSS of live descendants via /proc,
#: fixing the driver-only blind spot of ``RUSAGE_CHILDREN`` on
#: process-executor cells; ``rss_total_mb``: driver + children).
SCHEMA_VERSION = 2


def _workload_scenario(name: str) -> str:
    """The scenario a workload name maps to (legacy cells stay "legacy")."""
    return name if name in SCENARIO_WORKLOADS else "legacy"


def _generate_documents(name: str):
    if name in SCENARIO_WORKLOADS:
        from repro.workloads import make_generator, scenario_preset

        config = scenario_preset(
            name,
            seed=SCENARIO_SEED,
            tweets_per_second=50.0,
            **SCENARIO_OVERRIDES.get(name, {}),
        )
        return make_generator(config).generate(SCENARIO_WORKLOADS[name])

    from repro.workloads import TwitterLikeGenerator, WorkloadConfig

    n_documents, seed = WORKLOADS[name]
    config = WorkloadConfig(
        seed=seed,
        tweets_per_second=50.0,
        n_topics=120,
        tags_per_topic=15,
        new_topic_rate=5.0,
        intra_topic_probability=0.92,
    )
    return TwitterLikeGenerator(config).generate(n_documents)


def _system_config(executor: str, workers: int, algorithm: str, batch_size: int,
                   reporting_engine: str = "incremental",
                   scenario: str = "legacy",
                   repartition_handoff: str = "none",
                   repartition_points: tuple = ()):
    from repro.pipeline import SystemConfig

    return SystemConfig(
        algorithm=algorithm,
        k=8,
        n_partitioners=5,
        window_mode="count",
        window_size=1500,
        bootstrap_documents=600,
        quality_check_interval=250,
        repartition_threshold=0.5,
        # Live-repartition cells pin swaps to fixed document counts: the
        # threshold policy happens not to fire on these workload shapes,
        # and a migration cell that never migrates measures nothing.
        repartition_policy="fixed" if repartition_points else "threshold",
        repartition_at=tuple(repartition_points),
        report_interval_seconds=60.0,
        notification_batch_size=batch_size,
        reporting_engine=reporting_engine,
        scenario=scenario,
        repartition_handoff=repartition_handoff,
        executor=executor,
        workers=workers,
    )


def _measure_worker(outbox, workload: str, executor: str, workers: int,
                    repeat: int, algorithm: str, batch_size: int,
                    reporting_engine: str,
                    repartition_handoff: str = "none",
                    repartition_points: tuple = ()) -> None:
    """Subprocess body: run the system ``repeat`` times, report the best."""
    try:
        from repro.pipeline import TagCorrelationSystem

        documents = _generate_documents(workload)
        elapsed: list[float] = []
        timings: list[dict] = []
        round_stats_runs: list[dict | None] = []
        report = None
        # Sampled child RSS: RUSAGE_CHILDREN only sees *reaped* children
        # and reports the largest single one, so process-executor cells
        # would report driver-dominated figures — hiding any win (or
        # regression) that lives in the workers.  The /proc sampler sums
        # live descendants while the runs execute.
        with ChildRssSampler() as rss_sampler:
            for _ in range(repeat):
                system = TagCorrelationSystem(
                    _system_config(executor, workers, algorithm, batch_size,
                                   reporting_engine,
                                   scenario=_workload_scenario(workload),
                                   repartition_handoff=repartition_handoff,
                                   repartition_points=repartition_points)
                )
                start = time.perf_counter()
                report = system.run(documents)
                elapsed.append(time.perf_counter() - start)
                timings.append(report.timings)
                round_stats_runs.append(report.report_round_stats)
        assert report is not None
        usage_self = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        usage_children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS: normalise to MiB.
        to_mb = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
        best_index = min(range(len(elapsed)), key=elapsed.__getitem__)
        best = elapsed[best_index]
        # Phase breakdown of the best run: topology assembly, cluster
        # execution (streaming + in-stream report rounds) and end-of-run
        # reporting (final drain + metric collection + ground truth).
        phases = {
            phase: round(seconds, 4)
            for phase, seconds in timings[best_index].items()
        }
        # In-stream report attribution (rounds, wall-clock, dirty/clean
        # type split) of the best run — each repeat builds a fresh system,
        # so the per-run counters align with the per-run phase breakdown.
        round_stats = round_stats_runs[best_index]
        report_rounds = None
        if round_stats is not None:
            folded = round_stats["dirty_types"] + round_stats["clean_types"]
            report_rounds = {
                "rounds": int(round_stats["rounds"]),
                "report_seconds": round(round_stats["report_seconds"], 4),
                "dirty_types": int(round_stats["dirty_types"]),
                "clean_types": int(round_stats["clean_types"]),
                "deferred_triples": int(round_stats["deferred_triples"]),
                # Fraction of in-stream type folds the delta engine's carry
                # table replaced with re-assertions (0.0 for other engines).
                "carry_clean_rate": round(
                    round_stats["clean_types"] / folded if folded else 0.0, 4
                ),
            }
        outbox.put({
            "workload": workload,
            "scenario": _workload_scenario(workload),
            "repartition_handoff": repartition_handoff,
            "executor": executor,
            "requested_workers": workers,
            "workers": report.executor_workers,
            "documents": report.documents_processed,
            "tagged_documents": report.tagged_documents,
            "repeat": repeat,
            "elapsed_seconds": [round(value, 4) for value in elapsed],
            "best_elapsed_seconds": round(best, 4),
            "docs_per_second": round(report.documents_processed / best, 1),
            "phase_seconds": phases,
            "report_rounds": report_rounds,
            "reporting_engine": report.reporting_engine,
            "peak_rss_mb": round(usage_self / to_mb, 1),
            "peak_worker_rss_mb": round(usage_children / to_mb, 1),
            # Sampled (not rusage) child figures: the summed VmRSS of all
            # live descendants at its peak, and the whole cell's
            # driver+children footprint.  Inline cells record 0 children.
            "rss_children_mb": rss_sampler.peak_total_mb,
            "rss_total_mb": round(
                usage_self / to_mb + rss_sampler.peak_total_mb, 1
            ),
            "communication_avg": round(report.communication_avg, 4),
            "notification_messages": report.notification_messages,
            "repartitions": report.n_repartitions,
            "migration_stall_seconds": round(
                report.migration_stats["stall_seconds"], 4
            ) if report.migration_stats else 0.0,
        })
    except BaseException as exc:  # noqa: BLE001 - surface the failure
        import traceback

        outbox.put({"error": f"{exc}\n{traceback.format_exc()}"})


def measure(workload: str, executor: str, workers: int = 0, repeat: int = 1,
            algorithm: str = "DS", batch_size: int = 64,
            reporting_engine: str = "incremental",
            repartition_handoff: str = "none",
            repartition_points: tuple = ()) -> dict:
    """One benchmark cell, isolated in a forked subprocess."""
    import queue as queue_module

    ctx = multiprocessing.get_context()
    outbox = ctx.Queue()
    proc = ctx.Process(
        target=_measure_worker,
        args=(outbox, workload, executor, workers, repeat, algorithm,
              batch_size, reporting_engine, repartition_handoff,
              repartition_points),
    )
    proc.start()
    while True:
        try:
            result = outbox.get(timeout=2.0)
            break
        except queue_module.Empty:
            if not proc.is_alive():
                # Killed without reporting (OOM, segfault): fail fast
                # instead of hanging the CI job on a silent queue.
                raise RuntimeError(
                    f"benchmark subprocess for {workload}/{executor} died "
                    f"with exit code {proc.exitcode}"
                ) from None
    proc.join()
    if "error" in result:
        raise RuntimeError(f"benchmark cell failed: {result['error']}")
    return result


def run_matrix(workloads, worker_counts, repeat=1, algorithm="DS",
               batch_size=64, reporting_engines=("incremental",),
               verbose=True) -> dict:
    """The full benchmark matrix.

    Legacy workloads run (inline + process × workers) × engines — the
    executor story.  Scenario workloads run inline × engines plus one
    live-repartition cell (delta engine, ``repartition_handoff="migrate"``)
    — the workload-shape story: per-scenario report-round attribution
    (``carry_clean_rate``) and the migration cost under that drift.
    """
    def _print_cell(label, engine, cell, handoff="none"):
        phases = cell["phase_seconds"]
        rounds = cell.get("report_rounds") or {}
        suffix = "" if handoff == "none" else f" +{handoff}"
        print(f"{cell['docs_per_second']:>8.1f} docs/s "
              f"(best of {repeat}: {cell['best_elapsed_seconds']}s, "
              f"stream {phases.get('stream', 0.0)}s / "
              f"in-stream reports {rounds.get('report_seconds', 0.0)}s / "
              f"reporting {phases.get('reporting', 0.0)}s, "
              f"carry-clean {rounds.get('carry_clean_rate', 0.0):.1%}, "
              f"rss {cell['peak_rss_mb']} MB){suffix}")

    runs = []
    for workload in workloads:
        scenario_cell = workload in SCENARIO_WORKLOADS
        if scenario_cell:
            cells = [("inline", 0)]
        else:
            cells = [("inline", 0)] + [("process", n) for n in worker_counts]
        for executor, workers in cells:
            for engine in reporting_engines:
                label = executor if executor == "inline" else f"{executor}({workers}w)"
                if verbose:
                    print(f"[bench] {workload:>11} / {label:<12} / {engine:<11} ...",
                          end=" ", flush=True)
                cell = measure(workload, executor, workers, repeat, algorithm,
                               batch_size, engine)
                runs.append(cell)
                if verbose:
                    _print_cell(label, engine, cell)
        if scenario_cell:
            # The drifting-workload repartition cell: the delta engine with
            # coordinated state migration, swaps pinned to fixed document
            # counts (1/3 and 2/3 of the stream) so the cell always pays —
            # and therefore always measures — two real migrations.
            n_documents = SCENARIO_WORKLOADS[workload]
            points = (n_documents // 3, 2 * n_documents // 3)
            if verbose:
                print(f"[bench] {workload:>11} / {'inline':<12} / "
                      f"{'delta+migr':<11} ...", end=" ", flush=True)
            cell = measure(workload, "inline", 0, repeat, algorithm,
                           batch_size, "delta", repartition_handoff="migrate",
                           repartition_points=points)
            runs.append(cell)
            if verbose:
                _print_cell("inline", "delta", cell, handoff="migrate")
    workload_block = {}
    for name in workloads:
        if name in SCENARIO_WORKLOADS:
            workload_block[name] = {
                "documents": SCENARIO_WORKLOADS[name],
                "seed": SCENARIO_SEED,
                "scenario": name,
            }
        else:
            workload_block[name] = {
                "documents": WORKLOADS[name][0],
                "seed": WORKLOADS[name][1],
                "scenario": "legacy",
            }
    return {
        "schema": SCHEMA_VERSION,
        "generated_by": "benchmarks/perf/throughput.py",
        "algorithm": algorithm,
        "notification_batch_size": batch_size,
        "reporting_engine": reporting_engines[0],
        "reporting_engines": list(reporting_engines),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "workloads": workload_block,
        "runs": runs,
        "comparison": _comparison(runs),
    }


def _comparison(runs) -> dict:
    """Per-workload speedups: process cells over the inline baseline (at
    the baseline engine) and every non-baseline engine's inline cell over
    the baseline engine's inline cell."""
    comparison: dict[str, dict[str, float]] = {}
    by_workload: dict[str, list[dict]] = {}
    for run in runs:
        # Repartition cells measure migration cost, not engine/executor
        # speedups — they would collide with the plain delta cell here.
        if run.get("repartition_handoff", "none") != "none":
            continue
        by_workload.setdefault(run["workload"], []).append(run)
    for workload, cells in by_workload.items():
        def engine_of(cell):
            return cell.get("reporting_engine", "incremental")

        inline_cells = [c for c in cells if c["executor"] == "inline"]
        baseline_engine = engine_of(cells[0])
        inline = next(
            (c for c in inline_cells if engine_of(c) == baseline_engine), None
        )
        if inline is None:
            continue
        entry = {"inline_docs_per_second": inline["docs_per_second"]}
        for cell in cells:
            if cell["executor"] == "process" and engine_of(cell) == baseline_engine:
                # Keyed by the *requested* count: two requests clamping to
                # the same effective count must not overwrite each other.
                requested = cell.get("requested_workers", cell["workers"])
                entry[f"speedup_process_{requested}_workers"] = round(
                    cell["docs_per_second"] / inline["docs_per_second"], 3
                )
        for cell in inline_cells:
            engine = engine_of(cell)
            if engine == baseline_engine:
                continue
            entry[f"speedup_{engine}_engine"] = round(
                cell["docs_per_second"] / inline["docs_per_second"], 3
            )
        comparison[workload] = entry
    return comparison


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Seeded throughput benchmark of the tag-correlation system"
    )
    all_workloads = list(WORKLOADS) + list(SCENARIO_WORKLOADS)
    parser.add_argument("--workloads",
                        default=",".join(all_workloads),
                        help="comma-separated workload names "
                             f"(available: {', '.join(all_workloads)}; "
                             "legacy cells run the full executor matrix, "
                             "scenario cells run inline x engines plus a "
                             "live-repartition cell)")
    parser.add_argument("--workers", default="2,4",
                        help="comma-separated worker counts for the process executor")
    parser.add_argument("--repeat", type=int, default=2,
                        help="timed runs per cell; the best is reported")
    parser.add_argument("--algorithm", default="DS")
    parser.add_argument("--batch-size", type=int, default=64,
                        help="notification_batch_size (the IPC unit size)")
    parser.add_argument("--engines", "--reporting-engine",
                        dest="engines", default="incremental,delta",
                        help="comma-separated exact-mode reporting engines; "
                             "every (workload, executor) cell runs once per "
                             "engine (incremental = the per-round default, "
                             "delta = cross-round dirty-type folding, "
                             "scratch = the original per-key re-walk)")
    parser.add_argument("--output", default=str(_REPO_ROOT / "BENCH_throughput.json"),
                        help="output JSON path (default: repo root)")
    args = parser.parse_args(argv)

    workloads = [name.strip() for name in args.workloads.split(",") if name.strip()]
    for name in workloads:
        if name not in WORKLOADS and name not in SCENARIO_WORKLOADS:
            parser.error(f"unknown workload {name!r} "
                         f"(available: {', '.join(all_workloads)})")
    worker_counts = [int(value) for value in args.workers.split(",") if value.strip()]
    engines = tuple(
        name.strip() for name in args.engines.split(",") if name.strip()
    )
    if not engines:
        parser.error("--engines needs at least one reporting engine")
    from repro.core.jaccard import REPORTING_ENGINES
    for engine in engines:
        if engine not in REPORTING_ENGINES:
            parser.error(f"unknown reporting engine {engine!r} "
                         f"(available: {', '.join(REPORTING_ENGINES)})")

    results = run_matrix(workloads, worker_counts, repeat=args.repeat,
                         algorithm=args.algorithm, batch_size=args.batch_size,
                         reporting_engines=engines)
    output = Path(args.output)
    output.write_text(json.dumps(results, indent=2, sort_keys=False) + "\n",
                      encoding="utf-8")
    print(f"[bench] wrote {output}")
    for workload, entry in results["comparison"].items():
        print(f"[bench] {workload}: {entry}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
