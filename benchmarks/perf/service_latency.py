#!/usr/bin/env python3
"""Service-mode latency/throughput harness: the cost of always-on serving.

Runs a live :class:`~repro.service.ServiceDaemon` over loopback TCP and
measures, per cell, the three numbers that characterise the serving surface
(see docs/ARCHITECTURE.md "Service mode"):

* **served docs/sec** — end-to-end ingest throughput: wall-clock from the
  first ingest request to the completed drain, over the whole workload.
  Comparable (same topology, same documents) to the batch executors'
  figures in ``BENCH_throughput.json``; the gap is the price of the wire
  round-trip plus the per-batch snapshot publication.
* **ingest ack latency** — per-request round-trip of a blocking ingest
  (client send → daemon queue admission → ack line), p50/p95/max in ms.
* **query latency under load** — round-trip of ``top_k`` + ``stats``
  queries issued from concurrent connections *while ingest is running*,
  p50/p95/max in ms.  This is the number the snapshot design buys: queries
  never wait for the writer.

Results land in ``BENCH_service_latency.json`` at the repository root;
``tools/check_perf_regression.py`` diffs a fresh run against the committed
snapshot (throughput binds like an inline cell, latencies bind upward) on
matching hosts only.

Usage::

    PYTHONPATH=src python benchmarks/perf/service_latency.py             # full
    PYTHONPATH=src python benchmarks/perf/service_latency.py \
        --documents 3000 --output BENCH_new.json                         # smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import threading
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[2]
if not any(Path(p).resolve() == _REPO_ROOT / "src" for p in sys.path if p):
    sys.path.insert(0, str(_REPO_ROOT / "src"))

#: Schema version of BENCH_service_latency.json.
SCHEMA_VERSION = 1

#: Workload seed/shape (mirrors the throughput harness's legacy cells).
SEED = 7

#: Documents per ingest request.
INGEST_BATCH = 250

#: Concurrent query connections hammering the daemon during ingest.
N_QUERY_CLIENTS = 2


def _generate_documents(n_documents: int):
    from repro.workloads import TwitterLikeGenerator, WorkloadConfig

    config = WorkloadConfig(
        seed=SEED,
        tweets_per_second=50.0,
        n_topics=120,
        tags_per_topic=15,
        new_topic_rate=5.0,
        intra_topic_probability=0.92,
    )
    return TwitterLikeGenerator(config).generate(n_documents)


def _system_config(queue_limit: int):
    from repro.pipeline import SystemConfig

    return SystemConfig(
        algorithm="DS",
        k=8,
        n_partitioners=5,
        window_mode="count",
        window_size=1500,
        bootstrap_documents=600,
        quality_check_interval=250,
        repartition_threshold=0.5,
        report_interval_seconds=60.0,
        executor="service",
        service_queue_limit=queue_limit,
    )


def _percentiles(samples: list[float]) -> dict:
    """p50/p95/max of latency samples, in milliseconds."""
    if not samples:
        return {"p50_ms": None, "p95_ms": None, "max_ms": None, "samples": 0}
    ordered = sorted(samples)

    def at(fraction: float) -> float:
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    return {
        "p50_ms": round(at(0.50) * 1000.0, 3),
        "p95_ms": round(at(0.95) * 1000.0, 3),
        "max_ms": round(ordered[-1] * 1000.0, 3),
        "samples": len(ordered),
    }


class _QueryLoadThread(threading.Thread):
    """One persistent connection alternating top_k/stats until stopped."""

    def __init__(self, address, halt: threading.Event, index: int) -> None:
        super().__init__(name=f"latency-query-{index}", daemon=True)
        self._address = address
        self._halt = halt
        self.latencies: list[float] = []
        self.error: str | None = None

    def run(self) -> None:
        from repro.service import ServiceClient

        try:
            host, port = self._address
            with ServiceClient(host=host, port=port) as client:
                flip = False
                while not self._halt.is_set():
                    start = time.perf_counter()
                    if flip:
                        client.stats()
                    else:
                        client.top_k(k=10)
                    self.latencies.append(time.perf_counter() - start)
                    flip = not flip
        except BaseException as exc:  # noqa: BLE001 - recorded, not raised
            self.error = f"{type(exc).__name__}: {exc}"


def measure(n_documents: int, queue_limit: int) -> dict:
    """One served run: throughput + ingest-ack + under-load query latency."""
    from repro.service import ServiceClient, ServiceDaemon

    documents = _generate_documents(n_documents)
    halt = threading.Event()
    with ServiceDaemon(_system_config(queue_limit)) as daemon:
        address = daemon.address
        queriers = [
            _QueryLoadThread(address, halt, index)
            for index in range(N_QUERY_CLIENTS)
        ]
        for querier in queriers:
            querier.start()
        host, port = address
        ingest_latencies: list[float] = []
        with ServiceClient(host=host, port=port) as feeder:
            started = time.perf_counter()
            for start in range(0, len(documents), INGEST_BATCH):
                batch = documents[start : start + INGEST_BATCH]
                sent = time.perf_counter()
                feeder.ingest(batch, block=True, timeout=120.0)
                ingest_latencies.append(time.perf_counter() - sent)
            halt.set()
            for querier in queriers:
                querier.join(timeout=60.0)
            feeder.shutdown()
            elapsed = time.perf_counter() - started
    report = daemon.final_report
    assert report is not None and report.documents_processed == n_documents
    for querier in queriers:
        if querier.error is not None:
            raise RuntimeError(f"query load thread failed: {querier.error}")
    query_latencies = [
        sample for querier in queriers for sample in querier.latencies
    ]
    return {
        "cell": f"served-{n_documents}docs",
        "documents": n_documents,
        "ingest_batch": INGEST_BATCH,
        "queue_limit": queue_limit,
        "query_clients": N_QUERY_CLIENTS,
        "rounds": daemon.current_round,
        "elapsed_seconds": round(elapsed, 4),
        "docs_per_second": round(n_documents / elapsed, 1),
        "ingest_ack": _percentiles(ingest_latencies),
        "query_under_load": _percentiles(query_latencies),
        "coefficients_reported": report.coefficients_reported,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Service-mode latency/throughput benchmark"
    )
    parser.add_argument("--documents", default="6000",
                        help="comma-separated workload sizes (one cell each)")
    parser.add_argument("--queue-limit", type=int, default=8,
                        help="service ingest queue limit (batches)")
    parser.add_argument("--output",
                        default=str(_REPO_ROOT / "BENCH_service_latency.json"),
                        help="output JSON path (default: repo root)")
    args = parser.parse_args(argv)

    sizes = [int(value) for value in args.documents.split(",") if value.strip()]
    runs = []
    for n_documents in sizes:
        print(f"[bench] serve {n_documents} docs "
              f"(batch {INGEST_BATCH}, {N_QUERY_CLIENTS} query clients) ...",
              end=" ", flush=True)
        cell = measure(n_documents, args.queue_limit)
        runs.append(cell)
        print(f"{cell['docs_per_second']:>8.1f} docs/s, "
              f"ingest p95 {cell['ingest_ack']['p95_ms']} ms, "
              f"query p95 {cell['query_under_load']['p95_ms']} ms "
              f"({cell['query_under_load']['samples']} queries, "
              f"{cell['rounds']} rounds)")

    results = {
        "schema": SCHEMA_VERSION,
        "generated_by": "benchmarks/perf/service_latency.py",
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "runs": runs,
    }
    output = Path(args.output)
    output.write_text(json.dumps(results, indent=2, sort_keys=False) + "\n",
                      encoding="utf-8")
    print(f"[bench] wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
