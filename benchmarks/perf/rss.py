"""Sampled resident-set sizes of descendant processes.

``getrusage(RUSAGE_CHILDREN)`` only sees *reaped* children and reports the
high-water mark of the single largest one — a process-executor run whose
workers hold large state in aggregate (or whose spill store keeps them
small!) is misread by it.  :class:`ChildRssSampler` instead walks
``/proc`` on a background thread while the workload runs, summing the
``VmRSS`` of every live descendant of the calling process, and keeps the
peak of that sum (and of the single largest descendant) across samples.

On platforms without ``/proc`` the sampler degrades to recording zeros, so
harness code can use it unconditionally.
"""

from __future__ import annotations

import os
import threading
import time

#: Default gap between /proc sweeps.  A sweep over a handful of processes
#: costs well under a millisecond, so 20 Hz adds no measurable load while
#: catching RSS peaks that last a few report rounds.
DEFAULT_INTERVAL_SECONDS = 0.05


def _descendants(root_pid: int) -> list[int]:
    """PIDs of all live descendants of ``root_pid`` (children, grandchildren, ...)."""
    children: dict[int, list[int]] = {}
    try:
        entries = os.listdir("/proc")
    except OSError:
        return []
    for entry in entries:
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/stat", "rb") as handle:
                fields = handle.read().split()
            # stat field 4 is the ppid; fields 2 (comm) cannot contain
            # whitespace after the close paren on the split() view used
            # here only when comm has no spaces — resolve robustly by
            # splitting after the last ')'.
            text = b" ".join(fields).decode("ascii", "replace")
            after_comm = text.rsplit(")", 1)[1].split()
            ppid = int(after_comm[1])
        except (OSError, IndexError, ValueError):
            continue
        children.setdefault(ppid, []).append(int(entry))
    result: list[int] = []
    frontier = [root_pid]
    while frontier:
        pid = frontier.pop()
        for child in children.get(pid, ()):
            result.append(child)
            frontier.append(child)
    return result


def _vm_rss_kb(pid: int) -> int:
    try:
        with open(f"/proc/{pid}/status", "rb") as handle:
            for line in handle:
                if line.startswith(b"VmRSS:"):
                    return int(line.split()[1])
    except (OSError, IndexError, ValueError):
        pass
    return 0


class ChildRssSampler:
    """Peak summed (and single-largest) descendant RSS, sampled from /proc.

    Usage::

        with ChildRssSampler() as sampler:
            run_the_workload()
        print(sampler.peak_total_mb, sampler.peak_single_mb)
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL_SECONDS):
        self._interval = interval
        self._root_pid = os.getpid()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.peak_total_kb = 0
        self.peak_single_kb = 0
        self.samples = 0

    def _sample_once(self) -> None:
        pids = _descendants(self._root_pid)
        if not pids:
            return
        sizes = [_vm_rss_kb(pid) for pid in pids]
        total = sum(sizes)
        largest = max(sizes)
        if total > self.peak_total_kb:
            self.peak_total_kb = total
        if largest > self.peak_single_kb:
            self.peak_single_kb = largest
        self.samples += 1

    def _run(self) -> None:
        while not self._stop.is_set():
            self._sample_once()
            self._stop.wait(self._interval)

    def __enter__(self) -> "ChildRssSampler":
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="child-rss-sampler", daemon=True
        )
        self._thread.start()
        return self

    def __exit__(self, *_exc_info) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        # One final sweep narrows the window between the last periodic
        # sample and worker teardown.
        self._sample_once()

    @property
    def peak_total_mb(self) -> float:
        """Peak of the summed VmRSS of all descendants, in MiB."""
        return round(self.peak_total_kb / 1024.0, 1)

    @property
    def peak_single_mb(self) -> float:
        """Peak VmRSS of the single largest descendant, in MiB."""
        return round(self.peak_single_kb / 1024.0, 1)
