"""Throughput benchmarks: the repo's performance trajectory over PRs.

Unlike ``benchmarks/test_fig*.py`` (which regenerate the paper's *quality*
figures), this package measures *speed*: sustained documents/second of the
end-to-end topology per execution engine, written to ``BENCH_throughput.json``
at the repository root so every PR has a recorded baseline to beat.  See
``docs/PERFORMANCE.md`` for how to run and read it.
"""
