"""Section 5: analytic models (disjoint-set feasibility and communication).

Section 5.1 derives ``n*p`` values for the tag co-occurrence graph under an
Erdős–Rényi model (np < 1 means no giant component, i.e. the DS algorithm is
applicable); Section 5.2 derives the expected communication load of random
equal-sized partitions as a function of vocabulary size and tags per tweet.
This benchmark reproduces both tables and checks them against the numbers
quoted in the paper.
"""

import pytest

import common
from repro.theory import (
    WindowModel,
    communication_sweep,
    expected_communication,
    paper_np_table,
)


def test_sec51_np_table(benchmark):
    table = benchmark.pedantic(paper_np_table, rounds=1, iterations=1)
    print()
    print("=== Section 5.1 - Erdos-Renyi n*p of the tag graph ===")
    print("    paper: np=0.76 (5 min, mmax=8), 1.52 (10 min, mmax=8), 0.85 (10 min, mmax=6)")
    print(f"{'window (min)':>14} {'mmax':>6} {'np':>8} {'giant component?':>18}")
    for (window, mmax), np_value in table.items():
        model = WindowModel(window_minutes=window, mmax=mmax)
        print(
            f"{window:>14} {mmax:>6} {np_value:>8.2f} "
            f"{str(model.predicts_giant_component()):>18}"
        )
    assert table[(5, 8)] == pytest.approx(0.76, abs=0.08)
    assert table[(10, 8)] == pytest.approx(1.52, abs=0.15)
    assert table[(10, 6)] == pytest.approx(0.85, abs=0.10)


def test_sec51_observed_pairs_np(benchmark):
    model = WindowModel(window_minutes=10)
    observed = benchmark.pedantic(
        model.np_from_observed_pairs, rounds=1, iterations=1
    )
    print()
    print("=== Section 5.1 - np from observed distinct tag pairs ===")
    print(f"    independence model: {model.np:.2f}   observed pairs: {observed:.2f} "
          "(paper: 1.52 vs 0.11)")
    assert observed == pytest.approx(0.11, abs=0.03)
    assert observed < model.np


def test_sec52_expected_communication(benchmark):
    vocabularies = [20, 100, 1000, 10_000, 100_000, 600_000]
    sweep = benchmark.pedantic(
        communication_sweep,
        args=(vocabularies, 10_000, 10, 3),
        rounds=1,
        iterations=1,
    )
    print()
    print("=== Section 5.2 - Expected communication of random equal partitions ===")
    print("    k=10 partitions, 10,000 tweets, 3 tags per tweet")
    print("    paper: small vocabulary -> broadcast to all partitions; "
          "large vocabulary (Twitter) -> tractable")
    print(f"{'vocabulary':>12} {'E[communication]':>18}")
    for vocabulary in vocabularies:
        print(f"{vocabulary:>12} {sweep[vocabulary]:>18.3f}")
    # Small vocabulary: essentially a broadcast (the 'knockout blow').
    assert sweep[20] == pytest.approx(10.0, abs=0.05)
    # Twitter-scale vocabulary: tractable.
    assert sweep[600_000] < 2.0
    # Monotone decreasing in the vocabulary size.
    values = [sweep[v] for v in vocabularies]
    assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))


def test_sec52_measured_communication_respects_bound(benchmark):
    """The measured communication of the real algorithms stays below the
    analytic expectation for *random* partitions with the same k."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    documents = list(common.workload())
    tags = set()
    total_tags = 0
    tagged = 0
    for document in documents:
        if document.tags:
            tags |= document.tags
            total_tags += len(document.tags)
            tagged += 1
    mean_tags = max(1, round(total_tags / tagged))
    bound = expected_communication(len(tags), tagged, 10, mean_tags)
    for algorithm in ("DS", "SCC"):
        measured = common.default_report(algorithm).communication_avg
        assert measured <= bound + 1.0
