"""Figure 6: number of repartitions, broken down by trigger.

A repartition is requested when the rolling communication or load statistics
exceed their reference values by more than the threshold ``thr``.  The paper
observes that DS repartitions are caused by load imbalance while SCC and SCI
repartition because of communication overhead, and that SCL/SCI do not
manage to reduce repartitions at a larger threshold.
"""

import pytest

import common

REASONS = ("communication", "both", "load")


def print_repartition_table(parameter, reports):
    print()
    print(f"=== Figure 6 - Repartitions by trigger (varying {parameter}) ===")
    print("    paper: DS triggered by load, SCC/SCI by communication; up to ~550 "
          "repartitions over 1.4M documents (~1 per 2.5k documents)")
    header = f"{parameter:>24} {'algorithm':>10} {'comm':>8} {'both':>8} {'load':>8} {'total':>8}"
    print(header)
    for value in sorted(next(iter(reports.values())).keys()):
        for algorithm in common.ALGORITHMS:
            report = reports[algorithm][value]
            reasons = report.repartition_reasons
            print(
                f"{value:>24} {algorithm:>10} "
                f"{reasons.get('communication', 0):>8} "
                f"{reasons.get('both', 0):>8} "
                f"{reasons.get('load', 0):>8} "
                f"{report.n_repartitions:>8}"
            )


@pytest.mark.parametrize("parameter", list(common.PARAMETER_GRID))
def test_fig6_repartitions(benchmark, parameter):
    reports = common.sweep(parameter)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_repartition_table(parameter, reports)
    for value in common.PARAMETER_GRID[parameter]:
        for algorithm in common.ALGORITHMS:
            report = reports[algorithm][value]
            # Reason breakdown must be consistent with the total.
            assert sum(report.repartition_reasons.values()) == report.n_repartitions
            assert all(reason in REASONS for reason in report.repartition_reasons)


def test_fig6_dynamics_produce_repartitions(benchmark):
    """Across the default grid at least some repartitions must be triggered;
    otherwise the dynamics of Section 7 were never exercised."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    total = sum(
        common.default_report(algorithm).n_repartitions
        for algorithm in common.ALGORITHMS
    )
    assert total >= 1
