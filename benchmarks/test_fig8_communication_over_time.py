"""Figure 8: evolution of the communication between repartitions.

The paper plots the rolling average communication against the number of
processed documents, with vertical lines at repartitions: communication
creeps up while single additions accumulate and drops again after each
repartition.
"""

import pytest

import common
from repro.analysis.timeseries import communication_series


@pytest.mark.parametrize("algorithm", common.ALGORITHMS)
def test_fig8_communication_over_time(benchmark, algorithm):
    report = common.default_report(algorithm)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    series = communication_series(report.history, report.repartition_events)
    print()
    print(f"=== Figure 8 - Communication over time ({algorithm}) ===")
    print("    paper: communication increases between repartitions, drops after each")
    print(f"{'documents':>12} {'avg communication':>20}")
    for documents, value in zip(series.documents, series.communication):
        marker = "  <- repartition" if documents in series.repartition_documents else ""
        print(f"{documents:>12} {value:>20.3f}{marker}")
    assert len(series.documents) >= 2
    assert all(value >= 1.0 for value in series.communication)
    # The rolling statistic stays within the window the quality monitor
    # enforces: never more than (1 + thr) times the reference for long.
    assert max(series.communication) <= report.config.k


def test_fig8_ds_stays_near_one(benchmark):
    """DS communication never drifts far from 1 (zero replication design)."""
    report = common.default_report("DS")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    series = communication_series(report.history, report.repartition_events)
    assert max(series.communication) < 2.5
