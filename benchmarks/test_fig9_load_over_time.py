"""Figure 9: evolution of the sorted per-Calculator load shares.

The paper plots, per quality check, the load share of the most loaded
Calculator, the second most loaded, and so on.  For DS one Calculator
carries clearly more load than the rest; for SCL the lines stay close
together throughout the run.
"""

import pytest

import common
from repro.analysis.timeseries import load_series


@pytest.mark.parametrize("algorithm", common.ALGORITHMS)
def test_fig9_load_over_time(benchmark, algorithm):
    report = common.default_report(algorithm)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    series = load_series(report.history, report.repartition_events)
    print()
    print(f"=== Figure 9 - Sorted Calculator load shares over time ({algorithm}) ===")
    print("    paper: DS has one clearly dominant Calculator; SCL lines stay close")
    print(f"{'documents':>12} {'max share':>12} {'median share':>14} {'min share':>12}")
    for documents, shares in zip(series.documents, series.shares):
        marker = "  <- repartition" if documents in series.repartition_documents else ""
        median = shares[len(shares) // 2]
        print(
            f"{documents:>12} {shares[0]:>12.3f} {median:>14.3f} {shares[-1]:>12.3f}{marker}"
        )
    assert len(series.documents) >= 2
    for shares in series.shares:
        assert shares[0] >= shares[-1]
        assert sum(shares) == pytest.approx(1.0)


def test_fig9_scl_stays_more_balanced_than_ds(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ds = common.default_report("DS")
    scl = common.default_report("SCL")
    ds_series = load_series(ds.history, ds.repartition_events)
    scl_series = load_series(scl.history, scl.repartition_events)
    ds_mean_max = sum(s[0] for s in ds_series.shares) / len(ds_series.shares)
    scl_mean_max = sum(s[0] for s in scl_series.shares) / len(scl_series.shares)
    assert scl_mean_max <= ds_mean_max
