"""Figure 5: average error of the reported Jaccard coefficients.

The distributed coefficients are compared against a centralised exact
computation over the whole run, restricted to tagsets seen more than
``sn = 3`` times.  The paper additionally reports that all algorithms cover
more than 97 % of those tagsets; on the short scaled-down streams used here
the coverage is lower (the bootstrap phase is a larger fraction of the run)
but the error magnitudes and the ordering (DS most accurate) are preserved.
"""

import pytest

import common


@pytest.mark.parametrize("parameter", list(common.PARAMETER_GRID))
def test_fig5_jaccard_error(benchmark, parameter):
    reports = common.sweep(parameter)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    common.print_figure_table(
        f"Figure 5 - Jaccard error, tagsets seen > 3 times (varying {parameter})",
        parameter,
        "jaccard_error",
        reports,
        paper_note="errors in 0.01-0.16; DS generally the most accurate",
    )
    common.print_figure_table(
        f"Section 8.2.3 - coverage of qualifying tagsets (varying {parameter})",
        parameter,
        "jaccard_coverage",
        reports,
        paper_note=">97% on the 6-hour trace; lower here because the bootstrap "
        "phase is a larger fraction of the scaled-down stream",
    )
    for value in common.PARAMETER_GRID[parameter]:
        for algorithm in common.ALGORITHMS:
            report = reports[algorithm][value]
            assert 0.0 <= report.jaccard_mean_error <= 0.3
            # Coverage is far below the paper's 97% on these short streams
            # because the bootstrap phase is a large fraction of the run; it
            # must still be substantial (see EXPERIMENTS.md for discussion).
            assert report.jaccard_coverage > 0.3
            assert report.coefficients_reported > 0


def test_fig5_every_algorithm_reports_most_frequent_tagsets(benchmark):
    """Frequent tagsets must receive a coefficient under every algorithm."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for algorithm in common.ALGORITHMS:
        report = common.default_report(algorithm)
        assert report.jaccard is not None
        assert report.jaccard.n_compared > 0
