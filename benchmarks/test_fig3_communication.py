"""Figure 3: average communication per received tagset.

The paper varies the repartition threshold, the number of Partitioners, the
number of partitions and the arrival rate, and reports the average number of
messages the Disseminator sends to Calculators per routed tagset.  Expected
shape: DS lowest (≈1, zero replication by construction), SCL highest
(optimises only load), SCI worse than SCC, and the number of partitions k is
the dominant parameter.
"""

import pytest

import common


@pytest.mark.parametrize("parameter", list(common.PARAMETER_GRID))
def test_fig3_communication(benchmark, parameter):
    reports = common.sweep(parameter)
    benchmark.pedantic(
        lambda: common.run_cell.__wrapped__("DS", parameter, common.PARAMETER_GRID[parameter][0]),
        rounds=1,
        iterations=1,
    )
    common.print_figure_table(
        f"Figure 3 - Communication (varying {parameter})",
        parameter,
        "communication",
        reports,
        paper_note="DS lowest (~1), SCL highest (3-4.5); k is the dominant parameter",
    )
    for value in common.PARAMETER_GRID[parameter]:
        ds = reports["DS"][value].communication_avg
        scl = reports["SCL"][value].communication_avg
        scc = reports["SCC"][value].communication_avg
        # DS replicates (almost) nothing; SCL pays the most communication.
        assert ds <= scc + 1e-9
        assert ds < scl
        assert scl <= reports["SCL"][value].config.k


def test_fig3_k_is_dominant_parameter(benchmark):
    """Communication of SCL grows with k (Figure 3c) while DS stays flat."""
    reports = common.sweep("k")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    small_k = reports["SCL"][5].communication_avg
    large_k = reports["SCL"][20].communication_avg
    assert large_k > small_k
    # DS stays close to 1 regardless of k (no replication by construction).
    assert reports["DS"][20].communication_avg < 2.0
