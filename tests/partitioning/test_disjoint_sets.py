"""Unit and property tests for the Disjoint Sets (DS) algorithm."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cooccurrence import CooccurrenceStatistics
from repro.core.documents import documents_from_tagsets
from repro.partitioning.disjoint_sets import (
    DisjointSetsPartitioner,
    find_disjoint_sets,
    merge_disjoint_sets,
)


class TestFindDisjointSets:
    def test_figure1_components(self, figure1_statistics):
        disjoint_sets = find_disjoint_sets(figure1_statistics)
        tag_groups = sorted(sorted(ds.tags) for ds in disjoint_sets)
        assert tag_groups == [
            ["bavaria", "beer", "munich", "oktoberfest", "pizza", "soccer"],
            ["beach", "friday", "sunny"],
        ]

    def test_figure1_loads(self, figure1_statistics):
        disjoint_sets = find_disjoint_sets(figure1_statistics)
        loads = {frozenset(ds.tags): ds.load for ds in disjoint_sets}
        big = frozenset(
            {"bavaria", "beer", "munich", "oktoberfest", "pizza", "soccer"}
        )
        small = frozenset({"beach", "friday", "sunny"})
        # 10 + 4 + 3 + 1 = 18 documents touch the big component, 3 the small.
        assert loads[big] == 18
        assert loads[small] == 3

    def test_sorted_by_decreasing_load(self, figure1_statistics):
        disjoint_sets = find_disjoint_sets(figure1_statistics)
        loads = [ds.load for ds in disjoint_sets]
        assert loads == sorted(loads, reverse=True)

    def test_empty_statistics(self):
        assert find_disjoint_sets(CooccurrenceStatistics()) == []


class TestMergeDisjointSets:
    def test_requires_positive_k(self, figure1_statistics):
        disjoint_sets = find_disjoint_sets(figure1_statistics)
        with pytest.raises(ValueError):
            merge_disjoint_sets(disjoint_sets, 0)

    def test_fewer_sets_than_partitions_leaves_empty_partitions(
        self, figure1_statistics
    ):
        disjoint_sets = find_disjoint_sets(figure1_statistics)
        assignment = merge_disjoint_sets(disjoint_sets, 4)
        non_empty = [p for p in assignment if p.tags]
        assert len(non_empty) == 2
        assert assignment.k == 4

    def test_heaviest_set_goes_to_least_loaded_partition(self):
        stats = CooccurrenceStatistics.from_documents(
            documents_from_tagsets(
                [["a", "b"]] * 6 + [["c", "d"]] * 5 + [["e", "f"]] * 4
            )
        )
        assignment = merge_disjoint_sets(find_disjoint_sets(stats), 2)
        loads = sorted(assignment.loads())
        # LPT packing: {a,b}=6 alone, {c,d}=5 and {e,f}=4 together.
        assert loads == [6, 9]


class TestDisjointSetsPartitioner:
    def test_zero_replication(self, figure1_statistics):
        assignment = DisjointSetsPartitioner().partition(figure1_statistics, 2)
        assert assignment.replication_factor() == 1.0

    def test_full_coverage(self, figure1_statistics):
        assignment = DisjointSetsPartitioner().partition(figure1_statistics, 2)
        assert assignment.coverage(figure1_statistics.tagsets) == 1.0

    def test_communication_load_is_one(self, figure1_statistics):
        assignment = DisjointSetsPartitioner().partition(figure1_statistics, 2)
        assert assignment.communication_load(
            figure1_statistics.tagsets
        ) == pytest.approx(1.0)

    def test_single_partition(self, figure1_statistics):
        assignment = DisjointSetsPartitioner().partition(figure1_statistics, 1)
        assert assignment.k == 1
        assert assignment.partition(0).tags == figure1_statistics.tags

    def test_best_partition_for_addition_prefers_shared_tags(
        self, figure1_statistics
    ):
        partitioner = DisjointSetsPartitioner()
        assignment = partitioner.partition(figure1_statistics, 2)
        index_of_big = next(
            p.index for p in assignment if "munich" in p.tags
        )
        choice = partitioner.best_partition_for_addition(
            assignment, frozenset({"munich", "newtag"})
        )
        assert choice == index_of_big

    def test_best_partition_for_unrelated_tagset_is_least_loaded(
        self, figure1_statistics
    ):
        partitioner = DisjointSetsPartitioner()
        assignment = partitioner.partition(figure1_statistics, 2)
        least_loaded = min(assignment, key=lambda p: p.load).index
        choice = partitioner.best_partition_for_addition(
            assignment, frozenset({"completely", "new"})
        )
        assert choice == least_loaded


class TestDSProperties:
    tagsets_strategy = st.lists(
        st.sets(st.sampled_from("abcdefghijkl"), min_size=1, max_size=4),
        min_size=1,
        max_size=40,
    )

    @settings(max_examples=50, deadline=None)
    @given(tagsets_strategy, st.integers(1, 6))
    def test_invariants_coverage_and_no_replication(self, tagsets, k):
        stats = CooccurrenceStatistics.from_documents(
            documents_from_tagsets([list(s) for s in tagsets])
        )
        assignment = DisjointSetsPartitioner().partition(stats, k)
        # Every observed tagset is fully covered by some partition.
        assert assignment.coverage(stats.tagsets) == 1.0
        # No tag is ever replicated.
        assert assignment.replicated_tags() == set()
        # All tags are assigned.
        assert assignment.all_tags() == stats.tags

    @settings(max_examples=50, deadline=None)
    @given(tagsets_strategy, st.integers(1, 6))
    def test_partition_count_respected(self, tagsets, k):
        stats = CooccurrenceStatistics.from_documents(
            documents_from_tagsets([list(s) for s in tagsets])
        )
        assignment = DisjointSetsPartitioner().partition(stats, k)
        assert assignment.k == k
