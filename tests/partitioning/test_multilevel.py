"""Unit tests for the multilevel graph partitioner."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cooccurrence import CooccurrenceStatistics
from repro.core.documents import documents_from_tagsets
from repro.core.metrics import gini_coefficient
from repro.partitioning import make_partitioner
from repro.partitioning.multilevel import MultilevelPartitioner


def stats_from(tagsets):
    return CooccurrenceStatistics.from_documents(
        documents_from_tagsets([list(s) for s in tagsets])
    )


@pytest.fixture
def clustered_statistics():
    """Several well-separated clusters of co-occurring tags."""
    tagsets = []
    for cluster in range(6):
        base = [f"c{cluster}_t{i}" for i in range(6)]
        tagsets.extend([base[:3]] * 5)
        tagsets.extend([base[2:5]] * 4)
        tagsets.extend([base[4:]] * 3)
    return stats_from(tagsets)


class TestMultilevelPartitioner:
    def test_registered_in_registry(self):
        assert make_partitioner("multilevel").name == "MULTILEVEL"

    def test_invalid_coarsest_size(self):
        with pytest.raises(ValueError):
            MultilevelPartitioner(coarsest_size=1)

    def test_coverage_and_tag_assignment(self, clustered_statistics):
        assignment = MultilevelPartitioner().partition(clustered_statistics, 3)
        assert assignment.coverage(clustered_statistics.tagsets) == 1.0
        assert clustered_statistics.tags <= assignment.all_tags()
        assert assignment.k == 3

    def test_balances_clustered_load(self, clustered_statistics):
        assignment = MultilevelPartitioner().partition(clustered_statistics, 3)
        loads = assignment.expected_calculator_loads(clustered_statistics.tagsets)
        assert gini_coefficient(loads) < 0.5

    def test_empty_statistics(self):
        assignment = MultilevelPartitioner().partition(CooccurrenceStatistics(), 4)
        assert assignment.k == 4
        assert assignment.all_tags() == set()

    def test_single_partition(self, clustered_statistics):
        assignment = MultilevelPartitioner().partition(clustered_statistics, 1)
        assert assignment.partition(0).tags == clustered_statistics.tags

    def test_deterministic(self, clustered_statistics):
        first = MultilevelPartitioner().partition(clustered_statistics, 4)
        second = MultilevelPartitioner().partition(clustered_statistics, 4)
        assert sorted(map(sorted, first.as_tag_sets())) == sorted(
            map(sorted, second.as_tag_sets())
        )

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.sets(st.sampled_from("abcdefghij"), min_size=1, max_size=4),
            min_size=1,
            max_size=25,
        ),
        st.integers(1, 4),
    )
    def test_coverage_invariant(self, tagsets, k):
        stats = stats_from(tagsets)
        assignment = MultilevelPartitioner(coarsest_size=8).partition(stats, k)
        assert assignment.coverage(stats.tagsets) == 1.0
