"""Unit tests for the baseline partitioners (hash, random, KL, spectral)."""

import pytest

from repro.core.cooccurrence import CooccurrenceStatistics
from repro.core.documents import documents_from_tagsets
from repro.partitioning.baselines import (
    HashPartitioner,
    KernighanLinPartitioner,
    RandomPartitioner,
    SpectralPartitioner,
    repair_coverage,
)


@pytest.fixture
def chain_statistics():
    """A chain of co-occurring tags that any split-based method must cut."""
    tagsets = (
        [["a", "b"]] * 5
        + [["b", "c"]] * 4
        + [["c", "d"]] * 3
        + [["x", "y"]] * 5
        + [["y", "z"]] * 2
    )
    return CooccurrenceStatistics.from_documents(documents_from_tagsets(tagsets))


ALL_BASELINES = [
    HashPartitioner,
    RandomPartitioner,
    KernighanLinPartitioner,
    SpectralPartitioner,
]


@pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
class TestBaselineCommon:
    def test_coverage_after_repair(self, baseline_cls, chain_statistics):
        assignment = baseline_cls().partition(chain_statistics, 3)
        assert assignment.coverage(chain_statistics.tagsets) == 1.0

    def test_k_partitions(self, baseline_cls, chain_statistics):
        assignment = baseline_cls().partition(chain_statistics, 3)
        assert assignment.k == 3

    def test_all_tags_assigned(self, baseline_cls, chain_statistics):
        assignment = baseline_cls().partition(chain_statistics, 2)
        assert chain_statistics.tags <= assignment.all_tags()

    def test_invalid_k(self, baseline_cls, chain_statistics):
        with pytest.raises(ValueError):
            baseline_cls().partition(chain_statistics, 0)


class TestRepairCoverage:
    def test_repair_adds_missing_tagsets(self, chain_statistics):
        unrepaired = HashPartitioner(repair=False).partition(chain_statistics, 4)
        uncovered = [
            tagset
            for tagset in chain_statistics.tagsets
            if not unrepaired.covers(tagset)
        ]
        repaired_count = repair_coverage(unrepaired, chain_statistics)
        assert repaired_count == len(uncovered)
        assert unrepaired.coverage(chain_statistics.tagsets) == 1.0

    def test_repair_is_idempotent(self, chain_statistics):
        assignment = HashPartitioner().partition(chain_statistics, 4)
        assert repair_coverage(assignment, chain_statistics) == 0


class TestDeterminism:
    def test_hash_partitioner_is_deterministic(self, chain_statistics):
        first = HashPartitioner(seed=3).partition(chain_statistics, 3)
        second = HashPartitioner(seed=3).partition(chain_statistics, 3)
        assert first.as_tag_sets() == second.as_tag_sets()

    def test_random_partitioner_seeded(self, chain_statistics):
        first = RandomPartitioner(seed=5).partition(chain_statistics, 3)
        second = RandomPartitioner(seed=5).partition(chain_statistics, 3)
        assert first.as_tag_sets() == second.as_tag_sets()

    def test_spectral_handles_tiny_graphs(self):
        stats = CooccurrenceStatistics.from_documents(
            documents_from_tagsets([["a", "b"]])
        )
        assignment = SpectralPartitioner().partition(stats, 3)
        assert assignment.covers({"a", "b"})

    def test_kl_handles_empty_statistics(self):
        assignment = KernighanLinPartitioner().partition(CooccurrenceStatistics(), 2)
        assert assignment.k == 2
