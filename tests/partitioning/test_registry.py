"""Tests for the algorithm registry."""

import pytest

from repro.partitioning import (
    ALGORITHMS,
    PAPER_ALGORITHMS,
    Partitioner,
    make_partitioner,
)


class TestRegistry:
    def test_paper_algorithms_registered(self):
        for name in PAPER_ALGORITHMS:
            assert name in ALGORITHMS

    def test_make_partitioner_case_insensitive(self):
        assert make_partitioner("ds").name == "DS"
        assert make_partitioner("sCl").name == "SCL"

    def test_make_partitioner_unknown_name(self):
        with pytest.raises(ValueError, match="unknown partitioning algorithm"):
            make_partitioner("nope")

    def test_all_registered_are_partitioners(self):
        for name in ALGORITHMS:
            instance = make_partitioner(name)
            assert isinstance(instance, Partitioner)
            assert instance.name

    def test_kwargs_forwarded(self):
        sci = make_partitioner("SCI", seed=123)
        assert sci.name == "SCI"

    def test_names_match_registry_keys(self):
        for name, cls in ALGORITHMS.items():
            assert cls.name.upper() == name or name in ("DS+SCL",)
