"""Unit tests for the hybrid DS + set-cover partitioner (Section 8.3)."""

import pytest

from repro.core.cooccurrence import CooccurrenceStatistics
from repro.core.documents import documents_from_tagsets
from repro.core.metrics import gini_coefficient
from repro.partitioning.disjoint_sets import DisjointSetsPartitioner
from repro.partitioning.hybrid import HybridDSPartitioner


@pytest.fixture
def giant_component_statistics():
    """One giant connected component plus two small ones."""
    giant = []
    # A chain t0-t1-...-t19 with decreasing weights.
    for i in range(19):
        giant.extend([[f"t{i}", f"t{i+1}"]] * (20 - i))
    small = [["x1", "x2"]] * 3 + [["y1", "y2"]] * 2
    return CooccurrenceStatistics.from_documents(
        documents_from_tagsets(giant + small)
    )


class TestHybridPartitioner:
    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            HybridDSPartitioner(split_threshold=0)

    def test_degenerates_to_ds_with_huge_threshold(self, figure1_statistics):
        hybrid = HybridDSPartitioner(split_threshold=1e9)
        ds = DisjointSetsPartitioner()
        hybrid_sets = sorted(map(sorted, hybrid.partition(figure1_statistics, 2).as_tag_sets()))
        ds_sets = sorted(map(sorted, ds.partition(figure1_statistics, 2).as_tag_sets()))
        assert hybrid_sets == ds_sets

    def test_splits_giant_component(self, giant_component_statistics):
        stats = giant_component_statistics
        k = 4
        ds = DisjointSetsPartitioner().partition(stats, k)
        hybrid = HybridDSPartitioner(split_threshold=1.0).partition(stats, k)
        ds_gini = gini_coefficient(ds.expected_calculator_loads(stats.tagsets))
        hybrid_gini = gini_coefficient(
            hybrid.expected_calculator_loads(stats.tagsets)
        )
        # Splitting the giant component must improve load balance.
        assert hybrid_gini < ds_gini

    def test_coverage_preserved_after_splitting(self, giant_component_statistics):
        stats = giant_component_statistics
        assignment = HybridDSPartitioner(split_threshold=1.0).partition(stats, 4)
        assert assignment.coverage(stats.tagsets) == 1.0

    def test_single_partition_is_everything(self, giant_component_statistics):
        assignment = HybridDSPartitioner().partition(giant_component_statistics, 1)
        assert assignment.partition(0).tags == giant_component_statistics.tags

    def test_empty_statistics(self):
        assignment = HybridDSPartitioner().partition(CooccurrenceStatistics(), 3)
        assert assignment.k == 3
