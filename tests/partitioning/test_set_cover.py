"""Unit and property tests for the set-cover family (SCC, SCL, SCI)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cooccurrence import CooccurrenceStatistics
from repro.core.documents import documents_from_tagsets
from repro.core.metrics import gini_coefficient
from repro.partitioning.set_cover import (
    SCCPartitioner,
    SCIPartitioner,
    SCLPartitioner,
    communication_seed_cost,
    load_seed_cost,
    select_seed_tagsets,
    zero_seed_cost,
)


def stats_from(tagsets):
    return CooccurrenceStatistics.from_documents(
        documents_from_tagsets([list(s) for s in tagsets])
    )


class TestSeedCosts:
    def test_communication_cost_counts_covered_tags(self):
        cost = communication_seed_cost(frozenset({"a", "b"}), {"a"}, [], 5)
        assert cost == 1.0

    def test_load_cost_is_distance_to_optimal_share(self):
        # Second iteration: optimal share 1/2; candidate load 10 over 10+10.
        cost = load_seed_cost(frozenset({"a"}), set(), [10], 10)
        assert cost == pytest.approx(0.0)

    def test_load_cost_zero_denominator(self):
        assert load_seed_cost(frozenset({"a"}), set(), [], 0) == pytest.approx(1.0)

    def test_zero_cost(self):
        assert zero_seed_cost(frozenset({"a"}), {"a"}, [3], 7) == 0.0


class TestSeedSelection:
    def test_selects_k_distinct_seeds(self, figure1_statistics):
        assignment, remaining = select_seed_tagsets(
            figure1_statistics, 2, zero_seed_cost
        )
        non_empty = [p for p in assignment if p.tags]
        assert len(non_empty) == 2
        assert len(remaining) == len(figure1_statistics.tagsets) - 2

    def test_fewer_tagsets_than_k(self):
        stats = stats_from([{"a", "b"}])
        assignment, remaining = select_seed_tagsets(stats, 3, zero_seed_cost)
        assert remaining == []
        assert [p.tags for p in assignment if p.tags] == [{"a", "b"}]

    def test_invalid_k_rejected(self, figure1_statistics):
        with pytest.raises(ValueError):
            select_seed_tagsets(figure1_statistics, 0, zero_seed_cost)

    def test_max_coverage_picks_largest_first(self):
        stats = stats_from([{"a", "b", "c"}, {"d"}, {"e", "f"}])
        assignment, _ = select_seed_tagsets(stats, 1, zero_seed_cost)
        assert assignment.partition(0).tags == {"a", "b", "c"}


ALGORITHMS = [SCCPartitioner, SCLPartitioner, SCIPartitioner]


@pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
class TestSetCoverCommon:
    def test_every_tagset_covered(self, algorithm_cls, figure1_statistics):
        assignment = algorithm_cls().partition(figure1_statistics, 2)
        assert assignment.coverage(figure1_statistics.tagsets) == 1.0

    def test_all_tags_assigned(self, algorithm_cls, figure1_statistics):
        assignment = algorithm_cls().partition(figure1_statistics, 2)
        assert assignment.all_tags() == figure1_statistics.tags

    def test_k_partitions_returned(self, algorithm_cls, figure1_statistics):
        assignment = algorithm_cls().partition(figure1_statistics, 3)
        assert assignment.k == 3

    def test_empty_statistics(self, algorithm_cls):
        assignment = algorithm_cls().partition(CooccurrenceStatistics(), 2)
        assert assignment.k == 2
        assert assignment.all_tags() == set()


class TestAlgorithmSpecifics:
    def test_scl_single_addition_prefers_least_loaded(self, figure1_statistics):
        partitioner = SCLPartitioner()
        assignment = partitioner.partition(figure1_statistics, 2)
        least_loaded = min(assignment, key=lambda p: (p.load, p.index)).index
        choice = partitioner.best_partition_for_addition(
            assignment, frozenset({"brand", "new"})
        )
        assert choice == least_loaded

    def test_sci_is_reproducible_with_seed(self, figure1_statistics):
        first = SCIPartitioner(seed=7).partition(figure1_statistics, 2)
        second = SCIPartitioner(seed=7).partition(figure1_statistics, 2)
        assert first.as_tag_sets() == second.as_tag_sets()

    def test_scc_keeps_communication_below_scl(self):
        """On a connected workload SCC should not replicate more than SCL."""
        tagsets = (
            [{"a", "b"}] * 8
            + [{"b", "c"}] * 6
            + [{"c", "d"}] * 5
            + [{"d", "e"}] * 4
            + [{"e", "f"}] * 3
            + [{"f", "a"}] * 2
        )
        stats = stats_from(tagsets)
        distinct = stats.tagsets
        scc = SCCPartitioner().partition(stats, 3)
        scl = SCLPartitioner().partition(stats, 3)
        assert scc.communication_load(distinct) <= scl.communication_load(distinct) + 1e-9

    def test_scl_balances_better_than_scc_on_skewed_load(self):
        tagsets = (
            [{"hot1", "hot2"}] * 30
            + [{"hot2", "hot3"}] * 25
            + [{"cold1", "cold2"}] * 2
            + [{"cold3", "cold4"}] * 2
            + [{"cold5", "cold6"}] * 1
        )
        stats = stats_from(tagsets)
        distinct = stats.tagsets
        scl = SCLPartitioner().partition(stats, 3)
        scc = SCCPartitioner().partition(stats, 3)
        gini_scl = gini_coefficient(scl.expected_calculator_loads(distinct))
        gini_scc = gini_coefficient(scc.expected_calculator_loads(distinct))
        assert gini_scl <= gini_scc + 1e-9


class TestSetCoverProperties:
    tagsets_strategy = st.lists(
        st.sets(st.sampled_from("abcdefghij"), min_size=1, max_size=4),
        min_size=1,
        max_size=30,
    )

    @settings(max_examples=30, deadline=None)
    @given(tagsets_strategy, st.integers(1, 5))
    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    def test_coverage_invariant(self, algorithm_cls, tagsets, k):
        """Every algorithm must cover every observed tagset (criterion 1)."""
        stats = stats_from(tagsets)
        assignment = algorithm_cls().partition(stats, k)
        assert assignment.coverage(stats.tagsets) == 1.0

    @settings(max_examples=30, deadline=None)
    @given(tagsets_strategy, st.integers(1, 5))
    def test_scl_load_never_exceeds_total(self, tagsets, k):
        stats = stats_from(tagsets)
        assignment = SCLPartitioner().partition(stats, k)
        for partition in assignment:
            assert partition.load <= sum(
                stats.load(t) for t in stats.tagsets
            )
