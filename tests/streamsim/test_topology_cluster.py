"""Integration-style tests for the topology builder and the cluster."""

import pytest

from repro.streamsim.cluster import Cluster, run_topology
from repro.streamsim.components import Bolt, Spout
from repro.streamsim.topology import TopologyBuilder
from repro.streamsim.tuples import TupleMessage, stream_schema

NUMBERS = stream_schema("default", ("value", "timestamp"))
ROUTED = stream_schema("routed", ("value",))


class NumberSpout(Spout):
    """Emits the integers 0..n-1, one per next_tuple call."""

    def __init__(self, n: int) -> None:
        super().__init__()
        self._n = n
        self._next = 0

    def next_tuple(self) -> bool:
        if self._next >= self._n:
            return False
        self.emit(NUMBERS, self._next, float(self._next))
        self._next += 1
        return True


class CollectingBolt(Bolt):
    """Stores every received value; optionally re-emits doubled values."""

    def __init__(self, forward: bool = False) -> None:
        super().__init__()
        self.values: list[int] = []
        self.ticks: list[float] = []
        self._forward = forward

    def execute(self, message: TupleMessage) -> None:
        value, timestamp = message.values
        self.values.append(value)
        if self._forward:
            self.emit(NUMBERS, value * 2, timestamp)

    def tick(self, simulation_time: float) -> None:
        self.ticks.append(simulation_time)


class DirectBolt(Bolt):
    """Sends every value directly to consumer task of the value's parity."""

    def on_prepare(self) -> None:
        self._targets = self.context.task_ids("sink")

    def execute(self, message: TupleMessage) -> None:
        value = message["value"]
        target = self._targets[value % len(self._targets)]
        self.emit_direct(target, ROUTED, value)


class RoutedSink(Bolt):
    """Collects values from the direct-grouped ``routed`` stream."""

    def __init__(self) -> None:
        super().__init__()
        self.values: list[int] = []

    def execute(self, message: TupleMessage) -> None:
        self.values.append(message["value"])


class TestTopologyBuilder:
    def test_duplicate_component_rejected(self):
        builder = TopologyBuilder()
        builder.set_spout("s", lambda: NumberSpout(1))
        with pytest.raises(ValueError):
            builder.set_spout("s", lambda: NumberSpout(1))

    def test_invalid_parallelism(self):
        builder = TopologyBuilder()
        with pytest.raises(ValueError):
            builder.set_spout("s", lambda: NumberSpout(1), parallelism=0)

    def test_factory_type_checked(self):
        builder = TopologyBuilder()
        with pytest.raises(TypeError):
            builder.set_spout("s", CollectingBolt)
        with pytest.raises(TypeError):
            builder.set_bolt("b", lambda: NumberSpout(1))

    def test_unknown_producer_rejected_at_build(self):
        builder = TopologyBuilder()
        builder.set_spout("s", lambda: NumberSpout(1))
        builder.set_bolt("b", CollectingBolt).shuffle_grouping("missing")
        with pytest.raises(ValueError):
            builder.build()

    def test_topology_without_spout_rejected(self):
        builder = TopologyBuilder()
        builder.set_bolt("b", CollectingBolt)
        with pytest.raises(ValueError):
            builder.build()

    def test_stream_declaration_interned_and_recorded(self):
        builder = TopologyBuilder()
        schema = builder.stream("default", ("value", "timestamp"))
        assert schema is NUMBERS
        assert builder.stream(NUMBERS) is NUMBERS  # idempotent re-declaration
        builder.set_spout("s", lambda: NumberSpout(1))
        topology = builder.build()
        assert topology.streams["default"] is NUMBERS

    def test_conflicting_stream_layout_rejected(self):
        builder = TopologyBuilder()
        builder.stream("default", ("value", "timestamp"))
        with pytest.raises(ValueError, match="declared twice"):
            builder.stream("default", ("other",))

    def test_fields_grouping_validated_against_declared_layout(self):
        builder = TopologyBuilder()
        builder.stream(NUMBERS)
        builder.set_spout("s", lambda: NumberSpout(1))
        builder.set_bolt("b", CollectingBolt).fields_grouping("s", ["no_such_field"])
        with pytest.raises(ValueError, match="undeclared fields"):
            builder.build()


class TestClusterExecution:
    def build_simple(self, n=10, bolt_parallelism=1):
        builder = TopologyBuilder()
        builder.stream(NUMBERS)
        builder.set_spout("numbers", lambda: NumberSpout(n))
        builder.set_bolt(
            "collector", CollectingBolt, parallelism=bolt_parallelism
        ).shuffle_grouping("numbers")
        return builder.build()

    def test_all_tuples_delivered(self):
        cluster = run_topology(self.build_simple(20))
        (bolt,) = cluster.instances_of("collector")
        assert sorted(bolt.values) == list(range(20))

    def test_shuffle_spreads_over_tasks(self):
        cluster = run_topology(self.build_simple(100, bolt_parallelism=4))
        counts = [len(bolt.values) for bolt in cluster.instances_of("collector")]
        assert sum(counts) == 100
        assert all(count == 25 for count in counts)

    def test_accounting_counts_links(self):
        cluster = run_topology(self.build_simple(30))
        assert cluster.accounting.link("numbers", "collector") == 30
        assert cluster.accounting.total == 30

    def test_max_spout_calls_limits_run(self):
        cluster = Cluster(self.build_simple(1000))
        cluster.run(max_spout_calls=10)
        (bolt,) = cluster.instances_of("collector")
        assert len(bolt.values) == 10

    def test_chained_bolts(self):
        builder = TopologyBuilder()
        builder.set_spout("numbers", lambda: NumberSpout(5))
        builder.set_bolt("double", lambda: CollectingBolt(forward=True)).shuffle_grouping(
            "numbers"
        )
        builder.set_bolt("sink", CollectingBolt).shuffle_grouping("double")
        cluster = run_topology(builder.build())
        (sink,) = cluster.instances_of("sink")
        assert sorted(sink.values) == [0, 2, 4, 6, 8]

    def test_all_grouping_broadcasts(self):
        builder = TopologyBuilder()
        builder.set_spout("numbers", lambda: NumberSpout(6))
        builder.set_bolt("sink", CollectingBolt, parallelism=3).all_grouping("numbers")
        cluster = run_topology(builder.build())
        for bolt in cluster.instances_of("sink"):
            assert len(bolt.values) == 6

    def test_direct_grouping_routes_to_named_task(self):
        builder = TopologyBuilder()
        builder.set_spout("numbers", lambda: NumberSpout(10))
        builder.set_bolt("router", DirectBolt).shuffle_grouping("numbers")
        builder.set_bolt("sink", RoutedSink, parallelism=2).direct_grouping(
            "router", "routed"
        )
        cluster = run_topology(builder.build())
        even, odd = cluster.instances_of("sink")
        assert all(value % 2 == 0 for value in even.values)
        assert all(value % 2 == 1 for value in odd.values)

    def test_direct_emission_without_subscription_fails(self):
        class BadBolt(Bolt):
            def execute(self, message: TupleMessage) -> None:
                # Task 0 is the spout itself -> no subscription exists.
                self.emit_direct(0, ROUTED, 1)

        builder = TopologyBuilder()
        builder.set_spout("numbers", lambda: NumberSpout(1))
        builder.set_bolt("bad", BadBolt).shuffle_grouping("numbers")
        with pytest.raises(RuntimeError):
            run_topology(builder.build())

    def test_clock_and_ticks_advance(self):
        builder = TopologyBuilder()
        builder.set_spout("numbers", lambda: NumberSpout(10))
        builder.set_bolt("collector", CollectingBolt).shuffle_grouping("numbers")
        cluster = Cluster(builder.build(), tick_interval=2.0)
        cluster.run()
        assert cluster.current_time == 9.0
        (bolt,) = cluster.instances_of("collector")
        assert len(bolt.ticks) >= 3

    def test_process_injects_tuple_directly(self):
        cluster = Cluster(self.build_simple(0))
        cluster.process(NUMBERS.message(value=42), "collector")
        (bolt,) = cluster.instances_of("collector")
        assert bolt.values == [42]

    def test_context_introspection(self):
        cluster = Cluster(self.build_simple(0, bolt_parallelism=3))
        assert cluster.context.parallelism("collector") == 3
        task_ids = cluster.context.task_ids("collector")
        assert len(task_ids) == 3
        assert cluster.context.component_of(task_ids[0]) == "collector"

    def test_unknown_component_raises(self):
        cluster = Cluster(self.build_simple(0))
        with pytest.raises(KeyError):
            cluster.tasks_of("nope")


class BatchCountingBolt(Bolt):
    """Records how deliveries arrive: one execute_batch call per link batch."""

    def __init__(self) -> None:
        super().__init__()
        self.batch_sizes: list[int] = []
        self.values: list[int] = []

    def execute(self, message: TupleMessage) -> None:
        self.values.append(message["value"])

    def execute_batch(self, messages) -> None:
        self.batch_sizes.append(len(messages))
        super().execute_batch(messages)


class FanOutBolt(Bolt):
    """Re-emits each received value three times on the same stream."""

    def execute(self, message: TupleMessage) -> None:
        value, timestamp = message.values
        for offset in range(3):
            self.emit(NUMBERS, value * 10 + offset, timestamp)


class TestLinkBatching:
    def _run(self, link_batch_size=0):
        builder = TopologyBuilder()
        builder.set_spout("numbers", lambda: NumberSpout(4))
        builder.set_bolt("fan", FanOutBolt).shuffle_grouping("numbers")
        builder.set_bolt("sink", BatchCountingBolt).shuffle_grouping("fan")
        return run_topology(builder.build(), link_batch_size=link_batch_size)

    def test_fan_out_delivers_as_one_batch(self):
        cluster = self._run()
        (sink,) = cluster.instances_of("sink")
        assert sink.batch_sizes == [3, 3, 3, 3]
        assert len(sink.values) == 12
        assert cluster.accounting.link("fan", "sink") == 12

    def test_link_batch_size_one_restores_per_message_delivery(self):
        batched = self._run()
        unbatched = self._run(link_batch_size=1)
        (sink,) = unbatched.instances_of("sink")
        assert sink.batch_sizes == [1] * 12
        # Identical delivered values and accounting either way.
        assert sink.values == batched.instances_of("sink")[0].values
        assert unbatched.accounting.per_link == batched.accounting.per_link
        assert unbatched.accounting.per_task == batched.accounting.per_task


class BufferingBolt(Bolt):
    """Buffers every value and only releases the buffer on flush()."""

    def __init__(self) -> None:
        super().__init__()
        self._buffer: list[tuple[int, float]] = []
        self.flushes = 0

    def execute(self, message: TupleMessage) -> None:
        value, timestamp = message.values
        self._buffer.append((value, timestamp))

    def flush(self) -> None:
        self.flushes += 1
        for value, timestamp in self._buffer:
            self.emit(NUMBERS, value, timestamp)
        self._buffer.clear()


class TestEndOfStreamFlush:
    """The cluster flushes buffering bolts once the spouts are exhausted."""

    def test_buffered_tuples_reach_downstream_consumers(self):
        builder = TopologyBuilder()
        builder.set_spout("numbers", lambda: NumberSpout(5))
        builder.set_bolt("buffer", BufferingBolt).shuffle_grouping("numbers")
        builder.set_bolt("sink", CollectingBolt).shuffle_grouping("buffer")
        cluster = run_topology(builder.build())
        buffer_bolt = cluster.instances_of("buffer")[0]
        sink = cluster.instances_of("sink")[0]
        assert buffer_bolt.flushes >= 1
        assert sorted(sink.values) == [0, 1, 2, 3, 4]

    def test_chained_buffering_bolts_drain_transitively(self):
        """A bolt that buffers tuples released by an upstream flush still
        delivers them: flush passes repeat until nothing new is emitted."""
        builder = TopologyBuilder()
        builder.set_spout("numbers", lambda: NumberSpout(4))
        builder.set_bolt("first", BufferingBolt).shuffle_grouping("numbers")
        builder.set_bolt("second", BufferingBolt).shuffle_grouping("first")
        builder.set_bolt("sink", CollectingBolt).shuffle_grouping("second")
        cluster = run_topology(builder.build())
        sink = cluster.instances_of("sink")[0]
        assert sorted(sink.values) == [0, 1, 2, 3]

    def test_flush_is_noop_for_plain_bolts(self):
        builder = TopologyBuilder()
        builder.set_spout("numbers", lambda: NumberSpout(3))
        builder.set_bolt("sink", CollectingBolt).shuffle_grouping("numbers")
        cluster = run_topology(builder.build())
        sink = cluster.instances_of("sink")[0]
        assert sorted(sink.values) == [0, 1, 2]
