"""Unit tests for stream groupings over slot tuples.

``TestDictFormatFixtures`` pins the task selections against fixtures
recorded under the dict-backed ``TupleMessage`` format (PR 3): the
slot-tuple wire redesign must route every tuple to exactly the same tasks.
"""

import json
from pathlib import Path

import pytest

from repro.streamsim.groupings import (
    AllGrouping,
    DirectGrouping,
    FieldsGrouping,
    LocalGrouping,
    ShuffleGrouping,
    stable_hash,
)
from repro.streamsim.tuples import stream_schema

FIXTURE = json.loads(
    (Path(__file__).parent / "fixtures" / "groupings_dict_format.json").read_text(
        encoding="utf-8"
    )
)

TAGSET_STREAM = stream_schema("grouping-tagsets", ("tagset",))
KEYED_STREAM = stream_schema("grouping-keyed", ("key", "count"))
EMPTY_STREAM = stream_schema("grouping-empty", ())


def tagset_message(tags):
    return TAGSET_STREAM.message(tagset=frozenset(tags))


class TestShuffleGrouping:
    def test_single_target_per_tuple(self):
        grouping = ShuffleGrouping(seed=0)
        targets = grouping.select(tagset_message(["x"]), 4)
        assert len(targets) == 1
        assert 0 <= targets[0] < 4

    def test_balanced_distribution(self):
        grouping = ShuffleGrouping(seed=0)
        counts = [0, 0, 0, 0]
        for i in range(400):
            (index,) = grouping.select(tagset_message([str(i)]), 4)
            counts[index] += 1
        assert counts == [100, 100, 100, 100]

    def test_no_tasks(self):
        assert ShuffleGrouping().select(EMPTY_STREAM.message(), 0) == []

    def test_select_batch_advances_like_select(self):
        """Batched and per-message routing must pick identical tasks."""
        messages = [tagset_message([str(i)]) for i in range(7)]
        one_by_one = ShuffleGrouping(seed=3)
        batched = ShuffleGrouping(seed=3)
        expected = [list(one_by_one.select(m, 3)) for m in messages]
        assert [list(s) for s in batched.select_batch(messages, 3)] == expected
        # Counters stay in lockstep afterwards, too.
        probe = tagset_message(["p"])
        assert list(one_by_one.select(probe, 3)) == list(batched.select(probe, 3))


class TestFieldsGrouping:
    def test_same_value_same_task(self):
        grouping = FieldsGrouping(["tagset"])
        first = grouping.select(tagset_message({"a", "b"}), 7)
        second = grouping.select(tagset_message({"b", "a"}), 7)
        assert first == second

    def test_different_values_may_differ(self):
        grouping = FieldsGrouping(["key"])
        targets = {
            grouping.select(KEYED_STREAM.message(key=f"value{i}"), 5)[0]
            for i in range(50)
        }
        assert len(targets) > 1

    def test_requires_fields(self):
        with pytest.raises(ValueError):
            FieldsGrouping([])

    def test_multiple_fields(self):
        grouping = FieldsGrouping(["key", "count"])
        first = grouping.select(KEYED_STREAM.message(key="k", count=2), 3)
        second = grouping.select(KEYED_STREAM.message(key="k", count=2), 3)
        assert first == second

    def test_missing_field_hashes_as_none(self):
        """A field absent from the schema selects like the dict format's
        ``message.get`` returning None."""
        grouping = FieldsGrouping(["absent"])
        selected = grouping.select(tagset_message({"a"}), 5)
        assert selected == [stable_hash((None,)) % 5]

    def test_memoised_selection_is_stable(self):
        grouping = FieldsGrouping(["tagset"])
        tagset = frozenset({"memo", "hit"})
        first = grouping.select(tagset_message(tagset), 6)
        for _ in range(3):
            assert grouping.select(tagset_message(tagset), 6) == first

    def test_stable_hash_is_process_independent(self):
        # The value is a fixed constant so that a regression (e.g. going back
        # to the salted built-in hash) is caught immediately.
        assert stable_hash(("a",)) == stable_hash(("a",))
        assert isinstance(stable_hash(frozenset({"x"})), int)


class TestAllGrouping:
    def test_broadcasts_to_every_task(self):
        grouping = AllGrouping()
        assert list(grouping.select(EMPTY_STREAM.message(), 5)) == [0, 1, 2, 3, 4]

    def test_select_batch_broadcasts_each_message(self):
        grouping = AllGrouping()
        messages = [tagset_message([str(i)]) for i in range(3)]
        assert [list(s) for s in grouping.select_batch(messages, 2)] == [
            [0, 1],
            [0, 1],
            [0, 1],
        ]


class TestDirectGrouping:
    def test_non_direct_emission_rejected(self):
        grouping = DirectGrouping()
        with pytest.raises(RuntimeError):
            grouping.select(EMPTY_STREAM.message(), 3)


class TestLocalGrouping:
    def test_behaves_like_shuffle(self):
        grouping = LocalGrouping(seed=1)
        (index,) = grouping.select(EMPTY_STREAM.message(), 3)
        assert 0 <= index < 3


class TestDictFormatFixtures:
    """Slot-tuple groupings select the same tasks the dict format recorded."""

    @pytest.mark.parametrize(
        "case",
        [c for c in FIXTURE["cases"] if c["grouping"] == "fields" and "tagsets" in c],
        ids=lambda c: f"fields-tagset-{c['n_tasks']}tasks",
    )
    def test_fields_grouping_on_tagsets(self, case):
        grouping = FieldsGrouping(case["fields"])
        selected = [
            list(grouping.select(tagset_message(frozenset(tags)), case["n_tasks"]))
            for tags in case["tagsets"]
        ]
        assert selected == case["selected"]

    @pytest.mark.parametrize(
        "case",
        [c for c in FIXTURE["cases"] if c["grouping"] == "fields" and "pairs" in c],
        ids=lambda c: f"fields-multi-{c['n_tasks']}tasks",
    )
    def test_fields_grouping_on_multiple_fields(self, case):
        grouping = FieldsGrouping(case["fields"])
        selected = [
            list(
                grouping.select(
                    KEYED_STREAM.message(key=key, count=count), case["n_tasks"]
                )
            )
            for key, count in case["pairs"]
        ]
        assert selected == case["selected"]

    @pytest.mark.parametrize(
        "case",
        [c for c in FIXTURE["cases"] if c["grouping"] == "shuffle"],
        ids=lambda c: f"shuffle-seed{c['seed']}",
    )
    def test_shuffle_grouping_sequence(self, case):
        grouping = ShuffleGrouping(seed=case["seed"])
        selected = [
            list(grouping.select(tagset_message([str(i)]), case["n_tasks"]))
            for i in range(case["n_messages"])
        ]
        assert selected == case["selected"]

    @pytest.mark.parametrize(
        "case",
        [c for c in FIXTURE["cases"] if c["grouping"] == "shuffle"],
        ids=lambda c: f"shuffle-batch-seed{c['seed']}",
    )
    def test_shuffle_select_batch_matches_fixture(self, case):
        grouping = ShuffleGrouping(seed=case["seed"])
        messages = [tagset_message([str(i)]) for i in range(case["n_messages"])]
        selected = [
            list(s) for s in grouping.select_batch(messages, case["n_tasks"])
        ]
        assert selected == case["selected"]
