"""Unit tests for stream groupings."""

import pytest

from repro.streamsim.groupings import (
    AllGrouping,
    DirectGrouping,
    FieldsGrouping,
    LocalGrouping,
    ShuffleGrouping,
    stable_hash,
)
from repro.streamsim.tuples import TupleMessage


def message(values):
    return TupleMessage(values=values)


class TestShuffleGrouping:
    def test_single_target_per_tuple(self):
        grouping = ShuffleGrouping(seed=0)
        targets = grouping.select(message({"x": 1}), 4)
        assert len(targets) == 1
        assert 0 <= targets[0] < 4

    def test_balanced_distribution(self):
        grouping = ShuffleGrouping(seed=0)
        counts = [0, 0, 0, 0]
        for i in range(400):
            (index,) = grouping.select(message({"x": i}), 4)
            counts[index] += 1
        assert counts == [100, 100, 100, 100]

    def test_no_tasks(self):
        assert ShuffleGrouping().select(message({}), 0) == []


class TestFieldsGrouping:
    def test_same_value_same_task(self):
        grouping = FieldsGrouping(["tagset"])
        first = grouping.select(message({"tagset": frozenset({"a", "b"})}), 7)
        second = grouping.select(message({"tagset": frozenset({"b", "a"})}), 7)
        assert first == second

    def test_different_values_may_differ(self):
        grouping = FieldsGrouping(["key"])
        targets = {
            grouping.select(message({"key": f"value{i}"}), 5)[0] for i in range(50)
        }
        assert len(targets) > 1

    def test_requires_fields(self):
        with pytest.raises(ValueError):
            FieldsGrouping([])

    def test_multiple_fields(self):
        grouping = FieldsGrouping(["a", "b"])
        first = grouping.select(message({"a": 1, "b": 2}), 3)
        second = grouping.select(message({"a": 1, "b": 2}), 3)
        assert first == second

    def test_stable_hash_is_process_independent(self):
        # The value is a fixed constant so that a regression (e.g. going back
        # to the salted built-in hash) is caught immediately.
        assert stable_hash(("a",)) == stable_hash(("a",))
        assert isinstance(stable_hash(frozenset({"x"})), int)


class TestAllGrouping:
    def test_broadcasts_to_every_task(self):
        grouping = AllGrouping()
        assert list(grouping.select(message({}), 5)) == [0, 1, 2, 3, 4]


class TestDirectGrouping:
    def test_non_direct_emission_rejected(self):
        grouping = DirectGrouping()
        with pytest.raises(RuntimeError):
            grouping.select(message({}), 3)


class TestLocalGrouping:
    def test_behaves_like_shuffle(self):
        grouping = LocalGrouping(seed=1)
        (index,) = grouping.select(message({}), 3)
        assert 0 <= index < 3
