"""Unit tests for stream schemas, slot tuples and the output collector."""

import pickle

import pytest

from repro.streamsim.tuples import (
    DEFAULT_STREAM,
    EmissionBatch,
    OutputCollector,
    StreamSchema,
    TupleMessage,
    stream_schema,
)

PAIR = stream_schema("pair", ("a", "b"))
TIMED = stream_schema("timed", ("value", "timestamp"))


class TestStreamSchema:
    def test_interned_by_name_and_fields(self):
        assert stream_schema("pair", ("a", "b")) is PAIR
        other = stream_schema("pair", ("a", "b", "c"))
        assert other is not PAIR  # different layout, different object

    def test_schema_is_the_stream_name(self):
        assert PAIR == "pair"
        assert str(PAIR) == "pair"
        assert PAIR.name == "pair"
        assert {PAIR: 1}["pair"] == 1  # hashes as its name

    def test_compiled_index_and_timestamp_slot(self):
        assert PAIR.index == {"a": 0, "b": 1}
        assert PAIR.timestamp_slot == -1
        assert TIMED.timestamp_slot == 1

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ValueError):
            stream_schema("bad", ("x", "x"))

    def test_message_helper_fills_by_name(self):
        message = PAIR.message(b=2, a=1)
        assert message.values == (1, 2)
        message = PAIR.message(a=1)
        assert message.values == (1, None)

    def test_message_helper_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            PAIR.message(a=1, missing=3)

    def test_pickle_reinterns(self):
        clone = pickle.loads(pickle.dumps(PAIR))
        assert clone is PAIR


class TestTupleMessage:
    def test_item_access(self):
        message = TupleMessage(PAIR, (1, 2))
        assert message["a"] == 1
        assert message.get("missing", 7) == 7
        assert "b" in message
        assert set(message.fields()) == {"a", "b"}
        assert list(message) == ["a", "b"]

    def test_defaults(self):
        message = TupleMessage(PAIR, (1, 2))
        assert message.stream is PAIR
        assert message.stream == "pair"
        assert message.source_task == -1

    def test_get_treats_none_slot_as_missing(self):
        message = PAIR.message(a=1)
        assert message.get("b", 9) == 9

    def test_pickle_roundtrip_shares_schema(self):
        message = TupleMessage(PAIR, (1, 2), "emitter", 4)
        clone = pickle.loads(pickle.dumps(message))
        assert clone.schema is PAIR
        assert clone.values == (1, 2)
        assert clone.source_component == "emitter"
        assert clone.source_task == 4


class TestOutputCollector:
    def test_emit_records_provenance(self):
        collector = OutputCollector("parser", task_id=3)
        collector.emit(PAIR, 1, 2)
        (batch,) = collector.drain()
        (message,) = batch.messages
        assert message.source_component == "parser"
        assert message.source_task == 3
        assert message.stream == "pair"
        assert batch.targets is None

    def test_emit_checks_arity(self):
        collector = OutputCollector("c", 0)
        with pytest.raises(ValueError):
            collector.emit(PAIR, 1)
        with pytest.raises(ValueError):
            collector.emit_direct(5, PAIR, 1, 2, 3)

    def test_emit_direct_records_target(self):
        collector = OutputCollector("disseminator", task_id=0)
        collector.emit_direct(9, PAIR, 1, 2)
        (batch,) = collector.drain()
        assert batch.targets == [9]

    def test_drain_clears_pending(self):
        collector = OutputCollector("c", 0)
        collector.emit(PAIR, 1, 2)
        assert len(collector) == 1
        collector.drain()
        assert len(collector) == 0
        assert list(collector.drain()) == []

    def test_same_stream_emissions_coalesce(self):
        collector = OutputCollector("c", 0)
        collector.emit(PAIR, 1, 2)
        collector.emit(PAIR, 3, 4)
        (batch,) = collector.drain()
        assert [m.values for m in batch.messages] == [(1, 2), (3, 4)]

    def test_stream_change_starts_new_batch(self):
        collector = OutputCollector("c", 0)
        collector.emit(PAIR, 1, 2)
        collector.emit(TIMED, 1, 0.0)
        collector.emit(PAIR, 3, 4)
        batches = collector.drain()
        assert [batch.schema for batch in batches] == [PAIR, TIMED, PAIR]

    def test_timestamp_change_starts_new_batch(self):
        collector = OutputCollector("c", 0)
        collector.emit(TIMED, 1, 0.0)
        collector.emit(TIMED, 2, 0.0)
        collector.emit(TIMED, 3, 1.0)
        batches = collector.drain()
        assert [len(batch) for batch in batches] == [2, 1]
        assert [batch.timestamp for batch in batches] == [0.0, 1.0]

    def test_direct_and_grouped_do_not_mix(self):
        collector = OutputCollector("c", 0)
        collector.emit(PAIR, 1, 2)
        collector.emit_direct(4, PAIR, 3, 4)
        collector.emit_direct(5, PAIR, 5, 6)
        batches = collector.drain()
        assert [batch.targets for batch in batches] == [None, [4, 5]]

    def test_max_batch_caps_batch_length(self):
        collector = OutputCollector("c", 0, max_batch=2)
        for i in range(5):
            collector.emit(PAIR, i, i)
        assert [len(batch) for batch in collector.drain()] == [2, 2, 1]

    def test_max_batch_one_is_per_message(self):
        collector = OutputCollector("c", 0, max_batch=1)
        collector.emit(PAIR, 1, 2)
        collector.emit(PAIR, 3, 4)
        assert [len(batch) for batch in collector.drain()] == [1, 1]

    def test_batch_pickle_roundtrip(self):
        collector = OutputCollector("c", 7)
        collector.emit(PAIR, 1, 2)
        collector.emit(PAIR, 3, 4)
        (batch,) = collector.drain()
        clone = pickle.loads(pickle.dumps(batch))
        assert isinstance(clone, EmissionBatch)
        assert clone.schema is PAIR
        assert [m.values for m in clone.messages] == [(1, 2), (3, 4)]


def test_default_stream_name_unchanged():
    assert DEFAULT_STREAM == "default"
