"""Unit tests for tuples and the output collector."""

from repro.streamsim.tuples import DEFAULT_STREAM, OutputCollector, TupleMessage


class TestTupleMessage:
    def test_item_access(self):
        message = TupleMessage(values={"a": 1, "b": 2})
        assert message["a"] == 1
        assert message.get("missing", 7) == 7
        assert "b" in message
        assert set(message.fields()) == {"a", "b"}

    def test_defaults(self):
        message = TupleMessage(values={})
        assert message.stream == DEFAULT_STREAM
        assert message.source_task == -1


class TestOutputCollector:
    def test_emit_records_provenance(self):
        collector = OutputCollector("parser", task_id=3)
        collector.emit({"x": 1}, stream="tagsets")
        (emission,) = collector.drain()
        assert emission.message.source_component == "parser"
        assert emission.message.source_task == 3
        assert emission.message.stream == "tagsets"
        assert emission.direct_task is None

    def test_emit_direct_records_target(self):
        collector = OutputCollector("disseminator", task_id=0)
        collector.emit_direct(9, {"x": 1})
        (emission,) = collector.drain()
        assert emission.direct_task == 9

    def test_drain_clears_pending(self):
        collector = OutputCollector("c", 0)
        collector.emit({"x": 1})
        assert len(collector) == 1
        collector.drain()
        assert len(collector) == 0
        assert collector.drain() == []

    def test_emit_copies_values(self):
        collector = OutputCollector("c", 0)
        values = {"x": 1}
        collector.emit(values)
        values["x"] = 2
        (emission,) = collector.drain()
        assert emission.message["x"] == 1
