"""Unit tests for the pluggable execution engines.

The toy topologies here use module-level component classes so the sharded
executor can pickle their factories into worker processes.
"""

import pytest

from repro.streamsim.cluster import Cluster, run_topology
from repro.streamsim.components import Bolt, Spout
from repro.streamsim.executors import (
    EXECUTOR_NAMES,
    AsyncServiceExecutor,
    IngestBackpressure,
    IngestClosed,
    InlineExecutor,
    ShardedProcessExecutor,
    make_executor,
)
from repro.streamsim.topology import TopologyBuilder
from repro.streamsim.tuples import TupleMessage, stream_schema

NUMBERS = stream_schema("default", ("value", "timestamp"))
TOTALS = stream_schema("totals", ("total",))


class NumberSpout(Spout):
    """Emits the integers 0..n-1, one per next_tuple call."""

    def __init__(self, n: int) -> None:
        super().__init__()
        self._n = n
        self._next = 0

    def next_tuple(self) -> bool:
        if self._next >= self._n:
            return False
        self.emit(NUMBERS, self._next, float(self._next))
        self._next += 1
        return True


class CountingSink(Bolt):
    """Remote-layer bolt: records values, ticks, and re-emits sums on flush."""

    def __init__(self) -> None:
        super().__init__()
        self.values: list[int] = []
        self.ticks: list[float] = []
        self._flushed = False

    def execute(self, message: TupleMessage) -> None:
        self.values.append(message["value"])

    def tick(self, simulation_time: float) -> None:
        self.ticks.append(simulation_time)

    def flush(self) -> None:
        if self._flushed or not self.values:
            return
        self._flushed = True
        self.emit(TOTALS, sum(self.values))


class TotalsBolt(Bolt):
    """Driver-side bolt consuming the sink layer's flush-time emissions."""

    def __init__(self) -> None:
        super().__init__()
        self.totals: list[int] = []

    def execute(self, message: TupleMessage) -> None:
        self.totals.append(message["total"])


def _sink_factory():
    return CountingSink()


def _build_topology(n_values: int, sink_parallelism: int = 2, with_totals: bool = False):
    builder = TopologyBuilder()
    builder.set_spout("numbers", lambda: NumberSpout(n_values))
    builder.set_bolt("sink", _sink_factory, parallelism=sink_parallelism).fields_grouping(
        "numbers", ["value"]
    )
    if with_totals:
        builder.set_bolt("totals", TotalsBolt).shuffle_grouping("sink", "totals")
    return builder.build()


class TestRegistry:
    def test_names(self):
        assert set(EXECUTOR_NAMES) == {"inline", "process", "service"}

    def test_make_inline(self):
        assert isinstance(make_executor("inline"), InlineExecutor)

    def test_make_service(self):
        executor = make_executor("service", queue_limit=3)
        assert isinstance(executor, AsyncServiceExecutor)
        assert executor.queue_limit == 3

    def test_make_process(self):
        executor = make_executor("process", workers=3, remote_components=("sink",))
        assert isinstance(executor, ShardedProcessExecutor)
        assert executor.requested_workers == 3

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("threads")

    def test_process_requires_remote_components(self):
        with pytest.raises(ValueError):
            ShardedProcessExecutor(workers=2)

    def test_process_requires_positive_workers(self):
        with pytest.raises(ValueError):
            ShardedProcessExecutor(workers=0, remote_components=("sink",))


class TestInlineExecutor:
    def test_cluster_defaults_to_inline(self):
        cluster = Cluster(_build_topology(4))
        assert isinstance(cluster.executor, InlineExecutor)

    def test_inline_runs_to_completion(self):
        cluster = run_topology(_build_topology(10), executor=InlineExecutor())
        values = sorted(
            value
            for task in cluster.tasks_of("sink")
            for value in task.instance.values
        )
        assert values == list(range(10))
        assert cluster.accounting.link("numbers", "sink") == 10


class TestShardedProcessExecutor:
    def test_values_and_accounting_match_inline(self):
        n = 24
        inline = run_topology(_build_topology(n), executor=InlineExecutor())
        sharded = run_topology(
            _build_topology(n),
            executor=ShardedProcessExecutor(workers=2, remote_components=("sink",)),
        )
        for cluster in (inline, sharded):
            assert cluster.accounting.link("numbers", "sink") == n
            assert cluster.accounting.total == inline.accounting.total
        # Per-task state came back from the workers and matches inline.
        for task_inline, task_sharded in zip(
            inline.tasks_of("sink"), sharded.tasks_of("sink")
        ):
            assert task_sharded.instance.values == task_inline.instance.values
            assert task_sharded.instance.ticks == task_inline.instance.ticks

    def test_intra_layer_emissions_relayed_through_driver(self):
        """sink → totals inside the remote layer mirrors Calculator → Tracker:
        flush-time emissions are collected by the driver and shipped to the
        consumer's shard, with accounting identical to the inline engine."""
        n = 12
        inline = run_topology(_build_topology(n, with_totals=True))
        sharded = run_topology(
            _build_topology(n, with_totals=True),
            executor=ShardedProcessExecutor(
                workers=2, remote_components=("sink", "totals")
            ),
        )

        def totals_of(cluster):
            return sorted(cluster.tasks_of("totals")[0].instance.totals)

        assert totals_of(sharded) == totals_of(inline)
        assert sum(totals_of(sharded)) == sum(range(n))
        assert sharded.accounting.link("sink", "totals") == inline.accounting.link(
            "sink", "totals"
        )

    def test_workers_clamped_to_layer_width(self):
        executor = ShardedProcessExecutor(workers=8, remote_components=("sink",))
        run_topology(_build_topology(6, sink_parallelism=2), executor=executor)
        assert executor.effective_workers == 2

    def test_missing_remote_component_degrades_to_inline(self):
        executor = ShardedProcessExecutor(workers=2, remote_components=("nonexistent",))
        cluster = run_topology(_build_topology(5), executor=executor)
        assert executor.effective_workers == 0
        assert cluster.accounting.link("numbers", "sink") == 5

    def test_non_sink_layer_rejected(self):
        # Sharding a component whose stream feeds a driver-side consumer
        # would defer mid-pipeline tuples to end of stream — rejected.
        builder = TopologyBuilder()
        builder.set_spout("numbers", lambda: NumberSpout(3))
        builder.set_bolt("middle", _sink_factory).fields_grouping("numbers", ["value"])
        builder.set_bolt("tail", TotalsBolt).shuffle_grouping("middle", "totals")
        with pytest.raises(ValueError, match="sink layer"):
            Cluster(
                builder.build(),
                executor=ShardedProcessExecutor(
                    workers=2, remote_components=("middle",)
                ),
            )

    def test_second_run_rejected(self):
        # Re-running would rebuild workers from factories and silently zero
        # the remote state merged back by the first run.
        executor = ShardedProcessExecutor(workers=2, remote_components=("sink",))
        cluster = Cluster(_build_topology(4), executor=executor)
        cluster.run()
        with pytest.raises(RuntimeError, match="once"):
            cluster.run()

    def test_direct_injection_into_remote_task_rejected(self):
        executor = ShardedProcessExecutor(workers=2, remote_components=("sink",))
        cluster = Cluster(_build_topology(4), executor=executor)
        with pytest.raises(RuntimeError, match="remote layer"):
            cluster.process(NUMBERS.message(value=1), "sink")

    def test_post_run_routing_to_remote_layer_rejected(self):
        # After the workers are gone, anything routed to the remote layer
        # (deliveries, ticks) must fail loudly rather than buffer forever.
        executor = ShardedProcessExecutor(workers=2, remote_components=("sink",))
        cluster = Cluster(_build_topology(4), executor=executor)
        cluster.run()
        with pytest.raises(RuntimeError, match="shut down"):
            executor.tick_remote(99.0)

    def test_executor_cannot_be_reused_across_clusters(self):
        executor = ShardedProcessExecutor(workers=2, remote_components=("sink",))
        Cluster(_build_topology(3), executor=executor)
        with pytest.raises(RuntimeError, match="already attached"):
            Cluster(_build_topology(3), executor=executor)

    def test_unpicklable_factory_reported(self):
        builder = TopologyBuilder()
        builder.set_spout("numbers", lambda: NumberSpout(3))
        builder.set_bolt("sink", lambda: CountingSink(), parallelism=2).fields_grouping(
            "numbers", ["value"]
        )
        cluster = Cluster(
            builder.build(),
            executor=ShardedProcessExecutor(workers=2, remote_components=("sink",)),
        )
        with pytest.raises(RuntimeError, match="picklable"):
            cluster.run()


class QueueSpout(Spout):
    """Toy equivalent of the pipeline's ServiceSpout for substrate tests."""

    def __init__(self, executor: AsyncServiceExecutor) -> None:
        super().__init__()
        self._executor = executor
        self.emitted = 0

    def next_tuple(self) -> bool:
        value = self._executor.next_document()
        if value is None:
            return False
        self.emit(NUMBERS, value, float(value))
        self.emitted += 1
        return True


def _build_service_topology(executor: AsyncServiceExecutor, sink_parallelism: int = 2):
    builder = TopologyBuilder()
    builder.set_spout("numbers", lambda: QueueSpout(executor))
    builder.set_bolt("sink", _sink_factory, parallelism=sink_parallelism).fields_grouping(
        "numbers", ["value"]
    )
    return builder.build()


class TestAsyncServiceExecutor:
    def test_queue_limit_validated(self):
        with pytest.raises(ValueError):
            AsyncServiceExecutor(queue_limit=0)

    def test_nonblocking_submit_hits_backpressure(self):
        executor = AsyncServiceExecutor(queue_limit=2)
        executor.submit([1], block=False)
        executor.submit([2], block=False)
        with pytest.raises(IngestBackpressure):
            executor.submit([3], block=False)
        assert executor.pending_batches == 2
        assert executor.batches_accepted == 2
        assert executor.documents_accepted == 2

    def test_submit_after_drain_rejected(self):
        executor = AsyncServiceExecutor()
        executor.request_drain()
        assert executor.draining
        with pytest.raises(IngestClosed):
            executor.submit([1])

    def test_blocking_submit_times_out(self):
        executor = AsyncServiceExecutor(queue_limit=1)
        executor.submit([1])
        with pytest.raises(IngestBackpressure):
            executor.submit([2], block=True, timeout=0.01)

    def test_served_run_matches_inline(self):
        n = 10
        inline = run_topology(_build_topology(n), executor=InlineExecutor())
        executor = AsyncServiceExecutor()
        executor.submit(range(4))
        executor.submit(range(4, n))
        executor.request_drain()
        served = Cluster(_build_service_topology(executor), executor=executor)
        served.run()
        for cluster in (inline, served):
            values = sorted(
                value
                for task in cluster.tasks_of("sink")
                for value in task.instance.values
            )
            assert values == list(range(n))
        assert served.accounting.per_link == inline.accounting.per_link

    def test_quiescent_hook_fires_per_batch_with_empty_queue(self):
        executor = AsyncServiceExecutor()
        cluster = Cluster(_build_service_topology(executor), executor=executor)
        boundaries: list[int] = []

        def on_quiescent() -> None:
            # The in-flight FIFO must be empty at every boundary.
            assert not cluster._queue
            boundaries.append(
                sum(
                    len(task.instance.values)
                    for task in cluster.tasks_of("sink")
                )
            )

        executor.on_quiescent = on_quiescent
        executor.submit([0, 1, 2])
        executor.submit([3, 4])
        executor.request_drain()
        cluster.run()
        # One boundary per consumed batch, each with the batch fully cascaded.
        assert boundaries == [3, 5]

    def test_executor_cannot_be_reused_across_clusters(self):
        executor = AsyncServiceExecutor()
        Cluster(_build_service_topology(executor), executor=executor)
        with pytest.raises(RuntimeError, match="already attached"):
            Cluster(_build_service_topology(executor), executor=executor)
