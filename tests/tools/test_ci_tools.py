"""Unit tests for the CI gate scripts under tools/."""

import importlib.util
import json
from pathlib import Path

import pytest

_TOOLS = Path(__file__).resolve().parents[2] / "tools"


def _load(name):
    spec = importlib.util.spec_from_file_location(name, _TOOLS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_links = _load("check_links")
check_perf = _load("check_perf_regression")


class TestLinkChecker:
    def test_heading_anchors_github_slugs(self):
        anchors = check_links.heading_anchors(
            "# Reading BENCH_throughput.json\n"
            "## Choosing `workers`\n"
            "## Exact vs. sketch mode\n"
            "## Dup\n## Dup\n"
        )
        assert "reading-bench_throughputjson" in anchors
        assert "choosing-workers" in anchors
        assert "exact-vs-sketch-mode" in anchors
        assert {"dup", "dup-1"} <= anchors

    def test_fenced_code_not_a_heading(self):
        anchors = check_links.heading_anchors("```bash\n# not a heading\n```\n")
        assert anchors == set()

    def test_broken_anchor_detected(self, tmp_path):
        target = tmp_path / "target.md"
        target.write_text("# Real Section\n", encoding="utf-8")
        source = tmp_path / "source.md"
        source.write_text(
            "[ok](target.md#real-section) [bad](target.md#missing-section)\n",
            encoding="utf-8",
        )
        errors = check_links.check_file(source)
        assert len(errors) == 1
        assert "missing-section" in errors[0]

    def test_same_file_anchor(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("# Alpha\n\n[up](#alpha) [down](#beta)\n", encoding="utf-8")
        errors = check_links.check_file(doc)
        assert len(errors) == 1
        assert "#beta" in errors[0]

    def test_missing_file_detected(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("[gone](nowhere.md)\n", encoding="utf-8")
        errors = check_links.check_file(doc)
        assert len(errors) == 1


def _bench(host, cells):
    return {
        "host": host,
        "runs": [
            {
                "workload": workload,
                "executor": executor,
                "requested_workers": workers,
                "docs_per_second": dps,
            }
            for workload, executor, workers, dps in cells
        ],
    }


def _bench_with_phases(host, cells):
    """Cells as (workload, executor, workers, dps, documents, stream_seconds)."""
    return {
        "host": host,
        "runs": [
            {
                "workload": workload,
                "executor": executor,
                "requested_workers": workers,
                "docs_per_second": dps,
                "documents": documents,
                "phase_seconds": {"stream": stream, "reporting": 0.1},
            }
            for workload, executor, workers, dps, documents, stream in cells
        ],
    }


def _bench_with_report_rounds(host, cells):
    """Cells as (workload, engine, dps, stream_seconds, report_seconds)."""
    return {
        "host": host,
        "runs": [
            {
                "workload": workload,
                "executor": "inline",
                "requested_workers": 0,
                "reporting_engine": engine,
                "docs_per_second": dps,
                "documents": 3000,
                "phase_seconds": {"stream": stream, "reporting": 0.1},
                "report_rounds": {
                    "rounds": 5,
                    "report_seconds": report,
                    "dirty_types": 100,
                    "clean_types": 0,
                    "deferred_triples": 0,
                },
            }
            for workload, engine, dps, stream, report in cells
        ],
    }


def _bench_with_stall(host, cells):
    """Cells as (workload, dps, stream_seconds, stall_seconds)."""
    return {
        "host": host,
        "runs": [
            {
                "workload": workload,
                "executor": "inline",
                "requested_workers": 0,
                "docs_per_second": dps,
                "documents": 3000,
                "phase_seconds": {
                    "stream": stream,
                    "migration_stall": stall,
                    "reporting": 0.1,
                },
            }
            for workload, dps, stream, stall in cells
        ],
    }


HOST = {"platform": "Linux-test", "cpu_count": 1}
OTHER_HOST = {"platform": "Linux-ci", "cpu_count": 4}


class TestPerfRegressionGate:
    def test_no_regression_passes(self, capsys):
        baseline = _bench(HOST, [("small", "inline", 0, 1000.0)])
        candidate = _bench(HOST, [("small", "inline", 0, 990.0)])
        assert check_perf.compare(baseline, candidate, 0.2) == 0

    def test_binding_regression_on_same_host_inline(self):
        baseline = _bench(HOST, [("small", "inline", 0, 1000.0)])
        candidate = _bench(HOST, [("small", "inline", 0, 700.0)])
        assert check_perf.compare(baseline, candidate, 0.2) == 1

    def test_process_cells_report_only(self):
        baseline = _bench(HOST, [("small", "process", 2, 1000.0)])
        candidate = _bench(HOST, [("small", "process", 2, 100.0)])
        assert check_perf.compare(baseline, candidate, 0.2) == 0

    def test_different_host_never_binds(self):
        baseline = _bench(HOST, [("small", "inline", 0, 1000.0)])
        candidate = _bench(OTHER_HOST, [("small", "inline", 0, 100.0)])
        assert check_perf.compare(baseline, candidate, 0.2) == 0

    def test_subset_of_cells_compares_cleanly(self):
        baseline = _bench(
            HOST,
            [("small", "inline", 0, 1000.0), ("large", "inline", 0, 500.0)],
        )
        candidate = _bench(HOST, [("small", "inline", 0, 1000.0)])
        assert check_perf.compare(baseline, candidate, 0.2) == 0

    def test_disjoint_cells_error_exits_2(self):
        baseline = _bench(HOST, [("small", "inline", 0, 1000.0)])
        candidate = _bench(HOST, [("large", "inline", 0, 1000.0)])
        with pytest.raises(SystemExit) as excinfo:
            check_perf.compare(baseline, candidate, 0.2)
        assert excinfo.value.code == 2

    def test_schema_error_exits_2(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(SystemExit) as excinfo:
            check_perf._load(bad)
        assert excinfo.value.code == 2

    def test_stream_phase_regression_binds_on_inline(self):
        """Overall docs/s holds but the stream phase collapsed: fail."""
        baseline = _bench_with_phases(
            HOST, [("small", "inline", 0, 1000.0, 3000, 2.0)]
        )
        candidate = _bench_with_phases(
            HOST, [("small", "inline", 0, 1000.0, 3000, 4.0)]
        )
        assert check_perf.compare(baseline, candidate, 0.2) == 1

    def test_short_stream_phase_below_noise_floor_never_binds(self):
        """A sub-half-second baseline stream phase (the small workload)
        swings beyond any tolerance between a best-of-N snapshot and a
        single smoke run: reported, never failing."""
        baseline = _bench_with_phases(
            HOST, [("small", "inline", 0, 1000.0, 3000, 0.12)]
        )
        candidate = _bench_with_phases(
            HOST, [("small", "inline", 0, 1000.0, 3000, 0.18)]
        )
        assert check_perf.compare(baseline, candidate, 0.2) == 0

    def test_stream_phase_improvement_passes(self):
        baseline = _bench_with_phases(
            HOST, [("small", "inline", 0, 1000.0, 3000, 4.0)]
        )
        candidate = _bench_with_phases(
            HOST, [("small", "inline", 0, 1000.0, 3000, 2.0)]
        )
        assert check_perf.compare(baseline, candidate, 0.2) == 0

    def test_stream_phase_report_only_on_process_cells(self):
        baseline = _bench_with_phases(
            HOST, [("small", "process", 2, 1000.0, 3000, 2.0)]
        )
        candidate = _bench_with_phases(
            HOST, [("small", "process", 2, 1000.0, 3000, 8.0)]
        )
        assert check_perf.compare(baseline, candidate, 0.2) == 0

    def test_stream_phase_skipped_without_phase_seconds(self):
        """Schema-1 snapshots (no phase breakdown) only gate overall docs/s."""
        baseline = _bench(HOST, [("small", "inline", 0, 1000.0)])
        candidate = _bench_with_phases(
            HOST, [("small", "inline", 0, 1000.0, 3000, 9.9)]
        )
        assert check_perf.compare(baseline, candidate, 0.2) == 0

    def test_overall_and_stream_regressions_both_counted(self):
        baseline = _bench_with_phases(
            HOST, [("small", "inline", 0, 1000.0, 3000, 2.0)]
        )
        candidate = _bench_with_phases(
            HOST, [("small", "inline", 0, 500.0, 3000, 8.0)]
        )
        assert check_perf.compare(baseline, candidate, 0.2) == 2

    def test_engine_cells_keyed_separately(self):
        """An incremental and a delta cell of the same workload must not
        collide: the slower delta baseline may not mask an incremental
        regression (and vice versa)."""
        baseline = _bench_with_report_rounds(
            HOST,
            [("small", "incremental", 1000.0, 3.0, 1.0),
             ("small", "delta", 1200.0, 2.5, 0.5)],
        )
        candidate = _bench_with_report_rounds(
            HOST,
            [("small", "incremental", 1000.0, 3.0, 1.0),
             ("small", "delta", 700.0, 4.5, 0.5)],  # delta regressed
        )
        # The delta cell regressed both overall and in the stream phase —
        # two binding findings; the untouched incremental cell contributes
        # none (no collision between the engines' cells).
        assert check_perf.compare(baseline, candidate, 0.2) == 2

    def test_legacy_snapshot_defaults_to_incremental_key(self):
        """Pre-matrix snapshots (no per-cell reporting_engine) compare
        against the candidate's incremental cells."""
        baseline = _bench(HOST, [("small", "inline", 0, 1000.0)])
        candidate = _bench_with_report_rounds(
            HOST, [("small", "incremental", 500.0, 3.0, 1.0)]
        )
        assert check_perf.compare(baseline, candidate, 0.2) == 1

    def test_scenario_cells_keyed_separately(self):
        """A trending cell never compares against a legacy cell: files
        whose only cells differ in scenario share nothing (a schema
        mismatch, exit 2), rather than silently diffing across shapes."""
        baseline = _bench(HOST, [("trending", "inline", 0, 1000.0)])
        for run in baseline["runs"]:
            run["scenario"] = "trending"
        candidate = _bench(HOST, [("trending", "inline", 0, 400.0)])
        with pytest.raises(SystemExit) as excinfo:
            check_perf.compare(baseline, candidate, 0.2)
        assert excinfo.value.code == 2

    def test_handoff_cells_keyed_separately(self):
        """The live-repartition cell (which pays migration stalls) is its
        own cell: a regression there binds without touching its plain
        twin, and vice versa."""
        def snapshot(plain_dps, migrate_dps):
            data = _bench(HOST, [("trending", "inline", 0, plain_dps),
                                 ("trending", "inline", 0, migrate_dps)])
            for run in data["runs"]:
                run["scenario"] = "trending"
            data["runs"][1]["repartition_handoff"] = "migrate"
            return data

        baseline = snapshot(1000.0, 800.0)
        candidate = snapshot(1000.0, 500.0)  # only the migrate cell regressed
        assert check_perf.compare(baseline, candidate, 0.2) == 1

    def test_pre_scenario_snapshot_defaults_to_legacy_key(self):
        """Snapshots recorded before the scenario matrix (no scenario or
        handoff fields) keep comparing against explicit legacy/none
        candidate cells."""
        baseline = _bench(HOST, [("small", "inline", 0, 1000.0)])
        candidate = _bench(HOST, [("small", "inline", 0, 400.0)])
        for run in candidate["runs"]:
            run["scenario"] = "legacy"
            run["repartition_handoff"] = "none"
            run["reporting_engine"] = "incremental"
        assert check_perf.compare(baseline, candidate, 0.2) == 1

    def test_report_share_regression_binds_on_matching_host(self):
        """Overall and stream docs/s hold, but in-stream report rounds ate
        a third of the stream phase: fail."""
        baseline = _bench_with_report_rounds(
            HOST, [("small", "delta", 1000.0, 3.0, 0.6)]  # 20% share
        )
        candidate = _bench_with_report_rounds(
            HOST, [("small", "delta", 1000.0, 3.0, 1.8)]  # 60% share
        )
        assert check_perf.compare(baseline, candidate, 0.2) == 1

    def test_report_share_within_tolerance_passes(self):
        baseline = _bench_with_report_rounds(
            HOST, [("small", "delta", 1000.0, 3.0, 0.6)]  # 20% share
        )
        candidate = _bench_with_report_rounds(
            HOST, [("small", "delta", 1000.0, 3.0, 0.72)]  # 24% share
        )
        assert check_perf.compare(baseline, candidate, 0.2) == 0

    def test_report_share_tolerance_is_relative_to_the_baseline(self):
        """A small baseline share must not triple just because the absolute
        growth stays under the tolerance: 10% -> 29% fails at 0.2."""
        baseline = _bench_with_report_rounds(
            HOST, [("small", "delta", 1000.0, 6.0, 0.6)]  # 10% share
        )
        candidate = _bench_with_report_rounds(
            HOST, [("small", "delta", 1000.0, 6.0, 1.74)]  # 29% share
        )
        assert check_perf.compare(baseline, candidate, 0.2) == 1

    def test_report_share_never_binds_on_other_host(self):
        baseline = _bench_with_report_rounds(
            OTHER_HOST, [("small", "delta", 1000.0, 3.0, 0.6)]
        )
        candidate = _bench_with_report_rounds(
            HOST, [("small", "delta", 1000.0, 3.0, 2.5)]
        )
        assert check_perf.compare(baseline, candidate, 0.2) == 0

    def test_report_share_skipped_without_attribution(self):
        """Snapshots without the report_rounds block only gate docs/s."""
        baseline = _bench_with_phases(
            HOST, [("small", "inline", 0, 1000.0, 3000, 3.0)]
        )
        candidate = _bench_with_report_rounds(
            HOST, [("small", "incremental", 1000.0, 3.0, 2.9)]
        )
        assert check_perf.compare(baseline, candidate, 0.2) == 0

    def test_stall_share_regression_binds_on_matching_host(self):
        """Migration stall creeping from 5% to 20% of the stream fails."""
        baseline = _bench_with_stall(HOST, [("small", 1000.0, 3.0, 0.15)])
        candidate = _bench_with_stall(HOST, [("small", 1000.0, 3.0, 0.6)])
        assert check_perf.compare(baseline, candidate, 0.2) == 1

    def test_stall_share_within_tolerance_passes(self):
        baseline = _bench_with_stall(HOST, [("small", 1000.0, 3.0, 0.3)])
        candidate = _bench_with_stall(HOST, [("small", 1000.0, 3.0, 0.32)])
        assert check_perf.compare(baseline, candidate, 0.2) == 0

    def test_stall_share_skipped_when_baseline_predates_the_phase(self):
        """Old snapshots lack migration_stall: stall is reported nowhere,
        and the candidate's stall still counts against stream docs/sec via
        the net-stream subtraction (here it improves the rate)."""
        baseline = _bench_with_phases(
            HOST, [("small", "inline", 0, 1000.0, 3000, 3.0)]
        )
        candidate = _bench_with_stall(HOST, [("small", 1000.0, 3.3, 0.4)])
        assert check_perf.compare(baseline, candidate, 0.2) == 0

    def test_stall_subtracted_from_stream_phase_rate(self):
        """A run whose extra wall-clock is all handoff stall does not fail
        the stream-phase gate — but the same slowdown without the stall
        attribution does."""
        baseline = _bench_with_phases(
            HOST, [("small", "inline", 0, 1000.0, 3000, 3.0)]
        )
        stalled = _bench_with_stall(HOST, [("small", 1000.0, 4.0, 1.0)])
        assert check_perf.compare(baseline, stalled, 0.2) == 0
        slower = _bench_with_phases(
            HOST, [("small", "inline", 0, 1000.0, 3000, 4.0)]
        )
        assert check_perf.compare(baseline, slower, 0.2) == 1

    def test_main_end_to_end(self, tmp_path):
        base_path = tmp_path / "base.json"
        cand_path = tmp_path / "cand.json"
        base_path.write_text(
            json.dumps(_bench(HOST, [("small", "inline", 0, 1000.0)]))
        )
        cand_path.write_text(
            json.dumps(_bench(HOST, [("small", "inline", 0, 500.0)]))
        )
        assert check_perf.main([str(base_path), str(cand_path)]) == 1
        assert check_perf.main(
            [str(base_path), str(cand_path), "--tolerance", "0.6"]
        ) == 0


def _service_bench(host, cells):
    """Cells as (name, dps, ingest_p95_ms, query_p95_ms)."""
    return {
        "generated_by": "benchmarks/perf/service_latency.py",
        "host": host,
        "runs": [
            {
                "cell": name,
                "ingest_batch": 250,
                "queue_limit": 8,
                "query_clients": 2,
                "docs_per_second": dps,
                "ingest_ack": {"p95_ms": ingest_p95, "samples": 10},
                "query_under_load": {"p95_ms": query_p95, "samples": 100},
            }
            for name, dps, ingest_p95, query_p95 in cells
        ],
    }


class TestServiceLatencyGate:
    """The gate's second dialect: BENCH_service_latency.json snapshots."""

    def test_no_regression_passes(self):
        baseline = _service_bench(HOST, [("served-6000docs", 2000.0, 50.0, 3.0)])
        candidate = _service_bench(HOST, [("served-6000docs", 1900.0, 52.0, 3.5)])
        assert check_perf.compare_service(baseline, candidate, 0.2) == 0

    def test_throughput_regression_binds_on_same_host(self):
        baseline = _service_bench(HOST, [("served-6000docs", 2000.0, 50.0, 3.0)])
        candidate = _service_bench(HOST, [("served-6000docs", 1000.0, 50.0, 3.0)])
        assert check_perf.compare_service(baseline, candidate, 0.2) == 1

    def test_latency_growth_binds_upward(self):
        """p95 latencies regress by *growing*; both metrics count."""
        baseline = _service_bench(HOST, [("served-6000docs", 2000.0, 50.0, 10.0)])
        candidate = _service_bench(HOST, [("served-6000docs", 2000.0, 80.0, 20.0)])
        assert check_perf.compare_service(baseline, candidate, 0.2) == 2

    def test_latency_drop_is_not_a_regression(self):
        baseline = _service_bench(HOST, [("served-6000docs", 2000.0, 50.0, 10.0)])
        candidate = _service_bench(HOST, [("served-6000docs", 2000.0, 10.0, 1.0)])
        assert check_perf.compare_service(baseline, candidate, 0.2) == 0

    def test_sub_noise_floor_latency_growth_passes(self):
        """A sub-2ms absolute p95 swing is scheduler noise, even when it is
        large relative to a tiny baseline."""
        baseline = _service_bench(HOST, [("served-6000docs", 2000.0, 50.0, 1.0)])
        candidate = _service_bench(HOST, [("served-6000docs", 2000.0, 51.0, 2.5)])
        assert check_perf.compare_service(baseline, candidate, 0.2) == 0

    def test_different_host_never_binds(self):
        baseline = _service_bench(HOST, [("served-6000docs", 2000.0, 50.0, 3.0)])
        candidate = _service_bench(
            OTHER_HOST, [("served-6000docs", 500.0, 500.0, 300.0)]
        )
        assert check_perf.compare_service(baseline, candidate, 0.2) == 0

    def test_disjoint_cells_error_exits_2(self):
        baseline = _service_bench(HOST, [("served-6000docs", 2000.0, 50.0, 3.0)])
        candidate = _service_bench(HOST, [("served-3000docs", 2000.0, 50.0, 3.0)])
        with pytest.raises(SystemExit) as excinfo:
            check_perf.compare_service(baseline, candidate, 0.2)
        assert excinfo.value.code == 2

    def test_main_dispatches_on_generated_by(self, tmp_path):
        service = tmp_path / "service.json"
        service.write_text(
            json.dumps(_service_bench(HOST, [("served-6000docs", 2000.0, 50.0, 3.0)]))
        )
        throughput = tmp_path / "throughput.json"
        throughput.write_text(
            json.dumps(_bench(HOST, [("small", "inline", 0, 1000.0)]))
        )
        # Same kind: compares (and passes against itself).
        assert check_perf.main([str(service), str(service)]) == 0
        # Mixed kinds: usage error.
        with pytest.raises(SystemExit) as excinfo:
            check_perf.main([str(service), str(throughput)])
        assert excinfo.value.code == 2


def _spill_bench(host, cells):
    """Cells as (workload, store, dps, rss_total_mb, resident_entries)."""
    return {
        "generated_by": "benchmarks/perf/spill.py",
        "host": host,
        "runs": [
            {
                "workload": workload,
                "counter_store": store,
                "docs_per_second": dps,
                "rss_total_mb": rss,
                "peak_resident_counter_entries": entries,
            }
            for workload, store, dps, rss, entries in cells
        ],
    }


class TestSpillBenchGate:
    """The gate's third dialect: BENCH_spill.json snapshots — docs/sec
    binds downward, RSS and resident entries bind *upward*."""

    def test_no_regression_passes(self):
        baseline = _spill_bench(
            HOST, [("xlarge", "spill", 1000.0, 800.0, 16000)]
        )
        candidate = _spill_bench(
            HOST, [("xlarge", "spill", 980.0, 810.0, 16300)]
        )
        assert check_perf.compare_spill(baseline, candidate, 0.2) == 0

    def test_throughput_regression_binds(self):
        baseline = _spill_bench(
            HOST, [("xlarge", "spill", 1000.0, 800.0, 16000)]
        )
        candidate = _spill_bench(
            HOST, [("xlarge", "spill", 500.0, 800.0, 16000)]
        )
        assert check_perf.compare_spill(baseline, candidate, 0.2) == 1

    def test_rss_growth_binds_upward(self):
        """The flat-RSS story is the bench's point: a fresh run whose
        total RSS grew beyond tolerance + floor fails."""
        baseline = _spill_bench(
            HOST, [("xlarge", "spill", 1000.0, 500.0, 16000)]
        )
        candidate = _spill_bench(
            HOST, [("xlarge", "spill", 1000.0, 700.0, 16000)]
        )
        assert check_perf.compare_spill(baseline, candidate, 0.2) == 1

    def test_resident_entries_growth_binds_upward(self):
        """A hot tail that stops respecting the threshold fails even while
        docs/sec and total RSS look fine."""
        baseline = _spill_bench(
            HOST, [("xlarge", "spill", 1000.0, 800.0, 16000)]
        )
        candidate = _spill_bench(
            HOST, [("xlarge", "spill", 1000.0, 800.0, 160000)]
        )
        assert check_perf.compare_spill(baseline, candidate, 0.2) == 1

    def test_rss_drop_is_not_a_regression(self):
        baseline = _spill_bench(
            HOST, [("large", "dict", 1000.0, 800.0, 300000)]
        )
        candidate = _spill_bench(
            HOST, [("large", "dict", 1000.0, 400.0, 150000)]
        )
        assert check_perf.compare_spill(baseline, candidate, 0.2) == 0

    def test_sub_floor_growth_passes(self):
        """Allocator jitter (tens of MB, a few thousand entries) never
        fails the job, even when large relative to a small baseline."""
        baseline = _spill_bench(
            HOST, [("large", "spill", 1000.0, 100.0, 1000)]
        )
        candidate = _spill_bench(
            HOST, [("large", "spill", 1000.0, 150.0, 2500)]
        )
        assert check_perf.compare_spill(baseline, candidate, 0.2) == 0

    def test_stores_keyed_separately(self):
        """A dict cell never diffs against a spill cell of the same
        workload: files sharing only cross-store cells share nothing."""
        baseline = _spill_bench(
            HOST, [("large", "dict", 1000.0, 800.0, 300000)]
        )
        candidate = _spill_bench(
            HOST, [("large", "spill", 600.0, 800.0, 16000)]
        )
        with pytest.raises(SystemExit) as excinfo:
            check_perf.compare_spill(baseline, candidate, 0.2)
        assert excinfo.value.code == 2

    def test_different_host_never_binds(self):
        baseline = _spill_bench(
            HOST, [("xlarge", "spill", 1000.0, 500.0, 16000)]
        )
        candidate = _spill_bench(
            OTHER_HOST, [("xlarge", "spill", 100.0, 5000.0, 160000)]
        )
        assert check_perf.compare_spill(baseline, candidate, 0.2) == 0

    def test_main_dispatches_and_rejects_mixed_kinds(self, tmp_path):
        spill = tmp_path / "spill.json"
        spill.write_text(json.dumps(
            _spill_bench(HOST, [("xlarge", "spill", 1000.0, 800.0, 16000)])
        ))
        throughput = tmp_path / "throughput.json"
        throughput.write_text(
            json.dumps(_bench(HOST, [("small", "inline", 0, 1000.0)]))
        )
        assert check_perf.main([str(spill), str(spill)]) == 0
        with pytest.raises(SystemExit) as excinfo:
            check_perf.main([str(spill), str(throughput)])
        assert excinfo.value.code == 2

    def test_committed_snapshot_self_diff_passes(self):
        """The committed BENCH_spill.json is valid input to its own gate."""
        committed = Path(__file__).resolve().parents[2] / "BENCH_spill.json"
        data = json.loads(committed.read_text(encoding="utf-8"))
        assert data["generated_by"] == "benchmarks/perf/spill.py"
        assert check_perf.compare_spill(data, data, 0.2) == 0


def _tracker_spill_bench(host, cells):
    """Cells as (workload, tracker_store, dps, rss, resident_coefficients).

    The tracker-contrast round's cells: counter store pinned to dict,
    ``tracker_store`` varying, with the peak resident *coefficient*
    figure the upward-binding headline.
    """
    return {
        "generated_by": "benchmarks/perf/spill.py",
        "host": host,
        "runs": [
            {
                "workload": workload,
                "counter_store": "dict",
                "tracker_store": tracker,
                "docs_per_second": dps,
                "rss_total_mb": rss,
                "peak_resident_counter_entries": 40000,
                "peak_resident_coefficient_entries": coefficients,
            }
            for workload, tracker, dps, rss, coefficients in cells
        ],
    }


class TestTrackerSpillGate:
    """The spill dialect's tracker-contrast cells: keyed by tracker store,
    with ``peak_resident_coefficient_entries`` binding upward."""

    def test_no_regression_passes(self):
        baseline = _tracker_spill_bench(
            HOST, [("xlarge-reporting", "spill", 300.0, 250.0, 15000)]
        )
        candidate = _tracker_spill_bench(
            HOST, [("xlarge-reporting", "spill", 290.0, 260.0, 15500)]
        )
        assert check_perf.compare_spill(baseline, candidate, 0.2) == 0

    def test_resident_coefficient_growth_binds_upward(self):
        """A tracker hot tail that stops respecting its threshold fails
        even while docs/sec and RSS hold."""
        baseline = _tracker_spill_bench(
            HOST, [("xlarge-reporting", "spill", 300.0, 250.0, 15000)]
        )
        candidate = _tracker_spill_bench(
            HOST, [("xlarge-reporting", "spill", 300.0, 250.0, 150000)]
        )
        assert check_perf.compare_spill(baseline, candidate, 0.2) == 1

    def test_tracker_stores_keyed_separately(self):
        """A dict-tracker cell never diffs against a spill-tracker cell of
        the same workload."""
        baseline = _tracker_spill_bench(
            HOST, [("xlarge-reporting", "dict", 1500.0, 350.0, 300000)]
        )
        candidate = _tracker_spill_bench(
            HOST, [("xlarge-reporting", "spill", 300.0, 250.0, 15000)]
        )
        with pytest.raises(SystemExit) as excinfo:
            check_perf.compare_spill(baseline, candidate, 0.2)
        assert excinfo.value.code == 2

    def test_legacy_snapshot_defaults_to_dict_tracker_key(self):
        """Snapshots recorded before the tracker-contrast round (no
        tracker_store field) compare against explicit dict-tracker cells —
        and skip the coefficient metric they never recorded."""
        baseline = _spill_bench(
            HOST, [("xlarge", "spill", 1000.0, 800.0, 16000)]
        )
        candidate = _spill_bench(
            HOST, [("xlarge", "spill", 500.0, 800.0, 16000)]
        )
        for run in candidate["runs"]:
            run["tracker_store"] = "dict"
            run["peak_resident_coefficient_entries"] = 10**9
        # One binding finding: the docs/s drop.  The absurd coefficient
        # figure is skipped because the baseline never recorded it.
        assert check_perf.compare_spill(baseline, candidate, 0.2) == 1

    def test_different_host_never_binds(self):
        baseline = _tracker_spill_bench(
            HOST, [("xlarge-reporting", "spill", 300.0, 250.0, 15000)]
        )
        candidate = _tracker_spill_bench(
            OTHER_HOST, [("xlarge-reporting", "spill", 30.0, 2500.0, 1500000)]
        )
        assert check_perf.compare_spill(baseline, candidate, 0.2) == 0
