"""End-to-end integration tests exercising the whole stack.

These tests run the full Figure-2 topology over synthetic Twitter-like
streams and check the system-level invariants the paper relies on:
coverage of co-occurring tagsets, consistency between the distributed
coefficients and the centralised baseline, and the accounting that the
evaluation metrics are built from.
"""

import pytest

from repro.operators import streams
from repro.operators.centralized import CentralizedCalculatorBolt
from repro.operators.disseminator import DisseminatorBolt
from repro.operators.merger import MergerBolt
from repro.pipeline import SystemConfig, TagCorrelationSystem
from repro.workloads import TwitterLikeGenerator, WorkloadConfig, write_documents
from repro.workloads.io import load_documents


def small_workload(seed=21, n=2500):
    return TwitterLikeGenerator(
        WorkloadConfig(
            seed=seed,
            n_topics=50,
            tags_per_topic=10,
            tweets_per_second=50.0,
            new_topic_rate=3.0,
            intra_topic_probability=0.92,
        )
    ).generate(n)


def small_config(algorithm="DS", **overrides):
    base = SystemConfig(
        algorithm=algorithm,
        k=4,
        n_partitioners=3,
        window_size=400,
        bootstrap_documents=200,
        quality_check_interval=150,
        report_interval_seconds=20.0,
    )
    return base.with_overrides(**overrides) if overrides else base


@pytest.mark.parametrize("algorithm", ["DS", "SCC", "SCL", "SCI"])
class TestAllAlgorithmsEndToEnd:
    def test_run_completes_and_reports(self, algorithm):
        documents = small_workload()
        report = TagCorrelationSystem(small_config(algorithm)).run(documents)
        assert report.documents_processed == len(documents)
        assert report.communication_avg >= 1.0
        assert report.coefficients_reported > 0
        assert 0.0 <= report.load_gini <= 1.0
        assert 0.0 <= report.jaccard_mean_error <= 1.0

    def test_current_partitions_cover_frequent_tagsets(self, algorithm):
        """After the run, the installed partitions must cover every frequent
        tagset — either it was in a partitioning window or it triggered a
        Single Addition (the coverage requirement of the problem statement).
        Rare tagsets (seen fewer than ``sn`` times) may legitimately stay
        uncovered."""
        from collections import Counter

        documents = small_workload()
        system = TagCorrelationSystem(small_config(algorithm))
        system.run(documents)
        disseminator = next(
            bolt
            for bolt in system.cluster.instances_of(streams.DISSEMINATOR)
            if isinstance(bolt, DisseminatorBolt)
        )
        assignment = disseminator.assignment
        assert assignment is not None
        counts = Counter(d.tags for d in documents if d.tags)
        frequent = [tags for tags, count in counts.items() if count >= 5]
        assert frequent
        covered = sum(1 for tags in frequent if assignment.covers(tags))
        assert covered / len(frequent) > 0.9


class TestDeterminism:
    def test_same_seed_same_report(self):
        documents = small_workload(seed=33, n=1500)
        first = TagCorrelationSystem(small_config("SCC")).run(documents)
        second = TagCorrelationSystem(small_config("SCC")).run(documents)
        assert first.communication_avg == second.communication_avg
        assert first.calculator_loads == second.calculator_loads
        assert first.n_repartitions == second.n_repartitions
        assert first.coefficients_reported == second.coefficients_reported


class TestAccountingConsistency:
    def test_notifications_match_cluster_accounting(self):
        documents = small_workload(seed=8, n=2000)
        system = TagCorrelationSystem(small_config("DS"))
        report = system.run(documents)
        cluster = system.cluster
        # Physical layer: delivered tuples equal the batched message count.
        delivered = cluster.accounting.link(streams.DISSEMINATOR, streams.CALCULATOR)
        assert delivered == report.notification_messages
        # Logical layer: unpacked notifications equal the recorded loads.
        received = sum(
            bolt.notifications_received  # type: ignore[attr-defined]
            for bolt in cluster.instances_of(streams.CALCULATOR)
        )
        assert received == sum(report.calculator_loads)

    def test_tagged_documents_match_centralized_baseline(self):
        documents = small_workload(seed=8, n=2000)
        system = TagCorrelationSystem(small_config("DS"))
        report = system.run(documents)
        baseline = next(
            bolt
            for bolt in system.cluster.instances_of(streams.CENTRALIZED)
            if isinstance(bolt, CentralizedCalculatorBolt)
        )
        assert baseline.documents_seen == report.tagged_documents

    def test_single_addition_requests_reach_merger(self):
        documents = small_workload(seed=13, n=2500)
        system = TagCorrelationSystem(small_config("SCC"))
        report = system.run(documents)
        merger = next(
            bolt
            for bolt in system.cluster.instances_of(streams.MERGER)
            if isinstance(bolt, MergerBolt)
        )
        assert merger.single_additions <= report.single_addition_requests
        if report.single_addition_requests:
            assert merger.single_additions > 0


class TestFileBackedRun:
    def test_run_from_written_trace(self, tmp_path):
        """The replay-from-file path of the Source spout (repeatability)."""
        documents = small_workload(seed=44, n=800)
        path = tmp_path / "trace.jsonl"
        write_documents(documents, path)
        replayed = load_documents(path)
        report_a = TagCorrelationSystem(small_config("DS", k=2)).run(documents)
        report_b = TagCorrelationSystem(small_config("DS", k=2)).run(replayed)
        assert report_a.communication_avg == report_b.communication_avg
        assert report_a.calculator_loads == report_b.calculator_loads
