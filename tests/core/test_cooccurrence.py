"""Unit and property tests for co-occurrence statistics."""

from hypothesis import given, strategies as st

from repro.core.cooccurrence import CooccurrenceStatistics
from repro.core.documents import Document, documents_from_tagsets


def make_stats(tagsets):
    return CooccurrenceStatistics.from_documents(documents_from_tagsets(tagsets))


class TestBasicCounting:
    def test_counts_distinct_tagsets(self):
        stats = make_stats([["a", "b"], ["a", "b"], ["c"]])
        assert stats.tagset_count(frozenset({"a", "b"})) == 2
        assert stats.tagset_count(frozenset({"c"})) == 1
        assert len(stats) == 2

    def test_untagged_documents_are_counted_but_not_indexed(self):
        stats = CooccurrenceStatistics()
        stats.add_document(Document(doc_id=1, tags=frozenset()))
        assert stats.n_documents == 1
        assert stats.n_tagged_documents == 0
        assert stats.tags == set()

    def test_tag_document_count(self):
        stats = make_stats([["a", "b"], ["a"], ["b", "c"]])
        assert stats.tag_document_count("a") == 2
        assert stats.tag_document_count("b") == 2
        assert stats.tag_document_count("c") == 1
        assert stats.tag_document_count("unknown") == 0

    def test_documents_with_any_and_all(self):
        stats = make_stats([["a", "b"], ["a"], ["b", "c"]])
        assert stats.documents_with_any(["a", "c"]) == {0, 1, 2}
        assert stats.documents_with_all(["a", "b"]) == {0}
        assert stats.documents_with_all([]) == set()

    def test_load_counts_union_of_documents(self, figure1_statistics):
        # Figure 1: tags of pr1 appear in 10+4+3+1+2+1 = 21 documents when
        # pr1 = {munich, beer, soccer, oktoberfest, beach, sunny, friday}.
        pr1 = ["munich", "beer", "soccer", "oktoberfest", "beach", "sunny", "friday"]
        assert figure1_statistics.load(pr1) == 21

    def test_load_of_unknown_tags_is_zero(self):
        stats = make_stats([["a"]])
        assert stats.load(["zz"]) == 0

    def test_load_cache_invalidated_on_new_document(self):
        stats = make_stats([["a"]])
        assert stats.load(["a"]) == 1
        stats.add_document(Document(doc_id=99, tags=frozenset({"a"})))
        assert stats.load(["a"]) == 2


class TestWeightedTagsets:
    def test_weighted_tagset_loads(self):
        stats = CooccurrenceStatistics()
        stats.add_weighted_tagset({"a", "b"}, 5)
        stats.add_weighted_tagset({"b", "c"}, 3)
        assert stats.load(["a"]) == 5
        assert stats.load(["b"]) == 8
        assert stats.load(["a", "c"]) == 8
        assert stats.tagset_count(frozenset({"a", "b"})) == 5

    def test_zero_or_negative_count_ignored(self):
        stats = CooccurrenceStatistics()
        stats.add_weighted_tagset({"a"}, 0)
        stats.add_weighted_tagset({"a"}, -2)
        assert stats.n_documents == 0

    def test_from_tagset_counts_matches_per_document_loads(self):
        counts = {frozenset({"a", "b"}): 3, frozenset({"b", "c"}): 2}
        from_counts = CooccurrenceStatistics.from_tagset_counts(counts)
        from_docs = make_stats([["a", "b"]] * 3 + [["b", "c"]] * 2)
        for tags in (["a"], ["b"], ["c"], ["a", "c"], ["a", "b", "c"]):
            assert from_counts.load(tags) == from_docs.load(tags)


class TestGraphViews:
    def test_tag_components_figure1(self, figure1_statistics):
        components = figure1_statistics.tag_components()
        groups = sorted(sorted(group) for group in components.values())
        assert groups == [
            ["bavaria", "beer", "munich", "oktoberfest", "pizza", "soccer"],
            ["beach", "friday", "sunny"],
        ]

    def test_tagset_graph_edges_share_tags(self, figure1_statistics):
        graph = figure1_statistics.tagset_graph()
        munich_beer_soccer = frozenset({"munich", "beer", "soccer"})
        beer_pizza = frozenset({"beer", "pizza"})
        beach_sunny = frozenset({"beach", "sunny"})
        assert graph.has_edge(munich_beer_soccer, beer_pizza)
        assert not graph.has_edge(munich_beer_soccer, beach_sunny)
        assert graph.nodes[munich_beer_soccer]["weight"] == 10

    def test_tag_graph_edge_weights_count_documents(self):
        stats = make_stats([["a", "b"], ["a", "b"], ["a", "c"]])
        graph = stats.tag_graph()
        assert graph["a"]["b"]["weight"] == 2
        assert graph["a"]["c"]["weight"] == 1

    def test_distinct_tag_pairs(self):
        stats = make_stats([["a", "b", "c"], ["a", "b"]])
        # pairs: ab, ac, bc
        assert stats.distinct_tag_pairs() == 3


class TestCooccurrenceProperties:
    tag_strategy = st.text(alphabet="abcdefgh", min_size=1, max_size=2)
    tagsets_strategy = st.lists(
        st.sets(tag_strategy, min_size=1, max_size=4), min_size=1, max_size=30
    )

    @given(tagsets_strategy)
    def test_load_is_monotone_in_tags(self, tagsets):
        stats = make_stats([list(s) for s in tagsets])
        tags = sorted(stats.tags)
        for i in range(len(tags) - 1):
            subset = tags[: i + 1]
            superset = tags[: i + 2]
            assert stats.load(subset) <= stats.load(superset)

    @given(tagsets_strategy)
    def test_load_bounded_by_tagged_documents(self, tagsets):
        stats = make_stats([list(s) for s in tagsets])
        assert stats.load(stats.tags) == stats.n_tagged_documents

    @given(tagsets_strategy)
    def test_load_matches_explicit_document_union(self, tagsets):
        stats = make_stats([list(s) for s in tagsets])
        for tagset in list(stats.tagset_counts)[:10]:
            assert stats.load(tagset) == len(stats.documents_with_any(tagset))

    @given(tagsets_strategy)
    def test_components_cover_all_tags(self, tagsets):
        stats = make_stats([list(s) for s in tagsets])
        components = stats.tag_components()
        covered = set()
        for group in components.values():
            covered |= group
        assert covered == stats.tags
