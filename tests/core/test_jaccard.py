"""Unit and property tests for Jaccard computation."""

import pytest
from hypothesis import given, strategies as st

from repro.core.jaccard import (
    JaccardCalculator,
    SubsetCounter,
    all_nonempty_subsets,
    exact_jaccard,
    union_size_inclusion_exclusion,
)


class TestExactJaccard:
    def test_identical_sets(self):
        assert exact_jaccard([{1, 2}, {1, 2}]) == 1.0

    def test_disjoint_sets(self):
        assert exact_jaccard([{1}, {2}]) == 0.0

    def test_partial_overlap(self):
        # intersection {2}, union {1,2,3} -> 1/3
        assert exact_jaccard([{1, 2}, {2, 3}]) == pytest.approx(1 / 3)

    def test_empty_input(self):
        assert exact_jaccard([]) == 0.0

    def test_all_empty_sets(self):
        assert exact_jaccard([set(), set()]) == 0.0

    def test_three_way(self):
        sets = [{1, 2, 3}, {2, 3, 4}, {2, 3, 5}]
        assert exact_jaccard(sets) == pytest.approx(2 / 5)


class TestSubsets:
    def test_all_nonempty_subsets_count(self):
        subsets = all_nonempty_subsets(["a", "b", "c"])
        assert len(subsets) == 7

    def test_subsets_of_single_tag(self):
        assert all_nonempty_subsets(["a"]) == [frozenset({"a"})]

    def test_duplicates_removed(self):
        assert len(all_nonempty_subsets(["a", "a"])) == 1


class TestInclusionExclusion:
    def test_pair(self):
        counts = {
            frozenset({"a"}): 10,
            frozenset({"b"}): 4,
            frozenset({"a", "b"}): 3,
        }
        assert union_size_inclusion_exclusion(frozenset({"a", "b"}), counts) == 11

    def test_triple(self):
        counts = {
            frozenset({"a"}): 5,
            frozenset({"b"}): 5,
            frozenset({"c"}): 5,
            frozenset({"a", "b"}): 2,
            frozenset({"a", "c"}): 2,
            frozenset({"b", "c"}): 2,
            frozenset({"a", "b", "c"}): 1,
        }
        assert union_size_inclusion_exclusion(frozenset({"a", "b", "c"}), counts) == 10

    def test_missing_subsets_count_as_zero(self):
        counts = {frozenset({"a"}): 3}
        assert union_size_inclusion_exclusion(frozenset({"a", "b"}), counts) == 3


class TestSubsetCounter:
    def test_observe_counts_all_subsets(self):
        counter = SubsetCounter()
        counter.observe(["a", "b", "c"])
        assert counter.count(["a"]) == 1
        assert counter.count(["a", "b"]) == 1
        assert counter.count(["a", "b", "c"]) == 1
        assert len(counter) == 7

    def test_counts_accumulate(self):
        counter = SubsetCounter()
        counter.observe(["a", "b"])
        counter.observe(["a", "b"])
        counter.observe(["a"])
        assert counter.count(["a"]) == 3
        assert counter.count(["a", "b"]) == 2

    def test_empty_observation_ignored(self):
        counter = SubsetCounter()
        counter.observe([])
        assert len(counter) == 0

    def test_jaccard_from_counters(self):
        counter = SubsetCounter()
        for _ in range(3):
            counter.observe(["a", "b"])
        counter.observe(["a"])
        # intersection(a,b)=3, union = 4+3-3 = 4
        assert counter.jaccard(["a", "b"]) == pytest.approx(0.75)

    def test_jaccard_of_unseen_pair_is_zero(self):
        counter = SubsetCounter()
        counter.observe(["a"])
        counter.observe(["b"])
        assert counter.jaccard(["a", "b"]) == 0.0

    def test_clear(self):
        counter = SubsetCounter()
        counter.observe(["a", "b"])
        counter.clear()
        assert len(counter) == 0

    def test_max_tags_cap(self):
        counter = SubsetCounter(max_tags_per_document=3)
        counter.observe([f"t{i}" for i in range(10)])
        # Only subsets of the first 3 (sorted) tags are counted: 7 subsets.
        assert len(counter) == 7

    def test_contains(self):
        counter = SubsetCounter()
        counter.observe(["a", "b"])
        assert ["a", "b"] in counter
        assert ["a", "c"] not in counter


class TestJaccardCalculator:
    def test_report_matches_exact_computation(self):
        calculator = JaccardCalculator()
        documents = [["a", "b"], ["a", "b"], ["a"], ["b", "c"]]
        for tags in documents:
            calculator.observe(tags)
        results = {r.tagset: r for r in calculator.report(reset=False)}
        ab = results[frozenset({"a", "b"})]
        # docs with a and b: 2; docs with a or b: 4
        assert ab.jaccard == pytest.approx(0.5)
        assert ab.support == 2

    def test_report_resets_counters(self):
        calculator = JaccardCalculator()
        calculator.observe(["a", "b"])
        calculator.report()
        assert calculator.observations == 0
        assert calculator.report() == []

    def test_min_size_filters_singletons(self):
        calculator = JaccardCalculator()
        calculator.observe(["a"])
        calculator.observe(["a", "b"])
        tagsets = {r.tagset for r in calculator.report(min_size=2)}
        assert frozenset({"a"}) not in tagsets
        assert frozenset({"a", "b"}) in tagsets


class TestJaccardProperties:
    documents_strategy = st.lists(
        st.sets(st.sampled_from("abcde"), min_size=1, max_size=4),
        min_size=1,
        max_size=40,
    )

    @given(documents_strategy)
    def test_counter_jaccard_matches_exact(self, documents):
        """The counter/inclusion-exclusion path equals the set-based ground truth."""
        calculator = JaccardCalculator()
        tag_docs: dict[str, set[int]] = {}
        for doc_id, tags in enumerate(documents):
            calculator.observe(tags)
            for tag in tags:
                tag_docs.setdefault(tag, set()).add(doc_id)
        for result in calculator.report(reset=False):
            expected = exact_jaccard([tag_docs[t] for t in result.tagset])
            assert result.jaccard == pytest.approx(expected)

    @given(documents_strategy)
    def test_coefficients_in_unit_interval(self, documents):
        calculator = JaccardCalculator()
        for tags in documents:
            calculator.observe(tags)
        for result in calculator.report():
            assert 0.0 < result.jaccard <= 1.0

    @given(documents_strategy)
    def test_support_equals_cooccurrence_count(self, documents):
        calculator = JaccardCalculator()
        for tags in documents:
            calculator.observe(tags)
        for result in calculator.report(reset=False):
            expected = sum(1 for tags in documents if result.tagset <= tags)
            assert result.support == expected
