"""Unit and property tests for Jaccard computation."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.jaccard import (
    JaccardCalculator,
    SubsetCounter,
    SubsetTupleCache,
    all_nonempty_subsets,
    exact_jaccard,
    union_size_inclusion_exclusion,
)


class TestExactJaccard:
    def test_identical_sets(self):
        assert exact_jaccard([{1, 2}, {1, 2}]) == 1.0

    def test_disjoint_sets(self):
        assert exact_jaccard([{1}, {2}]) == 0.0

    def test_partial_overlap(self):
        # intersection {2}, union {1,2,3} -> 1/3
        assert exact_jaccard([{1, 2}, {2, 3}]) == pytest.approx(1 / 3)

    def test_empty_input(self):
        assert exact_jaccard([]) == 0.0

    def test_all_empty_sets(self):
        assert exact_jaccard([set(), set()]) == 0.0

    def test_three_way(self):
        sets = [{1, 2, 3}, {2, 3, 4}, {2, 3, 5}]
        assert exact_jaccard(sets) == pytest.approx(2 / 5)


class TestSubsets:
    def test_all_nonempty_subsets_count(self):
        subsets = all_nonempty_subsets(["a", "b", "c"])
        assert len(subsets) == 7

    def test_subsets_of_single_tag(self):
        assert all_nonempty_subsets(["a"]) == [frozenset({"a"})]

    def test_duplicates_removed(self):
        assert len(all_nonempty_subsets(["a", "a"])) == 1


class TestInclusionExclusion:
    def test_pair(self):
        counts = {
            frozenset({"a"}): 10,
            frozenset({"b"}): 4,
            frozenset({"a", "b"}): 3,
        }
        assert union_size_inclusion_exclusion(frozenset({"a", "b"}), counts) == 11

    def test_triple(self):
        counts = {
            frozenset({"a"}): 5,
            frozenset({"b"}): 5,
            frozenset({"c"}): 5,
            frozenset({"a", "b"}): 2,
            frozenset({"a", "c"}): 2,
            frozenset({"b", "c"}): 2,
            frozenset({"a", "b", "c"}): 1,
        }
        assert union_size_inclusion_exclusion(frozenset({"a", "b", "c"}), counts) == 10

    def test_missing_subsets_count_as_zero(self):
        counts = {frozenset({"a"}): 3}
        assert union_size_inclusion_exclusion(frozenset({"a", "b"}), counts) == 3


class TestSubsetCounter:
    def test_observe_counts_all_subsets(self):
        counter = SubsetCounter()
        counter.observe(["a", "b", "c"])
        assert counter.count(["a"]) == 1
        assert counter.count(["a", "b"]) == 1
        assert counter.count(["a", "b", "c"]) == 1
        assert len(counter) == 7

    def test_counts_accumulate(self):
        counter = SubsetCounter()
        counter.observe(["a", "b"])
        counter.observe(["a", "b"])
        counter.observe(["a"])
        assert counter.count(["a"]) == 3
        assert counter.count(["a", "b"]) == 2

    def test_empty_observation_ignored(self):
        counter = SubsetCounter()
        counter.observe([])
        assert len(counter) == 0

    def test_jaccard_from_counters(self):
        counter = SubsetCounter()
        for _ in range(3):
            counter.observe(["a", "b"])
        counter.observe(["a"])
        # intersection(a,b)=3, union = 4+3-3 = 4
        assert counter.jaccard(["a", "b"]) == pytest.approx(0.75)

    def test_jaccard_of_unseen_pair_is_zero(self):
        counter = SubsetCounter()
        counter.observe(["a"])
        counter.observe(["b"])
        assert counter.jaccard(["a", "b"]) == 0.0

    def test_clear(self):
        counter = SubsetCounter()
        counter.observe(["a", "b"])
        counter.clear()
        assert len(counter) == 0

    def test_max_tags_cap(self):
        counter = SubsetCounter(max_tags_per_document=3)
        counter.observe([f"t{i}" for i in range(10)])
        # Only subsets of the first 3 (sorted) tags are counted: 7 subsets.
        assert len(counter) == 7

    def test_contains(self):
        counter = SubsetCounter()
        counter.observe(["a", "b"])
        assert ["a", "b"] in counter
        assert ["a", "c"] not in counter


class TestSubsetTupleCache:
    def test_hit_and_miss_accounting(self):
        cache = SubsetTupleCache(capacity=8)
        cache.lookup(frozenset({"a", "b"}))
        cache.lookup(frozenset({"a", "b"}))
        cache.lookup(["b", "a"])  # same tagset, different input shape
        cache.lookup(frozenset({"c"}))
        stats = cache.stats()
        assert stats["misses"] == 2
        assert stats["hits"] == 2
        assert stats["evictions"] == 0
        assert stats["size"] == 2

    def test_entry_shape(self):
        cache = SubsetTupleCache()
        key, by_mask, nonempty = cache.lookup(frozenset({"b", "a"}))
        assert key == ("a", "b")
        # Bitmask layout: bit i of the mask selects key[i].
        assert by_mask == ((), ("a",), ("b",), ("a", "b"))
        assert nonempty == (("a",), ("b",), ("a", "b"))

    def test_eviction_on_capacity_overflow(self):
        cache = SubsetTupleCache(capacity=2)
        first = cache.lookup(frozenset({"a"}))
        cache.lookup(frozenset({"b"}))
        cache.lookup(frozenset({"c"}))  # evicts {"a"} (least recently used)
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["size"] == 2
        assert frozenset({"a"}) not in cache
        assert frozenset({"c"}) in cache

    def test_lru_order_protects_recently_used(self):
        cache = SubsetTupleCache(capacity=2)
        cache.lookup(frozenset({"a"}))
        cache.lookup(frozenset({"b"}))
        cache.lookup(frozenset({"a"}))  # refresh {"a"}
        cache.lookup(frozenset({"c"}))  # must evict {"b"}, not {"a"}
        assert frozenset({"a"}) in cache
        assert frozenset({"b"}) not in cache

    def test_evicted_entry_recomputed_identically(self):
        cache = SubsetTupleCache(capacity=1)
        tagset = frozenset({"x", "y", "z"})
        original = cache.lookup(tagset)
        cache.lookup(frozenset({"other"}))  # evict
        assert tagset not in cache
        assert cache.lookup(tagset) == original

    def test_correctness_under_heavy_eviction(self):
        """A thrashing cache (capacity 1) never changes counter results."""
        rng = random.Random(3)
        tags = [f"t{i}" for i in range(8)]
        observations = [
            rng.sample(tags, rng.randrange(1, 5)) for _ in range(200)
        ]
        tiny = SubsetCounter(subset_cache_size=1)
        roomy = SubsetCounter(subset_cache_size=4096)
        for observation in observations:
            tiny.observe(observation)
            roomy.observe(observation)
        assert tiny.cache.stats()["evictions"] > 0
        tiny_results = {r[0]: r[1:] for r in tiny.report_triples()}
        roomy_results = {r[0]: r[1:] for r in roomy.report_triples()}
        assert tiny_results == roomy_results

    def test_max_subset_size_caps_enumeration(self):
        cache = SubsetTupleCache(max_subset_size=2)
        key, by_mask, nonempty = cache.lookup(frozenset({"a", "b", "c"}))
        assert key == ("a", "b", "c")
        assert by_mask is None  # a capped enumeration is not a full lattice
        assert max(len(subset) for subset in nonempty) == 2
        assert len(nonempty) == 6  # 3 singletons + 3 pairs

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SubsetTupleCache(capacity=0)

    def test_injected_empty_cache_is_used(self):
        """An injected cache must be honored even while empty (len 0)."""
        cache = SubsetTupleCache(capacity=16)
        counter = SubsetCounter(subset_cache=cache)
        assert counter.cache is cache
        counter.observe(["a", "b"])
        assert cache.stats()["misses"] == 1

    def test_size_capped_cache_rejected(self):
        """The reporting engines need full lattices; a capped cache (the
        centralized baseline's shape) cannot back a SubsetCounter."""
        with pytest.raises(ValueError):
            SubsetCounter(subset_cache=SubsetTupleCache(max_subset_size=2))


class TestReportingEngineEquivalence:
    """Incremental, delta and scratch reporting must be bit-identical (the
    equivalence contract of docs/ARCHITECTURE.md "Reporting path")."""

    @staticmethod
    def _as_dict(triples):
        return {tagset: (jaccard, support) for tagset, jaccard, support in triples}

    def test_adversarial_overlapping_tagsets(self):
        """Heavily overlapping tagsets share keys across lattice types."""
        counter = SubsetCounter()
        observations = [
            ["a", "b", "c", "d"],
            ["b", "c", "d", "e"],
            ["a", "c", "e"],
            ["a", "b"],
            ["c", "d", "e"],
            ["a", "b", "c", "d", "e"],
            ["a"],
            ["a", "b"],  # repeated type
        ]
        for tags in observations:
            counter.observe(tags)
        incremental = self._as_dict(counter.report_triples(engine="incremental"))
        scratch = self._as_dict(counter.report_triples(engine="scratch"))
        delta = self._as_dict(counter.report_triples(engine="delta"))
        assert incremental == scratch == delta
        # and against the brute-force Equation (2) reference:
        for tagset, (jaccard, support) in incremental.items():
            counts = {
                frozenset(k): c for k, c in counter._raw_items()
            }
            union = union_size_inclusion_exclusion(tagset, counts)
            assert jaccard == support / union

    def test_scratch_engine_reuses_observe_path_cache(self):
        """Counted keys of ≥ 4 tags resident in the shared SubsetTupleCache
        (the observed types) fold their cached lattice instead of
        re-enumerating ``itertools.combinations`` — and the report never
        churns the LRU."""
        counter = SubsetCounter()
        counter.observe(["a", "b", "c", "d"])
        counter.observe(["b", "c", "d", "e"])
        stats = counter.cache.stats()
        before_hits, before_misses = stats["hits"], stats["misses"]
        counter.report_triples(engine="scratch")
        stats = counter.cache.stats()
        # Both observed types were found resident...
        assert stats["hits"] >= before_hits + 2
        # ...and non-resident subset keys did NOT populate (or evict) the
        # cache: the report path only peeks.
        assert stats["misses"] == before_misses
        assert stats["size"] == 2

    @pytest.mark.parametrize("min_size", [1, 2, 3])
    def test_randomized_streams(self, min_size):
        rng = random.Random(min_size)
        tags = [f"t{i}" for i in range(12)]
        for _ in range(25):
            counter = SubsetCounter()
            for _ in range(rng.randrange(1, 50)):
                counter.observe(rng.sample(tags, rng.randrange(1, 9)))
            incremental = self._as_dict(
                counter.report_triples(min_size=min_size, engine="incremental")
            )
            scratch = self._as_dict(
                counter.report_triples(min_size=min_size, engine="scratch")
            )
            delta = self._as_dict(
                counter.report_triples(min_size=min_size, engine="delta")
            )
            assert incremental == scratch == delta

    def test_max_tags_truncation_consistent(self):
        wide = [f"t{i}" for i in range(20)]
        counter = SubsetCounter(max_tags_per_document=6)
        counter.observe(wide)
        counter.observe(wide[:4])
        incremental = self._as_dict(counter.report_triples(engine="incremental"))
        scratch = self._as_dict(counter.report_triples(engine="scratch"))
        delta = self._as_dict(counter.report_triples(engine="delta"))
        assert incremental == scratch == delta

    def test_unknown_engine_rejected(self):
        counter = SubsetCounter()
        counter.observe(["a", "b"])
        with pytest.raises(ValueError):
            counter.report_triples(engine="nope")
        with pytest.raises(ValueError):
            JaccardCalculator(reporting_engine="nope")

    def test_engines_match_after_clear_and_reuse(self):
        """The cache survives clear(); results must stay identical."""
        counter = SubsetCounter()
        for _ in range(2):
            counter.observe(["a", "b", "c"])
            counter.observe(["b", "c", "d"])
            incremental = self._as_dict(counter.report_triples(engine="incremental"))
            scratch = self._as_dict(counter.report_triples(engine="scratch"))
            delta = self._as_dict(counter.report_triples(engine="delta"))
            assert incremental == scratch == delta
            counter.clear()
        assert counter.cache.stats()["hits"] > 0


class TestDeltaEngine:
    """Cross-round behaviour of the delta reporting engine: carry reuse,
    dirty propagation, suppression split and accounting."""

    @staticmethod
    def _as_dict(triples):
        return {tagset: (jaccard, support) for tagset, jaccard, support in triples}

    @staticmethod
    def _round(counter, observations):
        for tags in observations:
            counter.observe(tags)
        changed, unchanged = counter.report_delta_triples()
        counter.clear()
        return changed, unchanged

    def test_recurring_rounds_reuse_the_carry(self):
        """A repeated round costs carry hits, not folds, and re-asserts
        bit-identical triples as 'unchanged'."""
        counter = SubsetCounter()
        observations = [["a", "b"], ["a", "b"], ["c", "d", "e"]]
        first_changed, first_unchanged = self._round(counter, observations)
        assert first_unchanged == []
        assert counter.types_folded == 2 and counter.types_reused == 0
        second_changed, second_unchanged = self._round(counter, observations)
        assert second_changed == []
        assert self._as_dict(second_unchanged) == self._as_dict(first_changed)
        stats = counter.carry_stats()
        assert stats["carry_hits"] == 2
        assert stats["carry_misses"] == 2
        assert counter.types_reused == 2

    def test_multiplicity_change_dirties_overlapping_types_only(self):
        counter = SubsetCounter()
        base = [["a", "b"], ["b", "x"], ["p", "q"]]
        self._round(counter, base)
        self._round(counter, base)
        # Double {a, b}: everything sharing a tag with it ({b, x}) refolds,
        # the disjoint {p, q} stays clean.
        changed, unchanged = self._round(
            counter, [["a", "b"], ["a", "b"], ["b", "x"], ["p", "q"]]
        )
        changed_types = {tagset for tagset, _, _ in changed}
        unchanged_types = {tagset for tagset, _, _ in unchanged}
        assert changed_types == {frozenset({"a", "b"}), frozenset({"b", "x"})}
        assert unchanged_types == {frozenset({"p", "q"})}

    def test_type_disappearing_dirties_its_tags(self):
        counter = SubsetCounter()
        self._round(counter, [["a", "b"], ["b", "c"]])
        # {b, c} vanishes: its tags go dirty, so {a, b} must refold (its
        # lattice loses {b}'s contribution) — and the refreshed value must
        # match scratch.
        for tags in [["a", "b"]]:
            counter.observe(tags)
        reference = self._as_dict(counter.report_triples(engine="scratch"))
        changed, unchanged = counter.report_delta_triples()
        assert unchanged == []
        assert self._as_dict(changed) == reference

    def test_all_dirty_rounds_fold_exactly_like_incremental(self):
        """Adversarial churn — every type dirty every round — must cost the
        same number of lattice folds as the incremental engine (no extra
        work beyond the cheap diff) and produce identical results."""
        rng = random.Random(7)
        tags = [f"t{i}" for i in range(10)]
        delta = SubsetCounter()
        incremental = SubsetCounter()
        for _ in range(6):
            observations = [
                rng.sample(tags, rng.randrange(2, 7))
                for _ in range(rng.randrange(5, 15))
            ]
            for tags_ in observations:
                delta.observe(tags_)
                incremental.observe(tags_)
            got = self._as_dict(delta.report_triples(engine="delta"))
            want = self._as_dict(incremental.report_triples(engine="incremental"))
            assert got == want
            delta.clear()
            incremental.clear()
        assert delta.carry_hits == 0  # fresh random rounds never repeat
        assert delta.types_folded == incremental.types_folded

    def test_min_size_change_invalidates_the_program(self):
        counter = SubsetCounter()
        counter.observe(["a", "b", "c"])
        by_min_size = {
            min_size: self._as_dict(
                counter.report_triples(min_size=min_size, engine="delta")
            )
            for min_size in (2, 1, 3)
        }
        for min_size, got in by_min_size.items():
            assert got == self._as_dict(
                counter.report_triples(min_size=min_size, engine="scratch")
            )

    def test_carry_pruned_when_types_stop_recurring(self):
        counter = SubsetCounter()
        # 600 one-shot types (beyond the 2·live+256 slack), then one tiny
        # round: the stale entries must be swept out.
        self._round(counter, [[f"x{i}", f"y{i}"] for i in range(600)])
        self._round(counter, [["a", "b"]])
        stats = counter.carry_stats()
        assert stats["carry_size"] <= 258
        # Swept one-shot types are evictions, not invalidations: nothing
        # stale was ever refolded.
        assert stats["carry_evictions"] == 600
        assert stats["carry_invalidations"] == 0

    def test_release_delta_state_preserves_accounting(self):
        counter = SubsetCounter()
        self._round(counter, [["a", "b"]])
        self._round(counter, [["a", "b"]])
        hits_before = counter.carry_stats()["carry_hits"]
        assert hits_before > 0
        counter.release_delta_state()
        stats = counter.carry_stats()
        assert stats["carry_size"] == 0
        assert stats["carry_hits"] == hits_before
        # and the engine still works (entries rebuild as misses)
        counter.observe(["a", "b"])
        reference = self._as_dict(counter.report_triples(engine="scratch"))
        changed, unchanged = counter.report_delta_triples()
        assert self._as_dict(changed + unchanged) == reference

    def test_python_fallback_matches_vectorised_fold(self, monkeypatch):
        """Without numpy the pure-python sum-over-subsets must produce the
        same bits for large types."""
        import repro.core.jaccard as jaccard_module

        rng = random.Random(13)
        tags = [f"t{i}" for i in range(9)]
        observations = [rng.sample(tags, rng.randrange(5, 9)) for _ in range(15)]
        vectorised = SubsetCounter()
        for tags_ in observations:
            vectorised.observe(tags_)
        with_numpy = self._as_dict(vectorised.report_triples(engine="delta"))
        monkeypatch.setattr(jaccard_module, "_np", None)
        fallback = SubsetCounter()
        for tags_ in observations:
            fallback.observe(tags_)
        without_numpy = self._as_dict(fallback.report_triples(engine="delta"))
        reference = self._as_dict(fallback.report_triples(engine="scratch"))
        assert with_numpy == without_numpy == reference

    def test_split_round_covers_the_full_result_set(self):
        """changed + unchanged is exactly the scratch result set, with no
        key emitted twice even when a clean and a dirty type share one.

        {a,b,c} stays clean (its tags never touch a changed type) while
        {x,a,b} is dirtied through x — the shared key {a,b} must be emitted
        exactly once, from the clean type's carry (provably unchanged).
        """
        counter = SubsetCounter()
        self._round(counter, [["a", "b", "c"], ["x", "a", "b"], ["x", "y"]])
        for tags in (["a", "b", "c"], ["x", "a", "b"], ["x", "y"], ["x", "y"]):
            counter.observe(tags)
        reference = self._as_dict(counter.report_triples(engine="scratch"))
        changed, unchanged = counter.report_delta_triples()
        changed_types = {tagset for tagset, _, _ in changed}
        unchanged_types = {tagset for tagset, _, _ in unchanged}
        assert frozenset({"a", "b"}) in unchanged_types  # the shared key
        assert frozenset({"a", "b"}) not in changed_types
        assert frozenset({"x", "y"}) in changed_types
        emitted = [tagset for tagset, _, _ in changed + unchanged]
        assert len(emitted) == len(set(emitted))
        assert self._as_dict(changed + unchanged) == reference


class TestFrozensetReadPathCache:
    """counted_tagsets()/items() reuse memoised frozensets where resident
    (the report read-path papercut fix) without any behaviour change."""

    def test_values_unchanged(self):
        counter = SubsetCounter()
        counter.observe(["a", "b"])
        counter.observe(["b", "c"])
        assert sorted(counter.counted_tagsets(), key=sorted) == sorted(
            [frozenset({"a", "b"}), frozenset({"b", "c"})], key=sorted
        )
        assert dict(counter.items()) == {
            frozenset({"a"}): 1,
            frozenset({"b"}): 2,
            frozenset({"c"}): 1,
            frozenset({"a", "b"}): 1,
            frozenset({"b", "c"}): 1,
        }

    def test_resident_keys_return_the_cached_object(self):
        counter = SubsetCounter()
        counter.observe(["a", "b"])
        # A delta report materialises (and memoises) the reported keys.
        (triple,) = counter.report_triples(engine="delta")
        (from_counted,) = counter.counted_tagsets()
        assert from_counted is triple[0]
        items = dict(counter.items())
        assert any(key is triple[0] for key in items)
        # Repeated calls keep returning the same object — no per-call churn.
        (again,) = counter.counted_tagsets()
        assert again is from_counted

    def test_non_resident_keys_still_materialise(self):
        counter = SubsetCounter()
        counter.observe(["a", "b"])  # no report ran: memo is empty
        assert counter.counted_tagsets() == [frozenset({"a", "b"})]


class TestJaccardCalculator:
    def test_report_matches_exact_computation(self):
        calculator = JaccardCalculator()
        documents = [["a", "b"], ["a", "b"], ["a"], ["b", "c"]]
        for tags in documents:
            calculator.observe(tags)
        results = {r.tagset: r for r in calculator.report(reset=False)}
        ab = results[frozenset({"a", "b"})]
        # docs with a and b: 2; docs with a or b: 4
        assert ab.jaccard == pytest.approx(0.5)
        assert ab.support == 2

    def test_report_resets_counters(self):
        calculator = JaccardCalculator()
        calculator.observe(["a", "b"])
        calculator.report()
        assert calculator.observations == 0
        assert calculator.report() == []

    def test_min_size_filters_singletons(self):
        calculator = JaccardCalculator()
        calculator.observe(["a"])
        calculator.observe(["a", "b"])
        tagsets = {r.tagset for r in calculator.report(min_size=2)}
        assert frozenset({"a"}) not in tagsets
        assert frozenset({"a", "b"}) in tagsets


class TestJaccardProperties:
    documents_strategy = st.lists(
        st.sets(st.sampled_from("abcde"), min_size=1, max_size=4),
        min_size=1,
        max_size=40,
    )

    @given(documents_strategy)
    def test_counter_jaccard_matches_exact(self, documents):
        """The counter/inclusion-exclusion path equals the set-based ground truth."""
        calculator = JaccardCalculator()
        tag_docs: dict[str, set[int]] = {}
        for doc_id, tags in enumerate(documents):
            calculator.observe(tags)
            for tag in tags:
                tag_docs.setdefault(tag, set()).add(doc_id)
        for result in calculator.report(reset=False):
            expected = exact_jaccard([tag_docs[t] for t in result.tagset])
            assert result.jaccard == pytest.approx(expected)

    @given(documents_strategy)
    def test_coefficients_in_unit_interval(self, documents):
        calculator = JaccardCalculator()
        for tags in documents:
            calculator.observe(tags)
        for result in calculator.report():
            assert 0.0 < result.jaccard <= 1.0

    @given(documents_strategy)
    def test_support_equals_cooccurrence_count(self, documents):
        calculator = JaccardCalculator()
        for tags in documents:
            calculator.observe(tags)
        for result in calculator.report(reset=False):
            expected = sum(1 for tags in documents if result.tagset <= tags)
            assert result.support == expected
