"""Property-style migration invariants of the exact counting core.

The live-repartitioning handoff migrates Calculator state in two phases:
``JaccardCalculator.migration_triples()`` (side-effect-free payload) and
``reset_counts()`` (commit).  These tests pin the invariants the handoff
protocol relies on, over seeded-random observe/migrate/observe
interleavings across every reporting engine:

* *prepare is pure*: computing the payload never changes the counters, the
  counted-tagset view, the observation count or the in-stream fold
  accounting — so an aborted migration is a true no-op;
* *payload equals a drain*: the migrated triples are exactly what an
  end-of-stream drain of the same state would ship;
* *commit equals a fresh start*: after migrate + reset, continued
  observation reports exactly what a fresh Calculator fed only the
  post-migration segment reports — for the delta engine too, whose carry
  table and diff baseline survive the reset by design;
* *no loss, no duplication*: the payloads of the migrations plus the final
  drain cover each observation segment exactly once.
"""

import random

import pytest

from repro.core.jaccard import (
    REPORTING_ENGINES,
    JaccardCalculator,
    SubsetCounter,
)

VOCABULARY = [f"t{i}" for i in range(14)]


def _random_tagsets(rng, n, max_tags=5):
    """Seeded tagset stream with repeated types (exercises multiplicities)."""
    tagsets = []
    for _ in range(n):
        size = rng.randint(1, max_tags)
        tagsets.append(frozenset(rng.sample(VOCABULARY, size)))
    return tagsets


def _triples_key(triples):
    """Canonical comparison form of a triple list (order-insensitive)."""
    return sorted((tuple(sorted(tagset)), jaccard, support)
                  for tagset, jaccard, support in triples)


def _segments(rng, n_segments, per_segment):
    return [
        _random_tagsets(rng, rng.randint(1, per_segment))
        for _ in range(n_segments)
    ]


@pytest.mark.parametrize("engine", REPORTING_ENGINES)
@pytest.mark.parametrize("seed", [3, 17, 92])
def test_migration_payload_is_side_effect_free(engine, seed):
    rng = random.Random(seed)
    calculator = JaccardCalculator(reporting_engine=engine)
    for tags in _random_tagsets(rng, 120):
        calculator.observe(tags)

    counter = calculator.counter
    counts_before = dict(counter._counts)
    mults_before = dict(counter._mults)
    view_before = sorted(map(tuple, map(sorted, counter.counted_tagsets())))
    observations_before = calculator.observations
    folded_before = counter.types_folded
    reused_before = counter.types_reused
    generation_before = counter._delta_generation

    first = calculator.migration_triples()
    second = calculator.migration_triples()

    # Idempotent and pure: repeated prepares agree, nothing moved.
    assert _triples_key(first) == _triples_key(second)
    assert dict(counter._counts) == counts_before
    assert dict(counter._mults) == mults_before
    assert sorted(map(tuple, map(sorted, counter.counted_tagsets()))) == view_before
    assert calculator.observations == observations_before
    assert counter.types_folded == folded_before
    assert counter.types_reused == reused_before
    assert counter._delta_generation == generation_before


@pytest.mark.parametrize("engine", REPORTING_ENGINES)
@pytest.mark.parametrize("seed", [5, 41])
def test_migration_payload_equals_drain(engine, seed):
    rng = random.Random(seed)
    tagsets = _random_tagsets(rng, 150)

    migrating = JaccardCalculator(reporting_engine=engine)
    draining = JaccardCalculator(reporting_engine=engine)
    for tags in tagsets:
        migrating.observe(tags)
        draining.observe(tags)

    assert _triples_key(migrating.migration_triples()) == _triples_key(
        draining.drain_triples()
    )


@pytest.mark.parametrize("engine", REPORTING_ENGINES)
@pytest.mark.parametrize("seed", [7, 23, 61])
def test_observe_migrate_observe_matches_fresh_segments(engine, seed):
    """Interleaved migrations report per segment what fresh counters would.

    Also pins the cross-migration totals: concatenating every migration
    payload with the final drain covers the whole stream with no tagset
    counted twice and none lost.
    """
    rng = random.Random(seed)
    segments = _segments(rng, n_segments=4, per_segment=60)

    calculator = JaccardCalculator(reporting_engine=engine)
    collected = []
    for segment in segments:
        for tags in segment:
            calculator.observe(tags)
        payload = calculator.migration_triples()
        calculator.reset_counts()
        assert calculator.observations == 0
        assert len(calculator.counter) == 0
        assert calculator.counter.counted_tagsets() == []
        collected.append(payload)

    for index, segment in enumerate(segments):
        fresh = JaccardCalculator(reporting_engine=engine)
        for tags in segment:
            fresh.observe(tags)
        assert _triples_key(collected[index]) == _triples_key(
            fresh.drain_triples()
        ), f"segment {index} diverged after migration reset"

    # Support totals are additive over segments: every observation of a
    # tagset type lands in exactly one payload.
    support_totals: dict = {}
    for payload in collected:
        for tagset, _, support in payload:
            key = tuple(sorted(tagset))
            support_totals[key] = support_totals.get(key, 0) + support
    fresh_all = JaccardCalculator(reporting_engine=engine)
    whole_stream_counts: dict = {}
    for segment in segments:
        for tags in segment:
            fresh_all.observe(tags)
    for tagset, _, support in fresh_all.drain_triples():
        whole_stream_counts[tuple(sorted(tagset))] = support
    assert support_totals == whole_stream_counts


@pytest.mark.parametrize("seed", [11, 29])
def test_delta_carry_generation_survives_migration(seed):
    """The delta engine's carry table stays consistent across a handoff.

    ``reset_counts`` deliberately preserves the generation-stamped carry
    table and the multiplicity diff baseline (same contract as a
    report-round reset); post-migration rounds must reuse carries for
    recurring clean types and still report bit-identically to the
    ship-everything incremental engine.
    """
    rng = random.Random(seed)
    recurring = _random_tagsets(rng, 40)

    delta = JaccardCalculator(reporting_engine="delta")
    incremental = JaccardCalculator(reporting_engine="incremental")

    # Round one establishes carry entries.
    for tags in recurring:
        delta.observe(tags)
        incremental.observe(tags)
    delta.report_triples(reset=True)
    incremental.report_triples(reset=True)
    generation_after_round = delta.counter._delta_generation

    # Migrate mid-round-two: the payload must not advance the generation.
    segment = recurring[:25]
    for tags in segment:
        delta.observe(tags)
        incremental.observe(tags)
    payload = delta.migration_triples()
    assert delta.counter._delta_generation == generation_after_round
    assert _triples_key(payload) == _triples_key(incremental.migration_triples())
    delta.reset_counts()
    incremental.reset_counts()

    # Post-migration round: recurring types hit the surviving carry table
    # and the reports still match the incremental engine exactly.
    hits_before = delta.counter.carry_hits
    for tags in recurring:
        delta.observe(tags)
        incremental.observe(tags)
    assert _triples_key(delta.report_triples(reset=False)) == _triples_key(
        incremental.report_triples(reset=False)
    )
    assert delta.counter.carry_hits > hits_before


@pytest.mark.parametrize("seed", [13, 37])
def test_subset_counter_clear_preserves_cache_and_carry(seed):
    """``SubsetCounter.clear()`` (the commit reset) keeps derived state only."""
    rng = random.Random(seed)
    counter = SubsetCounter()
    tagsets = _random_tagsets(rng, 80)
    for tags in tagsets:
        counter.observe(tags)
    assert len(counter) > 0
    cache_len = len(counter.cache)

    counter.clear()

    assert len(counter) == 0
    assert counter.counted_tagsets() == []
    assert dict(counter._mults) == {}
    # The subset-enumeration cache is observation-history-derived and
    # survives (trending tagsets of the next window are the same types).
    assert len(counter.cache) == cache_len
    # Re-observing reproduces the same counts as the first pass.
    for tags in tagsets:
        counter.observe(tags)
    reference = SubsetCounter()
    for tags in tagsets:
        reference.observe(tags)
    assert dict(counter._counts) == dict(reference._counts)
