"""Unit tests for the document/tagset data model."""

import pytest

from repro.core.documents import (
    Document,
    DocumentBatch,
    documents_from_tagsets,
    make_tagset,
    normalize_tag,
)


class TestNormalizeTag:
    def test_strips_hash_and_lowercases(self):
        assert normalize_tag("#Munich") == "munich"

    def test_strips_whitespace(self):
        assert normalize_tag("  beer \n") == "beer"

    def test_empty_string_stays_empty(self):
        assert normalize_tag("   ") == ""


class TestMakeTagset:
    def test_deduplicates_after_normalisation(self):
        assert make_tagset(["#Beer", "beer", "BEER"]) == frozenset({"beer"})

    def test_drops_empty_tags(self):
        assert make_tagset(["", "#", "ok"]) == frozenset({"ok"})

    def test_empty_input_gives_empty_set(self):
        assert make_tagset([]) == frozenset()


class TestDocument:
    def test_coerces_tags_to_frozenset(self):
        document = Document(doc_id=1, tags={"a", "b"})
        assert isinstance(document.tags, frozenset)

    def test_tagset_alias(self):
        document = Document(doc_id=1, tags=frozenset({"a"}))
        assert document.tagset == document.tags

    def test_has_tags(self):
        assert Document(doc_id=1, tags=frozenset({"a"})).has_tags()
        assert not Document(doc_id=2, tags=frozenset()).has_tags()

    def test_len_and_iter(self):
        document = Document(doc_id=1, tags=frozenset({"a", "b", "c"}))
        assert len(document) == 3
        assert set(document) == {"a", "b", "c"}

    def test_documents_are_hashable(self):
        first = Document(doc_id=1, tags=frozenset({"a"}))
        second = Document(doc_id=1, tags=frozenset({"a"}))
        assert first == second
        assert len({first, second}) == 1


class TestDocumentBatch:
    def test_append_and_len(self):
        batch = DocumentBatch()
        batch.append(Document(doc_id=1, tags=frozenset({"a"})))
        assert len(batch) == 1

    def test_tagsets_skips_untagged(self):
        batch = DocumentBatch()
        batch.extend(
            [
                Document(doc_id=1, tags=frozenset({"a"})),
                Document(doc_id=2, tags=frozenset()),
            ]
        )
        assert batch.tagsets() == [frozenset({"a"})]

    def test_distinct_tags(self):
        batch = DocumentBatch()
        batch.extend(documents_from_tagsets([["a", "b"], ["b", "c"]]))
        assert batch.distinct_tags() == {"a", "b", "c"}

    def test_time_span(self):
        batch = DocumentBatch()
        batch.extend(
            documents_from_tagsets([["a"], ["b"]], timestamps=[1.0, 5.0])
        )
        assert batch.time_span() == (1.0, 5.0)

    def test_time_span_empty_raises(self):
        with pytest.raises(ValueError):
            DocumentBatch().time_span()

    def test_indexing(self):
        documents = documents_from_tagsets([["a"], ["b"]])
        batch = DocumentBatch(documents=list(documents))
        assert batch[1].tags == frozenset({"b"})


class TestDocumentsFromTagsets:
    def test_assigns_consecutive_ids(self):
        documents = documents_from_tagsets([["a"], ["b"]], start_id=5)
        assert [d.doc_id for d in documents] == [5, 6]

    def test_timestamps_applied(self):
        documents = documents_from_tagsets([["a"], ["b"]], timestamps=[1.5, 2.5])
        assert [d.timestamp for d in documents] == [1.5, 2.5]

    def test_mismatched_timestamps_rejected(self):
        with pytest.raises(ValueError):
            documents_from_tagsets([["a"], ["b"]], timestamps=[1.0])

    def test_normalises_tags(self):
        (document,) = documents_from_tagsets([["#A", "a"]])
        assert document.tags == frozenset({"a"})
