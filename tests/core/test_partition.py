"""Unit tests for partitions and the tag-to-calculator assignment."""

import pytest

from repro.core.partition import Partition, PartitionAssignment


@pytest.fixture
def figure1_assignment():
    """The example assignment of Section 3 (pr1 / pr2)."""
    return PartitionAssignment.from_tag_sets(
        [
            {"munich", "beer", "soccer", "oktoberfest", "beach", "sunny", "friday"},
            {"beer", "pizza", "bavaria", "soccer"},
        ]
    )


class TestPartition:
    def test_covers(self):
        partition = Partition(index=0, tags={"a", "b", "c"})
        assert partition.covers({"a", "b"})
        assert not partition.covers({"a", "d"})

    def test_add_tags_accumulates_load(self):
        partition = Partition(index=0)
        partition.add_tags({"a"}, load=3)
        partition.add_tags({"b"}, load=2)
        assert partition.load == 5
        assert len(partition) == 2

    def test_shared_tags(self):
        partition = Partition(index=0, tags={"a", "b"})
        assert partition.shared_tags({"b", "c"}) == 1

    def test_contains(self):
        partition = Partition(index=0, tags={"a"})
        assert "a" in partition
        assert "z" not in partition


class TestRouting:
    def test_route_splits_tags_by_owner(self, figure1_assignment):
        routes = figure1_assignment.route({"beer", "pizza", "munich"})
        assert routes[0] == frozenset({"beer", "munich"})
        assert routes[1] == frozenset({"beer", "pizza"})

    def test_route_unknown_tags_empty(self, figure1_assignment):
        assert figure1_assignment.route({"unknown"}) == {}

    def test_covering_partitions(self, figure1_assignment):
        assert figure1_assignment.covering_partitions({"beer", "soccer"}) == [0, 1]
        assert figure1_assignment.covering_partitions({"beer", "pizza"}) == [1]
        assert figure1_assignment.covering_partitions({"pizza", "sunny"}) == []

    def test_covers(self, figure1_assignment):
        assert figure1_assignment.covers({"beach", "sunny"})
        assert not figure1_assignment.covers({"pizza", "oktoberfest"})

    def test_empty_tagset_not_covered(self, figure1_assignment):
        assert figure1_assignment.covering_partitions([]) == []

    def test_partitions_for_tag(self, figure1_assignment):
        assert figure1_assignment.partitions_for_tag("beer") == {0, 1}
        assert figure1_assignment.partitions_for_tag("pizza") == {1}


class TestQualityMeasures:
    def test_replication_factor(self, figure1_assignment):
        # 9 distinct tags, 11 assignments -> 11/9
        assert figure1_assignment.replication_factor() == pytest.approx(11 / 9)

    def test_replicated_tags(self, figure1_assignment):
        assert figure1_assignment.replicated_tags() == {"beer", "soccer"}

    def test_replication_factor_disjoint_is_one(self):
        assignment = PartitionAssignment.from_tag_sets([{"a", "b"}, {"c"}])
        assert assignment.replication_factor() == 1.0

    def test_coverage(self, figure1_assignment):
        tagsets = [{"munich", "beer"}, {"pizza", "oktoberfest"}]
        assert figure1_assignment.coverage(tagsets) == 0.5
        assert figure1_assignment.coverage([]) == 1.0

    def test_communication_load(self, figure1_assignment):
        # {beer} -> 2 partitions, {pizza} -> 1 partition, unknown -> skipped
        value = figure1_assignment.communication_load([{"beer"}, {"pizza"}, {"zz"}])
        assert value == pytest.approx(1.5)

    def test_expected_calculator_loads(self, figure1_assignment):
        loads = figure1_assignment.expected_calculator_loads(
            [{"beer"}, {"pizza"}, {"beach"}]
        )
        assert loads == [2, 2]

    def test_summary_keys(self, figure1_assignment):
        summary = figure1_assignment.summary()
        assert set(summary) == {"k", "tags", "replication_factor", "max_load_share"}


class TestMutation:
    def test_add_tagset_updates_index_and_load(self):
        assignment = PartitionAssignment.empty(2)
        assignment.add_tagset(1, {"x", "y"}, load=4)
        assert assignment.covers({"x", "y"})
        assert assignment.partition(1).load == 4
        assert assignment.partitions_for_tag("x") == {1}

    def test_empty_assignment_properties(self):
        assignment = PartitionAssignment.empty(3)
        assert assignment.k == 3
        assert assignment.replication_factor() == 0.0
        assert assignment.all_tags() == set()
        assert assignment.loads() == [0, 0, 0]
