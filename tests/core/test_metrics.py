"""Unit and property tests for the evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.metrics import (
    CommunicationTracker,
    LoadTracker,
    gini_coefficient,
    jaccard_error,
    load_shares,
    load_variance,
    lorenz_curve,
    max_load_share,
    replication_cost,
)


class TestGini:
    def test_perfectly_balanced_is_zero(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_single_owner_approaches_one(self):
        value = gini_coefficient([0, 0, 0, 0, 0, 0, 0, 0, 0, 100])
        assert value == pytest.approx(0.9)

    def test_empty_and_zero_inputs(self):
        assert gini_coefficient([]) == 0.0
        assert gini_coefficient([0, 0]) == 0.0

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient([1, -1])

    def test_known_value(self):
        # Gini of [1, 3] = (2*1*1 + 2*2*3 - 3*4) / (2*4) = 0.25
        assert gini_coefficient([1, 3]) == pytest.approx(0.25)

    @given(st.lists(st.floats(0, 1000), min_size=1, max_size=50))
    def test_gini_in_unit_interval(self, values):
        value = gini_coefficient(values)
        assert 0.0 <= value <= 1.0

    @given(
        st.lists(st.floats(0.01, 1000), min_size=2, max_size=30),
        st.floats(1.5, 10.0),
    )
    def test_scale_invariance(self, values, factor):
        original = gini_coefficient(values)
        scaled = gini_coefficient([v * factor for v in values])
        assert scaled == pytest.approx(original, abs=1e-9)


class TestLorenz:
    def test_endpoints(self):
        population, share = lorenz_curve([1, 2, 3])
        assert population[0] == 0.0 and population[-1] == 1.0
        assert share[0] == 0.0 and share[-1] == 1.0

    def test_curve_below_diagonal(self):
        population, share = lorenz_curve([1, 2, 3, 10])
        assert np.all(share <= population + 1e-12)


class TestLoadHelpers:
    def test_load_shares_sum_to_one(self):
        shares = load_shares([2, 3, 5])
        assert sum(shares) == pytest.approx(1.0)

    def test_load_shares_all_zero(self):
        assert load_shares([0, 0]) == [0.0, 0.0]

    def test_max_load_share(self):
        assert max_load_share([1, 1, 2]) == pytest.approx(0.5)
        assert max_load_share([]) == 0.0

    def test_load_variance_zero_when_balanced(self):
        assert load_variance([4, 4, 4]) == pytest.approx(0.0)


class TestTrackers:
    def test_communication_tracker_average(self):
        tracker = CommunicationTracker()
        tracker.record(1)
        tracker.record(3)
        tracker.record(0)
        assert tracker.average == pytest.approx(2.0)
        assert tracker.unrouted_tagsets == 1

    def test_communication_tracker_reset(self):
        tracker = CommunicationTracker()
        tracker.record(2)
        tracker.reset()
        assert tracker.average == 0.0
        assert tracker.routed_tagsets == 0

    def test_load_tracker_loads_and_gini(self):
        tracker = LoadTracker()
        tracker.record(0, 3)
        tracker.record(2)
        assert tracker.loads(3) == [3, 0, 1]
        assert tracker.max_share(3) == pytest.approx(0.75)
        assert 0.0 <= tracker.gini(3) <= 1.0

    def test_load_tracker_infers_k(self):
        tracker = LoadTracker()
        tracker.record(4)
        assert tracker.loads() == [0, 0, 0, 0, 1]


class TestJaccardError:
    def test_perfect_match(self):
        truth = {frozenset({"a", "b"}): 0.5}
        report = jaccard_error(truth, truth)
        assert report.mean_absolute_error == 0.0
        assert report.coverage == 1.0

    def test_missing_tagsets_counted(self):
        truth = {frozenset({"a", "b"}): 0.5, frozenset({"c", "d"}): 0.2}
        reported = {frozenset({"a", "b"}): 0.4}
        report = jaccard_error(reported, truth)
        assert report.n_missing == 1
        assert report.coverage == 0.5
        assert report.mean_absolute_error == pytest.approx(0.1)

    def test_extra_reported_tagsets_ignored(self):
        truth = {frozenset({"a", "b"}): 0.5}
        reported = {frozenset({"a", "b"}): 0.5, frozenset({"x", "y"}): 0.9}
        report = jaccard_error(reported, truth)
        assert report.n_compared == 1
        assert report.mean_absolute_error == 0.0

    def test_empty_ground_truth(self):
        report = jaccard_error({}, {})
        assert report.coverage == 1.0
        assert report.mean_absolute_error == 0.0


class TestReplicationCost:
    def test_no_duplicates(self):
        assert replication_cost([{"a", "b"}, {"c"}]) == 3

    def test_with_duplicates(self):
        assert replication_cost([{"a", "b"}, {"b", "c"}]) == 4
