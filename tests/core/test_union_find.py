"""Unit and property tests for the union-find structure."""

from hypothesis import given, strategies as st

from repro.core.union_find import UnionFind


class TestUnionFindBasics:
    def test_singletons_after_add(self):
        forest = UnionFind(["a", "b"])
        assert forest.n_components() == 2
        assert not forest.connected("a", "b")

    def test_union_connects(self):
        forest = UnionFind()
        forest.union("a", "b")
        assert forest.connected("a", "b")
        assert forest.n_components() == 1

    def test_find_adds_unknown_items(self):
        forest = UnionFind()
        forest.find("x")
        assert "x" in forest
        assert len(forest) == 1

    def test_union_all_chain(self):
        forest = UnionFind()
        forest.union_all(["a", "b", "c"])
        assert forest.connected("a", "c")
        assert forest.component_size("b") == 3

    def test_union_all_empty_returns_none(self):
        forest = UnionFind()
        assert forest.union_all([]) is None

    def test_components_partition_items(self):
        forest = UnionFind()
        forest.union_all(["a", "b"])
        forest.union_all(["c", "d"])
        forest.add("e")
        components = forest.components()
        groups = sorted(sorted(group) for group in components.values())
        assert groups == [["a", "b"], ["c", "d"], ["e"]]

    def test_connected_unknown_items_false(self):
        forest = UnionFind(["a"])
        assert not forest.connected("a", "zz")

    def test_union_is_idempotent(self):
        forest = UnionFind()
        forest.union("a", "b")
        size_before = forest.component_size("a")
        forest.union("a", "b")
        assert forest.component_size("a") == size_before
        assert forest.n_components() == 1


class TestUnionFindProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=100
        )
    )
    def test_components_are_a_partition(self, pairs):
        """Components are disjoint and cover every item exactly once."""
        forest: UnionFind[int] = UnionFind()
        for first, second in pairs:
            forest.union(first, second)
        components = forest.components()
        seen = []
        for group in components.values():
            seen.extend(group)
        assert len(seen) == len(set(seen)) == len(forest)

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=80
        )
    )
    def test_connectivity_matches_transitive_closure(self, pairs):
        """union-find connectivity equals reachability in the pair graph."""
        forest: UnionFind[int] = UnionFind()
        adjacency: dict[int, set[int]] = {}
        for first, second in pairs:
            forest.union(first, second)
            adjacency.setdefault(first, set()).add(second)
            adjacency.setdefault(second, set()).add(first)
        items = list(adjacency)
        for start in items[:5]:
            reachable = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for neighbour in adjacency.get(node, ()):
                    if neighbour not in reachable:
                        reachable.add(neighbour)
                        frontier.append(neighbour)
            for other in items:
                assert forest.connected(start, other) == (other in reachable)

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=60))
    def test_component_sizes_sum_to_item_count(self, items):
        forest: UnionFind[int] = UnionFind(items)
        forest.union_all(items[: len(items) // 2])
        components = forest.components()
        assert sum(len(group) for group in components.values()) == len(forest)
