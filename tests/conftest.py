"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.cooccurrence import CooccurrenceStatistics


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long-running soak/stress tests; the default CI tests lane "
        'deselects them with -m "not slow"',
    )
from repro.core.documents import documents_from_tagsets
from repro.workloads import TwitterLikeGenerator, WorkloadConfig


@pytest.fixture
def figure1_documents():
    """The running example of Figure 1 in the paper.

    Tagset weights (number of documents annotated with each tagset):

    * {munich, beer, soccer} x 10
    * {beer, pizza} x 4
    * {munich, oktoberfest} x 3
    * {bavaria, soccer} x 1
    * {beach, sunny} x 2
    * {friday, sunny} x 1
    """
    tagsets = (
        [["munich", "beer", "soccer"]] * 10
        + [["beer", "pizza"]] * 4
        + [["munich", "oktoberfest"]] * 3
        + [["bavaria", "soccer"]] * 1
        + [["beach", "sunny"]] * 2
        + [["friday", "sunny"]] * 1
    )
    return documents_from_tagsets(tagsets)


@pytest.fixture
def figure1_statistics(figure1_documents):
    return CooccurrenceStatistics.from_documents(figure1_documents)


@pytest.fixture
def small_stream():
    """A small deterministic synthetic stream used by integration tests."""
    config = WorkloadConfig(
        seed=11,
        n_topics=60,
        tags_per_topic=12,
        tweets_per_second=50.0,
        new_topic_rate=4.0,
        intra_topic_probability=0.9,
    )
    return TwitterLikeGenerator(config).generate(3000)
