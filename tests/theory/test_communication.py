"""Unit and property tests for the expected-communication model (Section 5.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.theory.communication import (
    communication_sweep,
    expected_communication,
    no_overlap_probability,
    tractability_threshold,
)


class TestNoOverlapProbability:
    def test_zero_tags_always_disjoint(self):
        assert no_overlap_probability(100, 0) == 1.0

    def test_small_vocabulary_forces_overlap(self):
        assert no_overlap_probability(5, 3) == 0.0

    def test_large_vocabulary_rarely_overlaps(self):
        assert no_overlap_probability(1_000_000, 3) > 0.99

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            no_overlap_probability(2, 5)
        with pytest.raises(ValueError):
            no_overlap_probability(10, -1)

    @given(st.integers(10, 2000), st.integers(1, 5))
    def test_probability_in_unit_interval(self, vocabulary, tags):
        if vocabulary < tags:
            return
        probability = no_overlap_probability(vocabulary, tags)
        assert 0.0 <= probability <= 1.0


class TestExpectedCommunication:
    def test_bounded_by_k(self):
        value = expected_communication(1000, 5000, 10, 3)
        assert 0.0 <= value <= 10.0

    def test_small_vocabulary_broadcasts_to_all(self):
        """Small vocabulary + many tags per tweet: every tweet goes to
        (almost) all partitions — the paper's 'knockout blow'."""
        value = expected_communication(20, 10000, 10, 5)
        assert value == pytest.approx(10.0, abs=0.01)

    def test_large_vocabulary_stays_tractable(self):
        value = expected_communication(600_000, 10_000, 10, 3)
        assert value < 2.0

    def test_monotone_in_tweets(self):
        few = expected_communication(10_000, 1000, 10, 3)
        many = expected_communication(10_000, 100_000, 10, 3)
        assert many >= few

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            expected_communication(100, 10, 0, 2)
        with pytest.raises(ValueError):
            expected_communication(100, -1, 5, 2)

    @given(
        st.integers(50, 5000),
        st.integers(0, 5000),
        st.integers(1, 30),
        st.integers(1, 5),
    )
    def test_value_between_zero_and_k(self, vocabulary, tweets, k, tags):
        if vocabulary < 2 * tags:
            return
        value = expected_communication(vocabulary, tweets, k, tags)
        assert 0.0 <= value <= k + 1e-9


class TestSweepAndThreshold:
    def test_sweep_keys(self):
        sweep = communication_sweep([100, 1000, 10000], 5000, 10, 3)
        assert list(sweep) == [100, 1000, 10000]

    def test_sweep_decreasing_in_vocabulary(self):
        sweep = communication_sweep([200, 2000, 20000, 200000], 5000, 10, 3)
        values = list(sweep.values())
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_tractability_threshold_found(self):
        threshold = tractability_threshold(5000, 10, 3, target_communication=2.0)
        assert expected_communication(threshold, 5000, 10, 3) <= 2.0

    def test_tractability_threshold_unreachable(self):
        threshold = tractability_threshold(
            10**9, 10, 5, target_communication=1.001, max_vocabulary=10_000
        )
        assert threshold == 10_000
