"""Unit tests for the Erdős–Rényi window model (Section 5.1)."""

import pytest

from repro.theory.erdos_renyi import (
    WindowModel,
    edge_probability,
    giant_component_expected,
    np_product,
    paper_np_table,
)


class TestEdgeProbability:
    def test_matches_definition(self):
        # 10 edges over C(5,2)=10 possible -> p=1
        assert edge_probability(5, 10) == pytest.approx(1.0)

    def test_small_graphs(self):
        assert edge_probability(1, 5) == 0.0
        assert edge_probability(0, 5) == 0.0

    def test_np_product(self):
        assert np_product(100, 50) == pytest.approx(100 * 50 / 4950)


class TestGiantComponent:
    def test_threshold(self):
        # np > 1 -> giant component expected
        assert giant_component_expected(1000, 600)
        assert not giant_component_expected(1000, 400)


class TestWindowModel:
    def test_paper_values_reproduced(self):
        """Section 5.1 quotes np=0.76 (5min, mmax 8), 1.52 (10min, mmax 8),
        0.85 (10min, mmax 6)."""
        table = paper_np_table()
        assert table[(5, 8)] == pytest.approx(0.76, abs=0.08)
        assert table[(10, 8)] == pytest.approx(1.52, abs=0.15)
        assert table[(10, 6)] == pytest.approx(0.85, abs=0.10)

    def test_longer_windows_increase_np(self):
        short = WindowModel(window_minutes=5)
        long = WindowModel(window_minutes=10)
        assert long.np > short.np

    def test_np_from_observed_pairs_much_smaller(self):
        """The observed-pairs estimate (np=0.11 for 10 minutes) is far below
        the independence model's 1.52."""
        model = WindowModel(window_minutes=10)
        observed = model.np_from_observed_pairs()
        assert observed == pytest.approx(0.11, abs=0.03)
        assert observed < model.np / 5

    def test_giant_component_prediction(self):
        assert WindowModel(window_minutes=10, mmax=8).predicts_giant_component()
        assert not WindowModel(window_minutes=5, mmax=8).predicts_giant_component()

    def test_tweets_in_window_scales_linearly(self):
        model = WindowModel(window_minutes=10)
        assert model.tweets_in_window == pytest.approx(
            2 * WindowModel(window_minutes=5).tweets_in_window
        )
