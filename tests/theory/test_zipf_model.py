"""Unit tests for the Zipf tags-per-tweet model (Section 5.1)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.theory.zipf_model import (
    PAPER_MMAX,
    PAPER_SKEW,
    empirical_skew,
    expected_edges,
    expected_edges_per_tweet,
    frequency_of_m_tags,
    tags_per_tweet_distribution,
    zipf_frequencies,
)


class TestZipfFrequencies:
    def test_frequencies_sum_to_one(self):
        assert sum(zipf_frequencies(8, 0.25)) == pytest.approx(1.0)

    def test_monotonically_decreasing(self):
        frequencies = zipf_frequencies(8, 0.25)
        assert all(a >= b for a, b in zip(frequencies, frequencies[1:]))

    def test_zero_skew_is_uniform(self):
        frequencies = zipf_frequencies(4, 0.0)
        assert all(f == pytest.approx(1 / 5) for f in frequencies)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            zipf_frequencies(-1)
        with pytest.raises(ValueError):
            zipf_frequencies(5, -0.5)

    @given(st.integers(1, 12), st.floats(0.0, 2.0))
    def test_distribution_is_valid(self, mmax, skew):
        frequencies = zipf_frequencies(mmax, skew)
        assert len(frequencies) == mmax + 1
        assert sum(frequencies) == pytest.approx(1.0)
        assert all(f > 0 for f in frequencies)


class TestDistributionHelpers:
    def test_tags_per_tweet_distribution_keys(self):
        distribution = tags_per_tweet_distribution()
        assert set(distribution) == set(range(PAPER_MMAX + 1))

    def test_frequency_of_m_tags_out_of_range(self):
        assert frequency_of_m_tags(0, 8) == 0.0
        assert frequency_of_m_tags(-1, 8) == 0.0
        assert frequency_of_m_tags(9, 8) == 0.0

    def test_frequency_normalises_over_tagged_ranks(self):
        total = sum(frequency_of_m_tags(m, 8) for m in range(1, 9))
        assert total == pytest.approx(1.0)

    def test_frequency_decreasing_in_m(self):
        values = [frequency_of_m_tags(m, 8) for m in range(1, 9)]
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestExpectedEdges:
    def test_per_tweet_expectation_positive(self):
        assert expected_edges_per_tweet() > 0

    def test_single_tag_tweets_add_no_edges(self):
        assert expected_edges_per_tweet(mmax=1) == 0.0

    def test_linear_in_tweets(self):
        one = expected_edges(1000)
        two = expected_edges(2000)
        assert two == pytest.approx(2 * one)

    def test_negative_tweets_rejected(self):
        with pytest.raises(ValueError):
            expected_edges(-5)

    def test_matches_manual_formula(self):
        mmax, skew = 4, 0.5
        manual = 100 * sum(
            frequency_of_m_tags(m, mmax, skew) * math.comb(m, 2)
            for m in range(2, mmax + 1)
        )
        assert expected_edges(100, mmax, skew) == pytest.approx(manual)


class TestEmpiricalSkew:
    def test_recovers_generating_skew(self):
        s = 0.25
        counts = [round(100000 / (rank**s)) for rank in range(1, 10)]
        assert empirical_skew(counts) == pytest.approx(s, abs=0.02)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            empirical_skew([10])
