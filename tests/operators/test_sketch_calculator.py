"""Unit tests for the sketch-mode Calculator bolt."""

import numpy as np
import pytest

from repro.core.jaccard import exact_jaccard
from repro.operators.calculator import CalculatorBolt
from repro.operators.sketch_calculator import SketchCalculatorBolt
from repro.operators.streams import COEFFICIENTS, NOTIFICATIONS
from repro.streamsim.tuples import OutputCollector, stream_schema

OTHER = stream_schema("other", ("batch",))


def make_bolt(report_interval=10.0, num_perm=512):
    bolt = SketchCalculatorBolt(report_interval=report_interval, num_perm=num_perm)
    collector = OutputCollector("calculator", 0)
    bolt.collector = collector
    return bolt, collector


def notification(tags, doc_id=None, timestamp=0.0):
    return NOTIFICATIONS.message(
        batch=[(frozenset(tags), doc_id)], timestamp=timestamp
    )


def batch(entries, timestamp=0.0):
    return NOTIFICATIONS.message(
        batch=[(frozenset(tags), doc_id) for tags, doc_id in entries],
        timestamp=timestamp,
    )


class TestSketchCalculatorBolt:
    def test_invalid_report_interval(self):
        with pytest.raises(ValueError):
            SketchCalculatorBolt(report_interval=0)

    def test_counts_single_notifications(self):
        bolt, _ = make_bolt()
        bolt.execute(notification(["a", "b"], doc_id=1))
        bolt.execute(notification(["a", "b"], doc_id=2))
        assert bolt.notifications_received == 2
        assert bolt.estimator.coefficient(["a", "b"]) == 1.0

    def test_unpacks_batched_notifications(self):
        bolt, _ = make_bolt()
        bolt.execute(batch([(["a", "b"], 1), (["a", "b"], 2), (["a"], 3)]))
        assert bolt.notifications_received == 3
        assert bolt.batches_received == 1
        assert bolt.observations == 3

    def test_estimates_match_exact_jaccard_on_seeded_stream(self):
        """The ISSUE's bound: sketch estimates track exact_jaccard."""
        rng = np.random.default_rng(7)
        bolt, _ = make_bolt(num_perm=512)
        exact = CalculatorBolt(report_interval=10.0)
        tag_documents: dict[str, set[int]] = {}
        tags_pool = ["t0", "t1", "t2", "t3"]
        for doc_id in range(3000):
            tags = [tag for tag in tags_pool if rng.random() < 0.35]
            if len(tags) < 1:
                continue
            bolt.execute(notification(tags, doc_id=doc_id))
            exact.execute(notification(tags))
            for tag in tags:
                tag_documents.setdefault(tag, set()).add(doc_id)
        bound = 4.0 * bolt.estimator.error_bound
        compared = 0
        for result in bolt.estimator.report(min_size=2, reset=False):
            truth = exact_jaccard([tag_documents[tag] for tag in result.tagset])
            assert abs(result.jaccard - truth) < bound
            # The exact Calculator agrees with ground truth by construction.
            assert exact.calculator.coefficient(result.tagset) == pytest.approx(truth)
            compared += 1
        assert compared >= 6  # all pairs/triples/quad of four tags co-occurred

    def test_tick_emits_report_and_resets(self):
        bolt, collector = make_bolt(report_interval=10.0)
        bolt.execute(notification(["a", "b"], doc_id=1, timestamp=1.0))
        bolt.tick(5.0)
        assert list(collector.drain()) == []
        bolt.tick(11.0)
        (batch_out,) = collector.drain()
        (message,) = batch_out.messages
        assert message.stream == COEFFICIENTS
        results = message["results"]
        assert (frozenset({"a", "b"}), 1.0, 1) in results
        assert bolt.observations == 0

    def test_drain_results_returns_remaining(self):
        bolt, _ = make_bolt()
        bolt.execute(notification(["a", "b"], doc_id=1))
        results = bolt.drain_results()
        assert len(results) == 1
        assert results[0].tagset == frozenset({"a", "b"})
        assert bolt.drain_results() == []

    def test_missing_doc_id_gets_unique_synthetic_id(self):
        bolt, _ = make_bolt()
        bolt.execute(notification({"a", "b"}))
        bolt.execute(notification({"a", "b"}))
        # Two distinct synthetic documents, both carrying {a, b}: J = 1.
        assert bolt.estimator.support(["a", "b"]) >= 2
        assert bolt.estimator.coefficient(["a", "b"]) == 1.0

    def test_other_streams_ignored(self):
        bolt, _ = make_bolt()
        bolt.execute(OTHER.message(batch=[(frozenset({"a"}), None)]))
        assert bolt.notifications_received == 0
