"""Unit tests for the sliding window and the Partitioner bolt."""

import pytest

from repro.operators.partitioner import PartitionerBolt, SlidingWindow
from repro.operators.streams import PARTIAL_PARTITIONS, REPARTITION_REQUESTS, TAGSETS
from repro.partitioning import DisjointSetsPartitioner, SCCPartitioner
from repro.streamsim.tuples import OutputCollector


class TestSlidingWindow:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SlidingWindow(mode="weird")
        with pytest.raises(ValueError):
            SlidingWindow(size=0)

    def test_count_window_evicts_oldest(self):
        window = SlidingWindow(mode="count", size=3)
        for i in range(5):
            window.add(float(i), frozenset({f"t{i}"}))
        assert len(window) == 3
        assert window.tagsets() == [
            frozenset({"t2"}),
            frozenset({"t3"}),
            frozenset({"t4"}),
        ]

    def test_time_window_evicts_expired(self):
        window = SlidingWindow(mode="time", size=10.0)
        window.add(0.0, frozenset({"old"}))
        window.add(5.0, frozenset({"mid"}))
        window.add(12.0, frozenset({"new"}))
        tagsets = window.tagsets()
        assert frozenset({"old"}) not in tagsets
        assert frozenset({"mid"}) in tagsets

    def test_statistics_reflect_window_content(self):
        window = SlidingWindow(mode="count", size=10)
        window.add(0.0, frozenset({"a", "b"}))
        window.add(1.0, frozenset({"a"}))
        stats = window.statistics()
        assert stats.tagset_count(frozenset({"a", "b"})) == 1
        assert stats.load(["a"]) == 2


def make_partitioner_bolt(algorithm, k=2, window_size=100):
    bolt = PartitionerBolt(algorithm=algorithm, k=k, window_size=window_size)
    collector = OutputCollector("partitioner", 0)
    bolt.collector = collector
    bolt.task_index = 0
    return bolt, collector


def tagset_message(tags, timestamp=0.0):
    return TAGSETS.message(tagset=frozenset(tags), timestamp=timestamp)


def repartition_message(epoch=1):
    return REPARTITION_REQUESTS.message(epoch=epoch, timestamp=0.0)


def drain_one(collector):
    (batch,) = collector.drain()
    (message,) = batch.messages
    return message


class TestPartitionerBolt:
    def test_ds_emits_raw_disjoint_sets(self):
        bolt, collector = make_partitioner_bolt(DisjointSetsPartitioner(), k=2)
        bolt.execute(tagset_message(["a", "b"]))
        bolt.execute(tagset_message(["b", "c"]))
        bolt.execute(tagset_message(["x", "y"]))
        bolt.execute(repartition_message())
        message = drain_one(collector)
        assert message.stream == PARTIAL_PARTITIONS
        groups = sorted(sorted(tags) for tags in message["tag_sets"])
        assert groups == [["a", "b", "c"], ["x", "y"]]

    def test_set_cover_emits_k_partitions(self):
        bolt, collector = make_partitioner_bolt(SCCPartitioner(), k=2)
        for tags in (["a", "b"], ["b", "c"], ["x", "y"], ["y", "z"]):
            bolt.execute(tagset_message(tags))
        bolt.execute(repartition_message())
        message = drain_one(collector)
        assert len(message["tag_sets"]) <= 2
        assert message["window_counts"]

    def test_duplicate_epoch_served_once(self):
        bolt, collector = make_partitioner_bolt(DisjointSetsPartitioner())
        bolt.execute(tagset_message(["a"]))
        bolt.execute(repartition_message(epoch=5))
        bolt.execute(repartition_message(epoch=5))
        (batch,) = collector.drain()
        assert len(batch.messages) == 1
        assert bolt.partitions_created == 1

    def test_window_counts_match_window(self):
        bolt, collector = make_partitioner_bolt(DisjointSetsPartitioner())
        bolt.execute(tagset_message(["a", "b"]))
        bolt.execute(tagset_message(["a", "b"]))
        bolt.execute(repartition_message())
        counts = drain_one(collector)["window_counts"]
        assert counts[("a", "b")] == 2

    def test_empty_window_emits_empty_partial(self):
        bolt, collector = make_partitioner_bolt(DisjointSetsPartitioner())
        bolt.execute(repartition_message())
        assert drain_one(collector)["tag_sets"] == []


class TestApproximateWindowCounts:
    """Sketch-mode Partitioners ship Count-Min-estimated window counts."""

    def test_sketched_estimates_never_underestimate(self):
        from repro.operators.partitioner import sketch_tagset_counts

        exact = {("a", "b"): 7, ("c",): 1}
        counts = sketch_tagset_counts(exact, epsilon=0.01, delta=0.01)
        assert counts[("a", "b")] >= 7
        assert counts[("c",)] >= 1
        # Count-Min over-estimation is bounded by epsilon * total count.
        assert counts[("a", "b")] <= 7 + max(1, round(0.01 * 8))

    def test_bolt_ships_approximate_counts_when_enabled(self):
        bolt = PartitionerBolt(
            algorithm=DisjointSetsPartitioner(),
            k=2,
            window_size=100,
            approximate_counts=True,
            countmin_epsilon=0.01,
        )
        collector = OutputCollector("partitioner", 0)
        bolt.collector = collector
        bolt.task_index = 0
        bolt.execute(tagset_message(["a", "b"]))
        bolt.execute(tagset_message(["a", "b"]))
        bolt.execute(repartition_message())
        counts = drain_one(collector)["window_counts"]
        assert counts[("a", "b")] >= 2
