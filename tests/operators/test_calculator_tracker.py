"""Unit tests for the Calculator and Tracker bolts."""

import pytest

from repro.core.jaccard import JaccardResult
from repro.operators.calculator import CalculatorBolt
from repro.operators.streams import COEFFICIENTS, NOTIFICATIONS
from repro.operators.tracker import TrackerBolt
from repro.streamsim.tuples import OutputCollector, stream_schema

OTHER = stream_schema("other", ("batch", "results"))


def make_calculator(report_interval=10.0, **kwargs):
    bolt = CalculatorBolt(report_interval=report_interval, **kwargs)
    collector = OutputCollector("calculator", 0)
    bolt.collector = collector
    return bolt, collector


def notification(tags, timestamp=0.0):
    """A single-tagset notification message (a one-entry batch)."""
    return NOTIFICATIONS.message(
        batch=[(frozenset(tags), None)], timestamp=timestamp
    )


class TestCalculatorBolt:
    def test_invalid_report_interval(self):
        with pytest.raises(ValueError):
            CalculatorBolt(report_interval=0)

    def test_counts_notifications(self):
        bolt, _ = make_calculator()
        bolt.execute(notification(["a", "b"]))
        bolt.execute(notification(["a", "b"]))
        assert bolt.notifications_received == 2
        assert bolt.calculator.coefficient(["a", "b"]) == 1.0

    def test_execute_batch_unpacks_link_batches(self):
        bolt, _ = make_calculator()
        bolt.execute_batch(
            [notification(["a", "b"]), notification(["a", "c"])]
        )
        assert bolt.notifications_received == 2
        assert bolt.batches_received == 2

    def test_multi_entry_batches_unpacked(self):
        bolt, _ = make_calculator()
        bolt.execute(
            NOTIFICATIONS.message(
                batch=[
                    (frozenset({"a", "b"}), 1),
                    (frozenset({"a", "b"}), 2),
                    (frozenset({"c"}), 3),
                ],
                timestamp=0.0,
            )
        )
        assert bolt.notifications_received == 3
        assert bolt.batches_received == 1
        assert bolt.calculator.coefficient(["a", "b"]) == 1.0

    def test_other_streams_ignored(self):
        bolt, _ = make_calculator()
        bolt.execute(OTHER.message(batch=[(frozenset({"a"}), None)]))
        bolt.execute_batch([OTHER.message(batch=[(frozenset({"a"}), None)])])
        assert bolt.notifications_received == 0

    def test_tick_emits_batched_report_and_resets(self):
        bolt, collector = make_calculator(report_interval=10.0)
        bolt.execute(notification(["a", "b"], timestamp=1.0))
        bolt.tick(5.0)
        assert list(collector.drain()) == []  # interval not reached
        bolt.tick(11.0)
        (batch,) = collector.drain()
        (message,) = batch.messages
        assert message.stream == COEFFICIENTS
        results = message["results"]
        assert (frozenset({"a", "b"}), 1.0, 1) in results
        # counters were reset
        assert bolt.calculator.observations == 0

    def test_no_report_when_nothing_observed(self):
        bolt, collector = make_calculator(report_interval=1.0)
        bolt.tick(100.0)
        assert list(collector.drain()) == []

    def test_drain_results_returns_remaining(self):
        bolt, _ = make_calculator()
        bolt.execute(notification(["a", "b"]))
        results = bolt.drain_results()
        assert len(results) == 1
        assert results[0].tagset == frozenset({"a", "b"})
        assert bolt.drain_results() == []

    def test_report_round_timing_recorded(self):
        bolt, _ = make_calculator(report_interval=10.0)
        bolt.execute(notification(["a", "b"], timestamp=1.0))
        bolt.tick(11.0)
        assert bolt.report_rounds == 1
        assert bolt.report_seconds > 0.0
        bolt.tick(100.0)  # nothing observed: the empty round is not counted
        assert bolt.report_rounds == 1


class TestDeltaCalculatorBolt:
    """In-stream suppression and drain-time re-assertion of the delta
    engine at the bolt level."""

    def _run_rounds(self, bolt, collector, rounds):
        """Feed identical rounds through tick-driven reports; returns the
        COEFFICIENTS payloads emitted in-stream."""
        emitted = []
        for index in range(rounds):
            timestamp = 10.0 * index + 1.0
            bolt.execute(notification(["a", "b"], timestamp=timestamp))
            bolt.execute(notification(["a", "b"], timestamp=timestamp))
            bolt.tick(10.0 * (index + 1) + 5.0)
            for batch in collector.drain():
                for message in batch.messages:
                    assert message.stream == COEFFICIENTS
                    emitted.append(message["results"])
        return emitted

    def test_recurring_rounds_ship_once_and_replay_at_drain(self):
        bolt, collector = make_calculator(
            report_interval=10.0, reporting_engine="delta"
        )
        emitted = self._run_rounds(bolt, collector, rounds=3)
        # Round 1 ships the triple; rounds 2 and 3 are clean -> suppressed.
        assert len(emitted) == 1
        (triple,) = emitted[0]
        assert triple[0] == frozenset({"a", "b"})
        assert bolt.coefficients_deferred == 2
        final, replays = bolt.drain_payload()
        assert final == []  # nothing observed since the last report
        assert replays == [(triple, 2)]
        # The deferred buffer empties with the drain.
        assert bolt.drain_payload() == ([], [])

    def test_drained_tracker_state_matches_ship_everything_engine(self):
        delta_bolt, delta_collector = make_calculator(
            report_interval=10.0, reporting_engine="delta"
        )
        scratch_bolt, scratch_collector = make_calculator(
            report_interval=10.0, reporting_engine="scratch"
        )
        delta_tracker, scratch_tracker = TrackerBolt(), TrackerBolt()
        for bolt, collector, tracker in (
            (delta_bolt, delta_collector, delta_tracker),
            (scratch_bolt, scratch_collector, scratch_tracker),
        ):
            for payload in self._run_rounds(bolt, collector, rounds=3):
                tracker.ingest(payload)
            final, replays = bolt.drain_payload()
            tracker.ingest(final)
            tracker.ingest_repeated(replays)
        assert delta_tracker.coefficients() == scratch_tracker.coefficients()
        assert delta_tracker.supports() == scratch_tracker.supports()
        assert delta_tracker.reports_received == scratch_tracker.reports_received
        assert delta_tracker.duplicate_reports == scratch_tracker.duplicate_reports

    def test_drain_triples_expands_replays(self):
        bolt, collector = make_calculator(
            report_interval=10.0, reporting_engine="delta"
        )
        self._run_rounds(bolt, collector, rounds=3)
        triples = bolt.drain_triples()
        assert len(triples) == 2  # the two suppressed repeats, expanded
        assert len(set(triples)) == 1

    def test_release_delta_state(self):
        bolt, collector = make_calculator(
            report_interval=10.0, reporting_engine="delta"
        )
        self._run_rounds(bolt, collector, rounds=2)
        assert bolt.calculator.carry_stats["carry_size"] > 0
        bolt.release_delta_state()
        assert bolt.calculator.carry_stats["carry_size"] == 0


class TestTrackerBolt:
    def test_keeps_coefficient_with_max_support(self):
        tracker = TrackerBolt()
        tracker.observe(JaccardResult(frozenset({"a", "b"}), 0.4, support=2))
        tracker.observe(JaccardResult(frozenset({"a", "b"}), 0.6, support=5))
        tracker.observe(JaccardResult(frozenset({"a", "b"}), 0.1, support=1))
        assert tracker.coefficients()[frozenset({"a", "b"})] == 0.6
        assert tracker.supports()[frozenset({"a", "b"})] == 5
        assert tracker.duplicate_reports == 2

    def test_execute_unpacks_batches(self):
        tracker = TrackerBolt()
        tracker.execute(
            COEFFICIENTS.message(
                results=[
                    (frozenset({"a", "b"}), 0.5, 3),
                    (frozenset({"c", "d"}), 0.25, 1),
                ],
                timestamp=0.0,
            )
        )
        assert len(tracker) == 2
        assert tracker.reports_received == 2

    def test_min_support_filter(self):
        tracker = TrackerBolt()
        tracker.observe(JaccardResult(frozenset({"a", "b"}), 0.5, support=1))
        tracker.observe(JaccardResult(frozenset({"c", "d"}), 0.5, support=4))
        assert set(tracker.coefficients(min_support=2)) == {frozenset({"c", "d"})}

    def test_other_streams_ignored(self):
        tracker = TrackerBolt()
        tracker.execute(OTHER.message(results=[]))
        assert tracker.reports_received == 0


class TestTrackerIngestRepeated:
    """ingest_repeated((triple, count)) must be indistinguishable from
    ingesting the triple count times (the delta drain's contract)."""

    TRIPLES = [
        (frozenset({"a", "b"}), 0.5, 3),
        (frozenset({"a", "b"}), 0.25, 1),   # lower support: never wins
        (frozenset({"c", "d"}), 0.75, 6),
        (frozenset({"a", "b"}), 0.9, 9),    # higher support: wins
    ]

    def test_matches_sequential_ingest(self):
        sequential, compact = TrackerBolt(), TrackerBolt()
        for triple in self.TRIPLES:
            for _ in range(4):
                sequential.ingest([triple])
        compact.ingest_repeated([(triple, 4) for triple in self.TRIPLES])
        assert sequential.coefficients() == compact.coefficients()
        assert sequential.supports() == compact.supports()
        assert sequential.reports_received == compact.reports_received
        assert sequential.duplicate_reports == compact.duplicate_reports

    def test_first_insertion_is_not_a_duplicate(self):
        tracker = TrackerBolt()
        tracker.ingest_repeated([((frozenset({"a", "b"}), 0.5, 2), 3)])
        assert tracker.reports_received == 3
        assert tracker.duplicate_reports == 2
        assert len(tracker) == 1

    def test_non_positive_counts_ignored(self):
        tracker = TrackerBolt()
        tracker.ingest_repeated([
            ((frozenset({"a", "b"}), 0.5, 2), 0),
            ((frozenset({"c", "d"}), 0.5, 2), -1),
        ])
        assert len(tracker) == 0
        assert tracker.reports_received == 0


class TestCoefficientView:
    """The lazy mapping view over the Tracker's dedup table."""

    def _tracker(self):
        tracker = TrackerBolt()
        tracker.ingest(
            [
                (frozenset({"a", "b"}), 0.5, 3),
                (frozenset({"c", "d"}), 0.25, 1),
                (frozenset({"e", "f"}), 0.75, 6),
            ]
        )
        return tracker

    def test_view_probes_without_copying(self):
        tracker = self._tracker()
        view = tracker.coefficient_view()
        assert view[frozenset({"a", "b"})] == 0.5
        assert frozenset({"c", "d"}) in view
        assert frozenset({"x"}) not in view
        assert len(view) == 3
        assert dict(view) == tracker.coefficients()

    def test_view_reflects_later_ingests(self):
        tracker = self._tracker()
        view = tracker.coefficient_view()
        tracker.ingest([(frozenset({"a", "b"}), 0.9, 10)])
        assert view[frozenset({"a", "b"})] == 0.9  # live, not a snapshot

    def test_min_support_filters_transparently(self):
        tracker = self._tracker()
        view = tracker.coefficient_view(min_support=3)
        assert frozenset({"c", "d"}) not in view
        with pytest.raises(KeyError):
            view[frozenset({"c", "d"})]
        assert len(view) == 2
        assert set(view) == {frozenset({"a", "b"}), frozenset({"e", "f"})}

    def test_filtered_length_recomputed_after_ingest(self):
        tracker = self._tracker()
        view = tracker.coefficient_view(min_support=3)
        assert len(view) == 2
        tracker.ingest([(frozenset({"g", "h"}), 0.1, 9)])
        assert len(view) == 3

    def test_iter_coefficients_streams_pairs(self):
        tracker = self._tracker()
        pairs = dict(tracker.iter_coefficients(min_support=2))
        assert pairs == {
            frozenset({"a", "b"}): 0.5,
            frozenset({"e", "f"}): 0.75,
        }
