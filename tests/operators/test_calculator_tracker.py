"""Unit tests for the Calculator and Tracker bolts."""

import pytest

from repro.core.jaccard import JaccardResult
from repro.operators.calculator import CalculatorBolt
from repro.operators.streams import COEFFICIENTS, NOTIFICATIONS
from repro.operators.tracker import TrackerBolt
from repro.streamsim.tuples import OutputCollector, TupleMessage


def make_calculator(report_interval=10.0):
    bolt = CalculatorBolt(report_interval=report_interval)
    collector = OutputCollector("calculator", 0)
    bolt.collector = collector
    return bolt, collector


def notification(tags, timestamp=0.0):
    return TupleMessage(
        values={"tags": frozenset(tags), "timestamp": timestamp}, stream=NOTIFICATIONS
    )


class TestCalculatorBolt:
    def test_invalid_report_interval(self):
        with pytest.raises(ValueError):
            CalculatorBolt(report_interval=0)

    def test_counts_notifications(self):
        bolt, _ = make_calculator()
        bolt.execute(notification(["a", "b"]))
        bolt.execute(notification(["a", "b"]))
        assert bolt.notifications_received == 2
        assert bolt.calculator.coefficient(["a", "b"]) == 1.0

    def test_other_streams_ignored(self):
        bolt, _ = make_calculator()
        bolt.execute(TupleMessage(values={"tags": ["a"]}, stream="other"))
        assert bolt.notifications_received == 0

    def test_tick_emits_batched_report_and_resets(self):
        bolt, collector = make_calculator(report_interval=10.0)
        bolt.execute(notification(["a", "b"], timestamp=1.0))
        bolt.tick(5.0)
        assert collector.drain() == []  # interval not reached
        bolt.tick(11.0)
        (emission,) = collector.drain()
        assert emission.message.stream == COEFFICIENTS
        results = emission.message["results"]
        assert (frozenset({"a", "b"}), 1.0, 1) in results
        # counters were reset
        assert bolt.calculator.observations == 0

    def test_no_report_when_nothing_observed(self):
        bolt, collector = make_calculator(report_interval=1.0)
        bolt.tick(100.0)
        assert collector.drain() == []

    def test_drain_results_returns_remaining(self):
        bolt, _ = make_calculator()
        bolt.execute(notification(["a", "b"]))
        results = bolt.drain_results()
        assert len(results) == 1
        assert results[0].tagset == frozenset({"a", "b"})
        assert bolt.drain_results() == []


class TestTrackerBolt:
    def test_keeps_coefficient_with_max_support(self):
        tracker = TrackerBolt()
        tracker.observe(JaccardResult(frozenset({"a", "b"}), 0.4, support=2))
        tracker.observe(JaccardResult(frozenset({"a", "b"}), 0.6, support=5))
        tracker.observe(JaccardResult(frozenset({"a", "b"}), 0.1, support=1))
        assert tracker.coefficients()[frozenset({"a", "b"})] == 0.6
        assert tracker.supports()[frozenset({"a", "b"})] == 5
        assert tracker.duplicate_reports == 2

    def test_execute_unpacks_batches(self):
        tracker = TrackerBolt()
        tracker.execute(
            TupleMessage(
                values={
                    "results": [
                        (frozenset({"a", "b"}), 0.5, 3),
                        (frozenset({"c", "d"}), 0.25, 1),
                    ],
                    "timestamp": 0.0,
                },
                stream=COEFFICIENTS,
            )
        )
        assert len(tracker) == 2
        assert tracker.reports_received == 2

    def test_min_support_filter(self):
        tracker = TrackerBolt()
        tracker.observe(JaccardResult(frozenset({"a", "b"}), 0.5, support=1))
        tracker.observe(JaccardResult(frozenset({"c", "d"}), 0.5, support=4))
        assert set(tracker.coefficients(min_support=2)) == {frozenset({"c", "d"})}

    def test_other_streams_ignored(self):
        tracker = TrackerBolt()
        tracker.execute(TupleMessage(values={"results": []}, stream="other"))
        assert tracker.reports_received == 0
