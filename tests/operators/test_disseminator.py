"""Unit tests for the Disseminator bolt (routing, dynamics, monitoring)."""

import pytest

from repro.operators.disseminator import (
    DisseminatorBolt,
    REASON_BOOTSTRAP,
    REASON_COMMUNICATION,
    REASON_LOAD,
)
from repro.operators.streams import (
    MISSING_TAGSETS,
    NOTIFICATIONS,
    PARTITIONS,
    REPARTITION_REQUESTS,
    SINGLE_ADDITIONS,
    TAGSETS,
)
from repro.streamsim.tuples import OutputCollector


def make_disseminator(k=2, calculator_tasks=(100, 101), **kwargs):
    defaults = dict(
        repartition_threshold=0.5,
        single_addition_threshold=3,
        quality_check_interval=10,
        bootstrap_documents=5,
    )
    defaults.update(kwargs)
    bolt = DisseminatorBolt(k=k, **defaults)
    bolt._calculator_tasks = list(calculator_tasks)
    collector = OutputCollector("disseminator", 0)
    bolt.collector = collector
    return bolt, collector


def drain_flat(collector):
    """Flatten drained emission batches to (message, direct_target) pairs."""
    flat = []
    for batch in collector.drain():
        targets = batch.targets or [None] * len(batch.messages)
        flat.extend(zip(batch.messages, targets))
    return flat


def on_stream(pairs, schema):
    return [(message, target) for message, target in pairs if message.schema is schema]


def notification_tags(message):
    """The routed sub-tagset of a single-entry notification message."""
    (entry,) = message["batch"]
    return entry[0]


def tagset_message(tags, timestamp=0.0):
    return TAGSETS.message(tagset=frozenset(tags), timestamp=timestamp)


def partitions_message(tag_sets, avg_com=1.0, max_load=0.5, epoch=1):
    return PARTITIONS.message(
        epoch=epoch,
        tag_sets=[frozenset(t) for t in tag_sets],
        loads=[1] * len(tag_sets),
        avg_com=avg_com,
        max_load=max_load,
        timestamp=0.0,
    )


def install(bolt, collector, tag_sets, **kwargs):
    bolt.execute(partitions_message(tag_sets, **kwargs))
    collector.drain()


class TestValidation:
    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            DisseminatorBolt(k=2, repartition_threshold=-1)
        with pytest.raises(ValueError):
            DisseminatorBolt(k=2, single_addition_threshold=0)


class TestBootstrap:
    def test_requests_partitions_after_bootstrap_documents(self):
        bolt, collector = make_disseminator(bootstrap_documents=3)
        for i in range(3):
            bolt.execute(tagset_message(["a"], timestamp=float(i)))
        requests = on_stream(drain_flat(collector), REPARTITION_REQUESTS)
        assert len(requests) == 1
        assert requests[0][0]["reason"] == REASON_BOOTSTRAP
        # Bootstrap does not count as a repartition in the metrics.
        assert bolt.metrics.repartitions == []

    def test_no_duplicate_request_while_waiting(self):
        bolt, collector = make_disseminator(bootstrap_documents=2)
        for i in range(6):
            bolt.execute(tagset_message(["a"]))
        requests = on_stream(drain_flat(collector), REPARTITION_REQUESTS)
        assert len(requests) == 1

    def test_unrouted_documents_counted(self):
        bolt, collector = make_disseminator(bootstrap_documents=100)
        bolt.execute(tagset_message(["a"]))
        assert bolt.metrics.unrouted_tagsets == 1


class TestRouting:
    def test_notifications_sent_to_owning_calculators(self):
        bolt, collector = make_disseminator()
        install(bolt, collector, [{"a", "b"}, {"b", "c"}])
        bolt.execute(tagset_message(["a", "b", "c"]))
        notifications = on_stream(drain_flat(collector), NOTIFICATIONS)
        assert len(notifications) == 2
        targets = {
            target: notification_tags(message) for message, target in notifications
        }
        assert targets[100] == frozenset({"a", "b"})
        assert targets[101] == frozenset({"b", "c"})
        assert bolt.metrics.communication.average == pytest.approx(2.0)
        assert bolt.metrics.load.loads(2) == [1, 1]

    def test_unknown_tags_not_routed(self):
        bolt, collector = make_disseminator()
        install(bolt, collector, [{"a"}, {"b"}])
        bolt.execute(tagset_message(["zzz"]))
        assert on_stream(drain_flat(collector), NOTIFICATIONS) == []
        assert bolt.metrics.unrouted_tagsets == 1

    def test_stale_partition_epoch_ignored(self):
        bolt, collector = make_disseminator()
        install(bolt, collector, [{"a"}, {"b"}], epoch=5)
        bolt.execute(partitions_message([{"c"}, {"d"}], epoch=4))
        assert bolt.assignment.covers({"a"})
        assert not bolt.assignment.covers({"c"})


class TestSingleAdditionFlow:
    def test_uncovered_tagset_reported_after_sn_occurrences(self):
        bolt, collector = make_disseminator(single_addition_threshold=3)
        install(bolt, collector, [{"a"}, {"b"}])
        for _ in range(3):
            bolt.execute(tagset_message(["a", "b"]))
        missing = on_stream(drain_flat(collector), MISSING_TAGSETS)
        assert len(missing) == 1
        assert missing[0][0]["tagset"] == frozenset({"a", "b"})
        assert bolt.metrics.single_addition_requests == 1

    def test_not_rerequested_while_pending(self):
        bolt, collector = make_disseminator(single_addition_threshold=2)
        install(bolt, collector, [{"a"}, {"b"}])
        for _ in range(6):
            bolt.execute(tagset_message(["a", "b"]))
        missing = on_stream(drain_flat(collector), MISSING_TAGSETS)
        assert len(missing) == 1

    def test_single_addition_updates_index(self):
        bolt, collector = make_disseminator()
        install(bolt, collector, [{"a"}, {"b"}])
        bolt.execute(
            SINGLE_ADDITIONS.message(
                tagset=frozenset({"a", "b"}), partition_index=0, timestamp=0.0
            )
        )
        assert bolt.assignment.covers({"a", "b"})
        bolt.execute(tagset_message(["a", "b"]))
        notifications = on_stream(drain_flat(collector), NOTIFICATIONS)
        # Calculator 100 now owns both tags and receives the full tagset, so
        # the coefficient becomes computable; calculator 101 still owns "b"
        # and keeps receiving its share of the document.
        targets = {
            target: notification_tags(message) for message, target in notifications
        }
        assert targets[100] == frozenset({"a", "b"})
        assert targets.get(101, frozenset()) <= frozenset({"b"})


class TestQualityMonitoring:
    def test_communication_degradation_triggers_repartition(self):
        bolt, collector = make_disseminator(
            quality_check_interval=5, repartition_threshold=0.5
        )
        # Reference communication 1.0; tag "shared" sits in both partitions.
        install(
            bolt, collector, [{"shared", "a"}, {"shared", "b"}], avg_com=1.0,
            max_load=1.0,
        )
        for i in range(5):
            bolt.execute(tagset_message(["shared"], timestamp=float(i)))
        requests = on_stream(drain_flat(collector), REPARTITION_REQUESTS)
        assert len(requests) == 1
        assert bolt.metrics.repartitions[0].reason == REASON_COMMUNICATION

    def test_load_degradation_triggers_repartition(self):
        bolt, collector = make_disseminator(
            quality_check_interval=5, repartition_threshold=0.5
        )
        install(bolt, collector, [{"a"}, {"b"}], avg_com=1.0, max_load=0.5)
        # All documents go to partition 0 -> max load share 1.0 > 0.75.
        for i in range(5):
            bolt.execute(tagset_message(["a"], timestamp=float(i)))
        requests = on_stream(drain_flat(collector), REPARTITION_REQUESTS)
        assert len(requests) == 1
        assert bolt.metrics.repartitions[0].reason == REASON_LOAD

    def test_healthy_partitions_do_not_trigger(self):
        bolt, collector = make_disseminator(
            quality_check_interval=4, repartition_threshold=0.5
        )
        install(bolt, collector, [{"a"}, {"b"}], avg_com=1.0, max_load=0.6)
        for tags in (["a"], ["b"], ["a"], ["b"]):
            bolt.execute(tagset_message(tags))
        assert on_stream(drain_flat(collector), REPARTITION_REQUESTS) == []
        # A snapshot is still recorded for the time series.
        assert len(bolt.metrics.history) >= 2

    def test_history_records_snapshots(self):
        bolt, collector = make_disseminator(quality_check_interval=3)
        install(bolt, collector, [{"a"}, {"b"}])
        for _ in range(3):
            bolt.execute(tagset_message(["a"]))
        assert any(s.calculator_loads != (0, 0) for s in bolt.metrics.history)
