"""Unit tests for the centralised exact baseline."""

import pytest

from repro.operators.centralized import CentralizedCalculatorBolt
from repro.operators.streams import TAGSETS
from repro.streamsim.tuples import stream_schema

OTHER = stream_schema("x", ("doc_id", "timestamp", "tagset"))


def tagset_message(tags, doc_id):
    return TAGSETS.message(tagset=frozenset(tags), doc_id=doc_id, timestamp=0.0)


class TestCentralizedCalculator:
    def test_invalid_min_occurrences(self):
        with pytest.raises(ValueError):
            CentralizedCalculatorBolt(min_occurrences=0)

    def test_qualifying_tagsets_threshold(self):
        baseline = CentralizedCalculatorBolt(min_occurrences=3)
        for doc_id in range(4):
            baseline.execute(tagset_message(["a", "b"], doc_id))
        for doc_id in range(4, 6):
            baseline.execute(tagset_message(["c", "d"], doc_id))
        qualifying = baseline.qualifying_tagsets()
        assert frozenset({"a", "b"}) in qualifying
        assert frozenset({"c", "d"}) not in qualifying

    def test_exact_jaccard_over_whole_run(self):
        baseline = CentralizedCalculatorBolt(min_occurrences=1)
        baseline.execute(tagset_message(["a", "b"], 0))
        baseline.execute(tagset_message(["a", "b"], 1))
        baseline.execute(tagset_message(["a"], 2))
        baseline.execute(tagset_message(["b", "c"], 3))
        # docs with a and b: {0,1}; docs with a or b: {0,1,2,3}
        assert baseline.jaccard(frozenset({"a", "b"})) == pytest.approx(0.5)

    def test_ground_truth_mapping(self):
        baseline = CentralizedCalculatorBolt(min_occurrences=1)
        for doc_id in range(2):
            baseline.execute(tagset_message(["a", "b"], doc_id))
        truth = baseline.ground_truth()
        assert truth[frozenset({"a", "b"})] == 1.0

    def test_subsets_of_larger_tagsets_counted(self):
        baseline = CentralizedCalculatorBolt(min_occurrences=1)
        for doc_id in range(2):
            baseline.execute(tagset_message(["a", "b", "c"], doc_id))
        assert baseline.occurrence_count(frozenset({"a", "b"})) == 2
        assert frozenset({"b", "c"}) in baseline.qualifying_tagsets()

    def test_max_subset_size_limits_enumeration(self):
        baseline = CentralizedCalculatorBolt(min_occurrences=1, max_subset_size=2)
        baseline.execute(tagset_message(["a", "b", "c"], 0))
        sizes = {len(t) for t in baseline.qualifying_tagsets()}
        assert sizes <= {2}

    def test_documents_seen(self):
        baseline = CentralizedCalculatorBolt()
        baseline.execute(tagset_message(["a"], 0))
        assert baseline.documents_seen == 1

    def test_other_streams_ignored(self):
        baseline = CentralizedCalculatorBolt()
        baseline.execute(OTHER.message(tagset=frozenset({"a"})))
        assert baseline.documents_seen == 0
