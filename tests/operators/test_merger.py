"""Unit tests for the Merger bolt."""

import pytest

from repro.operators.merger import MergerBolt
from repro.operators.streams import (
    MISSING_TAGSETS,
    PARTIAL_PARTITIONS,
    PARTITIONS,
    SINGLE_ADDITIONS,
)
from repro.partitioning import DisjointSetsPartitioner, SCLPartitioner
from repro.streamsim.tuples import OutputCollector


def make_merger(algorithm, k=2, expected_partials=1):
    merger = MergerBolt(algorithm=algorithm, k=k)
    merger._expected_partials = expected_partials
    collector = OutputCollector("merger", 0)
    merger.collector = collector
    return merger, collector


def partial_message(tag_sets, loads, window_counts, epoch=1, timestamp=0.0):
    return PARTIAL_PARTITIONS.message(
        epoch=epoch,
        partitioner_task=0,
        tag_sets=[frozenset(t) for t in tag_sets],
        loads=loads,
        window_counts=window_counts,
        timestamp=timestamp,
    )


def missing_message(tags, count=3):
    return MISSING_TAGSETS.message(tagset=frozenset(tags), count=count, timestamp=0.0)


def drain_one(collector):
    (batch,) = collector.drain()
    (message,) = batch.messages
    return message


class TestDisjointSetsMerging:
    def test_recombines_split_components(self):
        """Pieces from different Partitioners that share tags merge back."""
        merger, collector = make_merger(
            DisjointSetsPartitioner(), k=2, expected_partials=2
        )
        merger.execute(
            partial_message([{"a", "b"}], [3], {("a", "b"): 3}, epoch=1)
        )
        assert list(collector.drain()) == []  # waiting for the second partial
        merger.execute(
            partial_message(
                [{"b", "c"}, {"x", "y"}], [2, 4], {("b", "c"): 2, ("x", "y"): 4}, epoch=1
            )
        )
        message = drain_one(collector)
        assert message.stream == PARTITIONS
        groups = sorted(sorted(tags) for tags in message["tag_sets"] if tags)
        assert groups == [["a", "b", "c"], ["x", "y"]]

    def test_reference_quality_values_emitted(self):
        merger, collector = make_merger(DisjointSetsPartitioner(), k=2)
        merger.execute(
            partial_message(
                [{"a", "b"}, {"x", "y"}], [3, 2], {("a", "b"): 3, ("x", "y"): 2}
            )
        )
        message = drain_one(collector)
        assert message["avg_com"] == pytest.approx(1.0)
        assert 0.0 < message["max_load"] <= 1.0

    def test_empty_partials_emit_empty_assignment(self):
        merger, collector = make_merger(DisjointSetsPartitioner(), k=3)
        merger.execute(partial_message([], [], {}))
        message = drain_one(collector)
        assert message["tag_sets"] == [frozenset()] * 3


class TestSetCoverMerging:
    def test_treats_received_partitions_as_tagsets(self):
        merger, collector = make_merger(SCLPartitioner(), k=2)
        merger.execute(
            partial_message(
                [{"a", "b"}, {"c", "d"}, {"e", "f"}],
                [5, 4, 3],
                {("a", "b"): 5, ("c", "d"): 4, ("e", "f"): 3},
            )
        )
        message = drain_one(collector)
        tag_sets = [tags for tags in message["tag_sets"] if tags]
        assert len(tag_sets) == 2
        covered = set().union(*tag_sets)
        assert covered == {"a", "b", "c", "d", "e", "f"}


class TestSingleAdditions:
    def test_before_any_merge_is_ignored(self):
        merger, collector = make_merger(DisjointSetsPartitioner(), k=2)
        merger.execute(missing_message({"new", "pair"}))
        assert list(collector.drain()) == []
        assert merger.single_additions == 0

    def test_addition_assigns_and_notifies(self):
        merger, collector = make_merger(DisjointSetsPartitioner(), k=2)
        merger.execute(
            partial_message(
                [{"a", "b"}, {"x", "y"}], [3, 2], {("a", "b"): 3, ("x", "y"): 2}
            )
        )
        collector.drain()
        merger.execute(missing_message({"a", "newtag"}))
        message = drain_one(collector)
        assert message.stream == SINGLE_ADDITIONS
        assert message["tagset"] == frozenset({"a", "newtag"})
        assert merger.single_additions == 1
        # The merger's own assignment now covers the tagset.
        assert merger._current_assignment.covers({"a", "newtag"})

    def test_already_covered_tagset_reuses_partition(self):
        merger, collector = make_merger(DisjointSetsPartitioner(), k=2)
        merger.execute(
            partial_message([{"a", "b"}], [3], {("a", "b"): 3})
        )
        collector.drain()
        merger.execute(missing_message({"a", "b"}))
        message = drain_one(collector)
        assert message.stream == SINGLE_ADDITIONS
        assert merger.single_additions == 0  # nothing new was added
