"""Unit tests for the Parser bolt."""

from repro.operators.parser import ParserBolt, extract_hashtags
from repro.operators.streams import TAGSETS, TWEETS
from repro.streamsim.tuples import OutputCollector


def make_parser(**kwargs):
    parser = ParserBolt(**kwargs)
    collector = OutputCollector("parser", 0)
    parser.collector = collector
    parser.component_name = "parser"
    return parser, collector


class TestExtractHashtags:
    def test_extracts_and_normalises(self):
        assert extract_hashtags("Go #Munich! #beer #BEER") == frozenset(
            {"munich", "beer"}
        )

    def test_no_hashtags(self):
        assert extract_hashtags("plain text") == frozenset()


class TestParserBolt:
    def test_emits_tagset_tuple(self):
        parser, collector = make_parser()
        parser.execute(TWEETS.message(doc_id=1, timestamp=2.0, tags=["A", "#b"]))
        (batch,) = collector.drain()
        (message,) = batch.messages
        assert message.stream == TAGSETS
        assert message["tagset"] == frozenset({"a", "b"})
        assert message["timestamp"] == 2.0
        assert parser.parsed == 1

    def test_untagged_documents_dropped(self):
        parser, collector = make_parser()
        parser.execute(TWEETS.message(doc_id=1, tags=[], text="hi"))
        assert list(collector.drain()) == []
        assert parser.dropped_untagged == 1

    def test_falls_back_to_text_hashtags(self):
        parser, collector = make_parser()
        parser.execute(TWEETS.message(doc_id=1, tags=[], text="hello #World"))
        (batch,) = collector.drain()
        assert batch.messages[0]["tagset"] == frozenset({"world"})

    def test_truncates_spammy_documents(self):
        parser, collector = make_parser(max_tags_per_document=3)
        parser.execute(TWEETS.message(doc_id=1, tags=[f"t{i}" for i in range(10)]))
        (batch,) = collector.drain()
        assert len(batch.messages[0]["tagset"]) == 3
        assert parser.truncated == 1
