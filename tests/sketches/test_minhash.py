"""Unit and property tests for MinHash and MinHash LSH."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.jaccard import exact_jaccard
from repro.sketches.minhash import (
    MinHash,
    MinHashLSH,
    candidate_probability,
    estimate_pairwise_jaccard,
)


class TestMinHash:
    def test_identical_sets_estimate_one(self):
        first = MinHash.from_items(["a", "b", "c"])
        second = MinHash.from_items(["a", "b", "c"])
        assert first.jaccard(second) == 1.0

    def test_disjoint_sets_estimate_near_zero(self):
        first = MinHash.from_items([f"a{i}" for i in range(50)], num_perm=256)
        second = MinHash.from_items([f"b{i}" for i in range(50)], num_perm=256)
        assert first.jaccard(second) < 0.1

    def test_estimate_close_to_true_jaccard(self):
        universe = [f"item{i}" for i in range(200)]
        set_a = set(universe[:120])
        set_b = set(universe[60:180])
        truth = len(set_a & set_b) / len(set_a | set_b)
        estimate = MinHash.from_items(set_a, num_perm=512).jaccard(
            MinHash.from_items(set_b, num_perm=512)
        )
        assert estimate == pytest.approx(truth, abs=0.1)

    def test_incompatible_signatures_rejected(self):
        with pytest.raises(ValueError):
            MinHash(num_perm=64).jaccard(MinHash(num_perm=128))
        with pytest.raises(ValueError):
            MinHash(seed=1).jaccard(MinHash(seed=2))

    def test_merge_acts_as_union(self):
        left = MinHash.from_items(["a", "b"])
        right = MinHash.from_items(["c", "d"])
        union = MinHash.from_items(["a", "b", "c", "d"])
        left.merge(right)
        assert left.jaccard(union) == 1.0

    def test_empty_signature(self):
        signature = MinHash()
        assert signature.is_empty()
        signature.update("x")
        assert not signature.is_empty()

    def test_invalid_num_perm(self):
        with pytest.raises(ValueError):
            MinHash(num_perm=0)

    def test_copy_is_independent(self):
        original = MinHash.from_items(["a"])
        clone = original.copy()
        clone.update("b")
        assert original.jaccard(clone) < 1.0 or original.is_empty() is False


class TestMinHashLSH:
    def test_bands_must_divide_permutations(self):
        with pytest.raises(ValueError):
            MinHashLSH(num_perm=100, bands=33)

    def test_query_finds_similar_sets(self):
        lsh = MinHashLSH(num_perm=128, bands=32)
        base = [f"item{i}" for i in range(40)]
        lsh.insert("base", MinHash.from_items(base))
        near = MinHash.from_items(base[:38] + ["x", "y"])
        far = MinHash.from_items([f"other{i}" for i in range(40)])
        assert "base" in lsh.query(near)
        assert "base" not in lsh.query(far)

    def test_duplicate_key_rejected(self):
        lsh = MinHashLSH(num_perm=64, bands=16)
        lsh.insert("a", MinHash.from_items(["x"], num_perm=64))
        with pytest.raises(KeyError):
            lsh.insert("a", MinHash.from_items(["y"], num_perm=64))

    def test_wrong_signature_length_rejected(self):
        lsh = MinHashLSH(num_perm=64, bands=16)
        with pytest.raises(ValueError):
            lsh.insert("a", MinHash(num_perm=128))

    def test_candidate_pairs_symmetry(self):
        lsh = MinHashLSH(num_perm=64, bands=16)
        items = [f"i{i}" for i in range(30)]
        lsh.insert("a", MinHash.from_items(items, num_perm=64))
        lsh.insert("b", MinHash.from_items(items, num_perm=64))
        assert ("a", "b") in lsh.candidate_pairs()

    def test_len_and_contains(self):
        lsh = MinHashLSH(num_perm=64, bands=16)
        lsh.insert("a", MinHash.from_items(["x"], num_perm=64))
        assert len(lsh) == 1
        assert "a" in lsh


class TestCandidateProbability:
    def test_monotone_in_similarity(self):
        low = candidate_probability(0.2, bands=32, rows=4)
        high = candidate_probability(0.8, bands=32, rows=4)
        assert high > low

    def test_bounds(self):
        assert candidate_probability(0.0, 32, 4) == 0.0
        assert candidate_probability(1.0, 32, 4) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            candidate_probability(1.5, 32, 4)


class TestPairwiseEstimates:
    def test_estimates_for_all_pairs(self):
        estimates = estimate_pairwise_jaccard([{"a", "b"}, {"b", "c"}, {"x"}])
        assert set(estimates) == {(0, 1), (0, 2), (1, 2)}

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.sets(st.integers(0, 40), min_size=5, max_size=30),
            min_size=2,
            max_size=4,
        )
    )
    def test_estimate_within_tolerance_of_truth(self, sets):
        estimates = estimate_pairwise_jaccard(sets, num_perm=256)
        for (i, j), estimate in estimates.items():
            truth = exact_jaccard([sets[i], sets[j]])
            assert estimate == pytest.approx(truth, abs=0.25)
