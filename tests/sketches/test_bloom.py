"""Unit tests for the Bloom filter."""

import pytest

from repro.sketches.bloom import BloomFilter, optimal_parameters


class TestOptimalParameters:
    def test_reasonable_sizes(self):
        n_bits, n_hashes = optimal_parameters(1000, 0.01)
        assert n_bits > 1000
        assert 1 <= n_hashes <= 20

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            optimal_parameters(0, 0.01)
        with pytest.raises(ValueError):
            optimal_parameters(100, 1.5)


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(expected_items=500, false_positive_rate=0.01)
        items = [f"tag{i}" for i in range(500)]
        bloom.update(items)
        assert all(item in bloom for item in items)

    def test_false_positive_rate_is_bounded(self):
        bloom = BloomFilter(expected_items=1000, false_positive_rate=0.01)
        bloom.update(f"present{i}" for i in range(1000))
        false_positives = sum(
            1 for i in range(5000) if f"absent{i}" in bloom
        )
        assert false_positives / 5000 < 0.05

    def test_false_positives_exist_when_overfilled(self):
        """Overfilling the filter creates the spurious co-occurrences the
        paper warns about in Section 2."""
        bloom = BloomFilter(expected_items=20, false_positive_rate=0.01)
        bloom.update(f"present{i}" for i in range(2000))
        false_positives = sum(1 for i in range(2000) if f"absent{i}" in bloom)
        assert false_positives > 0

    def test_len_counts_insertions(self):
        bloom = BloomFilter(expected_items=10)
        bloom.add("a")
        bloom.add("a")
        assert len(bloom) == 2

    def test_fill_ratio_grows(self):
        bloom = BloomFilter(expected_items=100)
        assert bloom.fill_ratio == 0.0
        bloom.update(str(i) for i in range(100))
        assert 0.0 < bloom.fill_ratio < 1.0

    def test_estimated_false_positive_rate_monotone(self):
        bloom = BloomFilter(expected_items=100, false_positive_rate=0.01)
        early = bloom.estimated_false_positive_rate()
        bloom.update(str(i) for i in range(200))
        late = bloom.estimated_false_positive_rate()
        assert late > early

    def test_intersection_may_be_nonempty(self):
        bloom = BloomFilter(expected_items=50)
        bloom.update(["a", "b"])
        assert bloom.intersection_may_be_nonempty(["b", "zz"])
        assert not bloom.intersection_may_be_nonempty([])
