"""Unit tests for the sketch-backed Jaccard estimator."""

import numpy as np
import pytest

from repro.core.jaccard import exact_jaccard
from repro.sketches import MinHash, SketchJaccardEstimator


class TestMinHashExtensions:
    def test_spawn_shares_permutations_and_is_comparable(self):
        template = MinHash(num_perm=64, seed=3)
        left = template.spawn()
        right = template.spawn()
        assert left._a is template._a and left._b is template._b
        assert left.is_empty()
        left.update("x")
        right.update("x")
        assert left.jaccard(right) == 1.0

    def test_spawn_does_not_alias_values(self):
        template = MinHash(num_perm=32, seed=1)
        clone = template.spawn()
        clone.update("x")
        assert template.is_empty()

    def test_update_hashed_matches_update(self):
        from repro.sketches.minhash import _stable_hash

        direct = MinHash(num_perm=64, seed=5)
        hashed = MinHash(num_perm=64, seed=5)
        for item in ("a", "b", 17, ("t", 3)):
            direct.update(item)
            hashed.update_hashed(_stable_hash(item))
        assert np.array_equal(direct.values, hashed.values)

    def test_multiway_matches_pairwise_for_two_sets(self):
        first = MinHash.from_items(range(100), num_perm=128)
        second = MinHash.from_items(range(50, 150), num_perm=128)
        assert MinHash.jaccard_multiway([first, second]) == pytest.approx(
            first.jaccard(second)
        )

    def test_multiway_estimates_three_way_jaccard(self):
        rng = np.random.default_rng(9)
        universe = list(range(600))
        sets = [set(rng.choice(universe, size=300, replace=False)) for _ in range(3)]
        truth = len(set.intersection(*sets)) / len(set.union(*sets))
        signatures = [MinHash.from_items(s, num_perm=512) for s in sets]
        estimate = MinHash.jaccard_multiway(signatures)
        assert abs(estimate - truth) < 4.0 / np.sqrt(512)

    def test_multiway_rejects_incompatible_signatures(self):
        with pytest.raises(ValueError):
            MinHash.jaccard_multiway([MinHash(num_perm=32), MinHash(num_perm=64)])

    def test_multiway_edge_cases(self):
        assert MinHash.jaccard_multiway([]) == 0.0
        empty = MinHash(num_perm=16)
        assert MinHash.jaccard_multiway([empty]) == 0.0
        single = MinHash.from_items(["a"], num_perm=16)
        assert MinHash.jaccard_multiway([single]) == 1.0


class TestSketchJaccardEstimator:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SketchJaccardEstimator(num_perm=4)
        with pytest.raises(ValueError):
            SketchJaccardEstimator(max_subset_size=1)

    def test_identical_streams_estimate_one(self):
        estimator = SketchJaccardEstimator(num_perm=128)
        for doc_id in range(30):
            estimator.observe(["a", "b"], doc_id=doc_id)
        assert estimator.coefficient(["a", "b"]) == 1.0

    def test_estimate_within_error_bound_on_seeded_stream(self):
        """Estimates stay within the MinHash bound of exact_jaccard."""
        rng = np.random.default_rng(42)
        estimator = SketchJaccardEstimator(num_perm=512)
        tag_documents = {"x": set(), "y": set(), "z": set()}
        for doc_id in range(2000):
            tags = [tag for tag in ("x", "y", "z") if rng.random() < 0.4]
            if not tags:
                continue
            estimator.observe(tags, doc_id=doc_id)
            for tag in tags:
                tag_documents[tag].add(doc_id)
        for tagset in (("x", "y"), ("y", "z"), ("x", "y", "z")):
            truth = exact_jaccard([tag_documents[tag] for tag in tagset])
            estimate = estimator.coefficient(tagset)
            assert abs(estimate - truth) < 4.0 * estimator.error_bound

    def test_support_never_underestimates(self):
        estimator = SketchJaccardEstimator(num_perm=64)
        for doc_id in range(25):
            estimator.observe(["a", "b"], doc_id=doc_id)
        assert estimator.support(["a", "b"]) >= 25

    def test_report_mirrors_exact_interface(self):
        estimator = SketchJaccardEstimator(num_perm=64)
        for doc_id in range(10):
            estimator.observe(["a", "b", "c"], doc_id=doc_id)
        results = estimator.report(min_size=2, reset=False)
        tagsets = {result.tagset for result in results}
        assert frozenset({"a", "b"}) in tagsets
        assert frozenset({"a", "b", "c"}) in tagsets
        for result in results:
            assert result.jaccard == 1.0
            assert result.support >= 10

    def test_report_reset_clears_state(self):
        estimator = SketchJaccardEstimator(num_perm=64)
        estimator.observe(["a", "b"], doc_id=1)
        assert estimator.observations == 1
        assert estimator.report(reset=True)
        assert estimator.observations == 0
        assert estimator.tracked_tagsets == 0
        assert estimator.coefficient(["a", "b"]) == 0.0
        assert estimator.report(reset=True) == []

    def test_subset_size_cap(self):
        estimator = SketchJaccardEstimator(num_perm=64, max_subset_size=2)
        estimator.observe(["a", "b", "c"], doc_id=1)
        sizes = {len(result.tagset) for result in estimator.report(reset=False)}
        assert sizes == {2}

    def test_unknown_tags_report_zero(self):
        estimator = SketchJaccardEstimator(num_perm=64)
        estimator.observe(["a"], doc_id=1)
        assert estimator.coefficient(["a", "never_seen"]) == 0.0
