"""Unit and property tests for the Count-Min sketch."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sketches.countmin import CountMinSketch


class TestCountMinBasics:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CountMinSketch(epsilon=0)
        with pytest.raises(ValueError):
            CountMinSketch(delta=2)

    def test_negative_update_rejected(self):
        sketch = CountMinSketch()
        with pytest.raises(ValueError):
            sketch.add("a", -1)

    def test_unseen_item_estimates_zero_when_empty(self):
        sketch = CountMinSketch()
        assert sketch.estimate("never") == 0

    def test_estimate_never_underestimates(self):
        sketch = CountMinSketch(epsilon=0.01, delta=0.01)
        for i in range(200):
            sketch.add(f"item{i % 20}")
        for i in range(20):
            assert sketch.estimate(f"item{i}") >= 10

    def test_total_and_error_bound(self):
        sketch = CountMinSketch(epsilon=0.01)
        sketch.update(["a"] * 10 + ["b"] * 5)
        assert sketch.total == 15
        assert sketch.error_bound() == pytest.approx(0.15)

    def test_getitem(self):
        sketch = CountMinSketch()
        sketch.add("x", 3)
        assert sketch["x"] >= 3

    def test_estimate_jaccard(self):
        sketch = CountMinSketch()
        for _ in range(5):
            sketch.add(frozenset({"a", "b"}))
        assert sketch.estimate_jaccard({"a", "b"}, union_size=10) == pytest.approx(0.5)
        assert sketch.estimate_jaccard({"a", "b"}, union_size=0) == 0.0

    def test_estimate_jaccard_capped_at_one(self):
        sketch = CountMinSketch()
        for _ in range(50):
            sketch.add(frozenset({"a", "b"}))
        assert sketch.estimate_jaccard({"a", "b"}, union_size=10) == 1.0


class TestCountMinProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=300))
    def test_overestimation_within_bound(self, items):
        """CM estimates are >= true counts and within eps*N with high prob."""
        sketch = CountMinSketch(epsilon=0.01, delta=0.001)
        true_counts: dict[int, int] = {}
        for item in items:
            sketch.add(item)
            true_counts[item] = true_counts.get(item, 0) + 1
        for item, count in true_counts.items():
            estimate = sketch.estimate(item)
            assert estimate >= count
            assert estimate <= count + max(1, sketch.error_bound() * 10)
