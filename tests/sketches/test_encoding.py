"""Canonical sketch-key encoding: equal sets must always digest equally.

``repr`` of a frozenset follows set iteration order, which is hash-salt-
and probing-history-dependent — the source of a rare flake where Count-Min
under-estimated a pair count because ``add`` and ``estimate`` indexed
different cells for two equal frozensets.  These tests pin the canonical
encoding and the resulting sketch guarantees on set keys.
"""

import random
import string

from repro.sketches.bloom import BloomFilter
from repro.sketches.countmin import CountMinSketch
from repro.sketches.encoding import canonical_bytes


class TestCanonicalBytes:
    def test_set_encoding_is_sorted(self):
        assert canonical_bytes(frozenset(("b", "a"))) == b"'a'\x1f'b'"

    def test_set_and_frozenset_agree(self):
        assert canonical_bytes({"x", "y"}) == canonical_bytes(frozenset(("y", "x")))

    def test_distinct_sets_stay_distinct(self):
        assert canonical_bytes(frozenset(("ab",))) != canonical_bytes(
            frozenset(("a", "b"))
        )

    def test_non_sets_fall_back_to_repr(self):
        assert canonical_bytes(("b", "a")) == repr(("b", "a")).encode("utf-8")
        assert canonical_bytes(42) == b"42"


class TestSetKeyGuarantees:
    """The sketch guarantees must hold when equal set keys are built from
    differently ordered inputs (randomised — any order must work)."""

    def _random_pairs(self, n=300, seed=7):
        rng = random.Random(seed)
        alphabet = ["".join(rng.choices(string.ascii_lowercase, k=4)) for _ in range(60)]
        return [tuple(rng.sample(alphabet, 2)) for _ in range(n)]

    def test_countmin_never_underestimates_set_keys(self):
        sketch = CountMinSketch(epsilon=0.005, delta=0.01)
        pairs = self._random_pairs()
        for a, b in pairs:
            sketch.add(frozenset((a, b)))
        for a, b in pairs:
            assert sketch.estimate(frozenset((b, a))) >= 1

    def test_bloom_has_no_false_negatives_on_set_keys(self):
        bloom = BloomFilter(expected_items=500, false_positive_rate=0.01)
        pairs = self._random_pairs(seed=13)
        for a, b in pairs:
            bloom.add(frozenset((a, b)))
        for a, b in pairs:
            assert frozenset((b, a)) in bloom
