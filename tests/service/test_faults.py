"""Fault injection against the service daemon: pinned errors, no corruption.

Every fault the wire surface can see — a client that dies mid-request, a
garbage line, an oversize line, a wrong protocol version, a semantically
broken request, ingest after the drain started, a duplicate shutdown, a full
ingest queue — must produce its *pinned* error code (the contract from
``repro.service.protocol``) and must leave the run's state untouched: a
served run that absorbed every fault still drains to the exact same Tracker
table as a clean batch run over the same documents.
"""

import json
import socket

import pytest

from repro.operators import TrackerBolt, streams
from repro.pipeline import SystemConfig, TagCorrelationSystem
from repro.service import (
    MAX_LINE_BYTES,
    ServiceClient,
    ServiceDaemon,
    ServiceError,
)
from repro.workloads import TwitterLikeGenerator, WorkloadConfig

CONFIG = SystemConfig(
    algorithm="DS",
    k=3,
    n_partitioners=2,
    window_mode="count",
    window_size=300,
    bootstrap_documents=100,
    quality_check_interval=80,
    report_interval_seconds=30.0,
)


@pytest.fixture(scope="module")
def documents():
    config = WorkloadConfig(
        seed=7,
        n_topics=40,
        tags_per_topic=10,
        tweets_per_second=50.0,
        new_topic_rate=3.0,
        intra_topic_probability=0.9,
    )
    return TwitterLikeGenerator(config).generate(800)


@pytest.fixture(scope="module")
def clean_digest(documents):
    """Tracker digest of an untouched batch run — the corruption oracle."""
    system = TagCorrelationSystem(CONFIG)
    system.run(documents)
    tracker = next(
        bolt
        for bolt in system.cluster.instances_of(streams.TRACKER)
        if isinstance(bolt, TrackerBolt)
    )
    return tracker.snapshot(0).digest()


def _raw_exchange(address, payload: bytes) -> bytes:
    """Send raw bytes on a fresh connection; return the first response line."""
    host, port = address
    with socket.create_connection((host, port), timeout=10.0) as sock:
        sock.sendall(payload)
        reader = sock.makefile("rb")
        return reader.readline()


class TestFaultsLeaveNoTrace:
    """One daemon absorbs every wire-level fault mid-run, then must drain
    to the clean batch digest."""

    def test_faulted_run_drains_clean(self, documents, clean_digest):
        with ServiceDaemon(CONFIG) as daemon:
            address = daemon.address
            with ServiceClient(*address) as client:
                half = len(documents) // 2
                client.ingest(documents[:half], block=True, timeout=60.0)

                # --- client disconnect mid-batch: half a line, then gone.
                partial = json.dumps(
                    {"v": 1, "op": "ingest", "documents": [{"tags": ["a"]}]}
                ).encode()[:40]
                host, port = address
                with socket.create_connection((host, port), timeout=10.0) as sock:
                    sock.sendall(partial)  # no newline, then close

                # --- malformed line.
                response = json.loads(_raw_exchange(address, b"{not json\n"))
                assert response == {
                    "ok": False,
                    "code": "malformed",
                    "error": response["error"],
                }

                # --- not-an-object line.
                response = json.loads(_raw_exchange(address, b"[1,2,3]\n"))
                assert response["code"] == "malformed"

                # --- oversize line: refused, connection dropped.  Sized to
                # exactly the daemon's read cap so no unread bytes linger
                # (a close with unread data would RST the response away).
                prefix = b'{"v":1,"op":"ping","pad":"'
                big = prefix + b"x" * (MAX_LINE_BYTES + 2 - len(prefix))
                host, port = address
                with socket.create_connection((host, port), timeout=10.0) as sock:
                    sock.sendall(big)
                    reader = sock.makefile("rb")
                    response = json.loads(reader.readline())
                    assert response["code"] == "oversize"
                    assert reader.readline() == b""  # daemon hung up

                # --- wrong protocol version.
                response = json.loads(
                    _raw_exchange(address, b'{"v":99,"op":"ping"}\n')
                )
                assert response["code"] == "unsupported-version"

                # --- missing version.
                response = json.loads(_raw_exchange(address, b'{"op":"ping"}\n'))
                assert response["code"] == "unsupported-version"

                # --- unknown op.
                response = json.loads(
                    _raw_exchange(address, b'{"v":1,"op":"explode"}\n')
                )
                assert response["code"] == "unknown-op"

                # --- semantically broken requests, all pinned bad-request.
                for request in (
                    {"op": "ingest", "documents": [{"timestamp": 1.0}]},
                    {"op": "ingest", "documents": [{"tags": [1], "timestamp": 0}]},
                    {"op": "ingest", "documents": "nope"},
                    {"op": "ingest", "documents": [], "timeout": -1},
                    {"op": "query", "what": "top_k", "k": 0},
                    {"op": "query", "what": "top_k", "k": True},
                    {"op": "query", "what": "top_k", "min_support": -1},
                    {"op": "query", "what": "nope"},
                    {"op": "query", "what": "coefficient", "tags": []},
                    {"op": "track", "tagsets": []},
                    {"op": "track", "tagsets": [["ok"], [2]]},
                ):
                    with pytest.raises(ServiceError) as excinfo:
                        client.request(**request)
                    assert excinfo.value.code == "bad-request", request

                # --- the live connection survived every client-side error.
                assert client.ping()["ok"] is True

                # --- second half of the workload, then drain.
                client.ingest(documents[half:], block=True, timeout=60.0)
                final = client.shutdown()
                assert final["final"]["documents_processed"] == len(documents)

                # --- ingest while draining / after drain.
                with pytest.raises(ServiceError) as excinfo:
                    client.ingest(documents[:1])
                assert excinfo.value.code == "draining"

                # --- double shutdown.
                with pytest.raises(ServiceError) as excinfo:
                    client.shutdown()
                assert excinfo.value.code == "shutdown"

            tracker = next(
                bolt
                for bolt in daemon.system.cluster.instances_of(streams.TRACKER)
                if isinstance(bolt, TrackerBolt)
            )
            assert tracker.snapshot(0).digest() == clean_digest


class TestBackpressure:
    """A full bounded queue is a pinned error, never silent buffering."""

    def _stalled_daemon(self) -> ServiceDaemon:
        # Never started: the writer thread does not run, so submitted
        # batches pile up against the configured queue limit.
        return ServiceDaemon(CONFIG.with_overrides(service_queue_limit=2))

    def test_nonblocking_ingest_hits_backpressure(self):
        daemon = self._stalled_daemon()
        docs = [{"tags": ["a", "b"], "timestamp": 0.0, "doc_id": 1}]
        for _ in range(2):
            response = daemon.handle_request(
                {"v": 1, "op": "ingest", "documents": docs}
            )
            assert response["ok"] is True
        response = daemon.handle_request({"v": 1, "op": "ingest", "documents": docs})
        assert response["ok"] is False
        assert response["code"] == "backpressure"
        assert daemon.executor.pending_batches == 2

    def test_blocking_ingest_times_out_with_backpressure(self):
        daemon = self._stalled_daemon()
        docs = [{"tags": ["a"], "timestamp": 0.0, "doc_id": 1}]
        for _ in range(2):
            daemon.handle_request({"v": 1, "op": "ingest", "documents": docs})
        response = daemon.handle_request(
            {"v": 1, "op": "ingest", "documents": docs, "block": True,
             "timeout": 0.05}
        )
        assert response["code"] == "backpressure"

    def test_queue_drains_after_backpressure(self):
        """Backpressure is transient: once the writer catches up, ingest
        succeeds and nothing submitted before the fault was lost."""
        daemon = ServiceDaemon(CONFIG.with_overrides(service_queue_limit=1))
        docs = [
            {"tags": ["a", "b"], "timestamp": float(i), "doc_id": i}
            for i in range(10)
        ]
        daemon.handle_request({"v": 1, "op": "ingest", "documents": docs})
        refused = daemon.handle_request({"v": 1, "op": "ingest", "documents": docs})
        assert refused["code"] == "backpressure"
        daemon.start()
        try:
            response = daemon.handle_request(
                {"v": 1, "op": "ingest", "documents": docs, "block": True,
                 "timeout": 30.0}
            )
            assert response["ok"] is True
            shutdown = daemon.handle_request({"v": 1, "op": "shutdown"})
            assert shutdown["ok"] is True
            # The refused batch vanished; both accepted batches processed.
            assert shutdown["final"]["documents_processed"] == 20
        finally:
            daemon.close()
