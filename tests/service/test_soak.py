"""Soak: concurrent query clients against live ingest, no torn reads.

A feeder thread streams a few thousand documents through the ingest API
while several query clients hammer the daemon over their own connections.
The consistency oracle is the daemon's snapshot ring: every answer carries
the round it was served from, and must equal — exactly — what the retained
round-consistent :class:`~repro.operators.TrackerSnapshot` of that round
answers.  A torn read (a query observing a half-applied report round) cannot
satisfy that, because live Tracker state between rounds differs from every
published snapshot.  Rounds observed by each client must also advance
monotonically, and the drained run must still match a clean batch run.

Marked ``slow``: the nightly/smoke lane runs it; the default CI tests lane
deselects it with ``-m "not slow"``.
"""

import threading

import pytest

from repro.operators import TrackerBolt, streams
from repro.pipeline import SystemConfig, TagCorrelationSystem
from repro.service import ServiceClient, ServiceDaemon
from repro.workloads import TwitterLikeGenerator, WorkloadConfig

N_DOCUMENTS = 3000
INGEST_BATCH = 100
N_QUERY_CLIENTS = 4

CONFIG = SystemConfig(
    algorithm="DS",
    k=4,
    n_partitioners=3,
    window_mode="count",
    window_size=400,
    bootstrap_documents=150,
    quality_check_interval=100,
    report_interval_seconds=30.0,
)


@pytest.fixture(scope="module")
def documents():
    config = WorkloadConfig(
        seed=11,
        n_topics=60,
        tags_per_topic=12,
        tweets_per_second=50.0,
        new_topic_rate=4.0,
        intra_topic_probability=0.9,
    )
    return TwitterLikeGenerator(config).generate(N_DOCUMENTS)


@pytest.fixture(scope="module")
def clean_digest(documents):
    system = TagCorrelationSystem(CONFIG)
    system.run(documents)
    tracker = next(
        bolt
        for bolt in system.cluster.instances_of(streams.TRACKER)
        if isinstance(bolt, TrackerBolt)
    )
    return tracker.snapshot(0).digest()


class _QueryClient(threading.Thread):
    """Hammers one connection with queries until ingest finishes.

    Records every (round, k, results) top-k answer and every
    (round, coefficients, reports_received) stats answer for post-hoc
    verification against the snapshot ring.
    """

    def __init__(self, address, stop: threading.Event, index: int) -> None:
        super().__init__(name=f"soak-query-{index}", daemon=True)
        self._address = address
        self._halt = stop
        self.top_k_answers: list[tuple[int, int, list]] = []
        self.stats_answers: list[tuple[int, int, int]] = []
        self.rounds_seen: list[int] = []
        self.error: BaseException | None = None

    def run(self) -> None:
        try:
            host, port = self._address
            with ServiceClient(host=host, port=port) as client:
                k = 5
                while not self._halt.is_set():
                    answer = client.top_k(k=k)
                    self.top_k_answers.append(
                        (answer["round"], k, answer["results"])
                    )
                    self.rounds_seen.append(answer["round"])
                    stats = client.stats()
                    self.stats_answers.append(
                        (
                            stats["round"],
                            stats["coefficients"],
                            stats["reports_received"],
                        )
                    )
                    self.rounds_seen.append(stats["round"])
        except BaseException as exc:  # noqa: BLE001 - reraised by the test
            self.error = exc


@pytest.mark.slow
class TestSoak:
    def test_concurrent_queries_see_only_round_consistent_state(
        self, documents, clean_digest
    ):
        # Retain every snapshot the run can publish: one per ingest batch
        # plus the final post-drain round.
        n_batches = -(-len(documents) // INGEST_BATCH)
        daemon = ServiceDaemon(CONFIG, retain_snapshots=n_batches + 2)
        stop = threading.Event()
        with daemon:
            clients = [
                _QueryClient(daemon.address, stop, index)
                for index in range(N_QUERY_CLIENTS)
            ]
            for client in clients:
                client.start()

            host, port = daemon.address
            with ServiceClient(host=host, port=port) as feeder:
                for start in range(0, len(documents), INGEST_BATCH):
                    batch = documents[start : start + INGEST_BATCH]
                    response = feeder.ingest(batch, block=True, timeout=60.0)
                    assert response["accepted"] == len(batch)
                stop.set()
                for client in clients:
                    client.join(timeout=60.0)
                    assert not client.is_alive()
                final = feeder.shutdown()

            assert final["final"]["documents_processed"] == len(documents)

            snapshots = {
                snapshot.round_index: snapshot
                for snapshot in daemon.retained_snapshots()
            }
            # Every published round was retained (the oracle is complete).
            assert set(snapshots) == set(range(daemon.current_round + 1))

            total_answers = 0
            for client in clients:
                if client.error is not None:
                    raise client.error
                # Rounds advance monotonically per connection.
                assert client.rounds_seen == sorted(client.rounds_seen)
                for round_index, k, results in client.top_k_answers:
                    snapshot = snapshots[round_index]
                    expected = [
                        [sorted(tags), jaccard, support]
                        for tags, jaccard, support in snapshot.top_k(k)
                    ]
                    assert results == expected
                for round_index, coefficients, reports in client.stats_answers:
                    snapshot = snapshots[round_index]
                    assert coefficients == len(snapshot)
                    assert reports == snapshot.reports_received
                total_answers += len(client.top_k_answers) + len(
                    client.stats_answers
                )
            # The soak actually soaked: clients answered while ingest ran.
            assert total_answers >= 4 * N_QUERY_CLIENTS

            # And the drained table is still the clean batch table.
            tracker = next(
                bolt
                for bolt in daemon.system.cluster.instances_of(streams.TRACKER)
                if isinstance(bolt, TrackerBolt)
            )
            assert tracker.snapshot(0).digest() == clean_digest
