"""The spilling tracker store: dedup-as-merge-combiner, spills, snapshots.

The Tracker's dedup rule (max-support wins, ties keep the incumbent,
report counts sum) must behave identically whether a tagset's reports all
land in the hot dict or are sliced arbitrarily across spilled runs and
layered compactions.  These tests pin that equivalence against a plain
dict model, plus the machinery around it: the raw-value run format the
store spills into, duplicate accounting across segments, crash/abort
hygiene of the spill directory, the pickle manifest protocol (directory
ownership moves with the pickle), and the run-backed service snapshot
(immutable, digest-identical to the dict snapshot, stable under further
ingest).
"""

import os
import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operators.tracker import TrackerSnapshot
from repro.store import (
    FLAG_RAW_VALUES,
    RunFormatError,
    RunReader,
    SpillingTrackerStore,
    StoreConfig,
    combine_max_support,
    encode_key,
    write_run,
)
from repro.store.merge import merge_runs
from repro.store.tracker import decode_value, encode_value


def make_store(tmp_path, threshold=4, **overrides):
    config = StoreConfig(
        spill_dir=str(tmp_path),
        spill_threshold=threshold,
        **overrides,
    )
    return SpillingTrackerStore(config=config)


class DictModel:
    """The in-RAM dedup rule, verbatim from the dict-backed TrackerBolt."""

    def __init__(self):
        self.best = {}
        self.received = 0
        self.duplicates = 0

    def ingest(self, triples):
        for tags, jaccard, support in triples:
            self.received += 1
            key = frozenset(tags)
            entry = self.best.get(key)
            if entry is None:
                self.best[key] = [float(jaccard), int(support), 1]
            else:
                self.duplicates += 1
                entry[2] += 1
                if support > entry[1]:
                    entry[0] = float(jaccard)
                    entry[1] = int(support)

    def records(self):
        return {key: tuple(entry) for key, entry in self.best.items()}


# --------------------------------------------------------------------- #
# Value codec + combiner
# --------------------------------------------------------------------- #
records = st.tuples(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    st.integers(1, 1 << 40),
    st.integers(1, 1 << 20),
)


class TestCodecAndCombiner:
    @given(record=records)
    @settings(max_examples=200, deadline=None)
    def test_round_trip_is_exact(self, record):
        jaccard, support, reports = decode_value(encode_value(*record))
        # Bit-exact double round-trip: repr() must match what the
        # Calculator emitted (the digest equivalence depends on it).
        assert repr(jaccard) == repr(record[0])
        assert (support, reports) == record[1:]

    def test_strictly_greater_support_displaces(self):
        folded = combine_max_support(
            encode_value(0.5, 10, 3), encode_value(0.9, 11, 2)
        )
        assert decode_value(folded) == (0.9, 11, 5)

    def test_equal_support_keeps_incumbent(self):
        folded = combine_max_support(
            encode_value(0.5, 10, 3), encode_value(0.9, 10, 2)
        )
        assert decode_value(folded) == (0.5, 10, 5)

    @given(values=st.lists(records, min_size=2, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_any_segmentation_folds_identically(self, values):
        """Associativity over the report sequence: folding left-to-right
        one at a time equals folding any prefix first."""
        encoded = [encode_value(*value) for value in values]
        sequential = encoded[0]
        for value in encoded[1:]:
            sequential = combine_max_support(sequential, value)
        for split in range(1, len(encoded)):
            left = encoded[0]
            for value in encoded[1:split]:
                left = combine_max_support(left, value)
            right = encoded[split]
            for value in encoded[split + 1:]:
                right = combine_max_support(right, value)
            assert combine_max_support(left, right) == sequential


# --------------------------------------------------------------------- #
# Raw-value run format
# --------------------------------------------------------------------- #
class TestRawValueFormat:
    def rows(self):
        table = {
            ("beer",): (0.25, 14, 2),
            ("beer", "munich"): (0.5, 10, 1),
            ("münchen",): (1.0, 3, 7),
        }
        return sorted(
            (encode_key(key), encode_value(*value))
            for key, value in table.items()
        )

    def test_round_trip(self, tmp_path):
        path = tmp_path / "raw.run"
        rows = self.rows()
        result = write_run(path, rows, block_size=24, raw_values=True)
        assert result.entries == len(rows)
        reader = RunReader(path)
        try:
            assert reader.raw_values is True
            assert list(reader.entries()) == rows
            for key, value in rows:
                assert reader.get(key) == value
            assert reader.get(encode_key(("nope",))) is None
        finally:
            reader.close()

    def test_count_runs_report_no_raw_flag(self, tmp_path):
        path = tmp_path / "counts.run"
        write_run(path, [(encode_key(("beer",)), 3)])
        reader = RunReader(path)
        try:
            assert reader.raw_values is False
        finally:
            reader.close()

    def test_unknown_flag_bits_rejected(self, tmp_path):
        path = tmp_path / "raw.run"
        write_run(path, self.rows(), raw_values=True)
        data = bytearray(path.read_bytes())
        data[6] |= 0x80  # set an undefined flag bit
        bad = tmp_path / "future.run"
        bad.write_bytes(bytes(data))
        with pytest.raises(RunFormatError, match="flag"):
            RunReader(bad)

    def test_empty_values_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_run(
                tmp_path / "x.run",
                [(encode_key(("beer",)), b"")],
                raw_values=True,
            )

    def test_mixed_raw_and_count_merge_rejected(self, tmp_path):
        raw = tmp_path / "raw.run"
        counts = tmp_path / "counts.run"
        write_run(raw, self.rows(), raw_values=True)
        write_run(counts, [(encode_key(("beer",)), 3)])
        with pytest.raises(ValueError, match="raw-value"):
            merge_runs([str(raw), str(counts)], str(tmp_path / "out.run"))

    def test_raw_merge_uses_the_combiner(self, tmp_path):
        a = tmp_path / "a.run"
        b = tmp_path / "b.run"
        key = encode_key(("beer",))
        write_run(a, [(key, encode_value(0.5, 10, 3))], raw_values=True)
        write_run(b, [(key, encode_value(0.9, 10, 2))], raw_values=True)
        merge_runs(
            [str(a), str(b)], str(tmp_path / "out.run"),
            combine=combine_max_support,
        )
        reader = RunReader(tmp_path / "out.run")
        try:
            # Oldest-first fold: equal support keeps a's record.
            assert decode_value(reader.get(key)) == (0.5, 10, 5)
        finally:
            reader.close()


# --------------------------------------------------------------------- #
# Store ≡ dict model
# --------------------------------------------------------------------- #
def random_triples(seed, n, vocabulary=40):
    rng = random.Random(seed)
    tags = [f"tag{i}" for i in range(vocabulary)]
    triples = []
    for _ in range(n):
        size = rng.randint(1, 3)
        tagset = tuple(sorted(rng.sample(tags, size)))
        triples.append((tagset, rng.random(), rng.randint(1, 50)))
    return triples


class TestStoreEqualsDictModel:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("threshold", [2, 7, 10_000])
    def test_records_and_duplicates_identical(self, tmp_path, seed, threshold):
        """Any spill timing — every two entries, every seven, or never —
        folds back to the dict model's exact records and duplicate count."""
        triples = random_triples(seed, 600)
        model = DictModel()
        model.ingest(triples)
        store = make_store(tmp_path, threshold=threshold)
        try:
            received, duplicates = store.ingest(triples)
            assert received == len(triples)
            assert duplicates == model.duplicates
            assert len(store) == len(model.best)
            folded = {
                key: (jaccard, support, reports)
                for key, jaccard, support, reports in store.iter_entries()
            }
            assert folded == model.records()
            for key, expected in model.records().items():
                assert store.get(key) == expected
                assert key in store
            assert store.get(frozenset({"never-reported"})) is None
            if threshold <= 7:
                assert store.stats()["runs_written"] > 0
        finally:
            store.close()

    def test_ingest_repeated_counts_like_n_single_reports(self, tmp_path):
        triples = random_triples(4, 200)
        singles = make_store(tmp_path, threshold=5)
        repeated = make_store(tmp_path, threshold=5)
        try:
            # Re-assert each triple 3 times: once singly, once via counts.
            tripled = [t for t in triples for _ in range(3)]
            r1, d1 = singles.ingest(tripled)
            r2, d2 = repeated.ingest_repeated([(t, 3) for t in triples])
            assert (r1, d1) == (r2, d2)
            assert list(singles.iter_entries()) == list(repeated.iter_entries())
        finally:
            singles.close()
            repeated.close()

    def test_iteration_order_is_spill_invariant(self, tmp_path):
        triples = random_triples(5, 300)
        a = make_store(tmp_path, threshold=3)
        b = make_store(tmp_path, threshold=50)
        try:
            a.ingest(triples)
            b.ingest(triples)
            assert list(a.iter_entries()) == list(b.iter_entries())
        finally:
            a.close()
            b.close()

    def test_compaction_bounds_live_runs(self, tmp_path):
        store = make_store(tmp_path, threshold=2, merge_fan_in=3)
        try:
            store.ingest(random_triples(6, 400))
            assert store.stats()["runs_live"] < 3
            assert store.stats()["merges"] > 0
        finally:
            store.close()


# --------------------------------------------------------------------- #
# Directory hygiene
# --------------------------------------------------------------------- #
class TestHygiene:
    def test_close_removes_the_spill_directory(self, tmp_path):
        store = make_store(tmp_path, threshold=2)
        store.ingest(random_triples(7, 50))
        assert store.directory is not None
        store.close()
        assert os.listdir(tmp_path) == []

    def test_clear_keeps_directory_but_drops_records(self, tmp_path):
        store = make_store(tmp_path, threshold=2)
        try:
            store.ingest(random_triples(7, 50))
            store.clear()
            assert len(store) == 0
            assert list(store.iter_entries()) == []
            assert store.stats()["runs_live"] == 0
        finally:
            store.close()

    def test_failed_merge_sweeps_run_files(self, tmp_path, monkeypatch):
        """An aborted compaction leaves no orphaned runs on disk."""
        from repro.store import merge as merge_module

        store = make_store(tmp_path, threshold=2, merge_fan_in=2)
        store.ingest(random_triples(8, 6))  # below the compaction trigger

        def exploding(sources, destination, *, block_size, combine=None):
            raise RuntimeError("injected merge failure")

        monkeypatch.setattr(merge_module, "merge_runs", exploding)
        store.spill()  # force a second run
        with pytest.raises(RuntimeError, match="injected"):
            store.ingest(random_triples(9, 40))
        directory = store.directory
        assert not any(
            name.endswith((".run", ".tmp")) for name in os.listdir(directory)
        )
        store.close()
        assert os.listdir(tmp_path) == []

    def test_gc_finalizer_backstops_close(self, tmp_path):
        store = make_store(tmp_path, threshold=2)
        store.ingest(random_triples(10, 50))
        del store
        import gc

        gc.collect()
        assert os.listdir(tmp_path) == []


# --------------------------------------------------------------------- #
# Pickling (executor round trips)
# --------------------------------------------------------------------- #
class TestPickle:
    def test_round_trip_preserves_records_and_counters(self, tmp_path):
        triples = random_triples(11, 300)
        store = make_store(tmp_path, threshold=5)
        store.ingest(triples)
        before = list(store.iter_entries())
        distinct = len(store)
        stats = store.stats()
        clone = pickle.loads(pickle.dumps(store))
        try:
            assert list(clone.iter_entries()) == before
            assert len(clone) == distinct
            assert clone.stats()["runs_written"] == stats["runs_written"]
        finally:
            clone.close()
        # Ownership of the spill directory moved with the pickle: the
        # clone's close removed it, and the original releases nothing.
        assert os.listdir(tmp_path) == []
        store.close()

    def test_unspilled_store_pickles_without_a_directory(self, tmp_path):
        store = make_store(tmp_path, threshold=10_000)
        store.ingest(random_triples(12, 20))
        clone = pickle.loads(pickle.dumps(store))
        try:
            assert list(clone.iter_entries()) == list(store.iter_entries())
            assert clone.directory is None
        finally:
            clone.close()
            store.close()


# --------------------------------------------------------------------- #
# Run-backed snapshots (service mode)
# --------------------------------------------------------------------- #
class TestRunBackedSnapshot:
    def dict_snapshot(self, model, round_index=3):
        return TrackerSnapshot(
            round_index=round_index,
            reports_received=model.received,
            duplicate_reports=model.duplicates,
            entries={
                key: (entry[0], entry[1])
                for key, entry in model.best.items()
            },
        )

    def test_digest_and_top_k_match_the_dict_snapshot(self, tmp_path):
        triples = random_triples(13, 500)
        model = DictModel()
        model.ingest(triples)
        store = make_store(tmp_path, threshold=7)
        try:
            store.ingest(triples)
            snapshot = store.snapshot(3, model.received, model.duplicates)
            reference = self.dict_snapshot(model)
            try:
                assert snapshot.digest() == reference.digest()
                assert snapshot.top_k(k=25) == reference.top_k(k=25)
                assert snapshot.top_k(k=10, min_support=5) == (
                    reference.top_k(k=10, min_support=5)
                )
                assert len(snapshot) == len(reference)
                for key, entry in model.best.items():
                    assert snapshot.coefficient(key) == (entry[0], entry[1])
                assert snapshot.coefficient(frozenset({"nope"})) is None
            finally:
                snapshot.close()
        finally:
            store.close()

    def test_snapshot_is_stable_under_further_ingest(self, tmp_path):
        """The snapshot keeps answering its round even after the store
        spills, compacts and unlinks the files it was opened over."""
        first = random_triples(14, 200)
        store = make_store(tmp_path, threshold=5, merge_fan_in=2)
        try:
            store.ingest(first)
            snapshot = store.snapshot(1, len(first), 0)
            try:
                digest = snapshot.digest()
                top = snapshot.top_k(k=10)
                store.ingest(random_triples(15, 400))  # spills + compacts
                assert snapshot.digest() == digest
                assert snapshot.top_k(k=10) == top
            finally:
                snapshot.close()
        finally:
            store.close()

    def test_snapshot_close_releases_the_run_files(self, tmp_path):
        store = make_store(tmp_path, threshold=5)
        try:
            store.ingest(random_triples(16, 100))
            snapshot = store.snapshot(1, 100, 0)
            assert len(snapshot._readers) > 0
            snapshot.close()
            assert all(reader._map.closed for reader in snapshot._readers)
        finally:
            store.close()
