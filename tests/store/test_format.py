"""Run-file format: round-trips, pinned golden bytes, corruption diagnostics.

The spill store's durability story rests on three properties of
:mod:`repro.store.format`:

* *lossless*: any strictly-sorted positive-count table round-trips through
  ``write_run`` → ``RunReader`` exactly, at any block size (property test);
* *stable*: the byte layout is pinned by a committed golden run file —
  writers must reproduce it bit-for-bit, readers must decode it (the
  on-disk format is versioned; changing it requires bumping
  ``FORMAT_VERSION`` and regenerating ``fixtures/golden.run`` via
  ``python tests/store/test_format.py``);
* *honest*: structural damage (foreign files, version skew, truncation,
  mangled extents) raises :class:`RunFormatError` naming the file, never
  garbage counts.
"""

import os
import struct
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import (
    BlockCache,
    RunFormatError,
    RunReader,
    decode_key,
    encode_key,
    merged_entries,
    write_run,
)
from repro.store import format as run_format

FIXTURES = Path(__file__).parent / "fixtures"
GOLDEN_PATH = FIXTURES / "golden.run"

#: The golden table (Figure 1 of the paper plus multi-byte UTF-8 and an
#: empty tagset) and the block size it was written with.  Regenerate the
#: fixture by running this module as a script after a format change.
GOLDEN_BLOCK_SIZE = 64
GOLDEN_TABLE = {
    (): 7,
    ("beer",): 14,
    ("münchen",): 3,
    ("bavaria", "soccer"): 1,
    ("beach", "sunny"): 2,
    ("beer", "munich"): 10,
    ("beer", "munich", "soccer"): 10,
    ("munich", "oktoberfest"): 3,
    ("friday", "sunny"): 1,
    ("a" * 40, "b" * 40): 1 << 40,
}


def sorted_entries(table):
    return sorted((encode_key(key), count) for key, count in table.items())


def write_table(path, table, block_size=run_format.DEFAULT_BLOCK_SIZE):
    return write_run(path, sorted_entries(table), block_size=block_size)


# --------------------------------------------------------------------- #
# Key codec
# --------------------------------------------------------------------- #
tags = st.text(min_size=0, max_size=12)
keys = st.lists(tags, min_size=0, max_size=5).map(tuple)


class TestKeyCodec:
    @given(key=keys)
    @settings(max_examples=200, deadline=None)
    def test_round_trip(self, key):
        assert decode_key(encode_key(key)) == key

    @given(a=keys, b=keys)
    @settings(max_examples=200, deadline=None)
    def test_encoding_is_injective(self, a, b):
        """Distinct tag tuples never collide — the encoded bytes are the
        store's identity, so a collision would silently merge counters."""
        if a != b:
            assert encode_key(a) != encode_key(b)

    def test_trailing_bytes_rejected(self):
        with pytest.raises(RunFormatError):
            decode_key(encode_key(("beer",)) + b"\x00")

    def test_truncated_tag_rejected(self):
        with pytest.raises(RunFormatError):
            decode_key(encode_key(("munich",))[:-2])


# --------------------------------------------------------------------- #
# Write → read round trips
# --------------------------------------------------------------------- #
run_tables = st.dictionaries(keys, st.integers(1, 1 << 40), max_size=50)


class TestRoundTrip:
    @given(table=run_tables, block_size=st.sampled_from([1, 24, 4096]))
    @settings(max_examples=60, deadline=None)
    def test_any_table_any_block_size(self, tmp_path_factory, table, block_size):
        path = tmp_path_factory.mktemp("runs") / "t.run"
        result = write_table(path, table, block_size=block_size)
        assert result.entries == len(table)
        reader = RunReader(path)
        try:
            assert list(reader.entries()) == sorted_entries(table)
            assert len(reader) == len(table)
            for key, count in table.items():
                assert reader.get(encode_key(key)) == count
            assert reader.get(encode_key(("never", "observed"))) is None
        finally:
            reader.close()

    def test_empty_run(self, tmp_path):
        path = tmp_path / "empty.run"
        result = write_table(path, {})
        assert result.entries == 0 and result.blocks == 0
        reader = RunReader(path)
        try:
            assert len(reader) == 0
            assert list(reader.entries()) == []
            assert reader.get(encode_key(("x",))) is None
        finally:
            reader.close()

    def test_unsorted_entries_rejected(self, tmp_path):
        rows = sorted_entries(GOLDEN_TABLE)
        with pytest.raises(ValueError, match="sorted"):
            write_run(tmp_path / "x.run", reversed(rows))

    def test_duplicate_keys_rejected(self, tmp_path):
        row = (encode_key(("beer",)), 1)
        with pytest.raises(ValueError, match="sorted"):
            write_run(tmp_path / "x.run", [row, row])

    def test_nonpositive_counts_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            write_run(tmp_path / "x.run", [(encode_key(("beer",)), 0)])

    def test_publish_is_atomic(self, tmp_path):
        """A successful write leaves exactly the final file; a write whose
        entry stream blows up mid-run leaves *nothing* — no half-written
        final file, no ``.tmp`` orphan."""
        path = tmp_path / "atomic.run"
        write_table(path, GOLDEN_TABLE)
        assert os.listdir(tmp_path) == ["atomic.run"]

        def exploding():
            yield encode_key(("beer",)), 1
            raise RuntimeError("injected")

        with pytest.raises(RuntimeError, match="injected"):
            write_run(tmp_path / "doomed.run", exploding())
        assert os.listdir(tmp_path) == ["atomic.run"]

    def test_merged_entries_sums_equal_keys(self):
        left = {("beer",): 3, ("beer", "munich"): 1}
        right = {("beer",): 4, ("soccer",): 2}
        merged = dict(merged_entries([
            iter(sorted_entries(left)), iter(sorted_entries(right))
        ]))
        expected = {("beer",): 7, ("beer", "munich"): 1, ("soccer",): 2}
        assert merged == dict(sorted_entries(expected))


# --------------------------------------------------------------------- #
# Block cache
# --------------------------------------------------------------------- #
class TestBlockCache:
    def test_hit_miss_eviction_accounting(self, tmp_path):
        path = tmp_path / "c.run"
        write_table(path, GOLDEN_TABLE, block_size=1)  # one entry per block
        cache = BlockCache(capacity=2)
        reader = RunReader(path, cache)
        try:
            probes = [encode_key(key) for key in sorted(GOLDEN_TABLE)[:4]]
            for encoded in probes:
                reader.get(encoded)
            assert cache.stats()["misses"] == 4
            assert cache.stats()["evictions"] == 2  # capacity 2, 4 blocks
            reader.get(probes[-1])  # still resident
            assert cache.stats()["hits"] == 1
            assert cache.stats()["size"] == 2
        finally:
            reader.close()
        # close() forgets the reader's blocks.
        assert cache.stats()["size"] == 0

    def test_tokens_never_collide_across_reader_lifetimes(self, tmp_path):
        """A new reader must not inherit a dead reader's cached blocks."""
        path_a = tmp_path / "a.run"
        path_b = tmp_path / "b.run"
        write_table(path_a, {("beer",): 1})
        write_table(path_b, {("beer",): 99})
        cache = BlockCache(capacity=8)
        reader_a = RunReader(path_a, cache)
        token_a = reader_a._token
        reader_a.get(encode_key(("beer",)))
        reader_a.close()
        reader_b = RunReader(path_b, cache)
        try:
            assert reader_b._token != token_a
            assert reader_b.get(encode_key(("beer",))) == 99
        finally:
            reader_b.close()


# --------------------------------------------------------------------- #
# Golden bytes (format stability)
# --------------------------------------------------------------------- #
def golden_bytes(tmp_path):
    path = tmp_path / "golden.run"
    write_table(path, GOLDEN_TABLE, block_size=GOLDEN_BLOCK_SIZE)
    return path.read_bytes()


class TestGoldenFixture:
    def test_writer_reproduces_committed_bytes(self, tmp_path):
        """The writer is deterministic and the layout is frozen: the same
        table at the same block size must reproduce the committed fixture
        byte for byte.  If this fails you changed the on-disk format —
        bump ``FORMAT_VERSION`` and regenerate the fixture."""
        assert golden_bytes(tmp_path) == GOLDEN_PATH.read_bytes()

    def test_reader_decodes_committed_bytes(self):
        reader = RunReader(GOLDEN_PATH)
        try:
            assert list(reader.entries()) == sorted_entries(GOLDEN_TABLE)
            for key, count in GOLDEN_TABLE.items():
                assert reader.get(encode_key(key)) == count
        finally:
            reader.close()

    def test_header_fields(self):
        data = GOLDEN_PATH.read_bytes()
        magic, version, flags, block_size, n_entries, n_blocks, index_offset = (
            struct.unpack_from("<4sHHIQIQ", data, 0)
        )
        assert magic == run_format.MAGIC == b"RSC1"
        assert version == run_format.FORMAT_VERSION == 1
        assert flags == 0
        assert block_size == GOLDEN_BLOCK_SIZE
        assert n_entries == len(GOLDEN_TABLE)
        assert n_blocks > 1  # the fixture exercises multi-block layout
        assert index_offset < len(data)


# --------------------------------------------------------------------- #
# Corruption → clear errors
# --------------------------------------------------------------------- #
def corrupt(tmp_path, mutate):
    data = bytearray(GOLDEN_PATH.read_bytes())
    data = mutate(data)
    path = tmp_path / "corrupt.run"
    path.write_bytes(bytes(data))
    return path


class TestCorruption:
    def expect_error(self, tmp_path, mutate, match):
        path = corrupt(tmp_path, mutate)
        with pytest.raises(RunFormatError, match=match) as excinfo:
            reader = RunReader(path)
            try:
                list(reader.entries())
                for key in GOLDEN_TABLE:
                    reader.get(encode_key(key))
            finally:
                reader.close()
        # Diagnostics always name the offending file.
        assert "corrupt.run" in str(excinfo.value)

    def test_foreign_magic(self, tmp_path):
        def mutate(data):
            data[0:4] = b"ELF\x7f"
            return data
        self.expect_error(tmp_path, mutate, "bad magic")

    def test_version_skew(self, tmp_path):
        def mutate(data):
            struct.pack_into("<H", data, 4, 99)
            return data
        self.expect_error(tmp_path, mutate, "version 99")

    def test_too_short_for_header(self, tmp_path):
        def mutate(data):
            return data[:16]
        self.expect_error(tmp_path, mutate, "too short")

    def test_truncated_index(self, tmp_path):
        def mutate(data):
            return data[:-5]
        self.expect_error(tmp_path, mutate, "corrupt.run")

    def test_index_offset_beyond_file(self, tmp_path):
        def mutate(data):
            struct.pack_into("<Q", data, 24, len(data) + 1000)
            return data
        self.expect_error(tmp_path, mutate, "index offset")

    def test_trailing_garbage(self, tmp_path):
        def mutate(data):
            return data + b"\xff\xff\xff"
        self.expect_error(tmp_path, mutate, "trailing bytes")

    def test_entry_count_mismatch(self, tmp_path):
        def mutate(data):
            struct.pack_into("<Q", data, 12, len(GOLDEN_TABLE) + 5)
            return data
        self.expect_error(tmp_path, mutate, "entries")

    def test_mangled_block_payload(self, tmp_path):
        """Flipping bytes inside a block corrupts its varint stream; the
        decoder notices (bad prefix length, truncation or an entry-count
        mismatch against the index) instead of returning wrong counts."""
        def mutate(data):
            for offset in range(36, 48):
                data[offset] ^= 0xFF
            return data
        self.expect_error(tmp_path, mutate, "block")


if __name__ == "__main__":  # regenerate the golden fixture
    FIXTURES.mkdir(parents=True, exist_ok=True)
    result = write_run(
        GOLDEN_PATH,
        sorted_entries(GOLDEN_TABLE),
        block_size=GOLDEN_BLOCK_SIZE,
    )
    print(f"wrote {result.path}: {result.entries} entries, "
          f"{result.blocks} blocks, {result.file_bytes} bytes")
