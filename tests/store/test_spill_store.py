"""Spill-store lifecycle: directories, durability ordering, abort hygiene.

The spilling store owns real on-disk state, so beyond the mapping
semantics (spill timing must be unobservable) these tests pin the
*lifecycle* contract:

* every artefact lives inside the store's private ``mkdtemp`` under the
  configured ``spill_dir``; ``clear()`` removes all run files, ``close()``
  removes the directory itself — no orphans, ever;
* a run is *published* only after its bytes are fsync'd: the data-file
  ``fsync`` strictly precedes the ``os.replace`` rename (crash before the
  rename loses at most an unpublished ``.tmp``);
* an injected merge failure propagates *and* sweeps every ``*.run`` /
  ``*.tmp`` artefact of the store — the abort path leaks nothing;
* forcing ``merge_workers=2`` over many small runs exercises the
  parallel layered merge (pool workers), with identical results;
* pickling ships a run-file *manifest*, not decoded tables, and the
  delta engine's :class:`CarryLog` round-trips payloads bit-exactly,
  compacts garbage and deletes its file on close.
"""

import os
import pickle
import random
from collections import Counter
from types import SimpleNamespace

import pytest

from repro.store import (
    CarryLog,
    RunReader,
    SpillingCounterStore,
    encode_key,
)
from repro.store import merge as run_merge
from repro.store import spill as spill_module

KEY_POOL = [
    tuple(sorted(sample))
    for sample in [
        ("beer",), ("munich",), ("soccer",), ("beer", "munich"),
        ("beer", "soccer"), ("munich", "soccer"), ("beer", "munich", "soccer"),
        ("pizza",), ("beer", "pizza"), ("oktoberfest",),
    ]
]


def feed(store, n_updates, seed=7, pool=None):
    """Drive seeded-random updates into ``store`` and a reference Counter."""
    rng = random.Random(seed)
    pool = pool or [
        (f"tag{i}", f"tag{j}")
        for i in range(40)
        for j in range(i + 1, 44)
    ]
    reference = Counter()
    for _ in range(n_updates):
        keys = rng.sample(pool, rng.randint(1, 4))
        store.update(keys)
        reference.update(keys)
    return reference


def disk_artifacts(directory):
    return sorted(
        name for name in os.listdir(directory)
        if name.endswith(".run") or name.endswith(".tmp")
    )


class TestLifecycle:
    def test_artifacts_live_under_spill_dir(self, tmp_path):
        store = SpillingCounterStore(spill_dir=str(tmp_path), spill_threshold=50)
        feed(store, 200)
        directory = store.directory
        assert directory is not None
        assert os.path.dirname(directory) == str(tmp_path)
        assert store.stats()["runs_written"] >= 2
        assert disk_artifacts(directory)  # published runs, no strays
        assert all(name.endswith(".run") for name in disk_artifacts(directory))
        store.close()

    def test_clear_removes_every_run_file(self, tmp_path):
        store = SpillingCounterStore(spill_dir=str(tmp_path), spill_threshold=50)
        feed(store, 200)
        directory = store.directory
        store.clear()
        assert disk_artifacts(directory) == []
        assert os.path.isdir(directory)  # the dir survives for the next round
        assert len(store) == 0
        store.close()

    def test_close_removes_the_directory(self, tmp_path):
        store = SpillingCounterStore(spill_dir=str(tmp_path), spill_threshold=50)
        feed(store, 200)
        directory = store.directory
        store.close()
        assert not os.path.exists(directory)
        assert os.listdir(tmp_path) == []

    def test_stray_tmp_swept_on_clear(self, tmp_path):
        """A ``.tmp`` left by a killed writer (simulated) is garbage the
        next clear() collects."""
        store = SpillingCounterStore(spill_dir=str(tmp_path), spill_threshold=50)
        feed(store, 200)
        stray = os.path.join(store.directory, "run-999999.run.tmp")
        with open(stray, "wb") as handle:
            handle.write(b"half a run")
        store.clear()
        assert disk_artifacts(store.directory) == []
        store.close()

    def test_two_stores_never_collide(self, tmp_path):
        a = SpillingCounterStore(spill_dir=str(tmp_path), spill_threshold=10)
        b = SpillingCounterStore(spill_dir=str(tmp_path), spill_threshold=10)
        feed(a, 50, seed=1)
        feed(b, 50, seed=2)
        assert a.directory != b.directory
        a.close()
        assert os.path.isdir(b.directory)
        b.close()


class TestDurabilityOrdering:
    def test_fsync_precedes_publish(self, tmp_path, monkeypatch):
        """The run's bytes are durable before the rename makes it visible:
        for every published run, ``fsync(data fd)`` happens strictly
        before the ``os.replace`` that drops the ``.tmp`` suffix."""
        events = []
        real_fsync, real_replace = os.fsync, os.replace

        def spy_fsync(fd):
            events.append(("fsync", fd))
            return real_fsync(fd)

        def spy_replace(src, dst):
            events.append(("replace", src, dst))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        monkeypatch.setattr(os, "replace", spy_replace)
        store = SpillingCounterStore(spill_dir=str(tmp_path), spill_threshold=25)
        feed(store, 100)
        publishes = [e for e in events if e[0] == "replace"
                     and e[2].endswith(".run")]
        assert publishes  # spills actually happened under the spies
        for publish in publishes:
            position = events.index(publish)
            assert any(e[0] == "fsync" for e in events[:position]), (
                "run published before any fsync"
            )
            # The event immediately preceding each publish is its own
            # data-file fsync (write_run syncs, then renames).
            assert events[position - 1][0] == "fsync"
        store.close()


class TestMergeAbortHygiene:
    def make_runs(self, tmp_path, n_runs=6):
        store = SpillingCounterStore(
            spill_dir=str(tmp_path), spill_threshold=1 << 30, merge_fan_in=2
        )
        for index in range(n_runs):
            store.update([(f"tag{index}", f"tag{index + 1}")])
            store.spill()
        assert store.stats()["runs_written"] == n_runs
        return store

    def test_injected_merge_failure_leaves_no_orphans(self, tmp_path, monkeypatch):
        store = self.make_runs(tmp_path)
        directory = store.directory

        def exploding_merge(sources, destination, *, block_size):
            raise OSError("disk on fire")

        monkeypatch.setattr(run_merge, "merge_runs", exploding_merge)
        with pytest.raises(OSError, match="disk on fire"):
            store.prepare_report()
        assert disk_artifacts(directory) == []
        store.close()

    def test_mid_compaction_failure_sweeps_intermediates(
        self, tmp_path, monkeypatch
    ):
        """Failing the *second* merge of a layered compaction must also
        sweep the intermediate the first merge already published."""
        store = self.make_runs(tmp_path, n_runs=6)  # fan_in=2 → 3 jobs/layer
        directory = store.directory
        real_merge = run_merge.merge_runs
        calls = []

        def failing_second(sources, destination, *, block_size, combine=None):
            calls.append(destination)
            if len(calls) == 2:
                raise OSError("injected mid-compaction")
            return real_merge(
                sources, destination, block_size=block_size, combine=combine
            )

        monkeypatch.setattr(run_merge, "merge_runs", failing_second)
        with pytest.raises(OSError, match="mid-compaction"):
            store.prepare_report()
        assert len(calls) == 2  # one intermediate was published, then boom
        assert disk_artifacts(directory) == []
        store.close()


class TestParallelMerges:
    def test_forced_pool_merge_matches_reference(self, tmp_path):
        """``merge_workers=2`` with a tiny fan-in forces the layered pool
        path (the 1-core auto default would stay serial); results must be
        identical to the reference Counter and leave exactly one run."""
        store = SpillingCounterStore(
            spill_dir=str(tmp_path),
            spill_threshold=40,
            merge_fan_in=2,
            merge_workers=2,
        )
        reference = feed(store, 400)
        store.prepare_report()
        stats = store.stats()
        assert stats["parallel_merges"] > 0
        assert stats["runs_live"] == 1
        assert stats["merge_seconds"] > 0.0
        assert dict(store.items()) == dict(reference)
        store.close()

    def test_daemon_processes_fall_back_to_serial(self, monkeypatch):
        import multiprocessing

        monkeypatch.setattr(
            multiprocessing.current_process(), "_config",
            {**multiprocessing.current_process()._config, "daemon": True},
        )
        assert not run_merge.parallel_merges_allowed()

    def test_auto_worker_resolution_is_capped(self):
        assert run_merge.resolve_merge_workers(3) == 3
        auto = run_merge.resolve_merge_workers(0)
        assert 1 <= auto <= run_merge.MAX_AUTO_MERGE_WORKERS


class TestMappingSemantics:
    def test_spill_timing_is_unobservable(self, tmp_path):
        """Same observations, wildly different spill thresholds → the same
        mapping: lookups, membership, items() order, length."""
        thresholds = [1, 17, 1 << 30]
        stores = [
            SpillingCounterStore(spill_dir=str(tmp_path), spill_threshold=t)
            for t in thresholds
        ]
        references = [feed(store, 300, seed=13) for store in stores]
        assert references[0] == references[1] == references[2]
        reference = references[0]
        baseline_items = list(stores[0].items())
        for store in stores:
            for key, count in reference.items():
                assert store[key] == count
                assert store.get(key) == count
                assert key in store
            absent = ("never", "observed")
            assert store[absent] == 0
            assert store.get(absent) is None
            assert store.get(absent, 0) == 0
            assert absent not in store
            assert len(store) == len(reference)
            assert list(store.items()) == baseline_items
            store.close()

    def test_prepare_report_is_count_preserving(self, tmp_path):
        store = SpillingCounterStore(spill_dir=str(tmp_path), spill_threshold=30)
        reference = feed(store, 250)
        before = dict(store.items())
        store.prepare_report()
        assert dict(store.items()) == before == dict(reference)
        store.close()


class TestPickling:
    def test_manifest_round_trip(self, tmp_path):
        store = SpillingCounterStore(spill_dir=str(tmp_path), spill_threshold=40)
        reference = feed(store, 300)
        state = store.__getstate__()
        # The wire payload is a manifest of published paths plus the small
        # hot tail — never RunReader objects or decoded tables.
        assert all(isinstance(path, str) for path in state["manifest"])
        assert len(state["hot"]) < 40
        clone = pickle.loads(pickle.dumps(store))
        assert dict(clone.items()) == dict(reference)
        assert clone.stats()["runs_written"] == store.stats()["runs_written"]
        clone.close()  # the clone adopted the directory and its cleanup
        assert not os.path.exists(store.directory)


class DirProvider:
    """Picklable stand-in for the store's bound ``ensure_dir``."""

    def __init__(self, path):
        self.path = str(path)

    def __call__(self):
        return self.path


class TestCarryLog:
    def make_log(self, tmp_path):
        return CarryLog(DirProvider(tmp_path))

    def test_round_trip_preserves_bits(self, tmp_path):
        log = self.make_log(tmp_path)
        payload = (
            [("beer", "munich"), ("soccer",)],
            [(frozenset({"beer", "munich"}), 0.1 + 0.2, 7)],
        )
        ref = log.append(payload)
        keys, triples = log.read(ref)
        assert keys == payload[0]
        assert triples == payload[1]
        assert triples[0][1].hex() == (0.1 + 0.2).hex()  # float bits exact
        log.close()

    def test_compaction_rewrites_live_blobs_and_patches_refs(self, tmp_path):
        log = self.make_log(tmp_path)
        log.MIN_COMPACT_BYTES = 64  # instance override: compact tiny files
        entries = []
        for index in range(40):
            entry = SimpleNamespace(ref=None, payload=f"payload-{index}" * 8)
            entry.ref = log.append(entry.payload)
            entries.append(entry)
        survivors = entries[::4]
        for entry in entries:
            if entry not in survivors:
                log.release(entry.ref)
                entry.ref = None
        assert log.maybe_compact(survivors)
        assert log.stats()["carry_compactions"] == 1
        assert log.live_bytes == log.total_bytes
        for entry in survivors:  # refs were patched to the new layout
            assert log.read(entry.ref) == entry.payload
        log.close()

    def test_compaction_skipped_while_mostly_live(self, tmp_path):
        log = self.make_log(tmp_path)
        log.MIN_COMPACT_BYTES = 1
        entries = [SimpleNamespace(ref=log.append("x" * 64)) for _ in range(10)]
        log.release(entries[0].ref)  # 10% garbage — not worth rewriting
        entries[0].ref = None
        assert not log.maybe_compact(entries)
        log.close()

    def test_close_deletes_the_file(self, tmp_path):
        log = self.make_log(tmp_path)
        log.append("payload")
        log_path = log._path
        assert os.path.exists(log_path)
        log.close()
        assert not os.path.exists(log_path)
        assert log.stats()["carry_blobs_written"] == 1  # accounting survives

    def test_pickle_comes_back_empty(self, tmp_path):
        log = self.make_log(tmp_path)
        log.append("payload")
        clone = pickle.loads(pickle.dumps(log))
        assert clone.live_bytes == 0 and clone.total_bytes == 0
        # A revived log is immediately usable in the receiving process.
        ref = clone.append("fresh")
        assert clone.read(ref) == "fresh"
        clone.close()
        log.close()


class TestConstruction:
    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError, match="spill_threshold"):
            SpillingCounterStore(spill_threshold=0)

    def test_defaults_are_sane(self):
        assert spill_module.DEFAULT_SPILL_THRESHOLD >= 1024
        assert spill_module.COUNTER_STORES == ("dict", "spill")
