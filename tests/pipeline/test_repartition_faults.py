"""Fault injection into the migration handoff.

A coordinated handoff must be atomic: if any Calculator's prepare phase
fails, the whole migration aborts with the old partition map still
installed and no Calculator state touched — the run continues and ends
with exactly the results of a run that never attempted the swap.  These
suites inject two fault shapes at the prepare phase:

* a *raised exception* in one Calculator task — under the inline
  executor the coordinator's local try/except aborts the handoff; under
  the process executor the owning worker reports the failure softly (it
  keeps serving) and the driver aborts every other shard's staged
  payloads;
* a *worker death* (``os._exit`` mid-prepare, process executor only) —
  no clean continuation is possible, so the run must fail fast with a
  diagnosable error rather than hang or silently drop state.

The bolt and factory classes live at module level: the process executor
pickles factories into forked workers, and fork inherits ``sys.modules``
so pickling-by-reference of test-module classes works on Linux.
"""

import os
from dataclasses import dataclass

import pytest

from repro.operators import CalculatorBolt
from repro.pipeline import SystemConfig, TagCorrelationSystem
from repro.pipeline.system import ExactCalculatorFactory
from repro.workloads import TwitterLikeGenerator, WorkloadConfig

SWAP_POINT = 800

#: The Calculator task whose prepare fails.  Index 2 (not 0) makes the
#: abort path non-trivial: earlier tasks have already prepared when the
#: failure hits, so their staged payloads must be dropped, and under the
#: two-worker process executor the failing shard differs from shard 0.
FAILING_TASK_INDEX = 2


class FailingPrepareCalculatorBolt(CalculatorBolt):
    def prepare_migration(self):
        if self.task_index == FAILING_TASK_INDEX:
            raise RuntimeError("injected prepare failure")
        return super().prepare_migration()


class DyingPrepareCalculatorBolt(CalculatorBolt):
    def prepare_migration(self):
        if self.task_index == FAILING_TASK_INDEX:
            os._exit(17)
        return super().prepare_migration()


@dataclass(frozen=True)
class FailingPrepareFactory(ExactCalculatorFactory):
    def __call__(self) -> CalculatorBolt:
        return FailingPrepareCalculatorBolt(
            report_interval=self.report_interval,
            max_tags_per_document=self.max_tags_per_document,
            reporting_engine=self.reporting_engine,
            subset_cache_size=self.subset_cache_size,
        )


@dataclass(frozen=True)
class DyingPrepareFactory(ExactCalculatorFactory):
    def __call__(self) -> CalculatorBolt:
        return DyingPrepareCalculatorBolt(
            report_interval=self.report_interval,
            max_tags_per_document=self.max_tags_per_document,
            reporting_engine=self.reporting_engine,
            subset_cache_size=self.subset_cache_size,
        )


@pytest.fixture(scope="module")
def documents():
    config = WorkloadConfig(
        seed=31,
        tweets_per_second=50.0,
        n_topics=100,
        tags_per_topic=14,
        new_topic_rate=5.0,
        intra_topic_probability=0.9,
    )
    return TwitterLikeGenerator(config).generate(1500)


def _config(**overrides):
    base = dict(
        algorithm="DS",
        k=4,
        n_partitioners=3,
        window_mode="count",
        window_size=500,
        bootstrap_documents=200,
        quality_check_interval=120,
        repartition_threshold=0.5,
        report_interval_seconds=30.0,
        repartition_policy="fixed",
        repartition_at=(SWAP_POINT,),
        repartition_handoff="migrate",
        include_centralized_baseline=False,
        # Single Additions route through the Merger, whose advisory
        # assignment diverges after an aborted handoff; disabling them
        # makes the aborted run byte-comparable to the never-swapped
        # reference.
        single_addition_threshold=10**9,
    )
    base.update(overrides)
    return SystemConfig(**base)


def _run(documents, factory=None, **overrides):
    system = TagCorrelationSystem(_config(**overrides))
    if factory is not None:
        system._calculator_factory = lambda: factory
    report = system.run(documents)
    return report


class TestPrepareFailureAbortsCleanly:
    @pytest.fixture(scope="class", params=["inline", "process"])
    def runs(self, request, documents):
        executor = request.param
        extra = {"executor": executor}
        if executor == "process":
            extra["workers"] = 2
        factory = FailingPrepareFactory(
            report_interval=30.0, max_tags_per_document=12
        )
        faulted = _run(documents, factory=factory, **extra)
        reference = _run(
            documents,
            repartition_policy="never",
            repartition_at=(),
            repartition_handoff="none",
            **extra,
        )
        return faulted, reference

    def test_run_completes_and_records_the_abort(self, runs):
        faulted, _ = runs
        assert faulted.migration_stats is not None
        assert faulted.migration_stats["handoffs"] == 1.0
        assert faulted.migration_stats["aborted"] == 1.0
        assert faulted.migration_stats["migrated_triples"] == 0.0
        assert len(faulted.migrations) == 1
        record = faulted.migrations[0]
        assert record.aborted
        assert record.migrated_triples == 0
        assert record.error is not None
        assert "injected prepare failure" in record.error
        assert len(faulted.migration_failures) == 1
        assert "injected prepare failure" in faulted.migration_failures[0]
        # The swap was requested (and counted) before the handoff failed.
        assert faulted.n_repartitions == 1
        assert faulted.repartition_reasons == {"forced": 1}

    def test_results_match_a_run_that_never_swapped(self, runs):
        faulted, reference = runs
        assert reference.migration_stats is None
        assert reference.n_repartitions == 0
        # Old map intact, no partial state: every logical result of the
        # aborted run equals the never-swapped reference.  Physical message
        # counts (notification_messages) are excluded: staging a map
        # flushes the pending notification micro-batch early, which splits
        # batches without changing what is in them.
        for field in (
            "documents_processed",
            "tagged_documents",
            "communication_avg",
            "calculator_loads",
            "load_gini",
            "load_max_share",
            "coefficients_reported",
            "duplicate_reports",
        ):
            assert getattr(faulted, field) == getattr(reference, field), field


def test_worker_death_mid_prepare_fails_fast(documents):
    factory = DyingPrepareFactory(report_interval=30.0, max_tags_per_document=12)
    system = TagCorrelationSystem(_config(executor="process", workers=2))
    system._calculator_factory = lambda: factory
    with pytest.raises(RuntimeError, match="died without reporting"):
        system.run(documents)
