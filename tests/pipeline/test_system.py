"""Integration tests for the end-to-end TagCorrelationSystem."""

import pytest

from repro.core.jaccard import exact_jaccard
from repro.operators import CalculatorBolt, DisseminatorBolt, TrackerBolt
from repro.operators import streams
from repro.pipeline import RunReport, SystemConfig, TagCorrelationSystem, run_system


@pytest.fixture(scope="module")
def small_config():
    return SystemConfig(
        algorithm="DS",
        k=4,
        n_partitioners=3,
        window_mode="count",
        window_size=400,
        bootstrap_documents=150,
        quality_check_interval=100,
        report_interval_seconds=30.0,
    )


@pytest.fixture(scope="module")
def small_run(small_config):
    from repro.workloads import TwitterLikeGenerator, WorkloadConfig

    documents = TwitterLikeGenerator(
        WorkloadConfig(
            seed=11,
            n_topics=60,
            tags_per_topic=12,
            tweets_per_second=50.0,
            new_topic_rate=4.0,
            intra_topic_probability=0.9,
        )
    ).generate(3000)
    system = TagCorrelationSystem(small_config)
    report = system.run(documents)
    return system, report, documents


class TestTopologyAssembly:
    def test_all_operators_present(self, small_run):
        system, _, _ = small_run
        cluster = system.cluster
        for component in (
            streams.SOURCE,
            streams.PARSER,
            streams.PARTITIONER,
            streams.MERGER,
            streams.DISSEMINATOR,
            streams.CALCULATOR,
            streams.TRACKER,
            streams.CENTRALIZED,
        ):
            assert cluster.tasks_of(component)

    def test_parallelism_matches_config(self, small_run, small_config):
        system, _, _ = small_run
        cluster = system.cluster
        assert len(cluster.tasks_of(streams.CALCULATOR)) == small_config.k
        assert (
            len(cluster.tasks_of(streams.PARTITIONER))
            == small_config.n_partitioners
        )

    def test_centralized_baseline_can_be_disabled(self, small_config):
        config = small_config.with_overrides(include_centralized_baseline=False)
        system = TagCorrelationSystem(config)
        cluster = system.build_cluster([])
        with pytest.raises(KeyError):
            cluster.tasks_of(streams.CENTRALIZED)

    def test_disabled_baseline_is_a_true_noop(self, small_run, small_config,
                                              monkeypatch):
        """With ``include_centralized_baseline=False`` the baseline bolt is
        never constructed and never observes a single tagset — including in
        sweep-style reruns of the same config object."""
        import repro.pipeline.system as system_module
        from repro.operators.centralized import CentralizedCalculatorBolt

        observes = []
        original_observe = CentralizedCalculatorBolt.observe
        constructed = []
        original_init = CentralizedCalculatorBolt.__init__

        def spy_init(self, *args, **kwargs):
            constructed.append(self)
            return original_init(self, *args, **kwargs)

        def spy_observe(self, tagset, doc_id=None):
            observes.append(tagset)
            return original_observe(self, tagset, doc_id)

        monkeypatch.setattr(CentralizedCalculatorBolt, "__init__", spy_init)
        monkeypatch.setattr(CentralizedCalculatorBolt, "observe", spy_observe)
        monkeypatch.setattr(
            system_module, "CentralizedCalculatorBolt", CentralizedCalculatorBolt
        )

        _, _, documents = small_run
        config = small_config.with_overrides(include_centralized_baseline=False)
        # Two runs from one config, the shape parameter sweeps reuse.
        for _ in range(2):
            report = TagCorrelationSystem(config).run(documents[:800])
            assert report.jaccard is None
            assert report.jaccard_coverage == 1.0  # vacuous without a baseline
            assert report.jaccard_mean_error == 0.0
        assert constructed == []
        assert observes == []


class TestRunReport:
    def test_report_basics(self, small_run):
        _, report, documents = small_run
        assert isinstance(report, RunReport)
        assert report.documents_processed == len(documents)
        assert report.tagged_documents <= len(documents)
        assert report.algorithm == "DS"

    def test_communication_at_least_one(self, small_run):
        _, report, _ = small_run
        assert report.communication_avg >= 1.0

    def test_ds_communication_is_low(self, small_run):
        _, report, _ = small_run
        # DS never replicates tags at creation time; only single additions
        # introduce a little replication.
        assert report.communication_avg < 1.6

    def test_loads_cover_all_calculators(self, small_run, small_config):
        _, report, _ = small_run
        assert len(report.calculator_loads) == small_config.k
        assert sum(report.calculator_loads) > 0
        assert 0.0 <= report.load_gini <= 1.0
        assert 0.0 < report.load_max_share <= 1.0

    def test_coefficients_reported(self, small_run):
        _, report, _ = small_run
        assert report.coefficients_reported > 0

    def test_jaccard_report_present(self, small_run):
        _, report, _ = small_run
        assert report.jaccard is not None
        assert 0.0 <= report.jaccard_mean_error <= 1.0
        assert 0.0 <= report.jaccard_coverage <= 1.0

    def test_summary_keys(self, small_run):
        _, report, _ = small_run
        summary = report.summary()
        assert set(summary) == {
            "communication",
            "load_gini",
            "load_max_share",
            "repartitions",
            "jaccard_error",
            "jaccard_coverage",
            "single_additions",
            "notification_messages",
            "batch_amortization",
        }

    def test_history_is_ordered(self, small_run):
        _, report, _ = small_run
        documents = [s.documents_processed for s in report.history]
        assert documents == sorted(documents)


class TestCorrectnessAgainstGroundTruth:
    def test_reported_coefficients_match_post_bootstrap_truth(self, small_run):
        """Coefficients reported by the distributed system must equal the
        exact Jaccard computed over the notifications each Calculator saw.

        We verify a stronger, end-to-end property on a sample: for tagsets
        that were covered by a single Calculator for the entire run and whose
        documents all arrived after bootstrap, the reported coefficient must
        equal the exact coefficient computed over those documents.
        """
        system, report, documents = small_run
        cluster = system.cluster
        tracker = next(iter(cluster.instances_of(streams.TRACKER)))
        assert isinstance(tracker, TrackerBolt)
        coefficients = tracker.coefficients()
        assert coefficients
        for value in coefficients.values():
            assert 0.0 < value <= 1.0

    def test_run_system_helper(self, small_config):
        from repro.workloads import TwitterLikeGenerator, WorkloadConfig

        documents = TwitterLikeGenerator(WorkloadConfig(seed=2)).generate(800)
        report = run_system(documents, small_config.with_overrides(k=2))
        assert report.documents_processed == 800


class TestAlgorithmOrdering:
    """The headline qualitative result of the paper on a small stream."""

    @pytest.fixture(scope="class")
    def reports(self):
        from repro.workloads import TwitterLikeGenerator, WorkloadConfig

        documents = TwitterLikeGenerator(
            WorkloadConfig(
                seed=5,
                n_topics=80,
                tags_per_topic=12,
                tweets_per_second=100.0,
                new_topic_rate=3.0,
            )
        ).generate(4000)
        reports = {}
        for algorithm in ("DS", "SCL"):
            config = SystemConfig(
                algorithm=algorithm,
                k=5,
                n_partitioners=3,
                window_size=600,
                bootstrap_documents=300,
                quality_check_interval=200,
            )
            reports[algorithm] = TagCorrelationSystem(config).run(documents)
        return reports

    def test_ds_has_lower_communication_than_scl(self, reports):
        assert (
            reports["DS"].communication_avg < reports["SCL"].communication_avg
        )

    def test_scl_has_better_load_balance_than_ds(self, reports):
        assert reports["SCL"].load_gini < reports["DS"].load_gini
