"""Reporting-engine equivalence: incremental, delta and scratch identical.

The reporting engines change *how* exact-mode report rounds recover union
sizes — one subset-lattice fold per distinct observed tagset type
(incremental), cross-round dirty-type folding with a carry table and
deferred shipping of unchanged coefficients (delta), or a per-key counter
re-walk (scratch) — never *what* they compute.  These tests pin that
contract end-to-end: identical Jaccard coefficients in the Tracker and
identical ``RunReport`` logical metrics, on both execution engines
(acceptance criteria of the incremental and delta reporting PRs; see
docs/ARCHITECTURE.md "Reporting path").
"""

import pytest

from repro.operators import TrackerBolt, streams
from repro.pipeline import SystemConfig, TagCorrelationSystem
from repro.workloads import TwitterLikeGenerator, WorkloadConfig

#: RunReport fields that must be bit-identical across reporting engines
#: (mirrors the executor-equivalence contract).
IDENTICAL_FIELDS = (
    "documents_processed",
    "tagged_documents",
    "communication_avg",
    "calculator_loads",
    "load_gini",
    "load_max_share",
    "n_repartitions",
    "repartition_reasons",
    "single_addition_requests",
    "single_additions_applied",
    "coefficients_reported",
    "duplicate_reports",
    "notification_messages",
    "batch_amortization",
)


def _workload(n_documents=2000, seed=11):
    config = WorkloadConfig(
        seed=seed,
        tweets_per_second=50.0,
        n_topics=100,
        tags_per_topic=14,
        new_topic_rate=5.0,
        intra_topic_probability=0.9,
    )
    return TwitterLikeGenerator(config).generate(n_documents)


def _config(**overrides):
    base = dict(
        algorithm="DS",
        k=4,
        n_partitioners=3,
        window_mode="count",
        window_size=500,
        bootstrap_documents=200,
        quality_check_interval=120,
        repartition_threshold=0.5,
        report_interval_seconds=30.0,
    )
    base.update(overrides)
    return SystemConfig(**base)


@pytest.fixture(scope="module")
def documents():
    return _workload()


def _run(documents, **overrides):
    system = TagCorrelationSystem(_config(**overrides))
    report = system.run(documents)
    tracker = next(
        bolt
        for bolt in system.cluster.instances_of(streams.TRACKER)
        if isinstance(bolt, TrackerBolt)
    )
    return system, report, tracker


ENGINES = ("incremental", "scratch", "delta")


@pytest.fixture(scope="module")
def engine_runs(documents):
    """One run per (reporting engine, executor) cell of the grid."""
    runs = {}
    for engine in ENGINES:
        for executor in ("inline", "process"):
            overrides = {"reporting_engine": engine, "executor": executor}
            if executor == "process":
                overrides["workers"] = 2
            runs[(engine, executor)] = _run(documents, **overrides)
    return runs


class TestEngineEquivalence:
    @pytest.mark.parametrize("engine", ["incremental", "delta"])
    @pytest.mark.parametrize("executor", ["inline", "process"])
    @pytest.mark.parametrize("field", IDENTICAL_FIELDS)
    def test_metrics_identical_across_engines(
        self, engine_runs, engine, executor, field
    ):
        _, candidate, _ = engine_runs[(engine, executor)]
        _, scratch, _ = engine_runs[("scratch", executor)]
        assert getattr(candidate, field) == getattr(scratch, field)

    @pytest.mark.parametrize("engine", ["incremental", "delta"])
    @pytest.mark.parametrize("executor", ["inline", "process"])
    def test_jaccard_values_identical_across_engines(
        self, engine_runs, engine, executor
    ):
        """Every tracked coefficient must be bit-identical, not just close:
        the engines rearrange the same exact integer sums."""
        _, _, candidate_tracker = engine_runs[(engine, executor)]
        _, _, scr_tracker = engine_runs[("scratch", executor)]
        assert candidate_tracker.coefficients() == scr_tracker.coefficients()
        assert candidate_tracker.supports() == scr_tracker.supports()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_jaccard_values_identical_across_executors(self, engine_runs, engine):
        _, _, inline_tracker = engine_runs[(engine, "inline")]
        _, _, process_tracker = engine_runs[(engine, "process")]
        assert inline_tracker.coefficients() == process_tracker.coefficients()

    @pytest.mark.parametrize("engine", ["incremental", "delta"])
    def test_error_metrics_identical(self, engine_runs, engine):
        _, candidate, _ = engine_runs[(engine, "inline")]
        _, scratch, _ = engine_runs[("scratch", "inline")]
        assert candidate.jaccard_coverage == scratch.jaccard_coverage
        assert candidate.jaccard_mean_error == scratch.jaccard_mean_error

    def test_report_records_engine(self, engine_runs):
        for (engine, _executor), (_, report, _) in engine_runs.items():
            assert report.reporting_engine == engine

    def test_cache_stats_reported_in_exact_mode(self, engine_runs):
        _, report, _ = engine_runs[("incremental", "inline")]
        stats = report.subset_cache_stats
        assert stats is not None
        assert stats["hits"] > 0
        assert stats["misses"] > 0

    def test_carry_stats_reported_for_delta(self, engine_runs):
        """The delta engine accounts its carry table; the others never
        touch it."""
        _, delta_report, _ = engine_runs[("delta", "inline")]
        stats = delta_report.subset_cache_stats
        assert stats["carry_misses"] > 0
        assert stats["carry_hits"] >= 0
        _, incremental_report, _ = engine_runs[("incremental", "inline")]
        inc = incremental_report.subset_cache_stats
        assert inc["carry_hits"] == inc["carry_misses"] == 0

    def test_report_round_stats_recorded(self, engine_runs):
        """Per-round report attribution (rounds, wall-clock, dirty/clean
        split) is surfaced for every exact-mode run."""
        for (engine, _executor), (_, report, _) in engine_runs.items():
            stats = report.report_round_stats
            assert stats is not None
            assert stats["rounds"] > 0
            assert stats["report_seconds"] > 0.0
            if engine != "scratch":
                # Type-granular engines attribute their folds; scratch
                # walks keys, not types.
                assert stats["dirty_types"] > 0
            if engine != "delta":
                assert stats["clean_types"] == 0
                assert stats["deferred_triples"] == 0


class TestWorkerSideDrain:
    def test_process_executor_ships_drained_results(self, engine_runs):
        """Shards ship result triples, not counter tables: the executor
        holds per-task drained results and the shipped-back Calculators are
        already empty."""
        system, report, _ = engine_runs[("incremental", "process")]
        drained = system.cluster.executor.drained_results()
        calculator_tasks = {
            task.task_id for task in system.cluster.tasks_of(streams.CALCULATOR)
        }
        assert set(drained) == calculator_tasks
        for triples, replays, tracked in drained.values():
            for tagset, jaccard, support in triples:
                assert isinstance(tagset, frozenset)
                assert 0.0 < jaccard <= 1.0
                assert support >= 1
            assert replays == []  # only the delta engine defers
            assert tracked is None  # exact mode has no sketch estimator
        # The drain ran inside the workers: the re-installed bolts come
        # back with their counters already reset.
        for bolt in system.cluster.instances_of(streams.CALCULATOR):
            assert bolt.observations == 0
            assert bolt.drain_triples() == []

    def test_delta_drain_ships_compact_replays_and_slim_bolts(self, engine_runs):
        """Delta shards ship deferred coefficients as (triple, count) pairs
        and drop the carried fold state before pickling the bolts back."""
        system, report, _ = engine_runs[("delta", "process")]
        drained = system.cluster.executor.drained_results()
        total_replayed = 0
        for _triples, replays, _tracked in drained.values():
            for (tagset, jaccard, support), count in replays:
                assert isinstance(tagset, frozenset)
                assert 0.0 < jaccard <= 1.0
                assert support >= 1 and count >= 1
                total_replayed += count
        deferred = report.report_round_stats["deferred_triples"]
        assert total_replayed == deferred
        for bolt in system.cluster.instances_of(streams.CALCULATOR):
            assert bolt.calculator.carry_stats["carry_size"] == 0

    def test_inline_executor_has_no_predrained_results(self, engine_runs):
        system, _, _ = engine_runs[("incremental", "inline")]
        assert system.cluster.executor.drained_results() == {}


class TestClearHeavyMultiRound:
    """A clear()-heavy pipeline — many short report rounds, so the carry
    table crosses many resets — must stay bit-identical to scratch."""

    @pytest.fixture(scope="class")
    def multi_round_runs(self, documents):
        runs = {}
        for engine in ("scratch", "delta"):
            runs[engine] = _run(
                documents,
                reporting_engine=engine,
                report_interval_seconds=5.0,  # ~8x the rounds of the grid
            )
        return runs

    def test_many_rounds_ran(self, multi_round_runs):
        _, report, _ = multi_round_runs["delta"]
        assert report.report_round_stats["rounds"] >= 10

    @pytest.mark.parametrize("field", IDENTICAL_FIELDS)
    def test_metrics_identical(self, multi_round_runs, field):
        _, delta, _ = multi_round_runs["delta"]
        _, scratch, _ = multi_round_runs["scratch"]
        assert getattr(delta, field) == getattr(scratch, field)

    def test_coefficients_identical(self, multi_round_runs):
        _, _, delta_tracker = multi_round_runs["delta"]
        _, _, scratch_tracker = multi_round_runs["scratch"]
        assert delta_tracker.coefficients() == scratch_tracker.coefficients()
        assert delta_tracker.supports() == scratch_tracker.supports()


# --------------------------------------------------------------------- #
# Scenario workloads
# --------------------------------------------------------------------- #

#: Scenario workloads of the equivalence matrix.  The trending stream
#: thins its anchor cadence (same-slot spacing 3 s) and stretches the
#: plateau so anchor multiplicities stay stable against the per-round
#: report-boundary drift — the shape the delta engine's carry table is
#: built for; the adversarial stream is the carry table's worst case
#: (almost every type is brand new every round).
SCENARIO_RUNS = {
    "trending": dict(
        n_documents=9000,
        overrides={"trend_anchor_share": 1.0 / 30.0,
                   "trend_plateau_seconds": 120.0},
    ),
    "adversarial": dict(n_documents=4000, overrides={}),
}


def _scenario_workload(scenario):
    from repro.workloads import make_generator, scenario_preset

    spec = SCENARIO_RUNS[scenario]
    config = scenario_preset(
        scenario, seed=11, tweets_per_second=50.0, **spec["overrides"]
    )
    return make_generator(config).generate(spec["n_documents"])


class TestScenarioEquivalence:
    """Engines × executors equivalence holds per workload *shape*, not just
    on the legacy stream — and the delta engine's carry behaviour flips
    between the carry-friendly and carry-hostile shapes as designed."""

    @pytest.fixture(scope="class")
    def scenario_runs(self):
        runs = {}
        for scenario in SCENARIO_RUNS:
            documents = _scenario_workload(scenario)
            for engine in ENGINES:
                for executor in ("inline", "process"):
                    overrides = {
                        "reporting_engine": engine,
                        "executor": executor,
                        "scenario": scenario,
                    }
                    if executor == "process":
                        overrides["workers"] = 2
                    runs[(scenario, engine, executor)] = _run(
                        documents, **overrides
                    )
        return runs

    @pytest.mark.parametrize("scenario", sorted(SCENARIO_RUNS))
    @pytest.mark.parametrize("engine", ["incremental", "delta"])
    @pytest.mark.parametrize("executor", ["inline", "process"])
    @pytest.mark.parametrize("field", IDENTICAL_FIELDS)
    def test_metrics_identical_across_engines(
        self, scenario_runs, scenario, engine, executor, field
    ):
        _, candidate, _ = scenario_runs[(scenario, engine, executor)]
        _, scratch, _ = scenario_runs[(scenario, "scratch", executor)]
        assert getattr(candidate, field) == getattr(scratch, field)

    @pytest.mark.parametrize("scenario", sorted(SCENARIO_RUNS))
    @pytest.mark.parametrize("engine", ["incremental", "delta"])
    @pytest.mark.parametrize("executor", ["inline", "process"])
    def test_coefficients_identical_across_engines(
        self, scenario_runs, scenario, engine, executor
    ):
        _, _, candidate_tracker = scenario_runs[(scenario, engine, executor)]
        _, _, scratch_tracker = scenario_runs[(scenario, "scratch", executor)]
        assert candidate_tracker.coefficients() == scratch_tracker.coefficients()
        assert candidate_tracker.supports() == scratch_tracker.supports()

    @pytest.mark.parametrize("scenario", sorted(SCENARIO_RUNS))
    @pytest.mark.parametrize("engine", ENGINES)
    def test_executors_agree_on_coverage_and_totals(
        self, scenario_runs, scenario, engine
    ):
        """Executors track the same coefficient key set and processing
        totals on every scenario.  Coefficient *values* are only compared
        per executor (the cross-engine tests above): over many report
        rounds the sharded executor's tick delivery shifts a handful of
        boundary documents between rounds, so last-reported values may
        differ in either executor — on the legacy stream by a coefficient
        or two, amplified on scenario streams."""
        _, inline_report, inline_tracker = scenario_runs[
            (scenario, engine, "inline")
        ]
        _, process_report, process_tracker = scenario_runs[
            (scenario, engine, "process")
        ]
        assert set(inline_tracker.coefficients()) == set(
            process_tracker.coefficients()
        )
        for field in ("documents_processed", "tagged_documents",
                      "notification_messages"):
            assert getattr(inline_report, field) == getattr(
                process_report, field
            )

    @pytest.mark.parametrize("scenario", sorted(SCENARIO_RUNS))
    @pytest.mark.parametrize("executor", ["inline", "process"])
    def test_report_stamps_workload_scenario(
        self, scenario_runs, scenario, executor
    ):
        _, report, _ = scenario_runs[(scenario, "delta", executor)]
        assert report.workload_scenario == scenario

    @pytest.mark.parametrize("executor", ["inline", "process"])
    def test_trending_stream_produces_carry_hits(self, scenario_runs, executor):
        """The carry-friendly recurrence actually pays off end to end:
        stable anchor multiplicities let the delta engine re-assert whole
        types without refolding them."""
        _, report, _ = scenario_runs[("trending", "delta", executor)]
        assert report.subset_cache_stats["carry_hits"] > 0

    @pytest.mark.parametrize("executor", ["inline", "process"])
    def test_adversarial_stream_defeats_the_carry(self, scenario_runs, executor):
        """Churning types never recur with stable multiplicities, so the
        carry table cannot re-assert anything — the delta engine must
        degrade to fold-everything, never to wrong results (the
        equivalence tests above pin the latter)."""
        _, report, _ = scenario_runs[("adversarial", "delta", executor)]
        assert report.subset_cache_stats["carry_hits"] == 0
        _, scratch, _ = scenario_runs[("adversarial", "scratch", executor)]
        assert report.coefficients_reported == scratch.coefficients_reported
