"""Reporting-engine equivalence: incremental and scratch runs are identical.

The incremental reporting engine changes *how* exact-mode report rounds
recover union sizes (one subset-lattice fold per distinct observed tagset
type instead of a per-key counter re-walk), never *what* they compute.
These tests pin that contract end-to-end: identical Jaccard coefficients in
the Tracker and identical ``RunReport`` logical metrics, on both execution
engines (acceptance criterion of the incremental reporting PR; see
docs/ARCHITECTURE.md "Reporting path").
"""

import pytest

from repro.operators import TrackerBolt, streams
from repro.pipeline import SystemConfig, TagCorrelationSystem
from repro.workloads import TwitterLikeGenerator, WorkloadConfig

#: RunReport fields that must be bit-identical across reporting engines
#: (mirrors the executor-equivalence contract).
IDENTICAL_FIELDS = (
    "documents_processed",
    "tagged_documents",
    "communication_avg",
    "calculator_loads",
    "load_gini",
    "load_max_share",
    "n_repartitions",
    "repartition_reasons",
    "single_addition_requests",
    "single_additions_applied",
    "coefficients_reported",
    "duplicate_reports",
    "notification_messages",
    "batch_amortization",
)


def _workload(n_documents=2000, seed=11):
    config = WorkloadConfig(
        seed=seed,
        tweets_per_second=50.0,
        n_topics=100,
        tags_per_topic=14,
        new_topic_rate=5.0,
        intra_topic_probability=0.9,
    )
    return TwitterLikeGenerator(config).generate(n_documents)


def _config(**overrides):
    base = dict(
        algorithm="DS",
        k=4,
        n_partitioners=3,
        window_mode="count",
        window_size=500,
        bootstrap_documents=200,
        quality_check_interval=120,
        repartition_threshold=0.5,
        report_interval_seconds=30.0,
    )
    base.update(overrides)
    return SystemConfig(**base)


@pytest.fixture(scope="module")
def documents():
    return _workload()


def _run(documents, **overrides):
    system = TagCorrelationSystem(_config(**overrides))
    report = system.run(documents)
    tracker = next(
        bolt
        for bolt in system.cluster.instances_of(streams.TRACKER)
        if isinstance(bolt, TrackerBolt)
    )
    return system, report, tracker


@pytest.fixture(scope="module")
def engine_runs(documents):
    """One run per (reporting engine, executor) cell of the grid."""
    runs = {}
    for engine in ("incremental", "scratch"):
        for executor in ("inline", "process"):
            overrides = {"reporting_engine": engine, "executor": executor}
            if executor == "process":
                overrides["workers"] = 2
            runs[(engine, executor)] = _run(documents, **overrides)
    return runs


class TestEngineEquivalence:
    @pytest.mark.parametrize("executor", ["inline", "process"])
    @pytest.mark.parametrize("field", IDENTICAL_FIELDS)
    def test_metrics_identical_across_engines(self, engine_runs, executor, field):
        _, incremental, _ = engine_runs[("incremental", executor)]
        _, scratch, _ = engine_runs[("scratch", executor)]
        assert getattr(incremental, field) == getattr(scratch, field)

    @pytest.mark.parametrize("executor", ["inline", "process"])
    def test_jaccard_values_identical_across_engines(self, engine_runs, executor):
        """Every tracked coefficient must be bit-identical, not just close:
        both engines rearrange the same exact integer sums."""
        _, _, inc_tracker = engine_runs[("incremental", executor)]
        _, _, scr_tracker = engine_runs[("scratch", executor)]
        assert inc_tracker.coefficients() == scr_tracker.coefficients()
        assert inc_tracker.supports() == scr_tracker.supports()

    @pytest.mark.parametrize("engine", ["incremental", "scratch"])
    def test_jaccard_values_identical_across_executors(self, engine_runs, engine):
        _, _, inline_tracker = engine_runs[(engine, "inline")]
        _, _, process_tracker = engine_runs[(engine, "process")]
        assert inline_tracker.coefficients() == process_tracker.coefficients()

    def test_error_metrics_identical(self, engine_runs):
        _, incremental, _ = engine_runs[("incremental", "inline")]
        _, scratch, _ = engine_runs[("scratch", "inline")]
        assert incremental.jaccard_coverage == scratch.jaccard_coverage
        assert incremental.jaccard_mean_error == scratch.jaccard_mean_error

    def test_report_records_engine(self, engine_runs):
        for (engine, _executor), (_, report, _) in engine_runs.items():
            assert report.reporting_engine == engine

    def test_cache_stats_reported_in_exact_mode(self, engine_runs):
        _, report, _ = engine_runs[("incremental", "inline")]
        stats = report.subset_cache_stats
        assert stats is not None
        assert stats["hits"] > 0
        assert stats["misses"] > 0


class TestWorkerSideDrain:
    def test_process_executor_ships_drained_results(self, engine_runs):
        """Shards ship result triples, not counter tables: the executor
        holds per-task drained results and the shipped-back Calculators are
        already empty."""
        system, report, _ = engine_runs[("incremental", "process")]
        drained = system.cluster.executor.drained_results()
        calculator_tasks = {
            task.task_id for task in system.cluster.tasks_of(streams.CALCULATOR)
        }
        assert set(drained) == calculator_tasks
        for triples, tracked in drained.values():
            for tagset, jaccard, support in triples:
                assert isinstance(tagset, frozenset)
                assert 0.0 < jaccard <= 1.0
                assert support >= 1
            assert tracked is None  # exact mode has no sketch estimator
        # The drain ran inside the workers: the re-installed bolts come
        # back with their counters already reset.
        for bolt in system.cluster.instances_of(streams.CALCULATOR):
            assert bolt.observations == 0
            assert bolt.drain_triples() == []

    def test_inline_executor_has_no_predrained_results(self, engine_runs):
        system, _, _ = engine_runs[("incremental", "inline")]
        assert system.cluster.executor.drained_results() == {}
