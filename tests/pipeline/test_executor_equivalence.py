"""Executor equivalence: inline and process runs report identical metrics.

The sharded process executor changes *where* the Calculator/Tracker layer
runs, never *what* it computes: routing decisions, clock advancement,
communication and load counters all happen driver-side before a tuple
crosses the process boundary, and each remote bolt sees exactly the inline
message/tick interleaving.  These tests pin that contract on the quickstart
workload for both Calculator modes.
"""

import pytest

from repro.operators import BaseCalculatorBolt, TrackerBolt, streams
from repro.pipeline import SystemConfig, TagCorrelationSystem
from repro.workloads import TwitterLikeGenerator, WorkloadConfig


def _workload(n_documents=2500, seed=7):
    config = WorkloadConfig(
        seed=seed,
        tweets_per_second=50.0,
        n_topics=120,
        tags_per_topic=15,
        new_topic_rate=5.0,
        intra_topic_probability=0.92,
    )
    return TwitterLikeGenerator(config).generate(n_documents)


def _config(**overrides):
    base = dict(
        algorithm="DS",
        k=4,
        n_partitioners=3,
        window_mode="count",
        window_size=500,
        bootstrap_documents=200,
        quality_check_interval=120,
        repartition_threshold=0.5,
        report_interval_seconds=30.0,
    )
    base.update(overrides)
    return SystemConfig(**base)


@pytest.fixture(scope="module")
def documents():
    return _workload()


@pytest.fixture(scope="module")
def exact_reports(documents):
    inline = TagCorrelationSystem(_config()).run(documents)
    process_system = TagCorrelationSystem(
        _config(executor="process", workers=2)
    )
    process = process_system.run(documents)
    return inline, process, process_system


#: RunReport fields that must be bit-identical across executors (the paper's
#: logical metrics plus the physical batching counters).
IDENTICAL_FIELDS = (
    "documents_processed",
    "tagged_documents",
    "communication_avg",
    "calculator_loads",
    "load_gini",
    "load_max_share",
    "n_repartitions",
    "repartition_reasons",
    "single_addition_requests",
    "single_additions_applied",
    "coefficients_reported",
    "duplicate_reports",
    "notification_messages",
    "batch_amortization",
)


class TestExactModeEquivalence:
    @pytest.mark.parametrize("field", IDENTICAL_FIELDS)
    def test_metric_identical(self, exact_reports, field):
        inline, process, _ = exact_reports
        assert getattr(process, field) == getattr(inline, field)

    def test_jaccard_coverage_identical(self, exact_reports):
        inline, process, _ = exact_reports
        assert process.jaccard_coverage == inline.jaccard_coverage

    def test_jaccard_error_matches(self, exact_reports):
        inline, process, _ = exact_reports
        # Only Tracker tie-breaking (equal-support duplicates arriving in a
        # different order) could perturb this, hence approx rather than ==.
        assert process.jaccard_mean_error == pytest.approx(
            inline.jaccard_mean_error, abs=1e-9
        )

    def test_executor_fields(self, exact_reports):
        inline, process, _ = exact_reports
        assert inline.executor_mode == "inline"
        assert inline.executor_workers == 1
        assert process.executor_mode == "process"
        assert process.executor_workers == 2

    def test_summary_identical(self, exact_reports):
        inline, process, _ = exact_reports
        assert process.summary() == inline.summary()

    def test_remote_state_reinstalled_for_inspection(self, exact_reports):
        """After a process run the cluster holds the workers' bolt objects."""
        _, process, system = exact_reports
        calculators = [
            bolt
            for bolt in system.cluster.instances_of(streams.CALCULATOR)
            if isinstance(bolt, BaseCalculatorBolt)
        ]
        assert calculators
        assert sum(c.notifications_received for c in calculators) > 0
        tracker = next(
            bolt
            for bolt in system.cluster.instances_of(streams.TRACKER)
            if isinstance(bolt, TrackerBolt)
        )
        assert len(tracker) == process.coefficients_reported


class TestSketchModeEquivalence:
    def test_sketch_metrics_identical(self, documents):
        inline = TagCorrelationSystem(_config(calculator="sketch")).run(documents)
        process = TagCorrelationSystem(
            _config(calculator="sketch", executor="process", workers=2)
        ).run(documents)
        for field in IDENTICAL_FIELDS:
            assert getattr(process, field) == getattr(inline, field)
        assert process.jaccard_coverage == inline.jaccard_coverage
        assert process.sketch_stats == inline.sketch_stats


class TestWorkerResolution:
    def test_workers_clamped_to_k(self, documents):
        report = TagCorrelationSystem(
            _config(k=2, executor="process", workers=6)
        ).run(documents[:600])
        assert report.executor_workers == 2

    def test_auto_workers_resolved(self):
        config = _config(executor="process", workers=0)
        assert 1 <= config.resolved_workers() <= 4
