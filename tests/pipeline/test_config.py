"""Unit tests for the system configuration."""

import pytest

from repro.pipeline.config import PAPER_DEFAULTS, SystemConfig


class TestValidation:
    def test_defaults_valid(self):
        SystemConfig().validate()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"k": 0},
            {"n_partitioners": 0},
            {"n_parsers": 0},
            {"n_disseminators": 0},
            {"window_mode": "weird"},
            {"window_size": 0},
            {"bootstrap_documents": 0},
            {"repartition_threshold": -0.1},
            {"executor": "threads"},
            {"workers": -1},
        ],
    )
    def test_invalid_values_rejected(self, overrides):
        with pytest.raises(ValueError):
            SystemConfig(**overrides).validate()


class TestFactories:
    def test_paper_defaults_match_section_8(self):
        config = SystemConfig.paper_defaults("SCC")
        assert config.algorithm == "SCC"
        assert config.k == PAPER_DEFAULTS["k"] == 10
        assert config.n_partitioners == 10
        assert config.repartition_threshold == 0.5
        assert config.single_addition_threshold == 3
        assert config.quality_check_interval == 1000
        assert config.report_interval_seconds == 300.0

    def test_paper_defaults_with_overrides(self):
        config = SystemConfig.paper_defaults("DS", k=20)
        assert config.k == 20

    def test_scaled_down_preserves_ratios(self):
        config = SystemConfig.scaled_down("DS", scale=0.01)
        assert config.window_size >= 200
        assert config.bootstrap_documents <= config.window_size
        config.validate()

    def test_scaled_down_invalid_scale(self):
        with pytest.raises(ValueError):
            SystemConfig.scaled_down(scale=0)

    def test_with_overrides_returns_copy(self):
        base = SystemConfig()
        changed = base.with_overrides(k=7)
        assert changed.k == 7
        assert base.k == 10
        assert changed is not base


class TestExecutorConfig:
    def test_inline_is_default(self):
        config = SystemConfig()
        assert config.executor == "inline"
        assert config.workers == 0

    def test_explicit_workers_resolve_verbatim(self):
        assert SystemConfig(workers=7).resolved_workers() == 7

    def test_auto_workers_bounded(self):
        assert 1 <= SystemConfig(workers=0).resolved_workers() <= 4
