"""Equivalence contracts of live mid-stream repartitioning.

Two contracts pin the coordinated handoff (quiesce → migrate → install):

* **Matrix consistency** — a run that swaps its partition map mid-stream
  (``fixed`` policy, ``migrate`` handoff) reports bit-identical logical
  metrics and Tracker contents across every reporting engine and both
  executors, in both Calculator modes.  The migration protocol is thus
  engine- and executor-agnostic, exactly like normal execution.

* **Splice equivalence** — a run with a migrating swap at document *r*
  equals the concatenation of two independent runs: a *prefix* run over
  the documents through *r* (ending in the same forced swap), and a
  *suffix* run over the remaining documents started from the installed
  map via ``SystemConfig.initial_partitions`` (the
  ``PartitionInstall.seed()`` round trip).  Tracker states merge through
  ``export_triples()`` — the max-support dedup is associative over
  concatenated report streams — and the logical routing metrics are
  additive.  This is the strongest statement that a migration loses and
  duplicates nothing: the run really is two clean runs glued at the
  handoff point.

The splice suites run in the drain-only regime (one report at end of
stream): the prefix and suffix runs cannot reproduce the full run's
absolute tick schedule, so in-stream report cadence is covered by the
matrix-consistency half instead.
"""

import pytest

from repro.core.documents import make_tagset
from repro.operators import DisseminatorBolt, TrackerBolt, streams
from repro.pipeline import SystemConfig, TagCorrelationSystem
from repro.workloads import TwitterLikeGenerator, WorkloadConfig

SWAP_POINTS = (700, 1400)
SPLICE_POINT = 900


def _workload(n_documents=2000, seed=23):
    config = WorkloadConfig(
        seed=seed,
        tweets_per_second=50.0,
        n_topics=100,
        tags_per_topic=14,
        new_topic_rate=5.0,
        intra_topic_probability=0.9,
    )
    return TwitterLikeGenerator(config).generate(n_documents)


def _config(**overrides):
    base = dict(
        algorithm="DS",
        k=4,
        n_partitioners=3,
        window_mode="count",
        window_size=500,
        bootstrap_documents=200,
        quality_check_interval=120,
        repartition_threshold=0.5,
        report_interval_seconds=30.0,
        repartition_policy="fixed",
        repartition_at=SWAP_POINTS,
        repartition_handoff="migrate",
        include_centralized_baseline=False,
    )
    base.update(overrides)
    return SystemConfig(**base)


def _run(documents, **overrides):
    system = TagCorrelationSystem(_config(**overrides))
    report = system.run(documents)
    tracker = next(
        bolt
        for bolt in system.cluster.instances_of(streams.TRACKER)
        if isinstance(bolt, TrackerBolt)
    )
    disseminator = next(
        bolt
        for bolt in system.cluster.instances_of(streams.DISSEMINATOR)
        if isinstance(bolt, DisseminatorBolt)
    )
    return report, tracker, disseminator


#: Logical RunReport fields pinned identical across the whole matrix.
IDENTICAL_FIELDS = (
    "documents_processed",
    "tagged_documents",
    "communication_avg",
    "calculator_loads",
    "load_gini",
    "load_max_share",
    "n_repartitions",
    "repartition_reasons",
    "single_addition_requests",
    "single_additions_applied",
    "coefficients_reported",
    "duplicate_reports",
    "notification_messages",
    "batch_amortization",
)


@pytest.fixture(scope="module")
def documents():
    return _workload()


@pytest.fixture(scope="module")
def splice_documents():
    """The shared stream split at the r-th *tagged* document.

    The forced-swap schedule counts the documents the Disseminator sees
    (the Parser drops untagged ones), so the raw stream is sliced at the
    document whose tagset is the ``SPLICE_POINT``-th non-empty one.
    """
    docs = _workload()
    tagged = 0
    for index, document in enumerate(docs):
        if make_tagset(document.tags):
            tagged += 1
            if tagged == SPLICE_POINT:
                return docs[: index + 1], docs[index + 1:]
    raise AssertionError("workload has fewer tagged documents than SPLICE_POINT")


# --------------------------------------------------------------------- #
# Matrix consistency
# --------------------------------------------------------------------- #
class TestMigrationMatrixConsistency:
    @pytest.fixture(scope="class")
    def exact_matrix(self, documents):
        cells = {}
        for engine in ("incremental", "scratch", "delta"):
            for executor in ("inline", "process"):
                overrides = dict(reporting_engine=engine, executor=executor)
                if executor == "process":
                    overrides["workers"] = 2
                cells[(engine, executor)] = _run(documents, **overrides)
        return cells

    def test_migrations_actually_ran(self, exact_matrix):
        for (engine, executor), (report, _, _) in exact_matrix.items():
            stats = report.migration_stats
            assert stats is not None, (engine, executor)
            assert stats["handoffs"] == float(len(SWAP_POINTS))
            assert stats["aborted"] == 0.0
            assert stats["migrated_triples"] > 0
            assert report.migration_failures == []
            assert report.repartition_reasons == {"forced": len(SWAP_POINTS)}
            assert report.timings["migration_stall"] > 0.0

    def test_logical_metrics_identical_across_matrix(self, exact_matrix):
        reference_key = ("incremental", "inline")
        reference = exact_matrix[reference_key][0]
        for key, (report, _, _) in exact_matrix.items():
            for field in IDENTICAL_FIELDS:
                assert getattr(report, field) == getattr(reference, field), (
                    f"{field} differs between {reference_key} and {key}"
                )

    def test_tracker_contents_identical_across_matrix(self, exact_matrix):
        reference = exact_matrix[("incremental", "inline")][1]
        for key, (_, tracker, _) in exact_matrix.items():
            assert tracker.coefficients() == reference.coefficients(), key
            assert tracker.supports() == reference.supports(), key

    def test_migration_records_identical_across_matrix(self, exact_matrix):
        reference = exact_matrix[("incremental", "inline")][0]
        expected = [
            (m.epoch, m.documents_processed, m.migrated_triples, m.aborted)
            for m in reference.migrations
        ]
        for key, (report, _, _) in exact_matrix.items():
            observed = [
                (m.epoch, m.documents_processed, m.migrated_triples, m.aborted)
                for m in report.migrations
            ]
            assert observed == expected, key

    def test_sketch_mode_matrix(self, documents):
        inline = _run(documents, calculator="sketch")
        process = _run(documents, calculator="sketch", executor="process", workers=2)
        for field in IDENTICAL_FIELDS:
            assert getattr(inline[0], field) == getattr(process[0], field), field
        assert inline[1].coefficients() == process[1].coefficients()
        assert inline[1].supports() == process[1].supports()
        assert inline[0].migration_stats is not None
        assert inline[0].migration_stats["handoffs"] == float(len(SWAP_POINTS))
        assert inline[0].migration_stats["aborted"] == 0.0


# --------------------------------------------------------------------- #
# Splice equivalence
# --------------------------------------------------------------------- #
def _splice_overrides(**extra):
    """Drain-only regime: one report at end of stream, swap at the splice."""
    overrides = dict(
        report_interval_seconds=1e9,
        repartition_at=(SPLICE_POINT,),
    )
    overrides.update(extra)
    return overrides


SPLICE_CELLS = [
    pytest.param(dict(reporting_engine="incremental"), id="exact-incremental-inline"),
    pytest.param(dict(reporting_engine="delta"), id="exact-delta-inline"),
    pytest.param(
        dict(reporting_engine="incremental", executor="process", workers=2),
        id="exact-incremental-process",
    ),
    pytest.param(dict(calculator="sketch"), id="sketch-inline"),
]


class TestSpliceEquivalence:
    @pytest.mark.parametrize("cell", SPLICE_CELLS)
    def test_migrated_run_equals_prefix_plus_seeded_suffix(
        self, splice_documents, cell
    ):
        prefix, suffix = splice_documents

        full_report, full_tracker, full_disseminator = _run(
            prefix + suffix, **_splice_overrides(**cell)
        )
        migrated_installs = [
            install
            for install in full_report.partition_installs
            if install.via_migration
        ]
        assert len(migrated_installs) == 1
        assert migrated_installs[0].documents_processed == SPLICE_POINT

        # Prefix run: identical processing through the splice document,
        # ending in the same forced swap + migration.
        prefix_report, prefix_tracker, prefix_disseminator = _run(
            prefix, **_splice_overrides(**cell)
        )
        prefix_migrated = [
            install
            for install in prefix_report.partition_installs
            if install.via_migration
        ]
        assert len(prefix_migrated) == 1
        seed = prefix_migrated[0].seed()
        assert seed == migrated_installs[0].seed(), (
            "prefix run installed a different map than the full run"
        )

        # Suffix run: a fresh system resumed from the installed map.
        suffix_report, suffix_tracker, suffix_disseminator = _run(
            suffix,
            **_splice_overrides(
                repartition_policy="never",
                repartition_at=(),
                initial_partitions=seed,
                **cell,
            ),
        )

        # Tracker splice: merging the two runs' dedup tables reproduces
        # the full run's coefficients and supports exactly.
        merged = TrackerBolt()
        merged.ingest(prefix_tracker.export_triples())
        merged.ingest(suffix_tracker.export_triples())
        assert merged.coefficients() == full_tracker.coefficients()
        assert merged.supports() == full_tracker.supports()

        # Logical routing metrics are additive at the splice.
        assert (
            full_report.tagged_documents
            == prefix_report.tagged_documents + suffix_report.tagged_documents
        )
        assert full_report.calculator_loads == [
            a + b
            for a, b in zip(
                prefix_report.calculator_loads, suffix_report.calculator_loads
            )
        ]
        full_comm = full_disseminator.metrics.communication
        prefix_comm = prefix_disseminator.metrics.communication
        suffix_comm = suffix_disseminator.metrics.communication
        assert full_comm.notifications == (
            prefix_comm.notifications + suffix_comm.notifications
        )
        assert full_comm.routed_tagsets == (
            prefix_comm.routed_tagsets + suffix_comm.routed_tagsets
        )

    def test_seeded_suffix_requires_matching_k(self, splice_documents):
        _, suffix = splice_documents
        prefix_report, _, _ = _run(
            splice_documents[0], **_splice_overrides()
        )
        seed = next(
            install
            for install in prefix_report.partition_installs
            if install.via_migration
        ).seed()
        del suffix
        with pytest.raises(ValueError, match="initial_partitions"):
            _config(k=seed.k + 1, initial_partitions=seed).validate()
