"""Spill ≡ dict: the out-of-core stores are invisible in everything the system says.

``SystemConfig(counter_store="spill")`` moves the Calculators' window
counters out of core — hot segments freeze into sorted run files, report
rounds k-way-merge them back — but counts are additive, so spill timing,
run count and merge order must all be unobservable: every logical
``RunReport`` metric, every final coefficient and every support must be
**bit-identical** to the default in-RAM ``dict`` store.  These tests pin
that across the grid the ISSUE names: reporting engines × executors ×
calculator modes, plus the forced mid-stream repartition handoff (the
migration payload streams from merged runs) and a served (service-mode)
run — while asserting the spill machinery actually engaged (runs written,
merges run) and cleaned up after itself (no spill directories survive a
drain).

``SystemConfig(tracker_store="spill")`` does the same to the Tracker's
dedup coefficient table — the max-support dedup rule becomes the run-merge
combiner — and ``report_chunk_size`` bounds the reporting path's emission
and drain batches; both are pinned bit-identical to the defaults by the
``TestTrackerSpill`` / ``TestServiceModeWithTrackerSpill`` grids below.
"""

import os

import pytest

from repro.operators import TrackerBolt, streams
from repro.pipeline import SystemConfig, TagCorrelationSystem
from repro.service import ServiceClient, ServiceDaemon
from repro.workloads import TwitterLikeGenerator, WorkloadConfig

#: RunReport fields that must be bit-identical across counter stores
#: (mirrors the reporting-engine and executor equivalence contracts).
IDENTICAL_FIELDS = (
    "documents_processed",
    "tagged_documents",
    "communication_avg",
    "calculator_loads",
    "load_gini",
    "load_max_share",
    "n_repartitions",
    "repartition_reasons",
    "single_addition_requests",
    "single_additions_applied",
    "coefficients_reported",
    "duplicate_reports",
    "notification_messages",
    "batch_amortization",
)

#: Small enough that a 2000-document run spills dozens of runs per round,
#: crossing every interesting boundary (hot tail + many runs at fold time).
SPILL_THRESHOLD = 400

ENGINES = ("scratch", "incremental", "delta")
STORES = ("dict", "spill")


def _workload(n_documents=2000, seed=11):
    config = WorkloadConfig(
        seed=seed,
        tweets_per_second=50.0,
        n_topics=100,
        tags_per_topic=14,
        new_topic_rate=5.0,
        intra_topic_probability=0.9,
    )
    return TwitterLikeGenerator(config).generate(n_documents)


def _config(spill_root, **overrides):
    base = dict(
        algorithm="DS",
        k=4,
        n_partitioners=3,
        window_mode="count",
        window_size=500,
        bootstrap_documents=200,
        quality_check_interval=120,
        repartition_threshold=0.5,
        report_interval_seconds=30.0,
    )
    base.update(overrides)
    if base.get("counter_store") == "spill":
        base.setdefault("spill_dir", spill_root)
        base.setdefault("spill_threshold", SPILL_THRESHOLD)
    return SystemConfig(**base)


def _run(documents, spill_root, **overrides):
    system = TagCorrelationSystem(_config(spill_root, **overrides))
    report = system.run(documents)
    tracker = next(
        bolt
        for bolt in system.cluster.instances_of(streams.TRACKER)
        if isinstance(bolt, TrackerBolt)
    )
    return system, report, tracker


@pytest.fixture(scope="module")
def documents():
    return _workload()


@pytest.fixture(scope="module")
def spill_root(tmp_path_factory):
    return str(tmp_path_factory.mktemp("spill-equivalence"))


@pytest.fixture(scope="module")
def grid_runs(documents, spill_root):
    """One run per (store, engine, executor) cell."""
    runs = {}
    for store in STORES:
        for engine in ENGINES:
            for executor in ("inline", "process"):
                overrides = {
                    "counter_store": store,
                    "reporting_engine": engine,
                    "executor": executor,
                }
                if executor == "process":
                    overrides["workers"] = 2
                runs[(store, engine, executor)] = _run(
                    documents, spill_root, **overrides
                )
    return runs


class TestSpillEqualsDict:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("executor", ["inline", "process"])
    @pytest.mark.parametrize("field", IDENTICAL_FIELDS)
    def test_metrics_identical(self, grid_runs, engine, executor, field):
        _, spill, _ = grid_runs[("spill", engine, executor)]
        _, plain, _ = grid_runs[("dict", engine, executor)]
        assert getattr(spill, field) == getattr(plain, field)

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("executor", ["inline", "process"])
    def test_coefficients_and_supports_identical(
        self, grid_runs, engine, executor
    ):
        """Bit-identical, not approximately equal: the spill store merges
        the very same integer counts the dict would have held."""
        _, _, spill_tracker = grid_runs[("spill", engine, executor)]
        _, _, plain_tracker = grid_runs[("dict", engine, executor)]
        assert spill_tracker.coefficients() == plain_tracker.coefficients()
        assert spill_tracker.supports() == plain_tracker.supports()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_error_metrics_identical(self, grid_runs, engine):
        _, spill, _ = grid_runs[("spill", engine, "inline")]
        _, plain, _ = grid_runs[("dict", engine, "inline")]
        assert spill.jaccard_coverage == plain.jaccard_coverage
        assert spill.jaccard_mean_error == plain.jaccard_mean_error

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("executor", ["inline", "process"])
    def test_spilling_actually_happened(self, grid_runs, engine, executor):
        """The equivalence is vacuous unless runs hit the disk: every spill
        cell must have written and merged runs and served block-cache
        lookups on the way to its (identical) answers."""
        _, report, _ = grid_runs[("spill", engine, executor)]
        assert report.counter_store == "spill"
        stats = report.store_stats
        assert stats is not None
        assert stats["runs_written"] > 0
        assert stats["spilled_entries"] > 0
        assert stats["merges"] > 0
        assert stats["block_cache_hits"] + stats["block_cache_misses"] > 0

    def test_dict_cells_report_no_store_stats(self, grid_runs):
        _, report, _ = grid_runs[("dict", "incremental", "inline")]
        assert report.counter_store == "dict"
        assert report.store_stats is None

    def test_delta_carry_spills_too(self, grid_runs):
        """Under the delta engine the carry table's cached emissions move
        to the on-disk carry log — and the answers still match (the
        cross-engine assertions above)."""
        _, report, _ = grid_runs[("spill", "delta", "inline")]
        assert report.store_stats["carry_blobs_written"] > 0

    def test_no_spill_directories_survive_the_drain(self, grid_runs, spill_root):
        """Every store closed on drain: the shared spill root is empty."""
        assert os.listdir(spill_root) == []


class TestRepartitionWithSpill:
    """Forced mid-stream repartitions: migration payloads stream out of the
    spill store's merged runs and the handoff stays bit-identical."""

    @pytest.fixture(scope="class")
    def repartition_runs(self, documents, spill_root):
        runs = {}
        for store in STORES:
            runs[store] = _run(
                documents,
                spill_root,
                counter_store=store,
                repartition_policy="fixed",
                repartition_at=(700, 1400),
                repartition_handoff="migrate",
            )
        return runs

    def test_migrations_ran(self, repartition_runs):
        _, report, _ = repartition_runs["spill"]
        assert report.n_repartitions == 2
        assert report.migration_stats["handoffs"] > 0
        assert report.migration_stats["migrated_triples"] > 0

    @pytest.mark.parametrize("field", IDENTICAL_FIELDS)
    def test_metrics_identical(self, repartition_runs, field):
        _, spill, _ = repartition_runs["spill"]
        _, plain, _ = repartition_runs["dict"]
        assert getattr(spill, field) == getattr(plain, field)

    def test_migration_epochs_identical(self, repartition_runs):
        _, spill, _ = repartition_runs["spill"]
        _, plain, _ = repartition_runs["dict"]
        assert [
            (m.epoch, m.documents_processed, m.migrated_triples, m.aborted)
            for m in spill.migrations
        ] == [
            (m.epoch, m.documents_processed, m.migrated_triples, m.aborted)
            for m in plain.migrations
        ]

    def test_coefficients_identical(self, repartition_runs):
        _, _, spill_tracker = repartition_runs["spill"]
        _, _, plain_tracker = repartition_runs["dict"]
        assert spill_tracker.coefficients() == plain_tracker.coefficients()
        assert spill_tracker.supports() == plain_tracker.supports()


class TestSketchModeUnaffected:
    """The sketch calculator never touches subset counters; a spill config
    must pass through as a harmless no-op (same estimates, no store
    stats)."""

    @pytest.fixture(scope="class")
    def sketch_runs(self, documents, spill_root):
        return {
            store: _run(
                documents, spill_root, counter_store=store, calculator="sketch"
            )
            for store in STORES
        }

    def test_estimates_identical(self, sketch_runs):
        _, _, spill_tracker = sketch_runs["spill"]
        _, _, plain_tracker = sketch_runs["dict"]
        assert spill_tracker.coefficients() == plain_tracker.coefficients()

    @pytest.mark.parametrize("field", IDENTICAL_FIELDS)
    def test_metrics_identical(self, sketch_runs, field):
        _, spill, _ = sketch_runs["spill"]
        _, plain, _ = sketch_runs["dict"]
        assert getattr(spill, field) == getattr(plain, field)

    def test_no_store_stats_in_sketch_mode(self, sketch_runs):
        _, report, _ = sketch_runs["spill"]
        assert report.store_stats is None


class TestTrackerSpill:
    """``tracker_store="spill"`` ≡ dict: the Tracker's dedup table moves
    into sorted runs (the max-support rule becomes the merge combiner) and
    nothing observable changes — every pinned metric, every coefficient,
    every support.  The grid re-crosses reporting engines × executors
    against the dict-store baselines, plus the paths with their own
    machinery: chunked report emissions/drains, both stores spilling at
    once, and the forced mid-stream migration handoff."""

    TRACKER_THRESHOLD = 300

    @pytest.fixture(scope="class")
    def tracker_runs(self, documents, spill_root):
        runs = {}
        for engine in ENGINES:
            for executor in ("inline", "process"):
                overrides = {
                    "tracker_store": "spill",
                    "tracker_spill_threshold": self.TRACKER_THRESHOLD,
                    "spill_dir": spill_root,
                    "reporting_engine": engine,
                    "executor": executor,
                }
                if executor == "process":
                    overrides["workers"] = 2
                runs[(engine, executor)] = _run(
                    documents, spill_root, **overrides
                )
        return runs

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("executor", ["inline", "process"])
    @pytest.mark.parametrize("field", IDENTICAL_FIELDS)
    def test_metrics_identical(
        self, tracker_runs, grid_runs, engine, executor, field
    ):
        _, spill, _ = tracker_runs[(engine, executor)]
        _, plain, _ = grid_runs[("dict", engine, executor)]
        assert getattr(spill, field) == getattr(plain, field)

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("executor", ["inline", "process"])
    def test_coefficients_and_supports_identical(
        self, tracker_runs, grid_runs, engine, executor
    ):
        _, _, spill_tracker = tracker_runs[(engine, executor)]
        _, _, plain_tracker = grid_runs[("dict", engine, executor)]
        assert spill_tracker.coefficients() == plain_tracker.coefficients()
        assert spill_tracker.supports() == plain_tracker.supports()

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("executor", ["inline", "process"])
    def test_spilling_actually_happened(self, tracker_runs, engine, executor):
        _, report, _ = tracker_runs[(engine, executor)]
        assert report.tracker_store == "spill"
        stats = report.tracker_store_stats
        assert stats is not None
        assert stats["runs_written"] > 0
        assert stats["spilled_entries"] > 0
        assert stats["hot_entries"] < self.TRACKER_THRESHOLD

    def test_dict_cells_report_no_tracker_stats(self, grid_runs):
        _, report, _ = grid_runs[("dict", "incremental", "inline")]
        assert report.tracker_store == "dict"
        assert report.tracker_store_stats is None

    def test_snapshot_digest_matches_the_dict_tracker(
        self, tracker_runs, grid_runs
    ):
        """A run-backed snapshot over the final table hashes line-identical
        to the dict tracker's full-copy snapshot."""
        _, _, spill_tracker = tracker_runs[("incremental", "inline")]
        _, _, plain_tracker = grid_runs[("dict", "incremental", "inline")]
        spill_snapshot = spill_tracker.snapshot(round_index=7)
        try:
            assert spill_snapshot.digest() == plain_tracker.snapshot(7).digest()
            assert spill_snapshot.top_k(k=20) == plain_tracker.snapshot(7).top_k(k=20)
        finally:
            spill_snapshot.close()

    def test_chunked_reporting_path_identical(self, documents, spill_root, grid_runs):
        """Bounded report emissions + chunked end-of-run drains: physical
        only, every logical answer unchanged."""
        _, report, tracker = _run(
            documents,
            spill_root,
            tracker_store="spill",
            tracker_spill_threshold=self.TRACKER_THRESHOLD,
            spill_dir=spill_root,
            report_chunk_size=64,
            executor="process",
            workers=2,
        )
        _, plain, plain_tracker = grid_runs[("dict", "incremental", "process")]
        for field in IDENTICAL_FIELDS:
            assert getattr(report, field) == getattr(plain, field), field
        assert tracker.coefficients() == plain_tracker.coefficients()
        tracker.close()

    def test_both_stores_spill_together(self, documents, spill_root, grid_runs):
        """Counter store and tracker store both out of core at once."""
        _, report, tracker = _run(
            documents,
            spill_root,
            counter_store="spill",
            tracker_store="spill",
            tracker_spill_threshold=self.TRACKER_THRESHOLD,
        )
        _, plain, plain_tracker = grid_runs[("dict", "incremental", "inline")]
        for field in IDENTICAL_FIELDS:
            assert getattr(report, field) == getattr(plain, field), field
        assert tracker.coefficients() == plain_tracker.coefficients()
        assert report.store_stats["runs_written"] > 0
        assert report.tracker_store_stats["runs_written"] > 0
        tracker.close()

    def test_migration_handoff_identical(self, documents, spill_root):
        """Forced mid-stream swaps with state migration: the migrated
        triples re-ingest through the spill store bit-identically."""
        results = {}
        for store in STORES:
            results[store] = _run(
                documents,
                spill_root,
                tracker_store=store,
                tracker_spill_threshold=self.TRACKER_THRESHOLD,
                spill_dir=spill_root,
                repartition_policy="fixed",
                repartition_at=(700, 1400),
                repartition_handoff="migrate",
            )
        _, spill, spill_tracker = results["spill"]
        _, plain, plain_tracker = results["dict"]
        assert spill.n_repartitions == 2
        assert spill.migration_stats["migrated_triples"] > 0
        for field in IDENTICAL_FIELDS:
            assert getattr(spill, field) == getattr(plain, field), field
        assert spill_tracker.coefficients() == plain_tracker.coefficients()
        assert spill_tracker.supports() == plain_tracker.supports()
        spill_tracker.close()

    def test_closing_the_trackers_empties_the_spill_root(
        self, tracker_runs, spill_root
    ):
        """The tracker store keeps its runs readable after the drain (the
        table *is* the run set); an explicit close releases everything.
        Must run after every other test of this class — closed trackers
        answer queries with empty tables."""
        for _, _, tracker in tracker_runs.values():
            tracker.close()
        leftovers = [
            name for name in os.listdir(spill_root)
            if name.startswith("repro-tracker-")
        ]
        assert leftovers == []


class TestServiceModeWithSpill:
    """A served spill run — socket ingest, quiescent snapshot boundaries
    between batches — equals the inline dict run document for document."""

    INGEST_BATCH = 250

    @pytest.fixture(scope="class")
    def served_spill(self, documents, spill_root):
        config = _config(spill_root, counter_store="spill")
        with ServiceDaemon(config) as daemon:
            host, port = daemon.address
            with ServiceClient(host=host, port=port) as client:
                for start in range(0, len(documents), self.INGEST_BATCH):
                    batch = documents[start:start + self.INGEST_BATCH]
                    response = client.ingest(batch, block=True, timeout=60.0)
                    assert response["accepted"] == len(batch)
                client.shutdown()
        report = daemon.final_report
        assert report is not None
        tracker = next(
            bolt
            for bolt in daemon.system.cluster.instances_of(streams.TRACKER)
            if isinstance(bolt, TrackerBolt)
        )
        return report, tracker

    def test_served_spill_equals_batch_dict(self, served_spill, grid_runs):
        served_report, served_tracker = served_spill
        _, batch_report, batch_tracker = grid_runs[
            ("dict", "incremental", "inline")
        ]
        for field in IDENTICAL_FIELDS:
            assert getattr(served_report, field) == getattr(
                batch_report, field
            ), field
        assert served_tracker.coefficients() == batch_tracker.coefficients()
        assert served_tracker.supports() == batch_tracker.supports()

    def test_served_run_spilled(self, served_spill, spill_root):
        report, _ = served_spill
        assert report.counter_store == "spill"
        assert report.store_stats["runs_written"] > 0
        assert os.listdir(spill_root) == []


class TestServiceModeWithTrackerSpill:
    """The daemon's quiescent snapshots come from the run-backed view —
    no full-table copy per round — and the served run still equals the
    inline dict batch run exactly."""

    INGEST_BATCH = 250

    def _serve(self, documents, spill_root, **overrides):
        config = _config(spill_root, **overrides)
        with ServiceDaemon(config) as daemon:
            host, port = daemon.address
            with ServiceClient(host=host, port=port) as client:
                for start in range(0, len(documents), self.INGEST_BATCH):
                    batch = documents[start:start + self.INGEST_BATCH]
                    response = client.ingest(batch, block=True, timeout=60.0)
                    assert response["accepted"] == len(batch)
                top = client.top_k(k=5)
                assert top["ok"]
                client.shutdown()
        report = daemon.final_report
        assert report is not None
        tracker = next(
            bolt
            for bolt in daemon.system.cluster.instances_of(streams.TRACKER)
            if isinstance(bolt, TrackerBolt)
        )
        return daemon, report, tracker

    @pytest.fixture(scope="class")
    def served_tracker_spill(self, documents, spill_root):
        return self._serve(
            documents,
            spill_root,
            tracker_store="spill",
            tracker_spill_threshold=TestTrackerSpill.TRACKER_THRESHOLD,
            spill_dir=spill_root,
        )

    @pytest.fixture(scope="class")
    def served_dict(self, documents, spill_root):
        return self._serve(documents, spill_root)

    def test_served_equals_batch_dict(self, served_tracker_spill, grid_runs):
        _, served_report, served_tracker = served_tracker_spill
        _, batch_report, batch_tracker = grid_runs[
            ("dict", "incremental", "inline")
        ]
        for field in IDENTICAL_FIELDS:
            assert getattr(served_report, field) == getattr(
                batch_report, field
            ), field
        assert served_tracker.coefficients() == batch_tracker.coefficients()
        assert served_tracker.supports() == batch_tracker.supports()

    def test_snapshots_are_run_backed_and_digest_identical(
        self, served_tracker_spill, served_dict
    ):
        """Every quiescent snapshot the spill daemon published answers from
        the run-backed view and hashes line-identical, round for round, to
        the dict daemon's full-copy snapshot of the same round."""
        from repro.store import RunBackedTrackerSnapshot

        spill_daemon, _, _ = served_tracker_spill
        dict_daemon, _, _ = served_dict
        spill_snapshots = spill_daemon.retained_snapshots()
        dict_snapshots = dict_daemon.retained_snapshots()
        assert [s.round_index for s in spill_snapshots] == [
            s.round_index for s in dict_snapshots
        ]
        assert any(
            isinstance(s, RunBackedTrackerSnapshot) for s in spill_snapshots
        )
        for spill_snapshot, dict_snapshot in zip(
            spill_snapshots, dict_snapshots
        ):
            assert spill_snapshot.digest() == dict_snapshot.digest()
            assert spill_snapshot.top_k(k=20) == dict_snapshot.top_k(k=20)
            assert len(spill_snapshot) == len(dict_snapshot)

    def test_served_tracker_spilled_and_closes_clean(
        self, served_tracker_spill, spill_root
    ):
        _, report, tracker = served_tracker_spill
        assert report.tracker_store == "spill"
        assert report.tracker_store_stats["runs_written"] > 0
        tracker.close()
        assert [
            name for name in os.listdir(spill_root)
            if name.startswith("repro-tracker-")
        ] == []
