"""Batch ≡ served: the ingest API reproduces the recorded fixture exactly.

Service mode changes *how* documents arrive (a socket ingest API feeding the
single-writer :class:`~repro.streamsim.executors.AsyncServiceExecutor`) but
must never change *what* the system computes.  These tests feed the pinned
wire-equivalence workload through a live :class:`~repro.service.ServiceDaemon`
— real TCP sockets, JSON wire round-trip of every document, chunked blocking
ingest — and assert that every logical ``RunReport`` metric and every final
coefficient/support digest is **bit-identical** to the recorded batch fixture
(``fixtures/wire_equivalence.json``), across reporting engines × calculator
modes, including the forced mid-stream repartition cells.

The recorded fixture is the same one ``test_wire_equivalence.py`` pins, so a
served run is transitively proven equal to every batch executor cell.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.operators import TrackerBolt, streams
from repro.pipeline import SystemConfig
from repro.service import ServiceClient, ServiceDaemon

_REPO_ROOT = Path(__file__).resolve().parents[2]
_FIXTURE_PATH = Path(__file__).parent / "fixtures" / "wire_equivalence.json"

_spec = importlib.util.spec_from_file_location(
    "record_equivalence_fixture",
    _REPO_ROOT / "tools" / "record_equivalence_fixture.py",
)
_recorder = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_recorder)

FIXTURE = json.loads(_FIXTURE_PATH.read_text(encoding="utf-8"))

#: Documents per ingest request — small enough that a served run crosses
#: many quiescent snapshot boundaries, large enough to stay fast.
INGEST_BATCH = 250

#: Served cell -> (config overrides, recorded batch cell it must equal).
#: Spans all three exact-mode reporting engines, the sketch calculator and
#: the forced mid-stream repartition handoff.
SERVED_CELLS = {
    "served-exact-incremental": (
        dict(calculator="exact", reporting_engine="incremental"),
        "exact-incremental-inline",
    ),
    "served-exact-scratch": (
        dict(calculator="exact", reporting_engine="scratch"),
        "exact-scratch-inline",
    ),
    "served-exact-delta": (
        dict(calculator="exact", reporting_engine="delta"),
        "exact-delta-inline",
    ),
    "served-sketch": (dict(calculator="sketch"), "sketch-inline"),
    "served-exact-incremental-repartition": (
        dict(
            calculator="exact",
            reporting_engine="incremental",
            repartition_policy="fixed",
            repartition_at=(700, 1400),
            repartition_handoff="migrate",
        ),
        "exact-incremental-inline-repartition",
    ),
    "served-sketch-repartition": (
        dict(
            calculator="sketch",
            repartition_policy="fixed",
            repartition_at=(700, 1400),
            repartition_handoff="migrate",
        ),
        "sketch-inline-repartition",
    ),
}


def serve_cell(documents, overrides) -> dict:
    """Run one grid cell through the socket ingest API, batch-record format.

    Every document round-trips through its JSON wire form (tags become
    sorted lists, timestamps go through ``repr`` float serialisation), so
    this also proves the wire encoding is lossless for equivalence.
    """
    config = SystemConfig(**{**_recorder.BASE_CONFIG, **overrides})
    rounds_seen = []
    with ServiceDaemon(config) as daemon:
        host, port = daemon.address
        with ServiceClient(host=host, port=port) as client:
            for start in range(0, len(documents), INGEST_BATCH):
                batch = documents[start : start + INGEST_BATCH]
                response = client.ingest(batch, block=True, timeout=60.0)
                assert response["accepted"] == len(batch)
                rounds_seen.append(client.stats()["round"])
            final = client.shutdown()
    report = daemon.final_report
    assert report is not None
    assert final["final"]["documents_processed"] == len(documents)
    # Rounds advance monotonically while batches flow in.
    assert rounds_seen == sorted(rounds_seen)
    tracker = next(
        bolt
        for bolt in daemon.system.cluster.instances_of(streams.TRACKER)
        if isinstance(bolt, TrackerBolt)
    )
    record = {field: getattr(report, field) for field in _recorder.PINNED_FIELDS}
    record["jaccard_coverage"] = report.jaccard_coverage
    record["jaccard_mean_error"] = report.jaccard_mean_error
    record["coefficients_sha256"] = _recorder.coefficient_digest(
        tracker.coefficients().items()
    )
    record["supports_sha256"] = _recorder.coefficient_digest(
        tracker.supports().items()
    )
    if report.migrations:
        record["migrations"] = [
            [m.epoch, m.documents_processed, m.migrated_triples, m.aborted]
            for m in report.migrations
        ]
    return record


@pytest.fixture(scope="module")
def documents():
    return _recorder.generate_documents()


@pytest.fixture(scope="module")
def served_cells(documents):
    return {
        name: serve_cell(documents, overrides)
        for name, (overrides, _batch_cell) in SERVED_CELLS.items()
    }


class TestServedEqualsBatch:
    @pytest.mark.parametrize("cell", sorted(SERVED_CELLS))
    def test_logical_metrics_bit_identical(self, served_cells, cell):
        recorded = FIXTURE["cells"][SERVED_CELLS[cell][1]]
        served = served_cells[cell]
        for field in _recorder.PINNED_FIELDS:
            assert served[field] == recorded[field], field
        assert served["jaccard_coverage"] == recorded["jaccard_coverage"]
        assert served["jaccard_mean_error"] == recorded["jaccard_mean_error"]
        assert served.get("migrations") == recorded.get("migrations")

    @pytest.mark.parametrize("cell", sorted(SERVED_CELLS))
    def test_coefficient_digests_bit_identical(self, served_cells, cell):
        """Every final coefficient and support, hashed at full precision."""
        recorded = FIXTURE["cells"][SERVED_CELLS[cell][1]]
        served = served_cells[cell]
        assert served["coefficients_sha256"] == recorded["coefficients_sha256"]
        assert served["supports_sha256"] == recorded["supports_sha256"]

    def test_grid_spans_engines_modes_and_repartition(self):
        batch_cells = {batch for _, batch in SERVED_CELLS.values()}
        assert batch_cells <= set(FIXTURE["cells"])
        assert any("scratch" in name for name in SERVED_CELLS)
        assert any("delta" in name for name in SERVED_CELLS)
        assert any("sketch" in name for name in SERVED_CELLS)
        assert any("repartition" in name for name in SERVED_CELLS)

    def test_wire_round_trip_is_lossless(self, documents):
        """Document -> wire JSON -> Document is exact (id, tags, time, text)."""
        from repro.service import protocol as wire

        for document in documents[:200]:
            encoded = json.loads(json.dumps(wire.document_to_wire(document)))
            decoded = wire.document_from_wire(encoded)
            assert decoded == document
