"""Wire-format equivalence: the slot-tuple substrate reproduces PR 3 exactly.

The substrate's wire API was redesigned around schema-declared slot tuples
and batched links (interned ``StreamSchema`` layouts, positional ``emit``,
per-edge ``EmissionBatch`` routing/delivery/IPC).  All of that is physical:
every logical metric and every reported coefficient must be **bit-identical**
to the dict-backed wire format.  The fixture
``fixtures/wire_equivalence.json`` was recorded at PR 3, immediately before
the redesign, over the full (executor × calculator mode × reporting engine)
grid — these tests replay the same grid and compare against it, including
content digests of the Tracker's final coefficients and supports.

Regenerate the fixture (only when logical behaviour changes intentionally)
with ``PYTHONPATH=src python tools/record_equivalence_fixture.py``.

``TestLinkBatchKnob`` additionally pins that the substrate's link batching
is physical-only: forcing per-message delivery (``link_batch_size=1``)
changes nothing observable.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parents[2]
_FIXTURE_PATH = Path(__file__).parent / "fixtures" / "wire_equivalence.json"

_spec = importlib.util.spec_from_file_location(
    "record_equivalence_fixture",
    _REPO_ROOT / "tools" / "record_equivalence_fixture.py",
)
_recorder = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_recorder)

FIXTURE = json.loads(_FIXTURE_PATH.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def documents():
    return _recorder.generate_documents()


@pytest.fixture(scope="module")
def captured_cells(documents):
    """One live capture per grid cell, in fixture-recording format."""
    return {
        name: _recorder.capture_cell(documents, overrides)
        for name, overrides in _recorder.CELLS.items()
    }


class TestGridPinnedAgainstPR3:
    @pytest.mark.parametrize("cell", sorted(_recorder.CELLS))
    def test_logical_metrics_bit_identical(self, captured_cells, cell):
        recorded = FIXTURE["cells"][cell]
        captured = captured_cells[cell]
        for field in _recorder.PINNED_FIELDS:
            assert captured[field] == recorded[field], field
        assert captured["jaccard_coverage"] == recorded["jaccard_coverage"]
        assert captured["jaccard_mean_error"] == recorded["jaccard_mean_error"]
        # The repartition cells additionally pin their migration records
        # (epoch, document position, migrated triples, aborted flag).
        assert captured.get("migrations") == recorded.get("migrations")

    @pytest.mark.parametrize("cell", sorted(_recorder.CELLS))
    def test_coefficient_digests_bit_identical(self, captured_cells, cell):
        """Every tracked coefficient and support, not just the aggregates."""
        recorded = FIXTURE["cells"][cell]
        captured = captured_cells[cell]
        assert captured["coefficients_sha256"] == recorded["coefficients_sha256"]
        assert captured["supports_sha256"] == recorded["supports_sha256"]

    def test_fixture_covers_the_full_grid(self):
        assert set(FIXTURE["cells"]) == set(_recorder.CELLS)
        # The grid spans both executors, both calculator modes and all
        # three exact-mode reporting engines.
        assert any("process" in name for name in _recorder.CELLS)
        assert any("sketch" in name for name in _recorder.CELLS)
        assert any("scratch" in name for name in _recorder.CELLS)
        assert any("delta" in name for name in _recorder.CELLS)

    def test_repartition_cells_cover_the_migration_handoff(self):
        """The ``-repartition`` cells force two mid-stream swaps with the
        coordinated state-migration handoff, and record non-trivial,
        committed migrations."""
        repartition_cells = [
            name for name in _recorder.CELLS if name.endswith("-repartition")
        ]
        assert repartition_cells
        for name in repartition_cells:
            migrations = FIXTURE["cells"][name]["migrations"]
            assert len(migrations) == 2, name
            for _epoch, _documents, migrated, aborted in migrations:
                assert migrated > 0, name
                assert aborted is False, name

    def test_delta_cells_pin_the_scratch_recording(self):
        """The delta engine is pinned against the PR 3 scratch records —
        byte-for-byte, digests included."""
        assert (
            FIXTURE["cells"]["exact-delta-inline"]
            == FIXTURE["cells"]["exact-scratch-inline"]
        )
        assert (
            FIXTURE["cells"]["exact-delta-process"]
            == FIXTURE["cells"]["exact-scratch-process"]
        )


class TestLinkBatchKnob:
    """link_batch_size is physical-only: metrics are identical at 1."""

    def test_per_message_delivery_changes_nothing(self, documents, captured_cells):
        unbatched = _recorder.capture_cell(
            documents, dict(calculator="exact", link_batch_size=1)
        )
        assert unbatched == captured_cells["exact-incremental-inline"]

    def test_negative_link_batch_rejected(self):
        from repro.pipeline import SystemConfig

        with pytest.raises(ValueError):
            SystemConfig(link_batch_size=-1).validate()
