"""Pipeline tests for the batched notification engine and the sketch mode."""

import pytest

from repro.pipeline import SystemConfig, TagCorrelationSystem
from repro.workloads import TwitterLikeGenerator, WorkloadConfig


@pytest.fixture(scope="module")
def documents():
    return TwitterLikeGenerator(
        WorkloadConfig(
            seed=19,
            n_topics=60,
            tags_per_topic=12,
            tweets_per_second=50.0,
            new_topic_rate=4.0,
            intra_topic_probability=0.9,
        )
    ).generate(3000)


def config(**overrides):
    base = dict(
        algorithm="DS",
        k=4,
        n_partitioners=3,
        window_mode="count",
        window_size=400,
        bootstrap_documents=150,
        quality_check_interval=100,
        report_interval_seconds=30.0,
    )
    base.update(overrides)
    return SystemConfig(**base)


class TestBatchingEquivalence:
    """Batching is a wire-format optimisation: logical metrics must not move."""

    @pytest.fixture(scope="class")
    def reports(self, documents):
        batched = TagCorrelationSystem(config(notification_batch_size=64)).run(
            documents
        )
        unbatched = TagCorrelationSystem(config(notification_batch_size=1)).run(
            documents
        )
        return batched, unbatched

    def test_identical_communication_totals(self, reports):
        batched, unbatched = reports
        assert batched.communication_avg == unbatched.communication_avg

    def test_identical_calculator_loads(self, reports):
        batched, unbatched = reports
        assert batched.calculator_loads == unbatched.calculator_loads

    def test_identical_repartition_schedule(self, reports):
        batched, unbatched = reports
        assert batched.n_repartitions == unbatched.n_repartitions
        assert [e.documents_processed for e in batched.repartition_events] == [
            e.documents_processed for e in unbatched.repartition_events
        ]

    def test_batching_reduces_messages_at_least_5x(self, reports):
        batched, unbatched = reports
        assert unbatched.notification_messages >= 5 * batched.notification_messages
        assert batched.batch_amortization >= 5.0
        assert unbatched.batch_amortization == pytest.approx(1.0)

    def test_unbatched_message_count_equals_logical_notifications(self, reports):
        _, unbatched = reports
        assert unbatched.notification_messages == sum(unbatched.calculator_loads)


class TestSketchMode:
    @pytest.fixture(scope="class")
    def sketch_report(self, documents):
        return TagCorrelationSystem(config(calculator="sketch")).run(documents)

    def test_runs_end_to_end(self, sketch_report):
        assert sketch_report.calculator_mode == "sketch"
        assert sketch_report.coefficients_reported > 0
        assert sketch_report.sketch_stats is not None
        assert sketch_report.sketch_stats["minhash_permutations"] == 512.0

    def test_accuracy_close_to_exact_mode(self, documents, sketch_report):
        exact_report = TagCorrelationSystem(config(calculator="exact")).run(documents)
        # The sketch mode adds at most the MinHash estimation noise on top
        # of the exact mode's windowing error.
        assert sketch_report.jaccard_mean_error <= exact_report.jaccard_mean_error + 0.05
        assert sketch_report.jaccard_coverage >= exact_report.jaccard_coverage - 0.05

    def test_batching_also_amortizes_in_sketch_mode(self, sketch_report):
        assert sketch_report.batch_amortization >= 5.0

    def test_rejects_unknown_calculator(self):
        with pytest.raises(ValueError):
            TagCorrelationSystem(config(calculator="magic"))
