"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.workloads.io import load_documents
from repro.workloads.replay import read_trace_header


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_generate_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate"])


class TestGenerate:
    def test_writes_trace(self, tmp_path, capsys):
        output = tmp_path / "trace.jsonl"
        exit_code = main(
            ["generate", "--documents", "200", "--seed", "3", "--output", str(output)]
        )
        assert exit_code == 0
        documents = load_documents(output)
        assert len(documents) == 200
        assert "wrote 200 documents" in capsys.readouterr().out


class TestRun:
    def test_run_on_generated_workload(self, capsys):
        exit_code = main(
            [
                "run",
                "--documents", "1200",
                "--topics", "40",
                "--algorithm", "DS",
                "--k", "3",
                "--partitioners", "2",
                "--window", "300",
                "--bootstrap", "150",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "average communication" in output
        assert "algorithm                 : DS" in output

    def test_run_with_process_executor(self, capsys):
        exit_code = main(
            [
                "run",
                "--documents", "800",
                "--topics", "40",
                "--k", "2",
                "--partitioners", "2",
                "--window", "250",
                "--bootstrap", "120",
                "--executor", "process",
                "--workers", "2",
            ]
        )
        assert exit_code == 0
        assert "execution engine          : process (2 workers)" in capsys.readouterr().out

    def test_run_from_trace_file(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        main(["generate", "--documents", "800", "--seed", "5", "--output", str(trace)])
        capsys.readouterr()
        exit_code = main(
            [
                "run",
                "--input", str(trace),
                "--k", "2",
                "--partitioners", "2",
                "--window", "200",
                "--bootstrap", "100",
            ]
        )
        assert exit_code == 0
        assert "documents processed       : 800" in capsys.readouterr().out


class TestScenarios:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scenario", "frobnicate"])

    def test_run_with_scenario_preset(self, capsys):
        exit_code = main(
            [
                "run",
                "--documents", "1200",
                "--scenario", "trending",
                "--reporting-engine", "delta",
                "--k", "3",
                "--partitioners", "2",
                "--window", "300",
                "--bootstrap", "150",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "workload scenario         : trending" in output
        assert "documents processed       : 1200" in output

    def test_record_then_replay_round_trip(self, tmp_path, capsys):
        trace = tmp_path / "burst.trace.jsonl"
        exit_code = main(
            [
                "record",
                "--documents", "900",
                "--scenario", "burst",
                "--seed", "9",
                "--output", str(trace),
            ]
        )
        assert exit_code == 0
        assert "recorded 900 burst documents" in capsys.readouterr().out
        header = read_trace_header(trace)
        assert header["scenario"] == "burst"
        assert header["n_documents"] == 900
        exit_code = main(
            [
                "run",
                "--trace", str(trace),
                "--k", "2",
                "--partitioners", "2",
                "--window", "250",
                "--bootstrap", "120",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        # Replayed runs inherit the trace's recorded scenario provenance.
        assert "workload scenario         : burst" in output
        assert "documents processed       : 900" in output

    def test_run_rejects_plain_tweet_file_as_trace(self, tmp_path, capsys):
        plain = tmp_path / "plain.jsonl"
        main(["generate", "--documents", "50", "--output", str(plain)])
        capsys.readouterr()
        with pytest.raises(ValueError, match="not a repro-trace"):
            main(
                [
                    "run",
                    "--trace", str(plain),
                    "--k", "2",
                    "--partitioners", "2",
                ]
            )


class TestCompare:
    def test_compares_requested_algorithms(self, capsys):
        exit_code = main(
            [
                "compare",
                "--documents", "1000",
                "--topics", "40",
                "--algorithms", "DS,SCL",
                "--k", "3",
                "--partitioners", "2",
                "--window", "250",
                "--bootstrap", "120",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "DS" in output and "SCL" in output
        assert "comm" in output


class TestConnectivityAndTheory:
    def test_connectivity_table(self, capsys):
        exit_code = main(
            [
                "connectivity",
                "--documents", "1500",
                "--tps", "20",
                "--windows", "0.5,1",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "max tags %" in output

    def test_theory_tables(self, capsys):
        exit_code = main(["theory"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Section 5.1" in output
        assert "E[communication]" in output
