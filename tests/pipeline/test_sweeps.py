"""Tests for the parameter sweep helpers."""

import pytest

from repro.pipeline.sweeps import (
    SweepResult,
    default_workload,
    paper_parameter_grid,
    run_sweep,
)
from repro.pipeline.config import SystemConfig


class TestDefaultWorkload:
    def test_deterministic(self):
        first = default_workload(n_documents=200, seed=1)
        second = default_workload(n_documents=200, seed=1)
        assert [d.tags for d in first] == [d.tags for d in second]

    def test_rate_changes_timestamps(self):
        slow = default_workload(n_documents=100, tweets_per_second=100)
        fast = default_workload(n_documents=100, tweets_per_second=200)
        assert slow[-1].timestamp > fast[-1].timestamp


class TestPaperGrid:
    def test_grid_matches_section_81(self):
        grid = paper_parameter_grid()
        assert grid["k"] == [5, 10, 20]
        assert grid["n_partitioners"] == [3, 5, 10]
        assert grid["repartition_threshold"] == [0.2, 0.5]
        assert grid["tps"] == [1300, 2600]


class TestRunSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        documents = default_workload(
            n_documents=1200, tweets_per_second=100, seed=3, n_topics=50,
            tags_per_topic=10,
        )
        base = SystemConfig(
            algorithm="DS",
            k=4,
            n_partitioners=2,
            window_size=300,
            bootstrap_documents=150,
            quality_check_interval=100,
        )
        return run_sweep(
            "k",
            [2, 4],
            documents_factory=lambda value: documents,
            base_config=base,
            algorithms=("DS", "SCL"),
        )

    def test_reports_for_every_cell(self, sweep):
        assert isinstance(sweep, SweepResult)
        assert set(sweep.reports) == {"DS", "SCL"}
        for algorithm in sweep.algorithms:
            assert set(sweep.reports[algorithm]) == {2, 4}

    def test_parameter_applied_to_config(self, sweep):
        assert sweep.reports["DS"][2].config.k == 2
        assert sweep.reports["DS"][4].config.k == 4

    def test_metric_extraction(self, sweep):
        series = sweep.metric("communication")
        assert set(series) == {"DS", "SCL"}
        assert len(series["DS"]) == 2

    def test_table_rows(self, sweep):
        rows = sweep.table("load_gini")
        assert [value for value, _ in rows] == [2, 4]
        for _, per_algorithm in rows:
            assert set(per_algorithm) == {"DS", "SCL"}
