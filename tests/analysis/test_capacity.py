"""Unit tests for the capacity-planning model."""

import pytest

from repro.analysis.capacity import (
    CapacityEstimate,
    calibrate_updates_per_second,
    estimate_capacity,
    headroom_per_calculator,
    minimum_calculators,
    notification_cost,
)
from repro.pipeline import SystemConfig
from repro.pipeline.system import RunReport


def make_report(k=4, communication=1.2, loads=(100, 100, 100, 100)):
    return RunReport(
        algorithm="DS",
        config=SystemConfig(algorithm="DS", k=k),
        documents_processed=1000,
        tagged_documents=900,
        communication_avg=communication,
        calculator_loads=list(loads),
        load_gini=0.0,
        load_max_share=max(loads) / sum(loads),
        n_repartitions=0,
        repartition_reasons={},
        single_addition_requests=0,
        single_additions_applied=0,
        coefficients_reported=10,
        duplicate_reports=0,
        jaccard=None,
    )


class TestNotificationCost:
    def test_known_values(self):
        assert notification_cost(1) == 1.0
        assert notification_cost(3) == 7.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            notification_cost(-1)

    def test_never_below_one(self):
        assert notification_cost(0) == 1.0


class TestCalibration:
    def test_returns_positive_rate(self):
        rate = calibrate_updates_per_second(n_notifications=200)
        assert rate > 0


class TestEstimateCapacity:
    def test_balanced_deployment(self):
        report = make_report()
        estimate = estimate_capacity(report, updates_per_second_per_node=10_000)
        assert isinstance(estimate, CapacityEstimate)
        assert estimate.sustainable_tweets_per_second > 0
        assert estimate.k == 4

    def test_imbalance_reduces_capacity(self):
        balanced = estimate_capacity(
            make_report(loads=(100, 100, 100, 100)), updates_per_second_per_node=10_000
        )
        skewed = estimate_capacity(
            make_report(loads=(370, 10, 10, 10)), updates_per_second_per_node=10_000
        )
        assert (
            skewed.sustainable_tweets_per_second
            < balanced.sustainable_tweets_per_second
        )

    def test_more_communication_reduces_capacity(self):
        low = estimate_capacity(
            make_report(communication=1.0), updates_per_second_per_node=10_000
        )
        high = estimate_capacity(
            make_report(communication=4.0), updates_per_second_per_node=10_000
        )
        assert high.sustainable_tweets_per_second < low.sustainable_tweets_per_second

    def test_sustains(self):
        estimate = estimate_capacity(make_report(), updates_per_second_per_node=1e6)
        assert estimate.sustains(1300)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            estimate_capacity(make_report(), updates_per_second_per_node=0)


class TestMinimumCalculators:
    def test_faster_nodes_need_fewer_calculators(self):
        slow = minimum_calculators(1300, updates_per_second_per_node=20_000)
        fast = minimum_calculators(1300, updates_per_second_per_node=200_000)
        assert fast <= slow

    def test_higher_rate_needs_more_calculators(self):
        low = minimum_calculators(1300, updates_per_second_per_node=20_000)
        high = minimum_calculators(2600, updates_per_second_per_node=20_000)
        assert high >= low

    def test_single_node_when_capacity_is_huge(self):
        assert minimum_calculators(10, updates_per_second_per_node=1e9) == 1

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            minimum_calculators(0, 1000)
        with pytest.raises(ValueError):
            minimum_calculators(100, 0)

    def test_capped_at_max_k(self):
        assert minimum_calculators(1e12, 1.0, max_k=16) == 16


class TestHeadroom:
    def test_one_value_per_calculator(self):
        report = make_report()
        utilisation = headroom_per_calculator(
            report, tweets_per_second=100, updates_per_second_per_node=10_000
        )
        assert len(utilisation) == 4
        assert all(value >= 0 for value in utilisation)

    def test_overload_detected(self):
        report = make_report(loads=(400, 1, 1, 1))
        utilisation = headroom_per_calculator(
            report, tweets_per_second=100_000, updates_per_second_per_node=10_000
        )
        assert max(utilisation) > 1.0
