"""Unit tests for the quality time series (Figures 8 and 9)."""

import pytest

from repro.analysis.timeseries import communication_series, load_series
from repro.operators.disseminator import QualitySnapshot, RepartitionEvent


@pytest.fixture
def history():
    return [
        QualitySnapshot(
            documents_processed=1000,
            timestamp=10.0,
            avg_communication=1.2,
            calculator_loads=(60, 30, 10),
        ),
        QualitySnapshot(
            documents_processed=2000,
            timestamp=20.0,
            avg_communication=1.5,
            calculator_loads=(80, 15, 5),
            repartition_reason="communication",
        ),
        QualitySnapshot(
            documents_processed=3000,
            timestamp=30.0,
            avg_communication=0.0,
            calculator_loads=(0, 0, 0),
        ),
    ]


@pytest.fixture
def repartitions():
    return [
        RepartitionEvent(documents_processed=2000, timestamp=20.0, reason="communication")
    ]


class TestCommunicationSeries:
    def test_zero_communication_snapshots_skipped(self, history, repartitions):
        series = communication_series(history, repartitions)
        assert series.documents == [1000, 2000]
        assert series.communication == [1.2, 1.5]

    def test_repartition_positions(self, history, repartitions):
        series = communication_series(history, repartitions)
        assert series.repartition_documents == [2000]

    def test_empty_history(self):
        series = communication_series([], [])
        assert series.documents == []
        assert series.repartition_documents == []


class TestLoadSeries:
    def test_shares_sorted_descending(self, history, repartitions):
        series = load_series(history, repartitions)
        assert series.documents == [1000, 2000]
        for shares in series.shares:
            assert shares == sorted(shares, reverse=True)
            assert sum(shares) == pytest.approx(1.0)

    def test_rank_series(self, history, repartitions):
        series = load_series(history, repartitions)
        most_loaded = series.rank_series(0)
        least_loaded = series.rank_series(2)
        assert most_loaded == [pytest.approx(0.6), pytest.approx(0.8)]
        assert all(a >= b for a, b in zip(most_loaded, least_loaded))

    def test_rank_out_of_range_returns_zero(self, history, repartitions):
        series = load_series(history, repartitions)
        assert series.rank_series(10) == [0.0, 0.0]

    def test_snapshot_gini_property(self, history):
        assert 0.0 <= history[0].load_gini <= 1.0
