"""Unit tests for correlation-shift trend detection."""

import pytest

from repro.analysis.trends import (
    CorrelationHistory,
    TrendDetector,
    detect_trends_offline,
    window_coefficients,
)
from repro.core.documents import documents_from_tagsets


class TestCorrelationHistory:
    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            CorrelationHistory(smoothing=0.0)

    def test_unseen_tagset_predicts_zero(self):
        history = CorrelationHistory()
        assert history.predict(frozenset({"a", "b"})) == 0.0
        assert history.deviation(frozenset({"a", "b"})) == 0.0

    def test_prediction_tracks_observations(self):
        history = CorrelationHistory(smoothing=0.5)
        tagset = frozenset({"a", "b"})
        history.update(tagset, 0.8)
        assert history.predict(tagset) == pytest.approx(0.8)
        history.update(tagset, 0.4)
        assert 0.4 < history.predict(tagset) < 0.8

    def test_update_returns_error(self):
        history = CorrelationHistory()
        tagset = frozenset({"a", "b"})
        assert history.update(tagset, 0.6) == pytest.approx(0.6)
        assert history.update(tagset, 0.6) == pytest.approx(0.0)

    def test_known_tagsets(self):
        history = CorrelationHistory()
        history.update(frozenset({"a"}), 0.2)
        assert history.known_tagsets() == {frozenset({"a"})}
        assert len(history) == 1


class TestTrendDetector:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TrendDetector(sensitivity=0)
        with pytest.raises(ValueError):
            TrendDetector(min_jump=2.0)

    def test_new_strong_correlation_raises_alert(self):
        detector = TrendDetector(min_jump=0.4)
        alerts = detector.observe_window(
            10.0, {frozenset({"quake", "breaking"}): 0.8}
        )
        assert len(alerts) == 1
        assert alerts[0].tagset == frozenset({"quake", "breaking"})
        assert alerts[0].observed == 0.8

    def test_weak_correlation_does_not_alert(self):
        detector = TrendDetector(min_jump=0.4)
        alerts = detector.observe_window(10.0, {frozenset({"a", "b"}): 0.2})
        assert alerts == []

    def test_stable_correlation_stops_alerting(self):
        detector = TrendDetector(min_jump=0.4)
        tagset = frozenset({"a", "b"})
        detector.observe_window(0.0, {tagset: 0.8})
        later = detector.observe_window(60.0, {tagset: 0.8})
        assert later == []

    def test_min_support_filters(self):
        detector = TrendDetector(min_jump=0.1, min_support=5)
        alerts = detector.observe_window(
            0.0, {frozenset({"a", "b"}): 0.9}, supports={frozenset({"a", "b"}): 2}
        )
        assert alerts == []

    def test_top_alerts_sorted_by_score(self):
        detector = TrendDetector(min_jump=0.3)
        detector.observe_window(
            0.0,
            {frozenset({"a", "b"}): 0.5, frozenset({"c", "d"}): 0.9},
        )
        top = detector.top_alerts(2)
        assert top[0].observed >= top[1].observed


class TestOfflineDetection:
    def test_window_coefficients(self):
        documents = documents_from_tagsets([["a", "b"]] * 4 + [["a"]] * 4)
        coefficients, supports = window_coefficients(documents, min_support=2)
        assert coefficients[frozenset({"a", "b"})] == pytest.approx(0.5)
        assert supports[frozenset({"a", "b"})] == 4

    def test_detects_injected_burst(self):
        quiet = documents_from_tagsets(
            [["x", "y"]] * 3 + [["p"], ["q"]] * 10,
            timestamps=[i * 1.0 for i in range(23)],
        )
        burst = documents_from_tagsets(
            [["quake", "breaking"]] * 10,
            timestamps=[100.0 + i for i in range(10)],
        )
        detector = detect_trends_offline(quiet + burst, window_seconds=50.0)
        burst_alerts = [
            alert
            for alert in detector.alerts
            if alert.tagset == frozenset({"quake", "breaking"})
        ]
        assert burst_alerts
        assert burst_alerts[0].observed == pytest.approx(1.0)
