"""Unit tests for the connectivity analysis (Figure 7)."""

import pytest

from repro.analysis.connectivity import (
    ConnectivityReport,
    connectivity_by_window_size,
    window_connectivity,
)
from repro.core.documents import documents_from_tagsets
from repro.workloads import TwitterLikeGenerator, WorkloadConfig


class TestWindowConnectivity:
    def test_figure1_example(self, figure1_documents):
        stats = window_connectivity(figure1_documents)
        assert stats.n_components == 2
        assert stats.n_tags == 9
        assert stats.largest_component_tags == 6
        assert stats.largest_component_load == 18
        assert stats.max_tag_fraction == pytest.approx(6 / 9)
        assert stats.max_load_fraction == pytest.approx(18 / 21)

    def test_empty_window(self):
        stats = window_connectivity([])
        assert stats.n_components == 0
        assert stats.max_tag_fraction == 0.0
        assert stats.max_load_fraction == 0.0

    def test_np_value_computed(self):
        documents = documents_from_tagsets([["a", "b"], ["c", "d"]])
        stats = window_connectivity(documents)
        # 4 tags, 2 edges -> p = 2/6, np = 4/3
        assert stats.np_value == pytest.approx(4 / 3)


class TestConnectivityByWindowSize:
    @pytest.fixture(scope="class")
    def reports(self):
        documents = TwitterLikeGenerator(
            WorkloadConfig(seed=9, tweets_per_second=20.0, n_topics=40)
        ).generate(3000)
        return connectivity_by_window_size(documents, window_sizes_minutes=(1, 2))

    def test_report_per_window_size(self, reports):
        assert set(reports) == {1, 2}
        for report in reports.values():
            assert isinstance(report, ConnectivityReport)
            assert report.n_windows >= 1

    def test_percentages_in_range(self, reports):
        for report in reports.values():
            assert 0.0 <= report.max_tag_percentage() <= 100.0
            assert 0.0 <= report.max_load_percentage() <= 100.0
            assert report.mean_components() > 0

    def test_larger_windows_have_fewer_windows(self, reports):
        assert reports[2].n_windows <= reports[1].n_windows

    def test_larger_windows_see_more_tags(self, reports):
        """More documents per window means more distinct tags per window."""
        mean_tags_small = sum(w.n_tags for w in reports[1].windows) / reports[1].n_windows
        mean_tags_large = sum(w.n_tags for w in reports[2].windows) / reports[2].n_windows
        assert mean_tags_large >= mean_tags_small
