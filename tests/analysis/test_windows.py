"""Unit tests for windowing helpers."""

import pytest

from repro.analysis.windows import count_windows, sliding_windows, tumbling_windows
from repro.core.documents import documents_from_tagsets


def timed_documents(n, gap=1.0):
    return documents_from_tagsets(
        [["a"]] * n, timestamps=[i * gap for i in range(n)]
    )


class TestTumblingWindows:
    def test_invalid_size(self):
        with pytest.raises(ValueError):
            list(tumbling_windows([], 0))

    def test_windows_partition_the_stream(self):
        documents = timed_documents(10)
        windows = list(tumbling_windows(documents, 3.0))
        assert sum(len(w) for w in windows) == 10
        assert [len(w) for w in windows] == [3, 3, 3, 1]

    def test_empty_gap_windows_skipped(self):
        documents = documents_from_tagsets(
            [["a"], ["b"]], timestamps=[0.0, 100.0]
        )
        windows = list(tumbling_windows(documents, 10.0))
        assert len(windows) == 2

    def test_empty_stream(self):
        assert list(tumbling_windows([], 5.0)) == []


class TestCountWindows:
    def test_fixed_size_batches(self):
        documents = timed_documents(10)
        windows = list(count_windows(documents, 4))
        assert [len(w) for w in windows] == [4, 4, 2]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            list(count_windows([], 0))


class TestSlidingWindows:
    def test_overlapping(self):
        documents = timed_documents(6)
        windows = list(sliding_windows(documents, window_size=4, step=2))
        assert [len(w) for w in windows] == [4, 4]
        assert windows[0][2] is windows[1][0]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            list(sliding_windows([], 0, 1))
        with pytest.raises(ValueError):
            list(sliding_windows([], 2, 0))

    def test_empty_stream(self):
        assert list(sliding_windows([], 3, 1)) == []
