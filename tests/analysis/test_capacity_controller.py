"""Online capacity-policy decisions cross-checked against the offline model.

The ``capacity`` repartition policy promises to be *exactly* the
:mod:`repro.analysis.capacity` model applied online: a swap is requested
precisely when the rolling window's per-document update cost at the
bottleneck Calculator (equivalently, the inverse of its sustainable
arrival rate) degrades beyond ``(1 + thr)×`` the installed reference.
These tests feed synthetic routing windows to a live
:class:`RepartitionController` and verify every decision against the
offline math — including the clamped corner cases where the capacity
policy and the paper's either-or threshold policy disagree in both
directions.

Windows are synthesized from explicit route patterns (tuples of notified
partition indices, cycled to fill the window), so the rolling
communication average and load shares are exact by construction.
"""

import pytest

from repro.analysis.capacity import per_document_update_cost, sustainable_rate
from repro.core.metrics import max_load_share
from repro.operators.controller import (
    REASON_BOTH,
    REASON_COMMUNICATION,
    REASON_LOAD,
    RepartitionController,
)
from repro.pipeline import SystemConfig, TagCorrelationSystem
from repro.workloads import TwitterLikeGenerator, WorkloadConfig

K = 4
THR = 0.5
#: Window size; divisible by every pattern length below, so the synthetic
#: windows hit their target communication/share values exactly.
WINDOW = 120


def _controller(policy="capacity", reference=(None, None)):
    controller = RepartitionController(
        k=K, policy=policy, threshold=THR, quality_check_interval=WINDOW
    )
    controller.set_reference(*reference)
    return controller


def _fill_window(controller, pattern):
    for index in range(WINDOW):
        targets = pattern[index % len(pattern)]
        controller.record_route(len(targets), targets)
    assert controller.window_ready()


# Named route patterns (com = notifications/route, share = max partition
# fraction of notifications — both exact since WINDOW % len(pattern) == 0).
BALANCED_COM2 = [(0, 1), (2, 3), (0, 2), (1, 3)]                   # com 2.0, share 0.25
BALANCED_COM3 = [(0, 1, 2), (1, 2, 3), (2, 3, 0), (3, 0, 1)]       # com 3.0, share 0.25
HOT_NODE_COM2 = [(0, 1), (0, 2), (0, 3)]                           # com 2.0, share 0.50
BROADCAST = [(0, 1, 2, 3)]                                         # com 4.0, share 0.25
#: com 1.2 at perfect balance: 4 two-target + 16 one-target routes, six
#: notifications per partition per cycle.
MILD_COM = (
    [(0, 1), (2, 3), (0, 2), (1, 3)]
    + [(0,), (1,), (2,), (3,)] * 4
)
#: Compound degradation: com 2.5 with share 0.34 (partition 0 gets 17 of
#: the 50 notifications per 20-route cycle) — against a (2.0, 0.25)
#: reference both ratios are 1.25–1.36, below the 1.5 either-or trigger,
#: but their product is 1.7.
COMPOUND = (
    [(0, 1, 2)] * 4 + [(0, 2, 3)] * 3 + [(0, 3, 1)] * 3
    + [(0, 1)] * 2 + [(0, 2)] * 2 + [(0, 3)] * 3
    + [(1, 3), (2, 3), (1, 2)]
)


WINDOW_CASES = [
    # Same shape as the reference: holds.
    ((2.0, 0.5), HOT_NODE_COM2),
    # Fan-out triples at stable balance: fires.
    ((1.0, 0.25), BALANCED_COM3),
    # Fan-out stable, load collapses onto one node: fires.
    ((2.0, 0.3), HOT_NODE_COM2),
    # Compound degradation past the product bound: fires.
    ((2.0, 0.25), COMPOUND),
    # Clamped region: tiny references floor at (1, 1/k), so moderate
    # absolute values do not trigger despite huge raw ratios.
    ((0.2, 0.05), MILD_COM),
    # Un-referenced install defaults to (1.0, 1.0); the clamped window
    # cost can never exceed 1.0, so even a broadcast window holds.
    ((None, None), BROADCAST),
]


@pytest.mark.parametrize("reference,pattern", WINDOW_CASES)
def test_capacity_decision_equals_offline_cost_model(reference, pattern):
    controller = _controller(reference=reference)
    _fill_window(controller, pattern)

    current_com = controller.rolling_com.average
    current_share = controller.rolling_load.max_share(K)
    reference_cost = per_document_update_cost(
        controller.reference_avg_com, controller.reference_max_load, K
    )
    current_cost = per_document_update_cost(current_com, current_share, K)
    offline_fires = current_cost > reference_cost * (1.0 + THR)

    reason = controller.evaluate_window()
    assert (reason is not None) == offline_fires, (
        f"controller={'fired' if reason else 'held'} but offline cost ratio is "
        f"{current_cost / reference_cost:.3f} (thr={THR})"
    )
    # Same statement through the sustainable-rate form of the model: the
    # node-throughput constant cancels in the ratio, so any positive
    # calibration gives the same decision.
    rate_reference = sustainable_rate(
        1e6, controller.reference_avg_com, controller.reference_max_load, K
    )
    rate_current = sustainable_rate(1e6, current_com, current_share, K)
    assert offline_fires == (rate_reference / rate_current > 1.0 + THR)


def test_reason_attribution_follows_dominant_ratio():
    # Communication degrades, balance perfect → communication blamed.
    controller = _controller(reference=(1.0, 0.25))
    _fill_window(controller, BALANCED_COM3)
    assert controller.evaluate_window() == REASON_COMMUNICATION

    # Fan-out at the reference, load collapses onto one node → load blamed.
    controller = _controller(reference=(2.0, 0.3))
    _fill_window(controller, HOT_NODE_COM2)
    assert controller.evaluate_window() == REASON_LOAD

    # Both raw ratios above 1 → both blamed.
    controller = _controller(reference=(2.0, 0.25))
    _fill_window(controller, COMPOUND)
    assert controller.evaluate_window() == REASON_BOTH


def test_capacity_and_threshold_policies_disagree_in_the_clamped_region():
    """A window where the either-or rule fires but the cost model holds.

    Reference fan-out 0.6 is below the model's floor of one notification
    per document, so the capacity policy evaluates both states at the
    clamp and sees only a 1.2× cost ratio; the threshold policy compares
    raw metrics and sees a 2× communication degradation.
    """
    reference = (0.6, 0.25)

    threshold = _controller(policy="threshold", reference=reference)
    _fill_window(threshold, MILD_COM)
    assert threshold.evaluate_window() == REASON_COMMUNICATION

    capacity = _controller(policy="capacity", reference=reference)
    _fill_window(capacity, MILD_COM)
    assert capacity.evaluate_window() is None

    # And the offline model agrees with the capacity controller.
    cost_reference = per_document_update_cost(*reference, K)
    cost_current = per_document_update_cost(
        capacity.rolling_com.average, capacity.rolling_load.max_share(K), K
    )
    assert cost_current <= cost_reference * (1.0 + THR)


def test_threshold_misses_compound_degradation_capacity_catches():
    """The converse disagreement: each metric within budget, product not."""
    reference = (2.0, 0.25)

    threshold = _controller(policy="threshold", reference=reference)
    _fill_window(threshold, COMPOUND)
    assert threshold.evaluate_window() is None

    capacity = _controller(policy="capacity", reference=reference)
    _fill_window(capacity, COMPOUND)
    assert capacity.evaluate_window() == REASON_BOTH


def test_system_run_history_replays_against_offline_model():
    """Every quality snapshot of a capacity-policy run replays offline.

    Reconstructs the reference in force at each snapshot from the recorded
    ``PartitionInstall`` history (installs adopt their quality as the
    controller reference) and recomputes the swap decision with the
    analysis-module cost function: a snapshot fired exactly when the
    offline model says its window degraded past ``(1 + thr)×``.
    """
    documents = TwitterLikeGenerator(
        WorkloadConfig(
            seed=47,
            tweets_per_second=50.0,
            n_topics=100,
            tags_per_topic=14,
            new_topic_rate=5.0,
            intra_topic_probability=0.9,
        )
    ).generate(1500)
    config = SystemConfig(
        algorithm="DS",
        k=K,
        n_partitioners=3,
        window_mode="count",
        window_size=500,
        bootstrap_documents=200,
        quality_check_interval=120,
        repartition_threshold=THR,
        repartition_policy="capacity",
        report_interval_seconds=30.0,
        include_centralized_baseline=False,
    )
    report = TagCorrelationSystem(config).run(documents)
    assert report.history, "run produced no quality snapshots"
    installs = sorted(report.partition_installs, key=lambda i: i.documents_processed)
    assert installs, "run never installed a partition map"

    for snapshot in report.history:
        active = [
            install
            for install in installs
            if install.documents_processed <= snapshot.documents_processed
        ]
        if not active:
            # Pre-bootstrap snapshots cannot fire (no assignment yet).
            assert snapshot.repartition_reason is None
            continue
        reference = active[-1]
        reference_cost = per_document_update_cost(
            reference.avg_com, reference.max_load, K
        )
        window_cost = per_document_update_cost(
            snapshot.avg_communication,
            max_load_share(snapshot.calculator_loads),
            K,
        )
        offline_fires = window_cost > reference_cost * (1.0 + THR)
        assert (snapshot.repartition_reason is not None) == offline_fires, (
            f"snapshot at {snapshot.documents_processed} docs recorded "
            f"{snapshot.repartition_reason!r} but offline ratio is "
            f"{window_cost / reference_cost:.3f}"
        )
