"""Unit tests for workload statistics."""

import pytest

from repro.core.documents import documents_from_tagsets
from repro.workloads.stats import compute_statistics, tags_per_tweet_frequencies


@pytest.fixture
def sample_documents():
    return documents_from_tagsets(
        [["a", "b"], ["a", "b"], ["a"], ["c", "d", "e"], [], ["b", "c"]]
    )


class TestComputeStatistics:
    def test_counts(self, sample_documents):
        stats = compute_statistics(sample_documents)
        assert stats.n_documents == 6
        assert stats.n_tagged_documents == 5
        assert stats.n_distinct_tags == 5
        assert stats.n_distinct_tagsets == 4

    def test_tag_pairs(self, sample_documents):
        stats = compute_statistics(sample_documents)
        # pairs: ab, cd, ce, de, bc
        assert stats.n_distinct_tag_pairs == 5

    def test_histogram(self, sample_documents):
        stats = compute_statistics(sample_documents)
        assert stats.tags_per_tweet_histogram == {2: 3, 1: 1, 3: 1, 0: 1}

    def test_mean_tags_per_tweet(self, sample_documents):
        stats = compute_statistics(sample_documents)
        assert stats.mean_tags_per_tweet == pytest.approx(10 / 6)

    def test_most_common_tags(self, sample_documents):
        stats = compute_statistics(sample_documents)
        top_tag, count = stats.most_common_tags(1)[0]
        assert top_tag in {"a", "b"}
        assert count == 3

    def test_empty_stream(self):
        stats = compute_statistics([])
        assert stats.n_documents == 0
        assert stats.mean_tags_per_tweet == 0.0


class TestFrequencies:
    def test_frequencies_sum_to_one(self, sample_documents):
        frequencies = tags_per_tweet_frequencies(sample_documents)
        assert sum(frequencies.values()) == pytest.approx(1.0)

    def test_empty(self):
        assert tags_per_tweet_frequencies([]) == {}
