"""Property tests of the scenario workload generators.

Every generator must satisfy the stream contract (seeded determinism,
timestamp monotonicity, tag-arity bounds) plus its scenario-shape
invariant: trending keeps its top topics persistent across report rounds
and re-emits plateau anchors with exact per-round multiplicities, burst
spikes the arrival rate, diurnal modulates it periodically, and
adversarial churn keeps the first-occurrence type fraction per round at or
above 85%.
"""

import collections
import dataclasses
import math

import pytest

from repro.workloads import (
    SCENARIO_GENERATORS,
    SCENARIO_NAMES,
    AdversarialChurnGenerator,
    BurstGenerator,
    DiurnalGenerator,
    ScenarioGenerator,
    TrendingGenerator,
    TwitterLikeGenerator,
    WorkloadConfig,
    make_generator,
    scenario_preset,
)

#: Keeps the property tests fast while spanning several report rounds.
TPS = 50.0


def _preset(name, **overrides):
    overrides.setdefault("tweets_per_second", TPS)
    overrides.setdefault("seed", 13)
    return scenario_preset(name, **overrides)


def _stream_key(documents):
    return [(d.doc_id, d.timestamp, d.tags) for d in documents]


class TestScenarioRegistry:
    def test_registry_covers_every_scenario_name(self):
        assert tuple(SCENARIO_GENERATORS) == SCENARIO_NAMES

    def test_make_generator_dispatches_on_config_scenario(self):
        for name, cls in SCENARIO_GENERATORS.items():
            generator = make_generator(_preset(name))
            assert type(generator) is cls
            assert isinstance(generator, ScenarioGenerator)

    def test_legacy_scenario_is_the_plain_generator(self):
        assert SCENARIO_GENERATORS["legacy"] is TwitterLikeGenerator

    def test_scenario_preset_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            scenario_preset("viral")

    def test_explicit_overrides_beat_preset_values(self):
        config = scenario_preset("trending", n_topics=7)
        assert config.n_topics == 7
        assert config.scenario == "trending"
        # A preset field the caller left alone keeps the preset value.
        assert config.new_topic_rate == 0.0

    def test_legacy_preset_matches_plain_config_defaults(self):
        # Adding the scenario subsystem must not move the legacy workload:
        # the preset equals a plain WorkloadConfig except for `scenario`.
        assert scenario_preset("legacy") == WorkloadConfig(scenario="legacy")


class TestStreamContract:
    """Seeded determinism, monotone timestamps, bounded tag arity."""

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_same_seed_same_stream(self, name):
        config = _preset(name)
        first = make_generator(config).generate(600)
        second = make_generator(config).generate(600)
        assert _stream_key(first) == _stream_key(second)

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_different_seed_different_stream(self, name):
        first = make_generator(_preset(name, seed=1)).generate(600)
        second = make_generator(_preset(name, seed=2)).generate(600)
        assert _stream_key(first) != _stream_key(second)

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_timestamps_monotone_and_ids_sequential(self, name):
        documents = make_generator(_preset(name)).generate(600)
        timestamps = [d.timestamp for d in documents]
        assert all(b >= a for a, b in zip(timestamps, timestamps[1:]))
        assert [d.doc_id for d in documents] == list(range(600))

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_tag_arity_bounded(self, name):
        config = _preset(name)
        documents = make_generator(config).generate(600)
        # The adversarial generator floors arity at 2 (1-tag documents
        # contribute no reportable type); every scenario stays within the
        # configured Zipf maximum.
        limit = max(config.max_tags_per_tweet, 2)
        assert all(len(d.tags) <= limit for d in documents)
        assert any(d.tags for d in documents)

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_generate_seconds_matches_generate(self, name):
        config = _preset(name)
        by_count = make_generator(config).generate(300)
        by_time = make_generator(config).generate_seconds(
            by_count[-1].timestamp + 1e-9
        )
        assert _stream_key(by_time) == _stream_key(by_count)


class TestTrendingShape:
    ROUND = 30.0  # divides cadence(3) * pool(5) = 15 into 1500 docs

    def _anchor_rounds(self, documents):
        """Per-round multiplicity of every anchor tagset."""
        rounds = collections.defaultdict(collections.Counter)
        for document in documents:
            if any("_anchor" in tag for tag in document.tags):
                rounds[int(document.timestamp // self.ROUND)][document.tags] += 1
        return rounds

    def test_plateau_anchor_multiplicity_is_exact_across_rounds(self):
        documents = make_generator(_preset("trending")).generate(7500)
        rounds = self._anchor_rounds(documents)
        # Full-plateau rounds observe an anchor exactly
        # docs_per_round / (cadence * pool) = 1500 / 15 = 100 times; at
        # least one anchor type must recur with that exact count in
        # consecutive rounds — the delta engine's carry-clean condition.
        expected = int(TPS * self.ROUND) // 15
        recurrences = 0
        for index in sorted(rounds)[1:]:
            for tags, count in rounds[index].items():
                if count == expected and rounds[index - 1].get(tags) == expected:
                    recurrences += 1
        assert recurrences > 0

    def test_anchor_tags_are_reserved(self):
        # Anchor tags never leak into non-anchor documents, so a clean
        # anchor type cannot be dirtied by an overlapping background type.
        documents = make_generator(_preset("trending")).generate(4000)
        for document in documents:
            anchored = {tag for tag in document.tags if "_anchor" in tag}
            if anchored:
                assert anchored == set(document.tags)

    def test_top_topics_persist_across_rounds(self):
        # The trending preset disables topic churn: the most-used base
        # topics of one round stay heavily used in the next (unlike the
        # legacy workload, whose churn replaces them).
        documents = make_generator(_preset("trending")).generate(6000)
        per_round = collections.defaultdict(collections.Counter)
        for document in documents:
            for tag in document.tags:
                if tag.startswith("topic"):
                    topic = tag.split("_", 1)[0]
                    per_round[int(document.timestamp // self.ROUND)][topic] += 1
        indexes = sorted(per_round)
        assert len(indexes) >= 3
        for previous, current in zip(indexes, indexes[1:]):
            top_prev = {t for t, _ in per_round[previous].most_common(5)}
            top_now = {t for t, _ in per_round[current].most_common(5)}
            assert len(top_prev & top_now) >= 3

    def test_trend_lifecycle_rises_and_dies(self):
        generator = make_generator(_preset("trending"))
        generator.generate(6000)
        config = generator.config
        lifetime = (config.trend_rise_seconds + config.trend_plateau_seconds
                    + config.trend_decay_seconds)
        live = generator.live_trends
        # Steady state: about trend_pool trends live, none older than a
        # lifetime.
        assert 1 <= len(live) <= config.trend_pool + 1
        for trend in live:
            assert generator.current_time - trend.birth_time <= lifetime


class TestBurstShape:
    def test_burst_multiplies_rate_and_flavours_documents(self):
        config = _preset("burst", burst_rate_per_minute=1.0,
                         burst_intensity=4.0)
        documents = make_generator(config).generate(6000)
        per_second = collections.Counter(int(d.timestamp) for d in documents)
        rates = sorted(per_second.values())
        median = rates[len(rates) // 2]
        # Outside bursts the stream runs at the base rate; inside, at
        # burst_intensity times that.
        assert median == pytest.approx(TPS, rel=0.1)
        assert max(rates) >= 2.0 * median
        burst_documents = [
            d for d in documents
            if any(tag.startswith("burst") for tag in d.tags)
        ]
        assert burst_documents, "flash-crowd topics never surfaced"

    def test_zero_burst_rate_degenerates_to_legacy_shape(self):
        config = _preset("burst", burst_rate_per_minute=0.0)
        documents = make_generator(config).generate(2000)
        assert not any(
            tag.startswith("burst") for d in documents for tag in d.tags
        )
        span = documents[-1].timestamp - documents[0].timestamp
        assert span == pytest.approx(2000 / TPS, rel=0.01)


class TestDiurnalShape:
    def test_rate_oscillates_with_the_configured_period(self):
        period = 120.0
        config = _preset("diurnal", diurnal_period_seconds=period,
                         diurnal_amplitude=0.6)
        documents = make_generator(config).generate(9000)
        per_second = collections.Counter(int(d.timestamp) for d in documents)
        span = int(documents[-1].timestamp)
        interior = {s: per_second[s] for s in range(5, span - 5)}
        peak = max(interior.values())
        trough = min(interior.values())
        assert peak >= 2.0 * trough
        # Periodicity: the rate profile correlates with the configured
        # sinusoid far better than with chance.
        seconds = sorted(interior)
        mean = sum(interior.values()) / len(interior)
        num = sum(
            (interior[s] - mean) * math.sin(2 * math.pi * (s + 0.5) / period)
            for s in seconds
        )
        den = math.sqrt(
            sum((interior[s] - mean) ** 2 for s in seconds)
            * sum(math.sin(2 * math.pi * (s + 0.5) / period) ** 2
                  for s in seconds)
        )
        assert num / den > 0.8

    def test_topic_mix_swings_between_pools(self):
        period = 120.0
        config = _preset("diurnal", diurnal_period_seconds=period,
                         diurnal_amplitude=0.9)
        generator = make_generator(config)
        documents = generator.generate(9000)
        day_tags = {t for topic in generator._day_pool for t in topic.tags}
        # Day-pool share around the sine peak vs around the sine trough.
        def share(lo, hi):
            day = total = 0
            for d in documents:
                if lo <= d.timestamp % period < hi and d.tags:
                    total += 1
                    if set(d.tags) <= day_tags:
                        day += 1
            return day / max(1, total)

        assert share(20.0, 40.0) > share(80.0, 100.0) + 0.2


class TestAdversarialShape:
    ROUND = 30.0

    def test_first_occurrence_fraction_at_least_85_percent(self):
        documents = make_generator(_preset("adversarial")).generate(4500)
        seen = set()
        per_round = collections.defaultdict(lambda: [0, 0])
        for document in documents:
            if len(document.tags) < 2:
                continue
            bucket = per_round[int(document.timestamp // self.ROUND)]
            if document.tags not in seen:
                seen.add(document.tags)
                bucket[0] += 1
            bucket[1] += 1
        assert per_round
        for first, total in per_round.values():
            assert first / total >= 0.85

    def test_repeats_stay_within_the_recent_window(self):
        config = _preset("adversarial", adversarial_repeat_window=25)
        documents = make_generator(config).generate(3000)
        last_seen = {}
        for index, document in enumerate(documents):
            if document.tags in last_seen:
                # A repeated type was minted at most window non-repeat
                # documents ago; with repeats interleaved the document gap
                # stays within ~2x the window.
                assert index - last_seen[document.tags] <= 2 * 25
            last_seen[document.tags] = index

    def test_tags_never_reused_across_types(self):
        documents = make_generator(_preset("adversarial")).generate(2000)
        owner = {}
        for document in documents:
            for tag in document.tags:
                owner.setdefault(tag, document.tags)
                assert owner[tag] == document.tags


class TestWorkloadConfigValidation:
    def test_new_topic_rate_zero_disables_births_cleanly(self):
        # Regression: rate 0 must mean "no births" (infinite birth gap),
        # not a degenerate expovariate draw.
        config = WorkloadConfig(seed=3, tweets_per_second=TPS,
                                n_topics=10, tags_per_topic=5,
                                new_topic_rate=0.0)
        generator = TwitterLikeGenerator(config)
        generator.generate(500)
        assert len(generator.topic_model.topics) == 10

    @pytest.mark.parametrize("value", [-1.0, float("nan"), float("inf")])
    def test_new_topic_rate_rejects_non_finite_and_negative(self, value):
        with pytest.raises(ValueError, match="new_topic_rate"):
            WorkloadConfig(new_topic_rate=value).validate()

    @pytest.mark.parametrize("value", [-0.1, float("nan"), float("inf")])
    def test_topic_decay_rate_rejects_non_finite_and_negative(self, value):
        with pytest.raises(ValueError, match="topic_decay_rate"):
            WorkloadConfig(topic_decay_rate=value).validate()

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="scenario"):
            WorkloadConfig(scenario="viral").validate()

    @pytest.mark.parametrize("field, value", [
        ("trend_pool", 0),
        ("trend_rise_seconds", 0.0),
        ("trend_plateau_seconds", -1.0),
        ("trend_decay_seconds", 0.0),
        ("trend_anchor_share", 1.0),
        ("trend_mix", 1.5),
        ("burst_rate_per_minute", -1.0),
        ("burst_duration_seconds", 0.0),
        ("burst_intensity", 0.5),
        ("burst_share", -0.1),
        ("diurnal_period_seconds", 0.0),
        ("diurnal_amplitude", 1.0),
        ("adversarial_repeat_fraction", 1.0),
        ("adversarial_repeat_window", 0),
    ])
    def test_scenario_knob_bounds(self, field, value):
        config = dataclasses.replace(WorkloadConfig(), **{field: value})
        with pytest.raises(ValueError):
            config.validate()
