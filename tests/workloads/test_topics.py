"""Unit tests for the topic model."""

import random

import pytest

from repro.workloads.topics import Topic, TopicModel, uniform_topics


class TestTopic:
    def test_sample_tags_are_distinct_and_from_vocabulary(self):
        topic = Topic(name="t", tags=[f"tag{i}" for i in range(10)])
        rng = random.Random(0)
        tags = topic.sample_tags(5, rng)
        assert len(tags) == len(set(tags)) == 5
        assert set(tags) <= set(topic.tags)

    def test_sample_more_than_vocabulary(self):
        topic = Topic(name="t", tags=["a", "b"])
        tags = topic.sample_tags(5, random.Random(0))
        assert sorted(tags) == ["a", "b"]

    def test_sample_zero(self):
        topic = Topic(name="t", tags=["a"])
        assert topic.sample_tags(0, random.Random(0)) == []

    def test_popularity_decays(self):
        topic = Topic(name="t", tags=["a"], weight=1.0, decay_rate=0.1, birth_time=0.0)
        assert topic.popularity(0.0) == pytest.approx(1.0)
        assert topic.popularity(10.0) == pytest.approx(0.5)

    def test_no_decay(self):
        topic = Topic(name="t", tags=["a"], weight=2.0)
        assert topic.popularity(1e6) == 2.0

    def test_zipfian_tag_popularity(self):
        topic = Topic(name="t", tags=[f"tag{i}" for i in range(20)], tag_skew=1.5)
        rng = random.Random(1)
        counts = {}
        for _ in range(2000):
            (tag,) = topic.sample_tags(1, rng)
            counts[tag] = counts.get(tag, 0) + 1
        assert counts.get("tag0", 0) > counts.get("tag19", 0)


class TestTopicModel:
    def test_constructs_requested_topics(self):
        model = TopicModel(n_topics=12, tags_per_topic=5)
        assert len(model.topics) == 12
        assert len(model.vocabulary()) == 60

    def test_vocabularies_are_disjoint(self):
        model = TopicModel(n_topics=10, tags_per_topic=7)
        vocabulary = model.vocabulary()
        assert len(vocabulary) == len(set(vocabulary))

    def test_sample_topic_prefers_popular(self):
        model = TopicModel(n_topics=30, tags_per_topic=3, topic_skew=1.5, seed=0)
        rng = random.Random(0)
        counts = {}
        for _ in range(3000):
            topic = model.sample_topic(0.0, rng)
            counts[topic.name] = counts.get(topic.name, 0) + 1
        assert counts.get("topic0", 0) > counts.get("topic29", 0)

    def test_spawn_topic_extends_population(self):
        model = TopicModel(n_topics=3, tags_per_topic=2)
        rng = random.Random(0)
        topic = model.spawn_topic(now=100.0, rng=rng, weight=5.0)
        assert topic in model.topics
        assert topic.weight == 5.0
        assert topic.birth_time == 100.0

    def test_sample_topics_distinct(self):
        model = TopicModel(n_topics=10, tags_per_topic=2, seed=1)
        topics = model.sample_topics(3, 0.0, random.Random(2))
        names = [t.name for t in topics]
        assert len(names) == len(set(names)) == 3


class TestUniformTopics:
    def test_shape(self):
        topics = uniform_topics(4, 3)
        assert len(topics) == 4
        assert all(len(t.tags) == 3 for t in topics)
        assert all(t.tag_skew == 0.0 for t in topics)
