"""Unit tests for tweet-file serialisation."""

import json

import pytest

from repro.core.documents import Document
from repro.workloads.generator import TwitterLikeGenerator, WorkloadConfig
from repro.workloads.io import (
    document_to_record,
    load_documents,
    read_documents,
    record_to_document,
    write_documents,
)


class TestRecordConversion:
    def test_round_trip(self):
        document = Document(
            doc_id=7, tags=frozenset({"a", "b"}), timestamp=3.5, text="hello #a #b"
        )
        assert record_to_document(document_to_record(document)) == document

    def test_text_omitted_when_empty(self):
        record = document_to_record(Document(doc_id=1, tags=frozenset({"a"})))
        assert "text" not in record

    def test_tags_are_sorted_in_record(self):
        record = document_to_record(Document(doc_id=1, tags=frozenset({"b", "a"})))
        assert record["tags"] == ["a", "b"]

    def test_malformed_record_rejected(self):
        with pytest.raises(ValueError):
            record_to_document({"timestamp": 1.0})
        with pytest.raises(ValueError):
            record_to_document({"id": 1, "tags": "not-a-list"})

    def test_tags_normalised_on_read(self):
        document = record_to_document({"id": 1, "tags": ["#A", "b"]})
        assert document.tags == frozenset({"a", "b"})


class TestFileRoundTrip:
    def test_write_and_read(self, tmp_path):
        documents = TwitterLikeGenerator(WorkloadConfig(seed=4)).generate(100)
        path = tmp_path / "tweets.jsonl"
        written = write_documents(documents, path)
        assert written == 100
        loaded = load_documents(path)
        assert [d.tags for d in loaded] == [d.tags for d in documents]
        assert [d.doc_id for d in loaded] == [d.doc_id for d in documents]

    def test_read_is_lazy_iterator(self, tmp_path):
        path = tmp_path / "tweets.jsonl"
        write_documents(
            [Document(doc_id=i, tags=frozenset({"a"})) for i in range(5)], path
        )
        iterator = read_documents(path)
        assert next(iterator).doc_id == 0

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "tweets.jsonl"
        path.write_text(
            json.dumps({"id": 1, "tags": ["a"]}) + "\n\n" + json.dumps({"id": 2, "tags": []}) + "\n"
        )
        assert len(load_documents(path)) == 2

    def test_invalid_json_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"id": 1, "tags": ["a"]}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_documents(path)
