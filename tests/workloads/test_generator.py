"""Unit tests for the synthetic Twitter-like workload generator."""

import pytest

from repro.theory.zipf_model import PAPER_SKEW
from repro.workloads.generator import TwitterLikeGenerator, WorkloadConfig, generate_documents
from repro.workloads.stats import compute_statistics


class TestWorkloadConfig:
    def test_defaults_are_valid(self):
        WorkloadConfig().validate()

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            WorkloadConfig(tweets_per_second=0).validate()

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            WorkloadConfig(intra_topic_probability=1.5).validate()

    def test_invalid_topics(self):
        with pytest.raises(ValueError):
            WorkloadConfig(n_topics=0).validate()
        with pytest.raises(ValueError):
            WorkloadConfig(max_tags_per_tweet=0).validate()


class TestGenerator:
    def test_deterministic_given_seed(self):
        config = WorkloadConfig(seed=5, n_topics=20, tags_per_topic=10)
        first = TwitterLikeGenerator(config).generate(200)
        second = TwitterLikeGenerator(config).generate(200)
        assert [d.tags for d in first] == [d.tags for d in second]
        assert [d.timestamp for d in first] == [d.timestamp for d in second]

    def test_different_seeds_differ(self):
        first = TwitterLikeGenerator(WorkloadConfig(seed=1)).generate(100)
        second = TwitterLikeGenerator(WorkloadConfig(seed=2)).generate(100)
        assert [d.tags for d in first] != [d.tags for d in second]

    def test_doc_ids_consecutive(self):
        documents = generate_documents(50, WorkloadConfig(seed=0))
        assert [d.doc_id for d in documents] == list(range(50))

    def test_timestamps_follow_arrival_rate(self):
        config = WorkloadConfig(seed=0, tweets_per_second=10.0)
        documents = TwitterLikeGenerator(config).generate(101)
        assert documents[-1].timestamp == pytest.approx(10.0, abs=1e-6)

    def test_generate_seconds(self):
        config = WorkloadConfig(seed=0, tweets_per_second=20.0)
        documents = TwitterLikeGenerator(config).generate_seconds(5.0)
        # 5 seconds at 20 tweets/s; floating-point interarrival accumulation
        # may include one extra boundary document.
        assert len(documents) in (100, 101)
        assert documents[0].timestamp == 0.0
        assert documents[-1].timestamp <= 5.0 + 1e-6

    def test_max_tags_respected(self):
        config = WorkloadConfig(seed=3, max_tags_per_tweet=4)
        documents = TwitterLikeGenerator(config).generate(500)
        assert max(len(d.tags) for d in documents) <= 4

    def test_untagged_disabled(self):
        config = WorkloadConfig(seed=3, untagged_allowed=False)
        documents = TwitterLikeGenerator(config).generate(300)
        assert all(d.tags for d in documents)

    def test_tags_come_from_topic_vocabulary(self):
        config = WorkloadConfig(seed=1, new_topic_rate=0.0)
        generator = TwitterLikeGenerator(config)
        vocabulary = set(generator.vocabulary())
        documents = generator.generate(300)
        used = set().union(*(d.tags for d in documents if d.tags))
        assert used <= vocabulary

    def test_new_topics_appear_over_time(self):
        config = WorkloadConfig(
            seed=1, tweets_per_second=10.0, new_topic_rate=30.0, n_topics=5
        )
        generator = TwitterLikeGenerator(config)
        before = len(generator.topic_model.topics)
        generator.generate(2000)  # 200 seconds of stream
        after = len(generator.topic_model.topics)
        assert after > before

    def test_stream_iterator(self):
        generator = TwitterLikeGenerator(WorkloadConfig(seed=1))
        stream = generator.stream()
        first = next(stream)
        second = next(stream)
        assert second.doc_id == first.doc_id + 1


class TestGeneratedStructure:
    def test_tags_per_tweet_is_zipf_like(self):
        """Rank frequencies should be monotonically decreasing with a small
        fitted skew, matching the paper's measurement (s = 0.25)."""
        config = WorkloadConfig(seed=7, tags_per_tweet_skew=PAPER_SKEW)
        documents = TwitterLikeGenerator(config).generate(20000)
        stats = compute_statistics(documents)
        histogram = stats.tags_per_tweet_histogram
        counts = [histogram.get(m, 0) for m in range(0, 4)]
        assert all(a >= b for a, b in zip(counts, counts[1:]))
        fitted = stats.tags_per_tweet_skew()
        assert fitted == pytest.approx(PAPER_SKEW, abs=0.15)

    def test_intra_topic_probability_controls_connectivity(self):
        """Lower alpha (more cross-topic tweets) produces fewer, larger
        connected components — the mechanism discussed in Section 5.1."""
        from repro.analysis.connectivity import window_connectivity

        pure = WorkloadConfig(seed=2, intra_topic_probability=1.0, new_topic_rate=0)
        mixed = WorkloadConfig(seed=2, intra_topic_probability=0.5, new_topic_rate=0)
        pure_docs = TwitterLikeGenerator(pure).generate(4000)
        mixed_docs = TwitterLikeGenerator(mixed).generate(4000)
        pure_stats = window_connectivity(pure_docs)
        mixed_stats = window_connectivity(mixed_docs)
        assert mixed_stats.max_tag_fraction > pure_stats.max_tag_fraction
