"""Trace recording/replay: golden fixtures, round trips and fidelity.

The committed fixtures under ``fixtures/`` are golden files: one small
trace per scenario, recorded with the pinned configs below.  The byte
tests pin two contracts at once — the trace serialisation (header layout,
sorted keys, record format) and the generators' determinism (same config
=> same stream) — so either regressing shows up as a fixture diff, not a
silently different benchmark workload.

Regenerate after an *intentional* format or generator change with::

    PYTHONPATH=src python tests/workloads/test_replay.py --regenerate
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.pipeline import SystemConfig, TagCorrelationSystem
from repro.workloads import (
    SCENARIO_NAMES,
    load_trace,
    make_generator,
    read_trace,
    read_trace_header,
    record_trace,
    replay_documents,
    scenario_preset,
    write_documents,
    write_trace,
)
from repro.workloads.generator import WorkloadConfig
from repro.workloads.replay import EXTERNAL_SCENARIO, TRACE_FORMAT, TRACE_VERSION

FIXTURE_DIR = Path(__file__).parent / "fixtures"
#: Documents per committed fixture — enough to exercise every scenario's
#: sampling paths, small enough to keep the fixtures reviewable.
FIXTURE_DOCUMENTS = 40


def fixture_config(scenario: str) -> WorkloadConfig:
    """The pinned config a committed fixture was recorded with."""
    return scenario_preset(scenario, seed=13, tweets_per_second=50.0)


def fixture_path(scenario: str) -> Path:
    return FIXTURE_DIR / f"{scenario}.trace.jsonl"


class TestGoldenFixtures:
    @pytest.mark.parametrize("scenario", SCENARIO_NAMES)
    def test_recording_reproduces_committed_fixture(self, scenario, tmp_path):
        """Same pinned config => byte-identical trace file."""
        fresh = tmp_path / "fresh.trace.jsonl"
        written = record_trace(fixture_config(scenario), FIXTURE_DOCUMENTS, fresh)
        assert written == FIXTURE_DOCUMENTS
        assert fresh.read_bytes() == fixture_path(scenario).read_bytes()

    @pytest.mark.parametrize("scenario", SCENARIO_NAMES)
    def test_replay_then_rerecord_is_identity(self, scenario, tmp_path):
        """record -> replay -> re-record round-trips to the same bytes."""
        header, documents = load_trace(fixture_path(scenario))
        rewritten = tmp_path / "rewritten.trace.jsonl"
        write_trace(documents, rewritten, WorkloadConfig(**header["workload"]))
        assert rewritten.read_bytes() == fixture_path(scenario).read_bytes()

    @pytest.mark.parametrize("scenario", SCENARIO_NAMES)
    def test_replayed_documents_match_live_generator(self, scenario):
        live = make_generator(fixture_config(scenario)).generate(FIXTURE_DOCUMENTS)
        replayed = replay_documents(fixture_path(scenario))
        assert [d.doc_id for d in replayed] == [d.doc_id for d in live]
        assert [d.tags for d in replayed] == [d.tags for d in live]
        # Timestamps survive the JSON round trip exactly (repr round-trip),
        # so replayed runs bucket documents into the same report rounds.
        assert [d.timestamp for d in replayed] == [d.timestamp for d in live]

    @pytest.mark.parametrize("scenario", SCENARIO_NAMES)
    def test_header_records_provenance(self, scenario):
        header = read_trace_header(fixture_path(scenario))
        assert header["format"] == TRACE_FORMAT
        assert header["version"] == TRACE_VERSION
        assert header["scenario"] == scenario
        assert header["n_documents"] == FIXTURE_DOCUMENTS
        # The full workload config round-trips through the header, so a
        # trace is self-describing: the exact generator settings can be
        # reconstructed (and validated) from the file alone.
        restored = WorkloadConfig(**header["workload"])
        restored.validate()
        assert restored == fixture_config(scenario)


class TestTraceFormat:
    def test_external_trace_has_no_workload_provenance(self, tmp_path):
        documents = make_generator(fixture_config("legacy")).generate(5)
        path = tmp_path / "external.trace.jsonl"
        write_trace(documents, path)  # no config: converted foreign data
        header, replayed = load_trace(path)
        assert header["scenario"] == EXTERNAL_SCENARIO
        assert header["workload"] is None
        assert [d.tags for d in replayed] == [d.tags for d in documents]

    def test_plain_tweet_file_is_rejected(self, tmp_path):
        documents = make_generator(fixture_config("legacy")).generate(5)
        path = tmp_path / "plain.jsonl"
        write_documents(documents, path)
        with pytest.raises(ValueError, match="not a repro-trace"):
            read_trace_header(path)

    def test_unsupported_version_is_rejected(self, tmp_path):
        path = tmp_path / "future.trace.jsonl"
        header = {"format": TRACE_FORMAT, "version": TRACE_VERSION + 1,
                  "scenario": "legacy", "n_documents": 0, "workload": None}
        path.write_text(json.dumps(header) + "\n", encoding="utf-8")
        with pytest.raises(ValueError, match="unsupported trace version"):
            read_trace_header(path)

    def test_truncated_trace_is_rejected(self, tmp_path):
        lines = fixture_path("legacy").read_text(encoding="utf-8").splitlines()
        path = tmp_path / "truncated.trace.jsonl"
        path.write_text("\n".join(lines[:-1]) + "\n", encoding="utf-8")
        with pytest.raises(ValueError, match="truncated or corrupt"):
            load_trace(path)

    def test_corrupt_record_is_rejected_with_line_number(self, tmp_path):
        lines = fixture_path("legacy").read_text(encoding="utf-8").splitlines()
        lines[3] = "{not json"
        path = tmp_path / "corrupt.trace.jsonl"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(ValueError, match=":4: invalid JSON"):
            list(read_trace(path))

    def test_empty_file_is_rejected(self, tmp_path):
        path = tmp_path / "empty.trace.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(ValueError, match="not a repro-trace"):
            read_trace_header(path)


class TestReplayFidelity:
    """A replayed run is the same experiment as the live-generator run."""

    def test_replayed_run_reproduces_live_report(self, tmp_path):
        config = scenario_preset("burst", seed=13, tweets_per_second=50.0)
        live_documents = make_generator(config).generate(2000)
        path = tmp_path / "burst.trace.jsonl"
        write_trace(live_documents, path, config)

        def run(documents):
            system = TagCorrelationSystem(SystemConfig(
                algorithm="DS", k=4, n_partitioners=3,
                window_mode="count", window_size=500,
                bootstrap_documents=200, quality_check_interval=120,
                report_interval_seconds=15.0, reporting_engine="delta",
            ))
            return system.run(documents)

        live = run(live_documents)
        replayed = run(replay_documents(path))
        for field in ("documents_processed", "tagged_documents",
                      "communication_avg", "calculator_loads",
                      "n_repartitions", "coefficients_reported",
                      "duplicate_reports", "notification_messages"):
            assert getattr(replayed, field) == getattr(live, field), field


def _regenerate() -> None:
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    for scenario in SCENARIO_NAMES:
        written = record_trace(
            fixture_config(scenario), FIXTURE_DOCUMENTS, fixture_path(scenario)
        )
        print(f"wrote {fixture_path(scenario)} ({written} documents)")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
