"""Erdős–Rényi analysis of the tag co-occurrence graph (Section 5.1).

Under the (pessimistic) assumption of a tagger that annotates tweets with
uniformly random tags, the tag co-occurrence graph is a ``G(n, M)`` random
graph with ``n`` distinct tags and ``M`` edges, hence edge probability
``p = M / C(n, 2)``.  Erdős–Rényi theory then predicts:

* ``n * p < 1`` — all connected components are ``O(log n)``: the DS
  algorithm finds many small disjoint sets and works well;
* ``n * p > 1`` — a giant component emerges: DS degenerates to one huge
  partition and load cannot be balanced.

The module reproduces the paper's back-of-the-envelope numbers (np = 0.76
for 5-minute windows, 1.52/0.85 for 10-minute windows with mmax 8/6, and
0.11 when using the observed number of distinct tag pairs instead of the
independence model).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .zipf_model import PAPER_MMAX, PAPER_SKEW, expected_edges

#: Stream statistics assumed in Section 5.1 for the full (100 %) stream.
PAPER_DISTINCT_TAGS_PER_DAY = 600_000
PAPER_DISTINCT_TWEETS_PER_DAY = 7_000_000
PAPER_DISTINCT_PAIRS_PER_DAY = 5_500_000
MINUTES_PER_DAY = 24 * 60


def edge_probability(n_tags: int, n_edges: float) -> float:
    """Edge probability ``p`` of a ``G(n, M)`` graph: ``M / C(n, 2)``."""
    if n_tags < 2:
        return 0.0
    return n_edges / math.comb(n_tags, 2)


def np_product(n_tags: int, n_edges: float) -> float:
    """The ``n * p`` product that decides whether a giant component exists."""
    return n_tags * edge_probability(n_tags, n_edges)


def giant_component_expected(n_tags: int, n_edges: float) -> bool:
    """True when Erdős–Rényi theory predicts a giant component (np > 1)."""
    return np_product(n_tags, n_edges) > 1.0


@dataclass(frozen=True, slots=True)
class WindowModel:
    """Analytic model of the tag graph accumulated over one window.

    Attributes
    ----------
    window_minutes:
        Length of the sliding window in minutes.
    distinct_tags_per_day / distinct_tweets_per_day:
        Stream-level statistics (defaults follow Section 5.1's worst case).
    mmax, skew:
        Parameters of the Zipf tags-per-tweet model.
    """

    window_minutes: float
    distinct_tags_per_day: int = PAPER_DISTINCT_TAGS_PER_DAY
    distinct_tweets_per_day: int = PAPER_DISTINCT_TWEETS_PER_DAY
    mmax: int = PAPER_MMAX
    skew: float = PAPER_SKEW

    @property
    def tweets_in_window(self) -> float:
        return self.distinct_tweets_per_day * self.window_minutes / MINUTES_PER_DAY

    @property
    def expected_edges(self) -> float:
        """``E[M]`` under the independence (Zipf tagging) model."""
        return expected_edges(int(self.tweets_in_window), self.mmax, self.skew)

    @property
    def n_tags(self) -> int:
        """Distinct tags assumed present (the paper keeps the daily count)."""
        return self.distinct_tags_per_day

    @property
    def np(self) -> float:
        """The ``n * p`` product under the independence model."""
        return np_product(self.n_tags, self.expected_edges)

    def np_from_observed_pairs(
        self, distinct_pairs_per_day: int = PAPER_DISTINCT_PAIRS_PER_DAY
    ) -> float:
        """``n * p`` using observed distinct tag pairs instead of the model.

        The paper counts ~5.5 million distinct pairs per day in the full
        stream, i.e. ~34 000 new edges per 10 minutes, giving np = 0.11 —
        an order of magnitude below the independence model's 1.52.
        """
        edges_in_window = distinct_pairs_per_day * self.window_minutes / MINUTES_PER_DAY
        return np_product(self.n_tags, edges_in_window)

    def predicts_giant_component(self) -> bool:
        return self.np > 1.0


def paper_np_table() -> dict[tuple[int, int], float]:
    """The np values quoted in Section 5.1.

    Keys are ``(window_minutes, mmax)`` pairs; values are the analytic
    ``n * p`` products.  The paper reports 0.76 for (5, 8), 1.52 for (10, 8)
    and 0.85 for (10, 6).
    """
    table = {}
    for window, mmax in ((5, 8), (10, 8), (10, 6)):
        table[(window, mmax)] = WindowModel(window_minutes=window, mmax=mmax).np
    return table
