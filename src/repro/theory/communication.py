"""Expected communication of random equal-sized partitions (Section 5.2).

For a vocabulary of ``v`` tags, ``n`` tweets, ``k`` equal random partitions
and ``m`` tags per tweet, the expected communication load (the number of
partitions an incoming tweet must be forwarded to) is

    E[communication] = k * (1 - ((C(v - m, m) / C(v, m)) ** (n / k)))

A value of 1 means no redundant forwarding; a value of ``k`` means every
tweet is broadcast to all partitions, which makes the decentralised approach
pointless.  The formula shows that small vocabularies with many tags per
tweet are a knockout blow, while Twitter-like data (huge vocabulary, few
tags per tweet) stays tractable.
"""

from __future__ import annotations

import math
from typing import Sequence


def no_overlap_probability(vocabulary_size: int, tags_per_tweet: int) -> float:
    """Probability that a random tweet shares no tag with a random tweet.

    This is ``C(v - m, m) / C(v, m)``: draw the second tweet's ``m`` tags
    from the ``v - m`` tags the first tweet did not use.
    """
    if tags_per_tweet < 0:
        raise ValueError("tags_per_tweet must be non-negative")
    if vocabulary_size < tags_per_tweet:
        raise ValueError("vocabulary must be at least as large as tags_per_tweet")
    if tags_per_tweet == 0:
        return 1.0
    if vocabulary_size < 2 * tags_per_tweet:
        return 0.0
    return math.comb(vocabulary_size - tags_per_tweet, tags_per_tweet) / math.comb(
        vocabulary_size, tags_per_tweet
    )


def expected_communication(
    vocabulary_size: int,
    n_tweets: int,
    k_partitions: int,
    tags_per_tweet: int,
) -> float:
    """The paper's Section 5.2 formula for ``E[communication]``."""
    if k_partitions <= 0:
        raise ValueError("k_partitions must be positive")
    if n_tweets < 0:
        raise ValueError("n_tweets must be non-negative")
    probability = no_overlap_probability(vocabulary_size, tags_per_tweet)
    exponent = n_tweets / k_partitions
    return k_partitions * (1.0 - probability**exponent)


def communication_sweep(
    vocabulary_sizes: Sequence[int],
    n_tweets: int,
    k_partitions: int,
    tags_per_tweet: int,
) -> dict[int, float]:
    """Expected communication for a range of vocabulary sizes."""
    return {
        vocabulary: expected_communication(
            vocabulary, n_tweets, k_partitions, tags_per_tweet
        )
        for vocabulary in vocabulary_sizes
    }


def tractability_threshold(
    n_tweets: int,
    k_partitions: int,
    tags_per_tweet: int,
    target_communication: float = 2.0,
    max_vocabulary: int = 10_000_000,
) -> int:
    """Smallest vocabulary for which the expected communication drops below a target.

    Useful to illustrate the "large vocabulary, few tags per tweet" regime
    where the decentralised approach pays off.  Returns ``max_vocabulary``
    when even that vocabulary does not achieve the target.
    """
    low = max(2 * tags_per_tweet, 1)
    high = max_vocabulary
    if expected_communication(high, n_tweets, k_partitions, tags_per_tweet) > target_communication:
        return max_vocabulary
    while low < high:
        middle = (low + high) // 2
        value = expected_communication(middle, n_tweets, k_partitions, tags_per_tweet)
        if value <= target_communication:
            high = middle
        else:
            low = middle + 1
    return low
