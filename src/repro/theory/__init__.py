"""Analytic models from Section 5 of the paper."""

from .communication import (
    communication_sweep,
    expected_communication,
    no_overlap_probability,
    tractability_threshold,
)
from .erdos_renyi import (
    WindowModel,
    edge_probability,
    giant_component_expected,
    np_product,
    paper_np_table,
)
from .zipf_model import (
    PAPER_MMAX,
    PAPER_SKEW,
    empirical_skew,
    expected_edges,
    expected_edges_per_tweet,
    frequency_of_m_tags,
    tags_per_tweet_distribution,
    zipf_frequencies,
)

__all__ = [
    "PAPER_MMAX",
    "PAPER_SKEW",
    "WindowModel",
    "communication_sweep",
    "edge_probability",
    "empirical_skew",
    "expected_communication",
    "expected_edges",
    "expected_edges_per_tweet",
    "frequency_of_m_tags",
    "giant_component_expected",
    "no_overlap_probability",
    "np_product",
    "paper_np_table",
    "tags_per_tweet_distribution",
    "tractability_threshold",
    "zipf_frequencies",
]
