"""Zipf model of the number of tags per tweet (Section 5.1).

The paper measures that the number of tags per tweet follows Zipf's law with
skew ``s = 0.25``: zero tags is the most frequent case, one tag the second
most frequent, and so on, up to a maximum of ``mmax`` tags.  The same model
drives the synthetic workload generator and the theoretical estimate of the
number of edges added to the tag co-occurrence graph.
"""

from __future__ import annotations

import math
from typing import Sequence

#: Skew measured by the paper on a 15M-tweet sample (Jan 28, 2012).
PAPER_SKEW = 0.25

#: Maximum number of tags per tweet assumed in the paper's analysis.
PAPER_MMAX = 8


def zipf_frequencies(mmax: int, skew: float = PAPER_SKEW) -> list[float]:
    """Relative frequency of tweets with ``m`` tags for ``m = 0 .. mmax``.

    The paper's formula ranks outcomes by popularity: rank 1 is "no tags",
    rank 2 is "one tag", ..., rank ``mmax + 1`` is "``mmax`` tags"; the
    frequency of rank ``r`` is proportional to ``1 / r^skew``.
    """
    if mmax < 0:
        raise ValueError("mmax must be non-negative")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    weights = [1.0 / (rank**skew) for rank in range(1, mmax + 2)]
    total = sum(weights)
    return [weight / total for weight in weights]


def tags_per_tweet_distribution(
    mmax: int = PAPER_MMAX, skew: float = PAPER_SKEW
) -> dict[int, float]:
    """Probability of a tweet carrying ``m`` tags, for ``m = 0 .. mmax``."""
    frequencies = zipf_frequencies(mmax, skew)
    return {m: frequencies[m] for m in range(mmax + 1)}


def frequency_of_m_tags(m: int, mmax: int, skew: float = PAPER_SKEW) -> float:
    """The paper's ``f(m, mmax, s)``: relative frequency of ``m``-tag tweets.

    The formula in Section 5.1 normalises ``1 / m^s`` over ``m = 1 .. mmax``
    (tweets without tags do not contribute edges and are left out of the
    analytic edge-count model).  Returns 0 outside that range.
    """
    if m < 1 or m > mmax:
        return 0.0
    normaliser = sum(1.0 / (i**skew) for i in range(1, mmax + 1))
    return (1.0 / (m**skew)) / normaliser


def expected_edges_per_tweet(mmax: int = PAPER_MMAX, skew: float = PAPER_SKEW) -> float:
    """Expected number of tag-pair edges a single tweet adds to the graph.

    A tweet with ``m`` tags adds ``C(m, 2)`` edges; averaging over the
    paper's Zipf model of ``m`` yields the per-tweet expectation used in
    ``E[M] = t * sum_m f(m, mmax, s) * C(m, 2)``.
    """
    return sum(
        frequency_of_m_tags(m, mmax, skew) * math.comb(m, 2)
        for m in range(2, mmax + 1)
    )


def expected_edges(
    distinct_tweets: int, mmax: int = PAPER_MMAX, skew: float = PAPER_SKEW
) -> float:
    """Expected number of edges ``E[M]`` added by ``distinct_tweets`` tweets."""
    if distinct_tweets < 0:
        raise ValueError("distinct_tweets must be non-negative")
    return distinct_tweets * expected_edges_per_tweet(mmax, skew)


def empirical_skew(counts: Sequence[int]) -> float:
    """Least-squares Zipf skew estimate from rank-ordered counts.

    ``counts[r]`` is the number of tweets with rank ``r + 1`` (i.e. with
    ``r`` tags).  Fits ``log(count) ~ -s * log(rank)`` and returns ``s``.
    """
    ranks = []
    logs = []
    for index, count in enumerate(counts, start=1):
        if count > 0:
            ranks.append(math.log(index))
            logs.append(math.log(count))
    if len(ranks) < 2:
        raise ValueError("need at least two non-zero counts to fit a skew")
    n = len(ranks)
    mean_x = sum(ranks) / n
    mean_y = sum(logs) / n
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in zip(ranks, logs))
    denominator = sum((x - mean_x) ** 2 for x in ranks)
    return -numerator / denominator
