"""Set-cover–based partitioning algorithms (Algorithms 2–5).

All three algorithms share phase 1 (Algorithm 2): a greedy variant of the
Budgeted Maximum Coverage Problem selects ``k`` seed tagsets, one per
partition.  They differ in the cost used during seeding and in phase 2, the
policy for assigning every remaining tagset to one of the partitions:

* **SCC** (Algorithm 3) optimises for communication: the next tagset is the
  one covering the most not-yet-covered tags (ties towards fewer total
  tags), and it joins the partition sharing the most tags with it (ties
  towards the least loaded partition).
* **SCL** (Algorithm 4) optimises for load balance: the next tagset is the
  heaviest one (ties towards the fewest already covered tags) and it joins
  the least loaded partition (ties towards the most shared tags).
* **SCI** (Algorithm 5, from the earlier workshop paper [1]) picks the next
  tagset at random and adds it to the partition sharing the most tags with
  it.  Its phase 1 uses a zero cost for every tagset.

Unlike DS, these algorithms may assign the same tag to several partitions,
trading communication overhead for the ability to balance load even when
the tag graph has one giant connected component.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Sequence

from ..core.cooccurrence import CooccurrenceStatistics
from ..core.partition import Partition, PartitionAssignment
from .base import Partitioner, validate_k

#: Cost function signature used during phase 1.  Receives the candidate
#: tagset, the set of already covered tags, the loads of the already chosen
#: seeds and the candidate's own load; returns the candidate's cost.
SeedCost = Callable[[frozenset[str], set[str], Sequence[int], int], float]


def communication_seed_cost(
    tagset: frozenset[str],
    covered: set[str],
    chosen_loads: Sequence[int],
    load: int,
) -> float:
    """Phase-1 cost when optimising communication: #already-covered tags."""
    return float(len(tagset & covered))


def load_seed_cost(
    tagset: frozenset[str],
    covered: set[str],
    chosen_loads: Sequence[int],
    load: int,
) -> float:
    """Phase-1 cost when optimising load: distance to the optimal load share.

    In the ``m``-th iteration the optimal share is ``1/m``; the candidate's
    actual share is its load over the total load of the already chosen seeds
    plus itself (Section 4.2).
    """
    iteration = len(chosen_loads) + 1
    optimal_share = 1.0 / iteration
    denominator = sum(chosen_loads) + load
    if denominator == 0:
        actual_share = 0.0
    else:
        actual_share = load / denominator
    return abs(optimal_share - actual_share)


def zero_seed_cost(
    tagset: frozenset[str],
    covered: set[str],
    chosen_loads: Sequence[int],
    load: int,
) -> float:
    """Phase-1 cost of SCI: plain maximum coverage, no budget."""
    return 0.0


def select_seed_tagsets(
    statistics: CooccurrenceStatistics,
    k: int,
    cost: SeedCost,
) -> tuple[PartitionAssignment, list[frozenset[str]]]:
    """Phase 1 (Algorithm 2): pick up to ``k`` seed tagsets.

    Returns the initial assignment (one seed per partition) and the list of
    tagsets that still need to be assigned in phase 2.  Seeds are chosen by
    minimum cost, breaking ties towards the most newly covered tags and
    then deterministically by the sorted tag tuple.
    """
    validate_k(k)
    remaining = set(statistics.tagset_counts)
    covered: set[str] = set()
    partitions = [Partition(index=i) for i in range(k)]
    chosen_loads: list[int] = []
    loads = {tagset: statistics.load(tagset) for tagset in remaining}

    for index in range(k):
        if not remaining:
            break
        best: frozenset[str] | None = None
        best_key: tuple[float, int, tuple[str, ...]] | None = None
        for tagset in remaining:
            key = (
                cost(tagset, covered, chosen_loads, loads[tagset]),
                -len(tagset - covered),
                tuple(sorted(tagset)),
            )
            if best_key is None or key < best_key:
                best_key = key
                best = tagset
        assert best is not None
        partitions[index].add_tags(best, load=loads[best])
        chosen_loads.append(loads[best])
        covered |= best
        remaining.remove(best)

    leftover = sorted(remaining, key=lambda s: tuple(sorted(s)))
    return PartitionAssignment(partitions), leftover


class _SetCoverPartitioner(Partitioner):
    """Shared machinery of the set-cover family."""

    seed_cost: SeedCost = staticmethod(zero_seed_cost)

    def partition(
        self, statistics: CooccurrenceStatistics, k: int
    ) -> PartitionAssignment:
        assignment, remaining = select_seed_tagsets(statistics, k, self.seed_cost)
        self._assign_remaining(assignment, remaining, statistics)
        return assignment

    # Subclasses implement phase 2.
    def _assign_remaining(
        self,
        assignment: PartitionAssignment,
        remaining: Iterable[frozenset[str]],
        statistics: CooccurrenceStatistics,
    ) -> None:
        raise NotImplementedError


class SCCPartitioner(_SetCoverPartitioner):
    """Set Cover based, optimising Communication (Algorithm 3)."""

    name = "SCC"
    seed_cost = staticmethod(communication_seed_cost)

    def _assign_remaining(
        self,
        assignment: PartitionAssignment,
        remaining: Iterable[frozenset[str]],
        statistics: CooccurrenceStatistics,
    ) -> None:
        pending = set(remaining)
        covered = set(assignment.all_tags())
        loads = {tagset: statistics.load(tagset) for tagset in pending}
        while pending:
            # Line 3: most uncovered tags, then fewest total tags.
            tagset = min(
                pending,
                key=lambda s: (-len(s - covered), len(s), tuple(sorted(s))),
            )
            # Line 4: partition sharing the most tags, then least loaded.
            target = min(
                assignment.partitions,
                key=lambda p: (-p.shared_tags(tagset), p.load, p.index),
            )
            assignment.add_tagset(target.index, tagset, load=loads[tagset])
            covered |= tagset
            pending.remove(tagset)


class SCLPartitioner(_SetCoverPartitioner):
    """Set Cover based, optimising processing Load (Algorithm 4)."""

    name = "SCL"
    seed_cost = staticmethod(load_seed_cost)

    def _assign_remaining(
        self,
        assignment: PartitionAssignment,
        remaining: Iterable[frozenset[str]],
        statistics: CooccurrenceStatistics,
    ) -> None:
        pending = set(remaining)
        covered = set(assignment.all_tags())
        loads = {tagset: statistics.load(tagset) for tagset in pending}
        while pending:
            # Line 3: heaviest tagset, then fewest already-covered tags.
            tagset = min(
                pending,
                key=lambda s: (-loads[s], len(s & covered), tuple(sorted(s))),
            )
            # Line 4: least loaded partition, then most shared tags.
            target = min(
                assignment.partitions,
                key=lambda p: (p.load, -p.shared_tags(tagset), p.index),
            )
            assignment.add_tagset(target.index, tagset, load=loads[tagset])
            covered |= tagset
            pending.remove(tagset)

    def best_partition_for_addition(
        self,
        assignment: PartitionAssignment,
        tagset: frozenset[str],
        load: int = 1,
    ) -> int:
        """Single Addition policy of SCL: keep the load balanced (Section 7.1)."""
        target = min(
            assignment.partitions,
            key=lambda p: (p.load, -p.shared_tags(tagset), p.index),
        )
        return target.index


class SCIPartitioner(_SetCoverPartitioner):
    """Set Cover based algorithm of the workshop paper [1] (Algorithm 5).

    Phase 1 is plain (un-budgeted) maximum coverage; phase 2 assigns the
    remaining tagsets in random order to the partition sharing the most tags
    with them.  A ``seed`` makes runs reproducible.
    """

    name = "SCI"
    seed_cost = staticmethod(zero_seed_cost)

    def __init__(self, seed: int | None = 0) -> None:
        self._rng = random.Random(seed)

    def _assign_remaining(
        self,
        assignment: PartitionAssignment,
        remaining: Iterable[frozenset[str]],
        statistics: CooccurrenceStatistics,
    ) -> None:
        pending = list(remaining)
        self._rng.shuffle(pending)
        loads = {tagset: statistics.load(tagset) for tagset in pending}
        for tagset in pending:
            # Line 3: partition sharing the most tags (ties by index).
            target = min(
                assignment.partitions,
                key=lambda p: (-p.shared_tags(tagset), p.index),
            )
            assignment.add_tagset(target.index, tagset, load=loads[tagset])
