"""Hybrid DS + set-cover partitioner (the "lessons learned" of Section 8.3).

The paper concludes that disjoint sets should form the basis of all
partitioning, but that very large disjoint sets must be split — for
instance with a set-cover–based algorithm like SCL — so that load balancing
is not impaired.  This partitioner implements exactly that recipe:

1. find the disjoint sets of the window (phase 1 of DS);
2. every disjoint set whose load exceeds ``split_threshold`` times the ideal
   per-partition load is split with an inner set-cover partitioner into as
   many pieces as its load warrants;
3. the resulting (smaller) sets are packed into ``k`` partitions with the
   greedy LPT packing of DS phase 2.

With ``split_threshold = inf`` the algorithm degenerates to plain DS; with a
threshold of 1.0 every over-sized component is split.
"""

from __future__ import annotations

import math

from ..core.cooccurrence import CooccurrenceStatistics
from ..core.partition import PartitionAssignment
from .base import Partitioner, validate_k
from .disjoint_sets import DisjointSet, find_disjoint_sets, merge_disjoint_sets
from .set_cover import SCLPartitioner


class HybridDSPartitioner(Partitioner):
    """Disjoint sets with set-cover splitting of over-sized components."""

    name = "DS+SCL"

    def __init__(
        self,
        split_threshold: float = 1.5,
        inner: Partitioner | None = None,
    ) -> None:
        if split_threshold <= 0:
            raise ValueError("split_threshold must be positive")
        self._split_threshold = split_threshold
        self._inner = inner if inner is not None else SCLPartitioner()

    def partition(
        self, statistics: CooccurrenceStatistics, k: int
    ) -> PartitionAssignment:
        validate_k(k)
        disjoint_sets = find_disjoint_sets(statistics)
        total_load = sum(ds.load for ds in disjoint_sets)
        if total_load == 0 or k == 1:
            return merge_disjoint_sets(disjoint_sets, k)
        ideal_load = total_load / k
        limit = self._split_threshold * ideal_load

        pieces: list[DisjointSet] = []
        for disjoint_set in disjoint_sets:
            if disjoint_set.load <= limit or len(disjoint_set.tags) < 2:
                pieces.append(disjoint_set)
                continue
            pieces.extend(self._split(disjoint_set, statistics, ideal_load))
        return merge_disjoint_sets(pieces, k)

    def _split(
        self,
        disjoint_set: DisjointSet,
        statistics: CooccurrenceStatistics,
        ideal_load: int | float,
    ) -> list[DisjointSet]:
        """Split one over-sized component with the inner partitioner."""
        n_pieces = max(2, math.ceil(disjoint_set.load / max(ideal_load, 1.0)))
        n_pieces = min(n_pieces, len(disjoint_set.tags))
        local_counts = {
            tagset: count
            for tagset, count in statistics.tagset_counts.items()
            if tagset <= disjoint_set.tags
        }
        local_stats = CooccurrenceStatistics.from_tagset_counts(local_counts)
        inner_assignment = self._inner.partition(local_stats, n_pieces)
        pieces = []
        for partition in inner_assignment:
            if not partition.tags:
                continue
            pieces.append(
                DisjointSet(
                    tags=frozenset(partition.tags),
                    load=statistics.load(partition.tags),
                )
            )
        return pieces or [disjoint_set]
