"""Common interface of partitioning algorithms.

A partitioning algorithm takes the co-occurrence statistics of a window of
documents and the number of partitions ``k`` and produces a
:class:`~repro.core.partition.PartitionAssignment`.  In the streaming
topology this happens inside the Partitioner/Merger operators; the same
algorithms are also usable standalone (examples, benchmarks, tests).

In addition to the one-shot :meth:`Partitioner.partition` method the base
class defines :meth:`Partitioner.best_partition_for_addition`, which the
Merger calls for Single Additions (Section 7.1): given an existing
assignment and a new tagset, find the partition it should be added to.
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence

from ..core.cooccurrence import CooccurrenceStatistics
from ..core.documents import Document
from ..core.partition import PartitionAssignment


class Partitioner(abc.ABC):
    """Base class of all partitioning algorithms."""

    #: Short, unique algorithm name used in configs, reports and plots.
    name: str = "base"

    @abc.abstractmethod
    def partition(
        self, statistics: CooccurrenceStatistics, k: int
    ) -> PartitionAssignment:
        """Partition the tags of ``statistics`` into ``k`` tag partitions."""

    def partition_documents(
        self, documents: Iterable[Document], k: int
    ) -> PartitionAssignment:
        """Convenience wrapper: collect statistics and partition them."""
        return self.partition(CooccurrenceStatistics.from_documents(documents), k)

    def best_partition_for_addition(
        self,
        assignment: PartitionAssignment,
        tagset: frozenset[str],
        load: int = 1,
    ) -> int:
        """Choose the partition a previously unseen tagset is added to.

        The default policy minimises the increase in communication: prefer
        the partition already sharing the most tags with the tagset and
        break ties towards the least loaded partition.  This is the policy
        of the DS, SCC and SCI algorithms; SCL overrides it to keep load
        balanced (Section 7.1).
        """
        if assignment.k == 0:
            raise ValueError("cannot add a tagset to an empty assignment")
        best_index = 0
        best_key: tuple[int, int] | None = None
        for partition in assignment:
            shared = partition.shared_tags(tagset)
            # Maximise shared tags, then minimise load.
            key = (-shared, partition.load)
            if best_key is None or key < best_key:
                best_key = key
                best_index = partition.index
        return best_index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def validate_k(k: int) -> None:
    """Reject non-positive partition counts early with a clear message."""
    if k <= 0:
        raise ValueError(f"number of partitions k must be positive, got {k}")


def least_loaded_index(loads: Sequence[int]) -> int:
    """Index of the smallest value, first one on ties."""
    best = 0
    for index, load in enumerate(loads):
        if load < loads[best]:
            best = index
    return best
