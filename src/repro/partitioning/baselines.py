"""Baseline partitioners used for comparison and ablation.

The paper's related-work section (Section 2) discusses classic graph
partitioning — Kernighan–Lin [12] and spectral methods [6] — as an
alternative to its online algorithms, and Section 5.2 analyses random
equal-sized partitions.  This module implements those baselines so the
benchmarks can quantify the comparison:

* :class:`HashPartitioner` — the strawman every stream system offers for
  free: route each tag to ``hash(tag) mod k``.  It balances load well but
  breaks coverage, since a co-occurring tagset is usually split across
  partitions; callers can optionally repair coverage by replicating each
  tagset into one partition, which reveals the communication cost.
* :class:`RandomPartitioner` — random equal-sized tag partitions, the model
  analysed in Section 5.2.
* :class:`KernighanLinPartitioner` — recursive bisection of the tagset graph
  with the Kernighan–Lin heuristic (via networkx), then tags are collected
  from the tagset vertices of each side.
* :class:`SpectralPartitioner` — spectral clustering of the tagset graph
  using the Fiedler vector / k-means on the Laplacian eigenvectors.

All baselines repair coverage the same way (each observed tagset is added to
the partition holding most of its tags) so that their Jaccard coverage is
comparable with the paper's algorithms.
"""

from __future__ import annotations

import random
import zlib
from typing import Iterable, Sequence

import networkx as nx
import numpy as np

from ..core.cooccurrence import CooccurrenceStatistics
from ..core.partition import Partition, PartitionAssignment
from .base import Partitioner, validate_k


def repair_coverage(
    assignment: PartitionAssignment, statistics: CooccurrenceStatistics
) -> int:
    """Ensure every observed tagset is fully contained in some partition.

    Each uncovered tagset is added to the partition already holding most of
    its tags (ties towards the least loaded).  Returns the number of tagsets
    that had to be repaired — a measure of how badly the base partitioning
    violates the coverage requirement.
    """
    repaired = 0
    for tagset in statistics.tagset_counts:
        if assignment.covers(tagset):
            continue
        target = min(
            assignment.partitions,
            key=lambda p: (-p.shared_tags(tagset), p.load, p.index),
        )
        assignment.add_tagset(target.index, tagset, load=statistics.load(tagset))
        repaired += 1
    return repaired


class HashPartitioner(Partitioner):
    """Assign each tag to ``hash(tag) mod k``; optionally repair coverage."""

    name = "HASH"

    def __init__(self, repair: bool = True, seed: int = 0) -> None:
        self._repair = repair
        self._seed = seed

    def partition(
        self, statistics: CooccurrenceStatistics, k: int
    ) -> PartitionAssignment:
        validate_k(k)
        partitions = [Partition(index=i) for i in range(k)]
        for tag in sorted(statistics.tags):
            index = zlib.crc32(f"{self._seed}:{tag}".encode("utf-8")) % k
            partitions[index].add_tags(
                [tag], load=statistics.tag_document_count(tag)
            )
        assignment = PartitionAssignment(partitions)
        if self._repair:
            repair_coverage(assignment, statistics)
        return assignment


class RandomPartitioner(Partitioner):
    """Random equal-sized tag partitions (the Section 5.2 model)."""

    name = "RANDOM"

    def __init__(self, repair: bool = True, seed: int | None = 0) -> None:
        self._repair = repair
        self._rng = random.Random(seed)

    def partition(
        self, statistics: CooccurrenceStatistics, k: int
    ) -> PartitionAssignment:
        validate_k(k)
        tags = sorted(statistics.tags)
        self._rng.shuffle(tags)
        partitions = [Partition(index=i) for i in range(k)]
        for position, tag in enumerate(tags):
            index = position % k
            partitions[index].add_tags(
                [tag], load=statistics.tag_document_count(tag)
            )
        assignment = PartitionAssignment(partitions)
        if self._repair:
            repair_coverage(assignment, statistics)
        return assignment


def _tags_from_tagset_groups(
    groups: Sequence[Iterable[frozenset[str]]],
    statistics: CooccurrenceStatistics,
) -> PartitionAssignment:
    """Turn groups of tagset vertices into tag partitions with loads."""
    partitions = []
    for index, group in enumerate(groups):
        tags: set[str] = set()
        for tagset in group:
            tags |= tagset
        partitions.append(
            Partition(index=index, tags=tags, load=statistics.load(tags))
        )
    return PartitionAssignment(partitions)


class KernighanLinPartitioner(Partitioner):
    """Recursive Kernighan–Lin bisection of the tagset graph."""

    name = "KL"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed

    def partition(
        self, statistics: CooccurrenceStatistics, k: int
    ) -> PartitionAssignment:
        validate_k(k)
        graph = statistics.tagset_graph()
        groups = self._recursive_bisection(graph, k)
        # Pad with empty groups when the graph had too few vertices.
        while len(groups) < k:
            groups.append([])
        assignment = _tags_from_tagset_groups(groups[:k], statistics)
        repair_coverage(assignment, statistics)
        return assignment

    def _recursive_bisection(
        self, graph: nx.Graph, k: int
    ) -> list[list[frozenset[str]]]:
        nodes = list(graph.nodes)
        if k <= 1 or len(nodes) <= 1:
            return [nodes]
        half_k = k // 2
        if graph.number_of_edges() == 0:
            midpoint = max(1, len(nodes) * half_k // k)
            left_nodes, right_nodes = nodes[:midpoint], nodes[midpoint:]
        else:
            left, right = nx.algorithms.community.kernighan_lin_bisection(
                graph, weight="weight", seed=self._seed
            )
            left_nodes, right_nodes = list(left), list(right)
        left_groups = self._recursive_bisection(graph.subgraph(left_nodes), half_k)
        right_groups = self._recursive_bisection(
            graph.subgraph(right_nodes), k - half_k
        )
        return left_groups + right_groups


class SpectralPartitioner(Partitioner):
    """Spectral clustering of the tagset graph into ``k`` groups.

    Uses the eigenvectors of the graph Laplacian (Donath & Hoffman style)
    followed by a lightweight k-means on the spectral embedding.
    """

    name = "SPECTRAL"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed

    def partition(
        self, statistics: CooccurrenceStatistics, k: int
    ) -> PartitionAssignment:
        validate_k(k)
        graph = statistics.tagset_graph()
        nodes = list(graph.nodes)
        if not nodes:
            return PartitionAssignment.empty(k)
        if len(nodes) <= k:
            groups: list[list[frozenset[str]]] = [[] for _ in range(k)]
            for index, node in enumerate(nodes):
                groups[index % k].append(node)
            assignment = _tags_from_tagset_groups(groups, statistics)
            repair_coverage(assignment, statistics)
            return assignment
        labels = self._spectral_labels(graph, nodes, k)
        groups = [[] for _ in range(k)]
        for node, label in zip(nodes, labels):
            groups[label].append(node)
        assignment = _tags_from_tagset_groups(groups, statistics)
        repair_coverage(assignment, statistics)
        return assignment

    def _spectral_labels(
        self, graph: nx.Graph, nodes: list[frozenset[str]], k: int
    ) -> list[int]:
        laplacian = nx.laplacian_matrix(graph, nodelist=nodes, weight="weight")
        dense = laplacian.toarray().astype(float)
        eigenvalues, eigenvectors = np.linalg.eigh(dense)
        order = np.argsort(eigenvalues)
        n_vectors = min(max(k, 2), len(nodes))
        embedding = eigenvectors[:, order[1:n_vectors]]
        if embedding.shape[1] == 0:
            embedding = eigenvectors[:, order[:1]]
        return _kmeans_labels(embedding, k, seed=self._seed)


def _kmeans_labels(points: np.ndarray, k: int, seed: int, iterations: int = 50) -> list[int]:
    """Small dependency-free k-means used by the spectral baseline."""
    rng = np.random.default_rng(seed)
    n = points.shape[0]
    k = min(k, n)
    centroid_indices = rng.choice(n, size=k, replace=False)
    centroids = points[centroid_indices].copy()
    labels = np.zeros(n, dtype=int)
    for _ in range(iterations):
        distances = np.linalg.norm(points[:, None, :] - centroids[None, :, :], axis=2)
        new_labels = distances.argmin(axis=1)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
        for index in range(k):
            members = points[labels == index]
            if len(members):
                centroids[index] = members.mean(axis=0)
    return labels.tolist()
