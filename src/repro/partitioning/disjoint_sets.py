"""Disjoint Sets partitioning (Algorithm 1, "DS").

The DS algorithm exploits the observation that tags describing the same
topic are strongly connected to each other while being disconnected from
tags of other topics.  It proceeds in two phases:

1. identify the connected components ("disjoint sets") of the tag
   co-occurrence graph, each carrying a load equal to the number of
   documents annotated with any of its tags;
2. greedily merge the disjoint sets into ``k`` partitions, always assigning
   the heaviest unassigned set to the currently least loaded partition
   (longest-processing-time-first bin packing).

Because components are never split, every co-occurring tagset is fully
contained in exactly one partition: replication (and hence communication
overhead) is zero by construction, at the cost of potential load imbalance
when one component is very large (Section 5.1 / 8.3).

The module also exposes :func:`find_disjoint_sets` separately because, with
multiple Partitioner instances, each Partitioner runs only phase 1 and the
Merger combines the resulting disjoint sets before running phase 2
(Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..core.cooccurrence import CooccurrenceStatistics
from ..core.partition import Partition, PartitionAssignment
from ..core.union_find import UnionFind
from .base import Partitioner, least_loaded_index, validate_k


@dataclass(frozen=True, slots=True)
class DisjointSet:
    """A connected component of tags together with its load."""

    tags: frozenset[str]
    load: int

    def __len__(self) -> int:
        return len(self.tags)


def find_disjoint_sets(statistics: CooccurrenceStatistics) -> list[DisjointSet]:
    """Phase 1 of Algorithm 1: connected components of the tag graph.

    Returns the components sorted by decreasing load so that phase 2 (and
    the Merger) can consume them directly.
    """
    forest: UnionFind[str] = UnionFind(statistics.tags)
    for tagset in statistics.tagset_counts:
        forest.union_all(tagset)
    components = forest.components()
    disjoint_sets = [
        DisjointSet(tags=frozenset(tags), load=statistics.load(tags))
        for tags in components.values()
    ]
    disjoint_sets.sort(key=lambda ds: (-ds.load, -len(ds.tags), sorted(ds.tags)))
    return disjoint_sets


def merge_disjoint_sets(
    disjoint_sets: Iterable[DisjointSet], k: int
) -> PartitionAssignment:
    """Phase 2 of Algorithm 1: pack disjoint sets into ``k`` partitions.

    The heaviest set goes to the emptiest partition (greedy LPT packing,
    lines 8–19 of Algorithm 1).  With fewer disjoint sets than partitions
    the remaining partitions stay empty, matching the paper's topology
    scaling behaviour (unused Calculators are simply not indexed).
    """
    validate_k(k)
    ordered = sorted(
        disjoint_sets, key=lambda ds: (-ds.load, -len(ds.tags), sorted(ds.tags))
    )
    partitions = [Partition(index=i) for i in range(k)]
    for position, disjoint_set in enumerate(ordered):
        if position < k:
            target = partitions[position]
        else:
            target = partitions[least_loaded_index([p.load for p in partitions])]
        target.add_tags(disjoint_set.tags, load=disjoint_set.load)
    return PartitionAssignment(partitions)


class DisjointSetsPartitioner(Partitioner):
    """The DS algorithm (Algorithm 1)."""

    name = "DS"

    def partition(
        self, statistics: CooccurrenceStatistics, k: int
    ) -> PartitionAssignment:
        validate_k(k)
        disjoint_sets = find_disjoint_sets(statistics)
        return merge_disjoint_sets(disjoint_sets, k)

    def best_partition_for_addition(
        self,
        assignment: PartitionAssignment,
        tagset: frozenset[str],
        load: int = 1,
    ) -> int:
        """Single Addition policy of DS: minimise the communication increase.

        If one partition already holds some of the tagset's tags it is the
        natural owner (adding elsewhere would replicate tags).  A tagset
        sharing tags with no partition goes to the least loaded one.
        """
        best_index: int | None = None
        best_key: tuple[int, int] | None = None
        for partition in assignment:
            shared = partition.shared_tags(tagset)
            missing = len(tagset) - shared
            # Minimise the number of newly replicated/added tags, then load.
            key = (missing, partition.load)
            if best_key is None or key < best_key:
                best_key = key
                best_index = partition.index
        assert best_index is not None
        return best_index
