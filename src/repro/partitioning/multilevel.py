"""Multilevel graph partitioner (Hendrickson–Leland style, reference [11]).

The related-work section points at multilevel partitioning — coarsen the
graph by collapsing heavy edges, partition the small graph, then project the
partition back while refining with Kernighan–Lin — as the strongest classic
alternative to the paper's online algorithms.  This implementation works on
the tagset graph of Section 4:

1. **Coarsening**: repeated heavy-edge matching merges tagset vertices that
   share many tags until the graph is small enough.
2. **Initial partitioning**: greedy balanced assignment of the coarsest
   vertices (by weight) to ``k`` parts.
3. **Uncoarsening + refinement**: the assignment is projected back level by
   level; at each level a boundary-refinement pass moves vertices to the
   neighbouring part that reduces the edge cut, subject to a balance
   constraint.

Like the other offline baselines it repairs coverage at the end so its
output is directly comparable with DS/SCC/SCL/SCI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..core.cooccurrence import CooccurrenceStatistics
from ..core.partition import Partition, PartitionAssignment
from .base import Partitioner, validate_k
from .baselines import repair_coverage


@dataclass(slots=True)
class _Level:
    """One level of the coarsening hierarchy."""

    graph: nx.Graph
    #: Mapping from a vertex of this level to its parent vertex one level up
    #: (i.e. in the coarser graph).
    parent: dict = field(default_factory=dict)


def _heavy_edge_matching(graph: nx.Graph) -> dict:
    """Greedy heavy-edge matching; returns vertex -> merged representative."""
    matched: set = set()
    mapping: dict = {}
    # Visit vertices from heaviest to lightest so popular tagsets merge first.
    vertices = sorted(
        graph.nodes, key=lambda v: -graph.nodes[v].get("weight", 1)
    )
    for vertex in vertices:
        if vertex in matched:
            continue
        best = None
        best_weight = 0
        for neighbour in graph.neighbors(vertex):
            if neighbour in matched:
                continue
            weight = graph[vertex][neighbour].get("weight", 1)
            if weight > best_weight:
                best = neighbour
                best_weight = weight
        matched.add(vertex)
        if best is None:
            mapping[vertex] = (vertex,)
        else:
            matched.add(best)
            mapping[vertex] = (vertex, best)
            mapping[best] = (vertex, best)
    # Deduplicate: each merged group is represented by a tuple key.
    return mapping


def _coarsen(graph: nx.Graph) -> tuple[nx.Graph, dict]:
    """One coarsening step; returns the coarser graph and the parent map."""
    mapping = _heavy_edge_matching(graph)
    coarse = nx.Graph()
    parent: dict = {}
    for vertex, group in mapping.items():
        parent[vertex] = group
        if group not in coarse:
            weight = sum(graph.nodes[v].get("weight", 1) for v in set(group))
            coarse.add_node(group, weight=weight)
    for first, second, data in graph.edges(data=True):
        group_a, group_b = parent[first], parent[second]
        if group_a == group_b:
            continue
        weight = data.get("weight", 1)
        if coarse.has_edge(group_a, group_b):
            coarse[group_a][group_b]["weight"] += weight
        else:
            coarse.add_edge(group_a, group_b, weight=weight)
    return coarse, parent


def _initial_partition(graph: nx.Graph, k: int) -> dict:
    """Greedy balanced assignment of the coarsest vertices to k parts."""
    assignment: dict = {}
    loads = [0.0] * k
    vertices = sorted(
        graph.nodes, key=lambda v: -graph.nodes[v].get("weight", 1)
    )
    for vertex in vertices:
        part = min(range(k), key=lambda index: loads[index])
        assignment[vertex] = part
        loads[part] += graph.nodes[vertex].get("weight", 1)
    return assignment


def _refine(graph: nx.Graph, assignment: dict, k: int, passes: int = 2) -> None:
    """Boundary refinement: move vertices to reduce the weighted edge cut."""
    loads = [0.0] * k
    for vertex, part in assignment.items():
        loads[part] += graph.nodes[vertex].get("weight", 1)
    total = sum(loads) or 1.0
    max_load = 1.3 * total / k
    for _ in range(passes):
        moved = False
        for vertex in graph.nodes:
            current = assignment[vertex]
            weight = graph.nodes[vertex].get("weight", 1)
            # Gain of moving to each neighbouring part.
            connectivity = [0.0] * k
            for neighbour in graph.neighbors(vertex):
                connectivity[assignment[neighbour]] += graph[vertex][neighbour].get(
                    "weight", 1
                )
            best_part = current
            best_gain = 0.0
            for part in range(k):
                if part == current:
                    continue
                if loads[part] + weight > max_load:
                    continue
                gain = connectivity[part] - connectivity[current]
                if gain > best_gain:
                    best_gain = gain
                    best_part = part
            if best_part != current:
                assignment[vertex] = best_part
                loads[current] -= weight
                loads[best_part] += weight
                moved = True
        if not moved:
            break


class MultilevelPartitioner(Partitioner):
    """Multilevel (coarsen / partition / refine) tagset-graph partitioner."""

    name = "MULTILEVEL"

    def __init__(self, coarsest_size: int = 64, refinement_passes: int = 2) -> None:
        if coarsest_size < 2:
            raise ValueError("coarsest_size must be at least 2")
        self._coarsest_size = coarsest_size
        self._passes = refinement_passes

    def partition(
        self, statistics: CooccurrenceStatistics, k: int
    ) -> PartitionAssignment:
        validate_k(k)
        graph = statistics.tagset_graph()
        if graph.number_of_nodes() == 0:
            return PartitionAssignment.empty(k)

        # Coarsening phase.
        levels: list[_Level] = []
        current = graph
        while current.number_of_nodes() > max(self._coarsest_size, 2 * k):
            coarse, parent = _coarsen(current)
            if coarse.number_of_nodes() >= current.number_of_nodes():
                break
            levels.append(_Level(graph=current, parent=parent))
            current = coarse

        # Initial partitioning of the coarsest graph.
        assignment = _initial_partition(current, k)
        _refine(current, assignment, k, self._passes)

        # Uncoarsening with refinement.
        for level in reversed(levels):
            projected = {
                vertex: assignment[level.parent[vertex]] for vertex in level.graph.nodes
            }
            _refine(level.graph, projected, k, self._passes)
            assignment = projected

        partitions = [Partition(index=i) for i in range(k)]
        for tagset, part in assignment.items():
            partitions[part].add_tags(tagset)
        result = PartitionAssignment(partitions)
        for partition in result:
            partition.load = statistics.load(partition.tags)
        repair_coverage(result, statistics)
        return result
