"""Partitioning algorithms: the paper's DS/SCC/SCL/SCI family and baselines."""

from .base import Partitioner
from .baselines import (
    HashPartitioner,
    KernighanLinPartitioner,
    RandomPartitioner,
    SpectralPartitioner,
    repair_coverage,
)
from .disjoint_sets import (
    DisjointSet,
    DisjointSetsPartitioner,
    find_disjoint_sets,
    merge_disjoint_sets,
)
from .hybrid import HybridDSPartitioner
from .multilevel import MultilevelPartitioner
from .set_cover import (
    SCCPartitioner,
    SCIPartitioner,
    SCLPartitioner,
    select_seed_tagsets,
)

#: Registry of algorithm constructors, keyed by the names used in the paper.
ALGORITHMS = {
    "DS": DisjointSetsPartitioner,
    "SCC": SCCPartitioner,
    "SCL": SCLPartitioner,
    "SCI": SCIPartitioner,
    "DS+SCL": HybridDSPartitioner,
    "HASH": HashPartitioner,
    "RANDOM": RandomPartitioner,
    "KL": KernighanLinPartitioner,
    "SPECTRAL": SpectralPartitioner,
    "MULTILEVEL": MultilevelPartitioner,
}

#: The four algorithms compared in every figure of the evaluation.
PAPER_ALGORITHMS = ("DS", "SCI", "SCC", "SCL")


def make_partitioner(name: str, **kwargs) -> Partitioner:
    """Instantiate a partitioner by its paper name (case-insensitive)."""
    key = name.upper()
    if key not in ALGORITHMS:
        known = ", ".join(sorted(ALGORITHMS))
        raise ValueError(f"unknown partitioning algorithm {name!r}; known: {known}")
    return ALGORITHMS[key](**kwargs)


__all__ = [
    "ALGORITHMS",
    "PAPER_ALGORITHMS",
    "DisjointSet",
    "DisjointSetsPartitioner",
    "HashPartitioner",
    "HybridDSPartitioner",
    "KernighanLinPartitioner",
    "MultilevelPartitioner",
    "Partitioner",
    "RandomPartitioner",
    "SCCPartitioner",
    "SCIPartitioner",
    "SCLPartitioner",
    "SpectralPartitioner",
    "find_disjoint_sets",
    "make_partitioner",
    "merge_disjoint_sets",
    "repair_coverage",
    "select_seed_tagsets",
]
