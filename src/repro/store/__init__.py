"""Out-of-core counter storage: spill-to-disk runs with parallel merges.

The ``repro.store`` subsystem backs :class:`repro.core.jaccard.SubsetCounter`
with bounded resident memory (``SystemConfig(counter_store="spill")``):

* :mod:`repro.store.format` — the versioned on-disk run format (blocked,
  key-prefix-compressed entries + an in-RAM lexicon/fence-pointer index),
  its atomic writer and the mmap/LRU-block-cache read path,
* :mod:`repro.store.merge` — serial and parallel-layered k-way run merges,
* :mod:`repro.store.spill` — :class:`SpillingCounterStore` (the
  Counter-compatible mapping the reporting engines fold over) and
  :class:`CarryLog` (the delta engine's spilled carry payloads).

See docs/ARCHITECTURE.md "Counter store" for the design.
"""

from .format import (
    DEFAULT_BLOCK_SIZE,
    FORMAT_VERSION,
    BlockCache,
    RunFormatError,
    RunReader,
    RunWriteResult,
    decode_key,
    encode_key,
    merged_entries,
    write_run,
)
from .merge import (
    DEFAULT_MERGE_FAN_IN,
    MergeResult,
    compact_runs,
    merge_runs,
    parallel_merges_allowed,
    resolve_merge_workers,
)
from .spill import (
    COUNTER_STORES,
    DEFAULT_CACHE_BLOCKS,
    DEFAULT_SPILL_THRESHOLD,
    CarryLog,
    SpillingCounterStore,
)

__all__ = [
    "BlockCache",
    "CarryLog",
    "COUNTER_STORES",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_CACHE_BLOCKS",
    "DEFAULT_MERGE_FAN_IN",
    "DEFAULT_SPILL_THRESHOLD",
    "FORMAT_VERSION",
    "MergeResult",
    "RunFormatError",
    "RunReader",
    "RunWriteResult",
    "SpillingCounterStore",
    "compact_runs",
    "decode_key",
    "encode_key",
    "merge_runs",
    "merged_entries",
    "parallel_merges_allowed",
    "resolve_merge_workers",
    "write_run",
]
