"""Out-of-core storage: spill-to-disk runs with parallel merges.

The ``repro.store`` subsystem bounds resident memory for the two tables
that otherwise scale with stream length:

* :class:`repro.core.jaccard.SubsetCounter`'s window counts, via
  ``SystemConfig(counter_store="spill")``, and
* :class:`repro.operators.tracker.TrackerBolt`'s coefficient table, via
  ``SystemConfig(tracker_store="spill")``.

Modules:

* :mod:`repro.store.format` — the versioned on-disk run format (blocked,
  key-prefix-compressed entries + an in-RAM lexicon/fence-pointer index),
  its atomic writer and the mmap/LRU-block-cache read path.  Runs carry
  either uvarint counts (the default) or opaque raw byte values
  (:data:`FLAG_RAW_VALUES` — the tracker's coefficient records),
* :mod:`repro.store.merge` — serial and parallel-layered k-way run merges
  with a pluggable, order-preserving value combiner,
* :mod:`repro.store.config` — :class:`StoreConfig`, the one bundle of
  spill/cache/merge knobs both spilling stores share,
* :mod:`repro.store.spill` — :class:`SpillingCounterStore` (the
  Counter-compatible mapping the reporting engines fold over) and
  :class:`CarryLog` (the delta engine's spilled carry payloads),
* :mod:`repro.store.tracker` — :class:`SpillingTrackerStore` (the
  Tracker's dedup table as runs, max-support rule as merge combiner) and
  :class:`RunBackedTrackerSnapshot` (service mode's copy-free snapshot).

See docs/ARCHITECTURE.md "Counter store" for the design.
"""

from .config import (
    DEFAULT_CACHE_BLOCKS,
    DEFAULT_SPILL_THRESHOLD,
    StoreConfig,
)
from .format import (
    DEFAULT_BLOCK_SIZE,
    FLAG_RAW_VALUES,
    FORMAT_VERSION,
    BlockCache,
    RunFormatError,
    RunReader,
    RunWriteResult,
    decode_key,
    encode_key,
    merged_entries,
    write_run,
)
from .merge import (
    DEFAULT_MERGE_FAN_IN,
    MergeResult,
    compact_runs,
    merge_runs,
    parallel_merges_allowed,
    resolve_merge_workers,
)
from .spill import (
    COUNTER_STORES,
    CarryLog,
    SpillingCounterStore,
)
from .tracker import (
    TRACKER_STORES,
    RunBackedTrackerSnapshot,
    SpillingTrackerStore,
    combine_max_support,
)

__all__ = [
    "BlockCache",
    "CarryLog",
    "COUNTER_STORES",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_CACHE_BLOCKS",
    "DEFAULT_MERGE_FAN_IN",
    "DEFAULT_SPILL_THRESHOLD",
    "FLAG_RAW_VALUES",
    "FORMAT_VERSION",
    "MergeResult",
    "RunBackedTrackerSnapshot",
    "RunFormatError",
    "RunReader",
    "RunWriteResult",
    "SpillingCounterStore",
    "SpillingTrackerStore",
    "StoreConfig",
    "TRACKER_STORES",
    "combine_max_support",
    "compact_runs",
    "decode_key",
    "encode_key",
    "merge_runs",
    "merged_entries",
    "parallel_merges_allowed",
    "resolve_merge_workers",
    "write_run",
]
