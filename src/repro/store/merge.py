"""K-way run merges — serial and parallel-layered.

Merging reuses the ``multiprocessing`` machinery the sharded executor
established: when more than ``fan_in`` runs accumulate, they are grouped
into fan-in-sized batches and each batch is merged by a pool worker
(sorted runs → layered k-way merges, the SNIPPETS.md search-engine
schedule), layer after layer, until one run remains.  Two situations fall
back to a fully serial merge:

* inside sharded-executor workers — those are daemon processes, which
  ``multiprocessing`` forbids from spawning children, and
* when there is only one group to merge anyway (parallelism buys nothing).

Every individual merge is itself crash-safe: it streams through
:func:`repro.store.format.write_run`, so a failed merge leaves only its
inputs behind and a killed process leaves at most a ``.tmp`` sibling that
the owning store sweeps on ``clear()``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from .format import DEFAULT_BLOCK_SIZE, RunReader, merged_entries, write_run

#: Largest number of runs one merge consumes; beyond it merges are layered.
DEFAULT_MERGE_FAN_IN = 8

#: Upper bound on pool workers when ``workers=0`` asks for auto-sizing.
MAX_AUTO_MERGE_WORKERS = 4


@dataclass(frozen=True)
class MergeResult:
    """Outcome of one (possibly layered) merge."""

    path: str
    entries: int
    merges: int
    parallel_merges: int
    seconds: float


def merge_runs(
    sources: Sequence[str],
    destination,
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
    combine=None,
) -> str:
    """Merge ``sources`` into a single run at ``destination``.

    Streams block-by-block — peak memory is one decoded block per source
    plus one output block, regardless of run sizes.  Sources are left in
    place; the caller deletes them once the merged run is published.

    ``combine`` is handed to :func:`merged_entries` (``None`` sums counts);
    sources must be passed oldest first so a non-commutative combiner sees
    equal keys in the order the segments spilled.  The output inherits the
    sources' value layout (raw values stay raw).
    """
    readers = [RunReader(path) for path in sources]
    try:
        raw = readers[0].raw_values if readers else False
        if any(reader.raw_values != raw for reader in readers):
            raise ValueError("cannot merge raw-value runs with count runs")
        write_run(
            destination,
            merged_entries(
                [reader.entries() for reader in readers], combine=combine
            ),
            block_size=block_size,
            raw_values=raw,
        )
    finally:
        for reader in readers:
            reader.close()
    return os.fspath(destination)


def _merge_group(args: tuple[list[str], str, int, object]) -> str:
    """Pool-worker entry point (module-level, hence picklable).

    ``combine`` rides along in the args tuple, so it must itself be a
    module-level function for the parallel path to pickle it.  ``None``
    (count merges) keeps the two-argument call shape.
    """
    sources, destination, block_size, combine = args
    if combine is None:
        return merge_runs(sources, destination, block_size=block_size)
    return merge_runs(
        sources, destination, block_size=block_size, combine=combine
    )


def resolve_merge_workers(workers: int) -> int:
    """Resolve the worker count (0 = auto, capped; 1 = serial)."""
    if workers > 0:
        return workers
    return max(1, min(MAX_AUTO_MERGE_WORKERS, os.cpu_count() or 1))


def parallel_merges_allowed() -> bool:
    """Whether this process may spawn merge workers.

    Sharded-executor workers are daemon processes; ``multiprocessing``
    refuses to give daemons children, so merges inside them run serially.
    """
    return not multiprocessing.current_process().daemon


def compact_runs(
    sources: Sequence[str],
    make_path: Callable[[int, int], str],
    *,
    fan_in: int = DEFAULT_MERGE_FAN_IN,
    workers: int = 0,
    block_size: int = DEFAULT_BLOCK_SIZE,
    combine=None,
) -> MergeResult:
    """Merge ``sources`` down to one run, in parallel layers where possible.

    ``make_path(layer, index)`` names intermediate and final outputs.
    Consumed inputs (including intermediates) are deleted as soon as the
    merge that read them is published; on failure the surviving inputs are
    left for the owning store's abort sweep.

    Grouping is order-preserving (``sources[i:i+fan_in]``) and each group
    merges oldest-first, so across any number of layers equal keys still
    fold left-to-right in original source order — the property that lets a
    non-commutative ``combine`` (tracker max-support) produce the same
    winner regardless of layering.
    """
    if fan_in < 2:
        raise ValueError("fan_in must be at least 2")
    paths = [os.fspath(path) for path in sources]
    if len(paths) < 2:
        raise ValueError("compact_runs needs at least two source runs")
    workers = resolve_merge_workers(workers)
    started = time.perf_counter()
    merges = 0
    parallel_merges = 0
    layer = 0
    while len(paths) > 1:
        groups = [paths[i:i + fan_in] for i in range(0, len(paths), fan_in)]
        outputs: list[str] = []
        jobs: list[tuple[list[str], str, int, object]] = []
        for index, group in enumerate(groups):
            if len(group) == 1:
                # A straggler group passes through to the next layer as-is.
                outputs.append(group[0])
                continue
            destination = make_path(layer, index)
            jobs.append((group, destination, block_size, combine))
            outputs.append(destination)
        if len(jobs) > 1 and workers > 1 and parallel_merges_allowed():
            with multiprocessing.Pool(min(workers, len(jobs))) as pool:
                pool.map(_merge_group, jobs)
            parallel_merges += len(jobs)
        else:
            for job in jobs:
                _merge_group(job)
        for group, _destination, _bs, _combine in jobs:
            for path in group:
                try:
                    os.unlink(path)
                except OSError:
                    pass
        merges += len(jobs)
        paths = outputs
        layer += 1
    final_reader = RunReader(paths[0])
    entries = final_reader.n_entries
    final_reader.close()
    return MergeResult(
        path=paths[0],
        entries=entries,
        merges=merges,
        parallel_merges=parallel_merges,
        seconds=time.perf_counter() - started,
    )
