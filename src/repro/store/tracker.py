"""The spilling tracker store: the coefficient table as sorted runs.

:class:`SpillingTrackerStore` is the out-of-core backing table for
:class:`repro.operators.tracker.TrackerBolt`.  Where the counter store
holds additive subset counts, this store holds the Tracker's *dedup
winners* — per reported tagset the coefficient of the report with maximum
support, plus how many reports ever mentioned the tagset.  Entries
accumulate in a hot in-RAM dict; past ``spill_threshold`` distinct
tagsets the segment is frozen into a raw-value RSC1 run (see
:mod:`repro.store.format`) and the RAM reclaimed, so resident entries
stay bounded by the threshold no matter how long the stream runs.

The dedup rule *is* the merge combiner.  Folding two records for the same
tagset (older left, newer right)::

    winner   = new if new.support > old.support else old     # ties keep old
    reports  = old.reports + new.reports

is exactly what the in-RAM dict does report by report, and the fold is
associative (leftmost argmax under strictly-greater displacement), so any
way of slicing the report sequence into segments — hot dict, one run,
many runs, layered compactions — folds back to the identical record.
That equivalence is what pins ``tracker_store="spill"`` bit-identical to
the dict default, and it holds only while merges fold *oldest → newest*:
every merge path here feeds streams in spill order and relies on
``heapq.merge`` stability.

Duplicate accounting (``duplicate_reports`` in every ``RunReport`` and
service ``stats`` reply) needs to know whether a tagset was *ever* seen,
including in spilled segments, so a hot-segment miss probes the live runs
(through the store's LRU block cache) before deciding new-vs-duplicate.
Compaction keeps the live-run count under the merge fan-in, bounding that
probe cost.

:meth:`SpillingTrackerStore.snapshot` builds the service daemon's
run-backed :class:`RunBackedTrackerSnapshot`: an immutable view that
opens its *own* readers over the published run files (POSIX keeps an
unlinked-but-open mmap valid, so later compactions cannot disturb it)
plus a copy of the bounded hot segment — no full-table copy per
quiescent point.
"""

from __future__ import annotations

import hashlib
import heapq
import os
import shutil
import struct
import tempfile
import threading
import weakref
from typing import Iterable, Iterator

from .config import StoreConfig
from .format import (
    BlockCache,
    RunReader,
    _read_uvarint,
    _write_uvarint,
    decode_key,
    encode_key,
    merged_entries,
    write_run,
)
from .merge import compact_runs

#: Names of the available tracker stores (mirrored by
#: ``SystemConfig.tracker_store`` and the CLI ``--tracker-store`` flag).
TRACKER_STORES = ("dict", "spill")

_JACCARD = struct.Struct("<d")


# --------------------------------------------------------------------- #
# The coefficient record codec and its merge combiner
# --------------------------------------------------------------------- #
def encode_value(jaccard: float, support: int, reports: int) -> bytes:
    """One coefficient record as raw run-file bytes.

    The jaccard travels as its exact IEEE-754 double bits — a spilled
    coefficient read back ``repr()``s identically to the float the
    Calculator emitted, which the digest equivalence depends on.
    """
    out = bytearray(_JACCARD.pack(jaccard))
    _write_uvarint(out, support)
    _write_uvarint(out, reports)
    return bytes(out)


def decode_value(data: bytes) -> tuple[float, int, int]:
    """Inverse of :func:`encode_value`: ``(jaccard, support, reports)``."""
    jaccard = _JACCARD.unpack_from(data, 0)[0]
    end = len(data)
    support, pos = _read_uvarint(data, _JACCARD.size, end)
    reports, pos = _read_uvarint(data, pos, end)
    return jaccard, support, reports


def combine_max_support(old: bytes, new: bytes) -> bytes:
    """Fold two records of one tagset, oldest first (module-level, so the
    parallel merge pool can pickle it).

    The newer record displaces only on *strictly greater* support — equal
    support keeps the incumbent, mirroring ``TrackerBolt``'s in-RAM rule —
    and report counts always sum.
    """
    old_j, old_s, old_r = decode_value(old)
    new_j, new_s, new_r = decode_value(new)
    if new_s > old_s:
        return encode_value(new_j, new_s, old_r + new_r)
    return encode_value(old_j, old_s, old_r + new_r)


def _encode_tagset(tagset: frozenset) -> bytes:
    return encode_key(tuple(sorted(tagset)))


class SpillingTrackerStore:
    """Coefficient table that freezes cold segments into sorted run files."""

    def __init__(
        self,
        spill_dir: str | None = None,
        spill_threshold: int | None = None,
        *,
        block_size: int | None = None,
        cache_blocks: int | None = None,
        merge_fan_in: int | None = None,
        merge_workers: int | None = None,
        config: StoreConfig | None = None,
    ) -> None:
        config = (config or StoreConfig()).replacing(
            spill_dir=os.fspath(spill_dir) if spill_dir is not None else None,
            spill_threshold=spill_threshold,
            block_size=block_size,
            cache_blocks=cache_blocks,
            merge_fan_in=merge_fan_in,
            merge_workers=merge_workers,
        )
        self.config = config
        # Hot entries are [jaccard, support, reports] lists (mutated in
        # place) keyed by tagset; a hot entry for a run-resident tagset is
        # a pure *delta* — the fold with the run record happens at read or
        # merge time via combine_max_support.
        self._hot: dict[frozenset, list] = {}
        self._runs: list[RunReader] = []
        self._cache = BlockCache(config.cache_blocks)
        self._dir: str | None = None
        self._finalizer = None
        self._sequence = 0
        self._distinct = 0
        self._stats = {
            "spilled_entries": 0,
            "runs_written": 0,
            "run_bytes_written": 0,
            "merges": 0,
            "parallel_merges": 0,
            "merge_seconds": 0.0,
            "membership_probes": 0,
        }

    # ------------------------------------------------------------------ #
    # Directory lifecycle (same contract as SpillingCounterStore)
    # ------------------------------------------------------------------ #
    def ensure_dir(self) -> str:
        """The store's private spill directory, created on first use."""
        if self._dir is None:
            root = self.config.spill_dir
            if root is not None:
                os.makedirs(root, exist_ok=True)
            self._dir = tempfile.mkdtemp(prefix="repro-tracker-", dir=root)
            self._finalizer = weakref.finalize(
                self, shutil.rmtree, self._dir, True
            )
        return self._dir

    @property
    def directory(self) -> str | None:
        """The spill directory, or ``None`` while nothing spilled yet."""
        return self._dir

    def _next_path(self, kind: str) -> str:
        self._sequence += 1
        return os.path.join(
            self.ensure_dir(), f"{kind}-{self._sequence:06d}.run"
        )

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #
    def _seen_in_runs(self, tagset: frozenset) -> bool:
        if not self._runs:
            return False
        self._stats["membership_probes"] += 1
        encoded = _encode_tagset(tagset)
        return any(reader.get(encoded) is not None for reader in self._runs)

    def ingest(self, results: Iterable[tuple]) -> tuple[int, int]:
        """Apply ``(tags, jaccard, support)`` triples; returns the
        ``(received, duplicates)`` deltas for the owning bolt's counters.

        Bit-for-bit the dict tracker's rule: first sighting stores the
        report, later sightings displace only on strictly greater support.
        """
        received = 0
        duplicates = 0
        hot = self._hot
        threshold = self.config.spill_threshold
        for tags, jaccard, support in results:
            received += 1
            key = frozenset(tags)
            entry = hot.get(key)
            if entry is None:
                if self._seen_in_runs(key):
                    duplicates += 1
                else:
                    self._distinct += 1
                hot[key] = [float(jaccard), int(support), 1]
                if len(hot) >= threshold:
                    self.spill()
            else:
                duplicates += 1
                entry[2] += 1
                if support > entry[1]:
                    entry[0] = float(jaccard)
                    entry[1] = int(support)
        return received, duplicates

    def ingest_repeated(self, pairs: Iterable[tuple]) -> tuple[int, int]:
        """Apply ``(triple, count)`` replayed shipments (delta engine)."""
        received = 0
        duplicates = 0
        hot = self._hot
        threshold = self.config.spill_threshold
        for (tags, jaccard, support), count in pairs:
            if count <= 0:
                continue
            received += count
            key = frozenset(tags)
            entry = hot.get(key)
            if entry is None:
                if self._seen_in_runs(key):
                    duplicates += count
                else:
                    self._distinct += 1
                    duplicates += count - 1
                hot[key] = [float(jaccard), int(support), count]
                if len(hot) >= threshold:
                    self.spill()
            else:
                duplicates += count
                entry[2] += count
                if support > entry[1]:
                    entry[0] = float(jaccard)
                    entry[1] = int(support)
        return received, duplicates

    def spill(self) -> None:
        """Freeze the hot segment into a published raw-value run, then
        compact once the live-run count reaches the merge fan-in."""
        hot = self._hot
        if not hot:
            return
        rows = sorted(
            (_encode_tagset(key), encode_value(*entry))
            for key, entry in hot.items()
        )
        result = write_run(
            self._next_path("run"), rows,
            block_size=self.config.block_size, raw_values=True,
        )
        self._runs.append(RunReader(result.path, self._cache))
        stats = self._stats
        stats["spilled_entries"] += result.entries
        stats["runs_written"] += 1
        stats["run_bytes_written"] += result.file_bytes
        hot.clear()
        if len(self._runs) >= self.config.merge_fan_in:
            self.compact()

    def compact(self) -> None:
        """Merge all live runs into one (bounds membership-probe cost).

        A failed merge sweeps every on-disk artefact of this store before
        propagating, so abort paths leave no orphaned runs behind.
        """
        if len(self._runs) < 2:
            return
        paths = [reader.path for reader in self._runs]
        for reader in self._runs:
            reader.close()
        self._runs = []
        try:
            result = compact_runs(
                paths,
                lambda layer, index: self._next_path(f"merge{layer}"),
                fan_in=self.config.merge_fan_in,
                workers=self.config.merge_workers,
                block_size=self.config.block_size,
                combine=combine_max_support,
            )
        except BaseException:
            self._sweep_run_files()
            raise
        self._runs = [RunReader(result.path, self._cache)]
        stats = self._stats
        stats["merges"] += result.merges
        stats["parallel_merges"] += result.parallel_merges
        stats["merge_seconds"] += result.seconds

    def _sweep_run_files(self) -> None:
        directory = self._dir
        if directory is None or not os.path.isdir(directory):
            return
        for name in os.listdir(directory):
            if name.endswith(".run") or name.endswith(".tmp"):
                try:
                    os.unlink(os.path.join(directory, name))
                except OSError:
                    pass

    def clear(self) -> None:
        """Drop every record: hot segment, run files, distinct count."""
        self._hot.clear()
        self._distinct = 0
        for reader in self._runs:
            reader.close()
            try:
                os.unlink(reader.path)
            except OSError:
                pass
        self._runs = []
        self._sweep_run_files()

    def close(self) -> None:
        """Release everything, including the spill directory itself."""
        self.clear()
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._dir = None

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #
    def get(self, tagset: frozenset) -> tuple[float, int, int] | None:
        """The folded ``(jaccard, support, reports)`` of one tagset."""
        merged: bytes | None = None
        if self._runs:
            encoded = _encode_tagset(tagset)
            for reader in self._runs:  # oldest first
                value = reader.get(encoded)
                if value is not None:
                    merged = value if merged is None else (
                        combine_max_support(merged, value)
                    )
        entry = self._hot.get(tagset)
        if entry is not None:
            hot_value = encode_value(*entry)
            merged = hot_value if merged is None else (
                combine_max_support(merged, hot_value)
            )
        return decode_value(merged) if merged is not None else None

    def _merged_encoded(self) -> Iterator[tuple[bytes, bytes]]:
        streams: list[Iterator[tuple[bytes, bytes]]] = [
            reader.entries() for reader in self._runs  # oldest first
        ]
        hot = self._hot
        if hot:
            streams.append(iter(sorted(
                (_encode_tagset(key), encode_value(*entry))
                for key, entry in hot.items()
            )))
        return merged_entries(streams, combine=combine_max_support)

    def iter_entries(self) -> Iterator[tuple[frozenset, float, int, int]]:
        """All ``(tagset, jaccard, support, reports)`` records, in
        encoded-key order — deterministic regardless of spill timing."""
        for key, value in self._merged_encoded():
            jaccard, support, reports = decode_value(value)
            yield frozenset(decode_key(key)), jaccard, support, reports

    def __contains__(self, tagset: frozenset) -> bool:
        return tagset in self._hot or self._seen_in_runs(tagset)

    def __len__(self) -> int:
        return self._distinct

    # ------------------------------------------------------------------ #
    # Snapshots (service mode)
    # ------------------------------------------------------------------ #
    def snapshot(
        self, round_index: int, reports_received: int, duplicate_reports: int
    ) -> "RunBackedTrackerSnapshot":
        """An immutable view over the published runs + the hot segment.

        Opened synchronously on the caller's (writer) thread, before any
        further mutation: the snapshot's own readers keep the current run
        files alive even after the store compacts or unlinks them.
        """
        return RunBackedTrackerSnapshot(
            round_index=round_index,
            reports_received=reports_received,
            duplicate_reports=duplicate_reports,
            distinct=self._distinct,
            run_paths=[reader.path for reader in self._runs],
            hot={key: tuple(entry) for key, entry in self._hot.items()},
        )

    # ------------------------------------------------------------------ #
    # Stats and pickling
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, float]:
        """Cumulative spill/merge accounting plus block-cache counters."""
        stats: dict[str, float] = dict(self._stats)
        cache = self._cache.stats()
        stats["block_cache_hits"] = cache["hits"]
        stats["block_cache_misses"] = cache["misses"]
        stats["block_cache_evictions"] = cache["evictions"]
        stats["runs_live"] = len(self._runs)
        stats["hot_entries"] = len(self._hot)
        return stats

    def __getstate__(self) -> dict:
        # Manifest protocol, like the counter store — but ownership of the
        # spill directory *moves with the pickle*: the sender detaches its
        # GC finalizer, otherwise a worker process exiting after shipping
        # the bolt back would rmtree the directory the driver adopted.
        manifest = [reader.path for reader in self._runs]
        if manifest and self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        return {
            "config": self.config,
            "hot": {key: tuple(entry) for key, entry in self._hot.items()},
            "distinct": self._distinct,
            "manifest": manifest,
            "stats": dict(self._stats),
            "cache_counters": (
                self._cache.hits, self._cache.misses, self._cache.evictions
            ),
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(config=state["config"])
        self._hot = {key: list(entry) for key, entry in state["hot"].items()}
        self._distinct = state["distinct"]
        self._stats.update(state["stats"])
        self._cache.hits, self._cache.misses, self._cache.evictions = (
            state["cache_counters"]
        )
        manifest = state["manifest"]
        if manifest:
            # Adopt the sender's directory (and its cleanup duty).
            self._dir = os.path.dirname(manifest[0])
            self._finalizer = weakref.finalize(
                self, shutil.rmtree, self._dir, True
            )
            self._runs = [RunReader(path, self._cache) for path in manifest]


class RunBackedTrackerSnapshot:
    """Immutable tracker view answering queries from runs + a hot copy.

    Duck-types :class:`repro.operators.tracker.TrackerSnapshot`'s query
    surface (``round_index``, ``reports_received``, ``duplicate_reports``,
    ``__len__``, ``coefficient``, ``top_k``, ``digest``) without copying
    the table: run blocks are faulted in on demand through a private
    block cache.  All reads are serialised by one lock — the cache is not
    thread-safe, and daemon query threads share the snapshot.

    The readers are opened at construction time (writer thread, quiescent
    point); the backing files stay readable even after the store unlinks
    them, so a retained snapshot keeps answering the same round forever.
    """

    __slots__ = (
        "round_index", "reports_received", "duplicate_reports",
        "_distinct", "_hot", "_readers", "_cache", "_lock", "_finalizer",
        "__weakref__",
    )

    def __init__(
        self,
        round_index: int,
        reports_received: int,
        duplicate_reports: int,
        distinct: int,
        run_paths: list[str],
        hot: dict[frozenset, tuple],
    ) -> None:
        self.round_index = round_index
        self.reports_received = reports_received
        self.duplicate_reports = duplicate_reports
        self._distinct = distinct
        self._hot = hot
        self._cache = BlockCache(64)
        self._readers = []
        try:
            for path in run_paths:
                self._readers.append(RunReader(path, self._cache))
        except BaseException:
            for reader in self._readers:
                reader.close()
            raise
        self._lock = threading.Lock()
        self._finalizer = weakref.finalize(
            self, _close_readers, self._readers
        )

    def close(self) -> None:
        """Release the snapshot's readers (a GC finalizer backstops)."""
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None

    def __len__(self) -> int:
        return self._distinct

    def coefficient(self, tagset: frozenset) -> tuple[float, int] | None:
        """The folded ``(jaccard, support)`` of one tagset, if reported."""
        with self._lock:
            merged: bytes | None = None
            if self._readers:
                encoded = _encode_tagset(tagset)
                for reader in self._readers:  # oldest first
                    value = reader.get(encoded)
                    if value is not None:
                        merged = value if merged is None else (
                            combine_max_support(merged, value)
                        )
            entry = self._hot.get(tagset)
            if entry is not None:
                hot_value = encode_value(*entry)
                merged = hot_value if merged is None else (
                    combine_max_support(merged, hot_value)
                )
        if merged is None:
            return None
        jaccard, support, _reports = decode_value(merged)
        return jaccard, support

    def _merged_decoded(self) -> Iterator[tuple[frozenset, float, int]]:
        streams: list[Iterator[tuple[bytes, bytes]]] = [
            reader.entries() for reader in self._readers
        ]
        hot = self._hot
        if hot:
            streams.append(iter(sorted(
                (_encode_tagset(key), encode_value(*entry))
                for key, entry in hot.items()
            )))
        for key, value in merged_entries(streams, combine=combine_max_support):
            jaccard, support, _reports = decode_value(value)
            yield frozenset(decode_key(key)), jaccard, support

    def top_k(
        self, k: int = 10, min_support: int = 0
    ) -> list[tuple[frozenset, float, int]]:
        """The ``k`` strongest coefficients, identically ordered to the
        dict snapshot's (jaccard desc, support desc, tags lexically)."""
        with self._lock:
            candidates = (
                row for row in self._merged_decoded() if row[2] >= min_support
            )
            return heapq.nsmallest(
                k, candidates,
                key=lambda row: (-row[1], -row[2], tuple(sorted(row[0]))),
            )

    def digest(self) -> str:
        """Order-insensitive content hash — line-identical to the dict
        snapshot's over the same table."""
        with self._lock:
            lines = sorted(
                f"{','.join(sorted(tagset))}={jaccard!r}/{support}"
                for tagset, jaccard, support in self._merged_decoded()
            )
        hasher = hashlib.sha256()
        for line in lines:
            hasher.update(line.encode("utf-8"))
            hasher.update(b"\n")
        return hasher.hexdigest()


def _close_readers(readers: list) -> None:
    for reader in readers:
        try:
            reader.close()
        except Exception:
            pass
