"""The spilling counter store and the delta carry log.

:class:`SpillingCounterStore` is a drop-in backing table for
:class:`repro.core.jaccard.SubsetCounter`: the same mapping surface a
``collections.Counter`` offers the reporting engines (``__getitem__``
returning 0 for absent keys, ``get``, ``items``, iteration, ``clear``),
but with bounded resident memory.  Observations accumulate in a *hot*
in-RAM ``Counter`` segment; once the hot segment reaches
``spill_threshold`` distinct keys it is frozen — sorted by encoded key and
written as one immutable run file (see :mod:`repro.store.format`) — and
the RAM is reclaimed.  Lookups sum the hot segment with every live run
(through the shared mmap/LRU-block-cache read path); report time first
compacts the runs down to one via :func:`repro.store.merge.compact_runs`
so per-subset lookups cost a single probe.

Because counts are additive, the merged table is byte-for-byte the table a
plain ``Counter`` would hold — spill timing, run count and merge order are
all unobservable in the reported coefficients (pinned by the spill ≡ dict
equivalence suite).

:class:`CarryLog` gives the delta engine's carry table the same treatment:
clean types' cached emissions (``keys``/``triples``) are pickled into an
append-only blob log inside the store's spill directory and read back only
when a clean round re-asserts them, with garbage compaction once released
blobs dominate the file.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
import weakref
from collections import Counter
from typing import Callable, Iterable, Iterator

from .config import DEFAULT_CACHE_BLOCKS, DEFAULT_SPILL_THRESHOLD, StoreConfig
from .format import (
    BlockCache,
    RunReader,
    decode_key,
    encode_key,
    merged_entries,
    write_run,
)
from .merge import compact_runs

#: Names of the available counter stores (mirrored by
#: ``SystemConfig.counter_store`` and the CLI ``--counter-store`` flag).
COUNTER_STORES = ("dict", "spill")


class SpillingCounterStore:
    """Counter mapping that freezes cold segments into sorted run files."""

    def __init__(
        self,
        spill_dir: str | None = None,
        spill_threshold: int | None = None,
        *,
        block_size: int | None = None,
        cache_blocks: int | None = None,
        merge_fan_in: int | None = None,
        merge_workers: int | None = None,
        config: StoreConfig | None = None,
    ) -> None:
        config = (config or StoreConfig()).replacing(
            spill_dir=os.fspath(spill_dir) if spill_dir is not None else None,
            spill_threshold=spill_threshold,
            block_size=block_size,
            cache_blocks=cache_blocks,
            merge_fan_in=merge_fan_in,
            merge_workers=merge_workers,
        )
        self.config = config
        self._root = config.spill_dir
        self._threshold = config.spill_threshold
        self._block_size = config.block_size
        self._cache_blocks = config.cache_blocks
        self._fan_in = config.merge_fan_in
        self._merge_workers = config.merge_workers
        self._hot: Counter = Counter()
        self._runs: list[RunReader] = []
        self._cache = BlockCache(config.cache_blocks)
        self._dir: str | None = None
        self._finalizer = None
        self._sequence = 0
        self._stats = {
            "spilled_entries": 0,
            "runs_written": 0,
            "run_bytes_written": 0,
            "merges": 0,
            "parallel_merges": 0,
            "merge_seconds": 0.0,
        }

    # ------------------------------------------------------------------ #
    # Directory lifecycle
    # ------------------------------------------------------------------ #
    def ensure_dir(self) -> str:
        """The store's private spill directory, created on first use.

        A fresh ``mkdtemp`` under ``spill_dir`` (or the system temp dir)
        per store instance, so the k Calculators of a run — across any
        number of worker processes — never collide.  Removed again by
        :meth:`close`, and by a GC finalizer as a backstop.
        """
        if self._dir is None:
            root = self._root
            if root is not None:
                os.makedirs(root, exist_ok=True)
            self._dir = tempfile.mkdtemp(prefix="repro-spill-", dir=root)
            self._finalizer = weakref.finalize(
                self, shutil.rmtree, self._dir, True
            )
        return self._dir

    @property
    def directory(self) -> str | None:
        """The spill directory, or ``None`` while nothing spilled yet."""
        return self._dir

    def _next_path(self, kind: str) -> str:
        self._sequence += 1
        return os.path.join(
            self.ensure_dir(), f"{kind}-{self._sequence:06d}.run"
        )

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #
    def update(self, keys: Iterable[tuple[str, ...]]) -> None:
        """Count one occurrence of every key in ``keys`` (Counter.update)."""
        hot = self._hot
        hot.update(keys)
        if len(hot) >= self._threshold:
            self.spill()

    def spill(self) -> None:
        """Freeze the hot segment into a sorted, published run file."""
        hot = self._hot
        if not hot:
            return
        rows = sorted((encode_key(key), count) for key, count in hot.items())
        result = write_run(
            self._next_path("run"), rows, block_size=self._block_size
        )
        self._runs.append(RunReader(result.path, self._cache))
        stats = self._stats
        stats["spilled_entries"] += result.entries
        stats["runs_written"] += 1
        stats["run_bytes_written"] += result.file_bytes
        hot.clear()

    def prepare_report(self) -> None:
        """Compact all live runs into one before a report/drain fold.

        Report folds perform one lookup per lattice position; against n
        runs each lookup would cost n probes, so the runs are k-way-merged
        (in parallel layers when the process may spawn workers) down to a
        single run first.  A failed merge sweeps every on-disk artefact of
        this store before propagating — no orphaned runs on abort paths.
        """
        if len(self._runs) < 2:
            return
        paths = [reader.path for reader in self._runs]
        for reader in self._runs:
            reader.close()
        self._runs = []
        try:
            result = compact_runs(
                paths,
                lambda layer, index: self._next_path(f"merge{layer}"),
                fan_in=self._fan_in,
                workers=self._merge_workers,
                block_size=self._block_size,
            )
        except BaseException:
            self._sweep_run_files()
            raise
        self._runs = [RunReader(result.path, self._cache)]
        stats = self._stats
        stats["merges"] += result.merges
        stats["parallel_merges"] += result.parallel_merges
        stats["merge_seconds"] += result.seconds

    def _sweep_run_files(self) -> None:
        """Delete every run artefact (``*.run``/``*.tmp``) in the dir."""
        directory = self._dir
        if directory is None or not os.path.isdir(directory):
            return
        for name in os.listdir(directory):
            if name.endswith(".run") or name.endswith(".tmp"):
                try:
                    os.unlink(os.path.join(directory, name))
                except OSError:
                    pass

    def clear(self) -> None:
        """Drop all counts: hot segment and every spilled run file.

        Run files are removed eagerly (report rounds call this after every
        fold); stats and the spill directory itself survive for the next
        round.  Stray artefacts of an aborted merge are swept too.
        """
        self._hot.clear()
        for reader in self._runs:
            reader.close()
            try:
                os.unlink(reader.path)
            except OSError:
                pass
        self._runs = []
        self._sweep_run_files()

    def close(self) -> None:
        """Release everything, including the spill directory itself."""
        self.clear()
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._dir = None

    # ------------------------------------------------------------------ #
    # Read path (the Counter-compatible mapping surface)
    # ------------------------------------------------------------------ #
    def __getitem__(self, key: tuple[str, ...]) -> int:
        total = self._hot[key]
        runs = self._runs
        if runs:
            encoded = encode_key(key)
            for reader in runs:
                count = reader.get(encoded)
                if count is not None:
                    total += count
        return total

    def get(self, key: tuple[str, ...], default: int | None = None):
        total = self[key]
        if total:
            return total
        # Counts are strictly positive, so 0 means the key was never
        # observed — exactly when dict.get would fall back to the default.
        return default

    def __contains__(self, key: object) -> bool:
        return bool(self[key])  # type: ignore[index]

    def _merged_encoded(self) -> Iterator[tuple[bytes, int]]:
        streams: list[Iterator[tuple[bytes, int]]] = [
            reader.entries() for reader in self._runs
        ]
        hot = self._hot
        if hot:
            streams.append(iter(sorted(
                (encode_key(key), count) for key, count in hot.items()
            )))
        return merged_entries(streams)

    def items(self) -> Iterator[tuple[tuple[str, ...], int]]:
        """All ``(key, count)`` pairs, in encoded-key order.

        Deterministic regardless of spill timing: the same observations
        yield the same sequence whether they spilled into one run, many,
        or none at all.
        """
        if not self._runs:
            return iter(sorted(self._hot.items(), key=lambda kv: encode_key(kv[0])))
        return (
            (decode_key(key), count) for key, count in self._merged_encoded()
        )

    def keys(self) -> Iterator[tuple[str, ...]]:
        return (key for key, _count in self.items())

    def __iter__(self) -> Iterator[tuple[str, ...]]:
        return self.keys()

    def __len__(self) -> int:
        if not self._runs:
            return len(self._hot)
        return sum(1 for _ in self._merged_encoded())

    # ------------------------------------------------------------------ #
    # Stats and pickling
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, float]:
        """Cumulative spill/merge accounting plus block-cache counters."""
        stats: dict[str, float] = dict(self._stats)
        cache = self._cache.stats()
        stats["block_cache_hits"] = cache["hits"]
        stats["block_cache_misses"] = cache["misses"]
        stats["block_cache_evictions"] = cache["evictions"]
        stats["runs_live"] = len(self._runs)
        stats["hot_entries"] = len(self._hot)
        return stats

    def __getstate__(self) -> dict:
        # Ship a *manifest* of published run files, never the decoded
        # tables: the receiving process re-opens the runs by path (same
        # host — the process executor's workers are forked siblings).
        return {
            "config": self.config,
            "hot": dict(self._hot),
            "manifest": [reader.path for reader in self._runs],
            "stats": dict(self._stats),
            # Cache *counters* cross the wire (they feed the driver's
            # aggregated RunReport.store_stats); cached blocks do not.
            "cache_counters": (
                self._cache.hits, self._cache.misses, self._cache.evictions
            ),
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(config=state["config"])
        self._hot.update(state["hot"])
        self._stats.update(state["stats"])
        self._cache.hits, self._cache.misses, self._cache.evictions = (
            state["cache_counters"]
        )
        manifest = state["manifest"]
        if manifest:
            # Adopt the sender's directory (and its cleanup duty).
            self._dir = os.path.dirname(manifest[0])
            self._finalizer = weakref.finalize(
                self, shutil.rmtree, self._dir, True
            )
            self._runs = [RunReader(path, self._cache) for path in manifest]


class CarryLog:
    """Append-only pickled-blob log backing the delta engine's carry table.

    Clean types re-assert their previous emissions verbatim; with the
    spill store active those emission lists (``keys``/``triples``) move to
    this log so the carry table holds only ``(offset, length)`` refs.
    Blobs round-trip through ``pickle``, which preserves float bits,
    strings and frozensets exactly — re-asserted triples stay bit-identical
    to the in-RAM carry's.

    The log lives inside the owning store's spill directory
    (``directory_provider`` is the store's ``ensure_dir``).  Released
    blobs (refolded or evicted entries) become garbage; once garbage
    exceeds half of a non-trivial file, :meth:`maybe_compact` rewrites the
    live blobs into a fresh log and patches the entries' refs.
    """

    #: Compaction is considered only beyond this file size (bytes).
    MIN_COMPACT_BYTES = 1 << 20

    def __init__(self, directory_provider: Callable[[], str]) -> None:
        self._provider = directory_provider
        self._file = None
        self._path: str | None = None
        self._tail = 0
        self.live_bytes = 0
        self.total_bytes = 0
        self.blobs_written = 0
        self.bytes_written = 0
        self.compactions = 0

    def _ensure(self):
        if self._file is None:
            self._path = os.path.join(self._provider(), "carry.log")
            self._file = open(self._path, "w+b")
            self._tail = 0
            self.live_bytes = 0
            self.total_bytes = 0
        return self._file

    def append(self, payload: object) -> tuple[int, int]:
        """Pickle ``payload`` onto the log; returns its ``(offset, length)``."""
        handle = self._ensure()
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        handle.seek(self._tail)
        handle.write(data)
        ref = (self._tail, len(data))
        self._tail += len(data)
        self.live_bytes += len(data)
        self.total_bytes += len(data)
        self.blobs_written += 1
        self.bytes_written += len(data)
        return ref

    def read(self, ref: tuple[int, int]) -> object:
        offset, length = ref
        handle = self._ensure()
        handle.seek(offset)
        data = handle.read(length)
        if len(data) != length:
            raise RuntimeError(
                f"carry log short read at {offset}: wanted {length} bytes, "
                f"got {len(data)}"
            )
        return pickle.loads(data)

    def release(self, ref: tuple[int, int]) -> None:
        self.live_bytes -= ref[1]

    def maybe_compact(self, entries: Iterable[object]) -> bool:
        """Rewrite live blobs if garbage dominates; patch ``entry.ref``s."""
        if self._file is None or self.total_bytes < self.MIN_COMPACT_BYTES:
            return False
        if (self.total_bytes - self.live_bytes) * 2 < self.total_bytes:
            return False
        assert self._path is not None
        old = self._file
        new_path = self._path + ".compact"
        live = 0
        with open(new_path, "w+b") as fresh:
            offset = 0
            for entry in entries:
                ref = getattr(entry, "ref", None)
                if ref is None:
                    continue
                old.seek(ref[0])
                data = old.read(ref[1])
                fresh.write(data)
                entry.ref = (offset, len(data))
                offset += len(data)
                live += len(data)
        old.close()
        os.replace(new_path, self._path)
        self._file = open(self._path, "r+b")
        self._tail = live
        self.live_bytes = live
        self.total_bytes = live
        self.compactions += 1
        return True

    def close(self) -> None:
        """Close and delete the log file (accounting survives)."""
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._path is not None:
            try:
                os.unlink(self._path)
            except OSError:
                pass
            self._path = None
        self._tail = 0
        self.live_bytes = 0
        self.total_bytes = 0

    def stats(self) -> dict[str, float]:
        return {
            "carry_blobs_written": self.blobs_written,
            "carry_bytes_written": self.bytes_written,
            "carry_live_bytes": self.live_bytes,
            "carry_compactions": self.compactions,
        }

    def __getstate__(self) -> dict:
        # Open handles never cross process boundaries; a pickled log comes
        # back empty (its contents are only ever needed by the process that
        # wrote them — the carry table itself is released before bolts are
        # shipped anywhere).
        state = dict(self.__dict__)
        state["_file"] = None
        state["_path"] = None
        state["_tail"] = 0
        state["live_bytes"] = 0
        state["total_bytes"] = 0
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
