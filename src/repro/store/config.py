"""Shared knobs for the out-of-core stores.

Both spilling stores — :class:`~repro.store.spill.SpillingCounterStore`
(Calculator window state) and :class:`~repro.store.tracker.SpillingTrackerStore`
(the Tracker's coefficient table) — freeze an in-RAM hot segment into sorted
RSC1 runs and answer reads from a merged view.  They share the exact same
tuning surface: where runs live, when to spill, how big a block is, how many
cache blocks to pin, and how merges fan in.  :class:`StoreConfig` is that
surface, extracted once so the two stores cannot drift apart one keyword
argument at a time.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from .format import DEFAULT_BLOCK_SIZE
from .merge import DEFAULT_MERGE_FAN_IN

#: Hot-segment entry count at which a store freezes a sorted run to disk.
DEFAULT_SPILL_THRESHOLD = 65536

#: Blocks pinned by a store's LRU block cache (per store instance).
DEFAULT_CACHE_BLOCKS = 512


@dataclass(frozen=True, slots=True)
class StoreConfig:
    """One bundle of spill/cache/merge knobs shared by the spilling stores.

    Parameters
    ----------
    spill_dir:
        Parent directory for the store's private run directory (``None`` →
        the system temp dir).
    spill_threshold:
        Hot-segment entry count that triggers a spill.
    block_size:
        Target uncompressed bytes per run-file block.
    cache_blocks:
        Capacity of the store's LRU block cache.
    merge_fan_in:
        Maximum runs merged per layer during compaction.
    merge_workers:
        Process count for parallel merge layers (``0`` → auto).
    """

    spill_dir: str | None = None
    spill_threshold: int = DEFAULT_SPILL_THRESHOLD
    block_size: int = DEFAULT_BLOCK_SIZE
    cache_blocks: int = DEFAULT_CACHE_BLOCKS
    merge_fan_in: int = DEFAULT_MERGE_FAN_IN
    merge_workers: int = 0

    def __post_init__(self) -> None:
        if self.spill_threshold < 1:
            raise ValueError("spill_threshold must be >= 1")
        if self.block_size < 1:
            raise ValueError("block_size must be >= 1")
        if self.cache_blocks < 1:
            raise ValueError("cache_blocks must be >= 1")
        if self.merge_fan_in < 2:
            raise ValueError("merge_fan_in must be >= 2")
        if self.merge_workers < 0:
            raise ValueError("merge_workers must be >= 0")

    def replacing(self, **overrides: object) -> "StoreConfig":
        """A copy with every non-``None`` override applied.

        ``None`` means "keep mine", so call sites can forward optional
        keyword arguments straight through without an `if` per knob.
        """
        updates = {k: v for k, v in overrides.items() if v is not None}
        return dataclasses.replace(self, **updates) if updates else self
