"""Versioned on-disk format of spilled counter runs.

A *run* is an immutable, sorted snapshot of one frozen counter segment —
the out-of-core half of :class:`repro.store.SpillingCounterStore`.  The
layout follows the classic search-engine posting file (sorted runs →
blocked, prefix-compressed records + an in-RAM lexicon; see SNIPPETS.md):

::

    ┌────────────────────────────────────────────────────────────┐
    │ header (32 bytes, little-endian)                           │
    │   magic "RSC1" · version u16 · flags u16 · block_size u32  │
    │   n_entries u64 · n_blocks u32 · index_offset u64          │
    ├────────────────────────────────────────────────────────────┤
    │ block 0 … block n−1   (back to back, ~block_size payload)  │
    │   entry := uvarint shared_prefix_len                       │
    │            uvarint suffix_len · suffix bytes               │
    │            uvarint count            (flags = 0)            │
    │          | uvarint value_len · value bytes  (RAW_VALUES)   │
    │   (prefix lengths are relative to the previous entry of    │
    │    the same block; the first entry restarts at 0)          │
    ├────────────────────────────────────────────────────────────┤
    │ lexicon / fence-pointer index (kept in RAM by readers)     │
    │   per block: uvarint key_len · first key bytes ·           │
    │              offset u64 · length u32 · n_entries u32       │
    └────────────────────────────────────────────────────────────┘

Keys are tag tuples encoded as ``uvarint n_tags · (uvarint len · utf-8)*``
and ordered by their *encoded bytes* — a total order that every writer,
merger and reader shares, so equal keys collate across runs regardless of
which segment spilled them.  A run carries one of two value layouts,
declared by the header flags: the default (flags = 0) stores strictly
positive uvarint *counts* (observations only ever increment, which is what
lets readers treat "absent" as 0); :data:`FLAG_RAW_VALUES` stores opaque
length-prefixed byte strings instead — the Tracker's coefficient records —
whose meaning is the caller's business.  Readers reject flag bits they do
not understand, so pre-flag files (always written with flags = 0) stay
readable forever.

Writers are crash-safe: the file is written to a ``.tmp`` sibling,
``fsync``'d, and only then renamed into place (the *manifest publish* — a
run either exists completely or not at all).  Readers memory-map the file,
hold only the lexicon in RAM and decode blocks on demand through a shared
LRU :class:`BlockCache`; any structural damage (bad magic, unknown
version, truncated varints, out-of-range block extents) raises
:class:`RunFormatError` instead of returning garbage counts.
"""

from __future__ import annotations

import itertools
import mmap
import os
import struct
from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass
from operator import itemgetter
from typing import Iterable, Iterator

#: First four bytes of every run file ("Repro Subset Counters", layout 1).
MAGIC = b"RSC1"

#: Bumped on any change to the byte layout; readers reject other versions.
FORMAT_VERSION = 1

#: Header flag: entry values are opaque length-prefixed byte strings
#: rather than uvarint counts (the tracker store's coefficient records).
FLAG_RAW_VALUES = 1

#: Every flag bit this reader understands; anything else is a foreign file.
_KNOWN_FLAGS = FLAG_RAW_VALUES

#: Target payload bytes per block.  Small enough that decoding one block on
#: a cache miss stays cheap, large enough that prefix compression has
#: context to work with.
DEFAULT_BLOCK_SIZE = 4096

_HEADER = struct.Struct("<4sHHIQIQ")
_INDEX_TAIL = struct.Struct("<QII")

#: Process-wide token source distinguishing readers inside a shared
#: :class:`BlockCache` (ids of dead readers must never collide with new
#: ones, so plain ``id()`` cannot key the cache).
_READER_TOKENS = itertools.count(1)


class RunFormatError(RuntimeError):
    """A run file is structurally invalid (corrupt, truncated or foreign)."""


# --------------------------------------------------------------------- #
# Varints and the key codec
# --------------------------------------------------------------------- #
def _write_uvarint(out: bytearray, value: int) -> None:
    while True:
        septet = value & 0x7F
        value >>= 7
        if value:
            out.append(septet | 0x80)
        else:
            out.append(septet)
            return


def _read_uvarint(data, pos: int, end: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= end:
            raise RunFormatError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise RunFormatError("varint overflows 64 bits")


def encode_key(key: tuple[str, ...]) -> bytes:
    """A tag tuple as the canonical sort-and-storage byte string."""
    out = bytearray()
    _write_uvarint(out, len(key))
    for tag in key:
        raw = tag.encode("utf-8")
        _write_uvarint(out, len(raw))
        out += raw
    return bytes(out)


def decode_key(data: bytes) -> tuple[str, ...]:
    """Inverse of :func:`encode_key` (strict: trailing bytes are an error)."""
    end = len(data)
    count, pos = _read_uvarint(data, 0, end)
    tags = []
    for _ in range(count):
        length, pos = _read_uvarint(data, pos, end)
        if pos + length > end:
            raise RunFormatError("truncated tag in encoded key")
        tags.append(data[pos:pos + length].decode("utf-8"))
        pos += length
    if pos != end:
        raise RunFormatError("trailing bytes after encoded key")
    return tuple(tags)


# --------------------------------------------------------------------- #
# Writing
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class RunWriteResult:
    """What one :func:`write_run` produced."""

    path: str
    entries: int
    blocks: int
    file_bytes: int


def _fsync_directory(path: str) -> None:
    # Persist the rename itself; best-effort on filesystems that refuse
    # directory fds.
    try:
        fd = os.open(path or ".", os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def write_run(
    path,
    entries: Iterable[tuple[bytes, int]],
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
    raw_values: bool = False,
) -> RunWriteResult:
    """Write ``entries`` — ``(encoded_key, count)`` strictly sorted by key —
    as one run file, atomically.

    With ``raw_values=True`` the second tuple element is an opaque
    non-empty ``bytes`` value instead of a count, stored length-prefixed
    and flagged in the header (:data:`FLAG_RAW_VALUES`).

    The data is staged in ``<path>.tmp``, fsync'd, then renamed over
    ``path`` (and the directory fsync'd): the run is *published* only once
    every byte of it is durable, and an aborted write leaves nothing
    behind.
    """
    final_path = os.fspath(path)
    tmp_path = final_path + ".tmp"
    index: list[tuple[bytes, int, int, int]] = []
    n_entries = 0
    try:
        with open(tmp_path, "wb") as out:
            out.write(b"\x00" * _HEADER.size)
            offset = _HEADER.size
            block = bytearray()
            block_first: bytes | None = None
            block_entries = 0
            prev_key = b""
            for key, value in entries:
                if n_entries and key <= prev_key:
                    raise ValueError(
                        "run entries must be strictly sorted by encoded key"
                    )
                if raw_values:
                    if not isinstance(value, bytes) or not value:
                        raise ValueError(
                            "raw-value runs require non-empty bytes values"
                        )
                elif value <= 0:
                    raise ValueError("run counts must be positive")
                if block_first is None:
                    block_first = key
                    shared = 0
                else:
                    limit = min(len(key), len(prev_key))
                    shared = 0
                    while shared < limit and key[shared] == prev_key[shared]:
                        shared += 1
                suffix = key[shared:]
                _write_uvarint(block, shared)
                _write_uvarint(block, len(suffix))
                block += suffix
                if raw_values:
                    _write_uvarint(block, len(value))
                    block += value
                else:
                    _write_uvarint(block, value)
                prev_key = key
                block_entries += 1
                n_entries += 1
                if len(block) >= block_size:
                    out.write(block)
                    index.append((block_first, offset, len(block), block_entries))
                    offset += len(block)
                    block = bytearray()
                    block_first = None
                    block_entries = 0
            if block_first is not None:
                out.write(block)
                index.append((block_first, offset, len(block), block_entries))
                offset += len(block)
            index_offset = offset
            tail = bytearray()
            for first_key, block_offset, length, block_count in index:
                _write_uvarint(tail, len(first_key))
                tail += first_key
                tail += _INDEX_TAIL.pack(block_offset, length, block_count)
            out.write(tail)
            file_bytes = index_offset + len(tail)
            out.seek(0)
            out.write(_HEADER.pack(
                MAGIC, FORMAT_VERSION,
                FLAG_RAW_VALUES if raw_values else 0, block_size,
                n_entries, len(index), index_offset,
            ))
            out.flush()
            os.fsync(out.fileno())
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    os.replace(tmp_path, final_path)
    _fsync_directory(os.path.dirname(final_path))
    return RunWriteResult(final_path, n_entries, len(index), file_bytes)


# --------------------------------------------------------------------- #
# Reading
# --------------------------------------------------------------------- #
class BlockCache:
    """Shared LRU cache of decoded run blocks.

    One cache typically serves every run of one store: report folds look
    up thousands of nearby subsets, so decoded blocks (plain ``bytes →
    count`` dicts) are reused across lookups and across runs.  Keyed by
    ``(reader token, block index)``; eviction is least-recently-used by
    whole blocks.  ``hits``/``misses``/``evictions`` feed
    ``RunReport.store_stats``.
    """

    __slots__ = ("capacity", "_blocks", "hits", "misses", "evictions")

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._blocks: OrderedDict[tuple[int, int], dict[bytes, int]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, reader: "RunReader", block_index: int) -> dict[bytes, int]:
        key = (reader._token, block_index)
        blocks = self._blocks
        block = blocks.get(key)
        if block is not None:
            self.hits += 1
            blocks.move_to_end(key)
            return block
        self.misses += 1
        block = dict(reader._decode_block(block_index))
        blocks[key] = block
        while len(blocks) > self.capacity:
            blocks.popitem(last=False)
            self.evictions += 1
        return block

    def forget(self, token: int) -> None:
        """Drop every cached block of one (closed) reader."""
        stale = [key for key in self._blocks if key[0] == token]
        for key in stale:
            del self._blocks[key]

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._blocks),
            "capacity": self.capacity,
        }


class RunReader:
    """mmap-backed random and sequential access to one run file.

    Holds the lexicon (per-block first keys + extents) in RAM; block
    payloads stay on disk until :meth:`get` faults them in through the
    shared :class:`BlockCache`.  :meth:`entries` streams the whole run in
    key order without touching the cache (the merge path).
    """

    __slots__ = ("path", "n_entries", "raw_values", "_file", "_map", "_cache",
                 "_token", "_first_keys", "_offsets", "_lengths", "_counts")

    def __init__(self, path, cache: BlockCache | None = None) -> None:
        self.path = os.fspath(path)
        self._cache = cache if cache is not None else BlockCache(8)
        self._token = next(_READER_TOKENS)
        self._file = open(self.path, "rb")
        try:
            size = os.fstat(self._file.fileno()).st_size
            if size < _HEADER.size:
                raise RunFormatError(
                    f"{self.path}: {size} bytes is too short for a run header"
                )
            self._map = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except BaseException:
            self._file.close()
            raise
        try:
            self._parse(size)
        except BaseException:
            self.close()
            raise

    def _parse(self, size: int) -> None:
        magic, version, flags, _block_size, n_entries, n_blocks, index_offset = (
            _HEADER.unpack_from(self._map, 0)
        )
        if magic != MAGIC:
            raise RunFormatError(
                f"{self.path}: bad magic {magic!r} (not a counter run file)"
            )
        if version != FORMAT_VERSION:
            raise RunFormatError(
                f"{self.path}: unsupported run format version {version} "
                f"(this reader understands {FORMAT_VERSION})"
            )
        if flags & ~_KNOWN_FLAGS:
            raise RunFormatError(
                f"{self.path}: unknown header flags 0x{flags:04x} "
                f"(this reader understands 0x{_KNOWN_FLAGS:04x})"
            )
        self.raw_values = bool(flags & FLAG_RAW_VALUES)
        if not _HEADER.size <= index_offset <= size:
            raise RunFormatError(
                f"{self.path}: index offset {index_offset} outside the file "
                f"({size} bytes)"
            )
        self.n_entries = n_entries
        data = self._map
        first_keys: list[bytes] = []
        offsets: list[int] = []
        lengths: list[int] = []
        counts: list[int] = []
        pos = index_offset
        for _ in range(n_blocks):
            try:
                key_len, pos = _read_uvarint(data, pos, size)
            except RunFormatError as error:
                raise RunFormatError(
                    f"{self.path}: block index: {error}"
                ) from None
            if pos + key_len + _INDEX_TAIL.size > size:
                raise RunFormatError(f"{self.path}: truncated block index")
            first_key = bytes(data[pos:pos + key_len])
            pos += key_len
            offset, length, block_count = _INDEX_TAIL.unpack_from(data, pos)
            pos += _INDEX_TAIL.size
            if not _HEADER.size <= offset or offset + length > index_offset:
                raise RunFormatError(
                    f"{self.path}: block extent [{offset}, {offset + length}) "
                    f"outside the data area"
                )
            if first_keys and first_key <= first_keys[-1]:
                raise RunFormatError(
                    f"{self.path}: block index keys out of order"
                )
            first_keys.append(first_key)
            offsets.append(offset)
            lengths.append(length)
            counts.append(block_count)
        if pos != size:
            raise RunFormatError(
                f"{self.path}: {size - pos} trailing bytes after the index"
            )
        if sum(counts) != n_entries:
            raise RunFormatError(
                f"{self.path}: header claims {n_entries} entries but the "
                f"index accounts for {sum(counts)}"
            )
        self._first_keys = first_keys
        self._offsets = offsets
        self._lengths = lengths
        self._counts = counts

    def _decode_block(self, index: int) -> list[tuple[bytes, int]]:
        try:
            return self._decode_block_raw(index)
        except RunFormatError as error:
            if str(error).startswith(self.path):
                raise
            raise RunFormatError(
                f"{self.path}: block {index}: {error}"
            ) from None

    def _decode_block_raw(self, index: int) -> list[tuple[bytes, int]]:
        start = self._offsets[index]
        end = start + self._lengths[index]
        data = self._map
        raw = self.raw_values
        entries: list[tuple[bytes, int]] = []
        prev = b""
        pos = start
        while pos < end:
            shared, pos = _read_uvarint(data, pos, end)
            suffix_len, pos = _read_uvarint(data, pos, end)
            if shared > len(prev):
                raise RunFormatError(
                    f"{self.path}: block {index} prefix length {shared} "
                    f"exceeds the previous key"
                )
            if pos + suffix_len > end:
                raise RunFormatError(
                    f"{self.path}: truncated entry in block {index}"
                )
            key = prev[:shared] + bytes(data[pos:pos + suffix_len])
            pos += suffix_len
            if raw:
                value_len, pos = _read_uvarint(data, pos, end)
                if pos + value_len > end:
                    raise RunFormatError(
                        f"{self.path}: truncated value in block {index}"
                    )
                value = bytes(data[pos:pos + value_len])
                pos += value_len
                entries.append((key, value))
            else:
                count, pos = _read_uvarint(data, pos, end)
                entries.append((key, count))
            prev = key
        if len(entries) != self._counts[index]:
            raise RunFormatError(
                f"{self.path}: block {index} decoded {len(entries)} entries, "
                f"index promised {self._counts[index]}"
            )
        return entries

    def get(self, encoded_key: bytes):
        """The value of one encoded key (count, or raw bytes for
        :data:`FLAG_RAW_VALUES` runs), or ``None`` when absent."""
        first_keys = self._first_keys
        index = bisect_right(first_keys, encoded_key) - 1
        if index < 0:
            return None
        return self._cache.lookup(self, index).get(encoded_key)

    def entries(self) -> Iterator[tuple[bytes, int]]:
        """All ``(encoded_key, count)`` pairs in key order (streaming)."""
        for index in range(len(self._first_keys)):
            yield from self._decode_block(index)

    def __len__(self) -> int:
        return self.n_entries

    def close(self) -> None:
        self._cache.forget(self._token)
        mapping = getattr(self, "_map", None)
        if mapping is not None:
            mapping.close()
        self._file.close()


def merged_entries(
    streams: list[Iterator[tuple[bytes, int]]],
    combine=None,
) -> Iterator[tuple[bytes, int]]:
    """K-way merge of sorted entry streams, folding values of equal keys.

    The default fold sums counts: counts are additive non-negative
    integers, so the merged value of a key is independent of how
    observations were split across segments — the invariant the
    spill ≡ dict equivalence rests on.

    ``combine(old, new)`` replaces the sum for non-additive values (the
    tracker store's max-support rule).  ``heapq.merge`` is stable across
    streams, so equal keys reach the fold in *stream order*: pass older
    segments first and ``combine`` sees values oldest → newest, exactly
    the order the in-RAM dict would have applied them.
    """
    import heapq

    if not streams:
        return
    if len(streams) == 1:
        merged: Iterator[tuple[bytes, int]] = streams[0]
    else:
        merged = heapq.merge(*streams, key=itemgetter(0))
    current_key: bytes | None = None
    current_value = 0
    if combine is None:
        for key, value in merged:
            if key == current_key:
                current_value += value
            else:
                if current_key is not None:
                    yield current_key, current_value
                current_key = key
                current_value = value
    else:
        for key, value in merged:
            if key == current_key:
                current_value = combine(current_value, value)
            else:
                if current_key is not None:
                    yield current_key, current_value
                current_key = key
                current_value = value
    if current_key is not None:
        yield current_key, current_value
