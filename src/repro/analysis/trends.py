"""Correlation-shift trend detection on top of the tracked coefficients.

The paper's introduction motivates the whole system with trend mining: the
enBlogue approach of the same authors (reference [2]) scores emerging topics
by how much the correlation of a tag pair deviates from its recent history.
This module implements that consumer of the correlation stream:

* :class:`CorrelationHistory` keeps, per tagset, an exponentially smoothed
  estimate of the Jaccard coefficient and its variability;
* :class:`TrendDetector` turns per-window coefficient reports into
  :class:`TrendAlert` objects when the observed coefficient deviates from
  the prediction by more than ``sensitivity`` standard deviations (or, for
  previously unseen tagsets, exceeds an absolute threshold);
* :func:`detect_trends_offline` replays a document stream window by window
  for quick offline experimentation without the full topology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..core.documents import Document
from ..core.jaccard import JaccardCalculator
from .windows import tumbling_windows


@dataclass(slots=True)
class TrendAlert:
    """One emerging-correlation alert."""

    timestamp: float
    tagset: frozenset[str]
    observed: float
    predicted: float
    score: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tags = ", ".join(sorted(self.tagset))
        return (
            f"[t={self.timestamp:.0f}s] {{{tags}}}: "
            f"J={self.observed:.2f} (predicted {self.predicted:.2f}, "
            f"score {self.score:.2f})"
        )


@dataclass(slots=True)
class _SmoothedCoefficient:
    mean: float
    variance: float
    observations: int = 1


class CorrelationHistory:
    """Exponentially smoothed history of Jaccard coefficients per tagset."""

    def __init__(self, smoothing: float = 0.5) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must lie in (0, 1]")
        self._alpha = smoothing
        self._state: dict[frozenset[str], _SmoothedCoefficient] = {}

    def predict(self, tagset: frozenset[str]) -> float:
        """Predicted coefficient for the next window (0.0 for unseen tagsets)."""
        state = self._state.get(tagset)
        return state.mean if state is not None else 0.0

    def deviation(self, tagset: frozenset[str]) -> float:
        """Smoothed standard deviation of the prediction error."""
        state = self._state.get(tagset)
        if state is None:
            return 0.0
        return math.sqrt(max(state.variance, 0.0))

    def update(self, tagset: frozenset[str], observed: float) -> float:
        """Fold one observation in; returns the prediction error."""
        state = self._state.get(tagset)
        if state is None:
            self._state[tagset] = _SmoothedCoefficient(mean=observed, variance=0.0)
            return observed
        error = observed - state.mean
        state.mean += self._alpha * error
        state.variance = (1 - self._alpha) * (state.variance + self._alpha * error**2)
        state.observations += 1
        return error

    def known_tagsets(self) -> set[frozenset[str]]:
        return set(self._state)

    def __len__(self) -> int:
        return len(self._state)


class TrendDetector:
    """Raises alerts when a tagset's correlation shifts abruptly.

    Parameters
    ----------
    sensitivity:
        How many standard deviations the observation must deviate from the
        prediction before an alert fires (for tagsets with history).
    min_jump:
        Absolute coefficient a previously unseen (or flat-history) tagset
        must reach to raise an alert.
    min_support:
        Minimum number of co-occurrences in the window for a coefficient to
        be considered at all (spam/typo suppression, like ``sn``).
    smoothing:
        Smoothing factor of the underlying :class:`CorrelationHistory`.
    """

    def __init__(
        self,
        sensitivity: float = 3.0,
        min_jump: float = 0.4,
        min_support: int = 3,
        smoothing: float = 0.5,
    ) -> None:
        if sensitivity <= 0:
            raise ValueError("sensitivity must be positive")
        if not 0.0 <= min_jump <= 1.0:
            raise ValueError("min_jump must lie in [0, 1]")
        self.sensitivity = sensitivity
        self.min_jump = min_jump
        self.min_support = min_support
        self.history = CorrelationHistory(smoothing)
        self.alerts: list[TrendAlert] = []

    def observe_window(
        self,
        timestamp: float,
        coefficients: Mapping[frozenset[str], float],
        supports: Mapping[frozenset[str], int] | None = None,
    ) -> list[TrendAlert]:
        """Process one window of reported coefficients; returns new alerts."""
        new_alerts = []
        for tagset, observed in coefficients.items():
            if supports is not None and supports.get(tagset, 0) < self.min_support:
                continue
            predicted = self.history.predict(tagset)
            deviation = self.history.deviation(tagset)
            jump = observed - predicted
            if deviation > 1e-9:
                score = jump / deviation
                triggered = score >= self.sensitivity and jump >= self.min_jump / 2
            else:
                score = jump / max(self.min_jump, 1e-9)
                triggered = jump >= self.min_jump
            if triggered:
                alert = TrendAlert(
                    timestamp=timestamp,
                    tagset=tagset,
                    observed=observed,
                    predicted=predicted,
                    score=score,
                )
                new_alerts.append(alert)
            self.history.update(tagset, observed)
        self.alerts.extend(new_alerts)
        return new_alerts

    def top_alerts(self, n: int = 10) -> list[TrendAlert]:
        """The ``n`` highest-scoring alerts raised so far."""
        return sorted(self.alerts, key=lambda alert: -alert.score)[:n]


def window_coefficients(
    documents: Iterable[Document], min_support: int = 1
) -> tuple[dict[frozenset[str], float], dict[frozenset[str], int]]:
    """Exact per-window coefficients and supports (offline helper)."""
    calculator = JaccardCalculator()
    for document in documents:
        if document.tags:
            calculator.observe(document.tags)
    coefficients = {}
    supports = {}
    for result in calculator.report():
        if result.support >= min_support:
            coefficients[result.tagset] = result.jaccard
            supports[result.tagset] = result.support
    return coefficients, supports


def detect_trends_offline(
    documents: Sequence[Document],
    window_seconds: float = 60.0,
    detector: TrendDetector | None = None,
) -> TrendDetector:
    """Replay a document stream window by window through a TrendDetector."""
    detector = detector if detector is not None else TrendDetector()
    for window in tumbling_windows(documents, window_seconds):
        coefficients, supports = window_coefficients(
            window, min_support=detector.min_support
        )
        detector.observe_window(window[-1].timestamp, coefficients, supports)
    return detector
