"""Offline analysis: windowing, connectivity (Fig. 7), time series (Figs. 8-9),
trend detection and capacity planning."""

from .capacity import (
    CapacityEstimate,
    calibrate_updates_per_second,
    estimate_capacity,
    headroom_per_calculator,
    minimum_calculators,
    notification_cost,
)
from .connectivity import (
    ConnectivityReport,
    WindowConnectivity,
    connectivity_by_window_size,
    window_connectivity,
)
from .timeseries import (
    CommunicationSeries,
    LoadSeries,
    communication_series,
    load_series,
)
from .trends import (
    CorrelationHistory,
    TrendAlert,
    TrendDetector,
    detect_trends_offline,
    window_coefficients,
)
from .windows import count_windows, sliding_windows, tumbling_windows

__all__ = [
    "CapacityEstimate",
    "CommunicationSeries",
    "ConnectivityReport",
    "CorrelationHistory",
    "LoadSeries",
    "calibrate_updates_per_second",
    "estimate_capacity",
    "headroom_per_calculator",
    "minimum_calculators",
    "notification_cost",
    "TrendAlert",
    "TrendDetector",
    "WindowConnectivity",
    "communication_series",
    "connectivity_by_window_size",
    "count_windows",
    "detect_trends_offline",
    "load_series",
    "sliding_windows",
    "tumbling_windows",
    "window_coefficients",
    "window_connectivity",
]
