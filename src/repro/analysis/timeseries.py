"""Time series of partition quality (Figures 8 and 9).

The Disseminator records a :class:`~repro.operators.QualitySnapshot` at every
quality check and at every partition installation.  This module turns those
snapshots into the series the paper plots: average communication over
processed documents (Figure 8) and the *sorted* per-Calculator load shares
over processed documents (Figure 9), together with the positions of the
repartitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.metrics import load_shares
from ..operators.disseminator import QualitySnapshot, RepartitionEvent


@dataclass(slots=True)
class CommunicationSeries:
    """Average communication per quality check (Figure 8)."""

    documents: list[int]
    communication: list[float]
    repartition_documents: list[int]


@dataclass(slots=True)
class LoadSeries:
    """Sorted per-Calculator load shares per quality check (Figure 9).

    ``shares[i]`` holds, for the ``i``-th snapshot, the load share of every
    Calculator sorted in decreasing order, so ``shares[i][0]`` is always the
    most loaded Calculator — matching the paper's presentation.
    """

    documents: list[int]
    shares: list[list[float]]
    repartition_documents: list[int]

    def rank_series(self, rank: int) -> list[float]:
        """The share of the ``rank``-th most loaded Calculator over time."""
        series = []
        for snapshot_shares in self.shares:
            if rank < len(snapshot_shares):
                series.append(snapshot_shares[rank])
            else:
                series.append(0.0)
        return series


def communication_series(
    history: Sequence[QualitySnapshot],
    repartitions: Sequence[RepartitionEvent],
) -> CommunicationSeries:
    """Extract the Figure-8 series from a run's quality history."""
    documents = []
    communication = []
    for snapshot in history:
        if snapshot.avg_communication <= 0:
            continue
        documents.append(snapshot.documents_processed)
        communication.append(snapshot.avg_communication)
    return CommunicationSeries(
        documents=documents,
        communication=communication,
        repartition_documents=[event.documents_processed for event in repartitions],
    )


def load_series(
    history: Sequence[QualitySnapshot],
    repartitions: Sequence[RepartitionEvent],
) -> LoadSeries:
    """Extract the Figure-9 series from a run's quality history."""
    documents = []
    shares = []
    for snapshot in history:
        if sum(snapshot.calculator_loads) == 0:
            continue
        documents.append(snapshot.documents_processed)
        shares.append(
            sorted(load_shares(snapshot.calculator_loads), reverse=True)
        )
    return LoadSeries(
        documents=documents,
        shares=shares,
        repartition_documents=[event.documents_processed for event in repartitions],
    )
