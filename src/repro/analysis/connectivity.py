"""Tagset connectivity analysis (Figure 7).

For every window the paper measures three quantities that decide whether
the DS algorithm is applicable:

* the maximum percentage of tags contained in a single connected component
  of the tag co-occurrence graph,
* the maximum percentage of documents related to a single connected
  component (its load share),
* the number of connected components ("disjoint sets").

This module computes those statistics per window and aggregates them over a
trace, and additionally reports the empirical ``n*p`` of each window so the
measurements can be compared against the Erdős–Rényi prediction of
Section 5.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..core.cooccurrence import CooccurrenceStatistics
from ..core.documents import Document
from ..partitioning import find_disjoint_sets
from ..theory import np_product
from .windows import tumbling_windows


@dataclass(slots=True)
class WindowConnectivity:
    """Connectivity statistics of one window of documents."""

    n_documents: int
    n_tags: int
    n_components: int
    largest_component_tags: int
    largest_component_load: int
    np_value: float

    @property
    def max_tag_fraction(self) -> float:
        """Share of all tags held by the largest connected component."""
        if self.n_tags == 0:
            return 0.0
        return self.largest_component_tags / self.n_tags

    @property
    def max_load_fraction(self) -> float:
        """Share of documents touching the largest connected component."""
        if self.n_documents == 0:
            return 0.0
        return self.largest_component_load / self.n_documents


def window_connectivity(documents: Iterable[Document]) -> WindowConnectivity:
    """Connectivity statistics of a single window."""
    document_list = [doc for doc in documents]
    statistics = CooccurrenceStatistics.from_documents(document_list)
    disjoint_sets = find_disjoint_sets(statistics)
    n_tags = len(statistics.tags)
    largest_tags = max((len(ds.tags) for ds in disjoint_sets), default=0)
    largest_load = max((ds.load for ds in disjoint_sets), default=0)
    return WindowConnectivity(
        n_documents=len(document_list),
        n_tags=n_tags,
        n_components=len(disjoint_sets),
        largest_component_tags=largest_tags,
        largest_component_load=largest_load,
        np_value=np_product(n_tags, statistics.distinct_tag_pairs()),
    )


@dataclass(slots=True)
class ConnectivityReport:
    """Aggregated connectivity statistics over all windows of one size."""

    window_seconds: float
    windows: list[WindowConnectivity]

    @property
    def n_windows(self) -> int:
        return len(self.windows)

    def max_tag_percentage(self) -> float:
        """Maximum (over windows) share of tags in one component, as a %."""
        if not self.windows:
            return 0.0
        return 100.0 * max(window.max_tag_fraction for window in self.windows)

    def max_load_percentage(self) -> float:
        """Maximum (over windows) share of documents of one component, as a %."""
        if not self.windows:
            return 0.0
        return 100.0 * max(window.max_load_fraction for window in self.windows)

    def mean_components(self) -> float:
        """Average number of connected tagsets (disjoint sets) per window."""
        if not self.windows:
            return 0.0
        return float(np.mean([window.n_components for window in self.windows]))

    def mean_np(self) -> float:
        """Average empirical ``n*p`` per window (Section 5.1 comparison)."""
        if not self.windows:
            return 0.0
        return float(np.mean([window.np_value for window in self.windows]))


def connectivity_by_window_size(
    documents: Sequence[Document],
    window_sizes_minutes: Sequence[float] = (2, 5, 10, 20),
) -> dict[float, ConnectivityReport]:
    """Figure 7: connectivity statistics for several tumbling-window sizes."""
    reports = {}
    for minutes in window_sizes_minutes:
        seconds = minutes * 60.0
        windows = [
            window_connectivity(window)
            for window in tumbling_windows(documents, seconds)
        ]
        reports[minutes] = ConnectivityReport(window_seconds=seconds, windows=windows)
    return reports
