"""Windowing helpers for offline analysis of document streams.

The connectivity study of Section 8.2.6 slices the trace into
non-overlapping (tumbling) windows of 2/5/10/20 minutes; the partitioners
use sliding windows.  These helpers implement both for offline analysis;
the online sliding window lives with the Partitioner operator.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..core.documents import Document


def tumbling_windows(
    documents: Iterable[Document], window_seconds: float
) -> Iterator[list[Document]]:
    """Split a time-ordered stream into non-overlapping windows.

    Windows are aligned to the timestamp of the first document.  Empty
    windows (gaps in the stream) are skipped.
    """
    if window_seconds <= 0:
        raise ValueError("window_seconds must be positive")
    current: list[Document] = []
    window_end: float | None = None
    for document in documents:
        if window_end is None:
            window_end = document.timestamp + window_seconds
        while document.timestamp >= window_end:
            if current:
                yield current
                current = []
            window_end += window_seconds
        current.append(document)
    if current:
        yield current


def count_windows(
    documents: Sequence[Document], window_size: int
) -> Iterator[list[Document]]:
    """Split a stream into consecutive fixed-size batches of documents."""
    if window_size <= 0:
        raise ValueError("window_size must be positive")
    for start in range(0, len(documents), window_size):
        batch = list(documents[start : start + window_size])
        if batch:
            yield batch


def sliding_windows(
    documents: Sequence[Document], window_size: int, step: int
) -> Iterator[list[Document]]:
    """Overlapping count-based windows advancing by ``step`` documents."""
    if window_size <= 0 or step <= 0:
        raise ValueError("window_size and step must be positive")
    if not documents:
        return
    for start in range(0, max(len(documents) - window_size, 0) + 1, step):
        yield list(documents[start : start + window_size])
