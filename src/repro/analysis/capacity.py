"""Capacity planning: can ``k`` Calculators sustain a given arrival rate?

The paper's motivation for distributing the computation is that a single
machine cannot keep up with Twitter-scale streams.  This module provides a
simple analytical capacity model on top of a measured run:

* each document annotated with ``m`` tags costs a Calculator roughly
  ``2^m - 1`` counter updates (all subsets of the notification it receives),
* a Calculator can perform a fixed number of counter updates per second
  (calibrated on this machine or supplied by the caller),
* the Disseminator fan-out (the run's communication metric) determines how
  many Calculator notifications each document produces, and the per-node
  load share determines how those notifications concentrate.

From these the model estimates the sustainable arrival rate of a deployment
and the minimum number of Calculators needed for a target rate — the
"how many nodes do I need for 1300 tweets/s" question.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..core.jaccard import JaccardCalculator
from ..core.metrics import load_shares

if TYPE_CHECKING:  # annotation-only: avoids a cycle with the operator layer,
    # which reuses the pure cost helpers below for online decisions.
    from ..pipeline.system import RunReport


def calibrate_updates_per_second(
    n_notifications: int = 2000, tags_per_notification: int = 3
) -> float:
    """Measure how many subset-counter updates this machine sustains per second.

    Runs a short micro-benchmark against the real ``JaccardCalculator`` and
    returns counter updates (subset increments) per second.
    """
    calculator = JaccardCalculator()
    tags = [f"cal_tag{i}" for i in range(tags_per_notification)]
    updates_per_notification = 2**tags_per_notification - 1
    start = time.perf_counter()
    for _ in range(n_notifications):
        calculator.observe(tags)
    elapsed = time.perf_counter() - start
    if elapsed <= 0:
        return float("inf")
    return n_notifications * updates_per_notification / elapsed


@dataclass(slots=True)
class CapacityEstimate:
    """Result of a capacity analysis for one deployment."""

    k: int
    communication: float
    max_load_share: float
    updates_per_notification: float
    updates_per_second_per_node: float
    sustainable_tweets_per_second: float

    def sustains(self, tweets_per_second: float) -> bool:
        """Whether the deployment keeps up with the given arrival rate."""
        return self.sustainable_tweets_per_second >= tweets_per_second


def notification_cost(mean_tags_per_notification: float) -> float:
    """Expected counter updates per notification (all subsets are counted)."""
    if mean_tags_per_notification < 0:
        raise ValueError("mean_tags_per_notification must be non-negative")
    return max(2.0**mean_tags_per_notification - 1.0, 1.0)


def per_document_update_cost(
    communication: float,
    max_load_share: float,
    k: int,
    mean_tags_per_notification: float = 2.5,
) -> float:
    """Counter updates the most loaded Calculator performs per tagged document.

    The pure core of the capacity model, shared by the offline
    :func:`estimate_capacity` analysis and the online
    ``RepartitionController`` capacity policy: the bottleneck node receives
    ``communication * max_load_share`` notifications per document, each
    costing ``2^m - 1`` updates.  Inputs are clamped to the model's floors
    (fan-out at least 1 notification, share at least ``1/k``).
    """
    communication = max(float(communication), 1.0)
    max_share = max(float(max_load_share), 1.0 / max(k, 1))
    return communication * max_share * notification_cost(mean_tags_per_notification)


def sustainable_rate(
    updates_per_second_per_node: float,
    communication: float,
    max_load_share: float,
    k: int,
    mean_tags_per_notification: float = 2.5,
) -> float:
    """Sustainable tagged-document arrival rate of one deployment state.

    Inverse of :func:`per_document_update_cost` scaled by node throughput.
    The online capacity policy compares this quantity between the reference
    (post-install) state and the rolling window — note the node throughput
    and the notification-cost factor cancel in that ratio, so the policy
    reduces to comparing ``communication * max_load_share`` products.
    """
    if updates_per_second_per_node <= 0:
        raise ValueError("updates_per_second_per_node must be positive")
    return updates_per_second_per_node / per_document_update_cost(
        communication, max_load_share, k, mean_tags_per_notification
    )


def estimate_capacity(
    report: RunReport,
    updates_per_second_per_node: float,
    mean_tags_per_notification: float = 2.5,
) -> CapacityEstimate:
    """Estimate the sustainable arrival rate of the deployment in ``report``.

    The bottleneck is the most loaded Calculator: it receives
    ``communication * max_load_share`` notifications per tagged document, and
    each notification costs ``2^m - 1`` counter updates.
    """
    if updates_per_second_per_node <= 0:
        raise ValueError("updates_per_second_per_node must be positive")
    communication = max(report.communication_avg, 1.0)
    max_share = max(report.load_max_share, 1.0 / max(report.config.k, 1))
    sustainable = sustainable_rate(
        updates_per_second_per_node,
        communication,
        max_share,
        report.config.k,
        mean_tags_per_notification,
    )
    return CapacityEstimate(
        k=report.config.k,
        communication=communication,
        max_load_share=max_share,
        updates_per_notification=notification_cost(mean_tags_per_notification),
        updates_per_second_per_node=updates_per_second_per_node,
        sustainable_tweets_per_second=sustainable,
    )


def minimum_calculators(
    target_tweets_per_second: float,
    updates_per_second_per_node: float,
    communication: float = 1.2,
    mean_tags_per_notification: float = 2.5,
    max_k: int = 1024,
) -> int:
    """Smallest ``k`` that sustains the target rate under ideal balancing.

    Assumes the load is perfectly balanced (share = 1/k), i.e. it returns a
    lower bound; a real DS deployment needs more nodes in proportion to its
    load imbalance.
    """
    if target_tweets_per_second <= 0:
        raise ValueError("target_tweets_per_second must be positive")
    if updates_per_second_per_node <= 0:
        raise ValueError("updates_per_second_per_node must be positive")
    cost = notification_cost(mean_tags_per_notification)
    for k in range(1, max_k + 1):
        per_node = target_tweets_per_second * communication * cost / k
        if per_node <= updates_per_second_per_node:
            return k
    return max_k


def headroom_per_calculator(
    report: RunReport, tweets_per_second: float, updates_per_second_per_node: float,
    mean_tags_per_notification: float = 2.5,
) -> list[float]:
    """Utilisation (0..1+) of every Calculator at the given arrival rate.

    Values above 1.0 mean the Calculator cannot keep up — the situation the
    load-balancing criterion of the problem statement exists to prevent.
    """
    shares = load_shares(report.calculator_loads)
    cost = notification_cost(mean_tags_per_notification)
    total_notifications = tweets_per_second * max(report.communication_avg, 1.0)
    return [
        share * total_notifications * cost / updates_per_second_per_node
        for share in shares
    ]
