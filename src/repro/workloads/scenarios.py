"""Scenario workload generators: trending, burst, diurnal, adversarial.

The legacy synthetic point (:class:`TwitterLikeGenerator` with
``new_topic_rate=5.0``) churns its topic population so fast that ~90% of
tagset types per report round are first occurrences — hostile to the
paper's trending-hashtag premise and to the delta reporting engine's carry
table (which thrives on recurrence).  This module adds the workload shapes
the system actually exists for, all deterministic given
``WorkloadConfig.seed`` and all emitting the same :class:`Document` stream
interface:

``trending``
    A persistent base topic population plus *trends* that follow a
    rise → plateau → decay hazard curve.  While a trend sits on its
    plateau, its signature **anchor tagset** is re-emitted on a fixed
    document-position schedule, so consecutive report rounds observe the
    same types with the same multiplicities — the recurrence that lets the
    delta engine's carry table re-assert clean types instead of refolding
    them.  Anchor tags are reserved (never sampled into background
    documents), so the cleanliness is structural, not accidental.

``burst``
    The legacy stream with superimposed flash crowds: at seeded random
    times a burst spawns a fresh small-vocabulary topic, multiplies the
    arrival rate by ``burst_intensity`` for ``burst_duration_seconds``,
    and routes ``burst_share`` of the burst-window documents to the burst
    topic.  Short-lived load spikes + sudden hot tags — the repartition
    policies' stress case.

``diurnal``
    Sinusoidal arrival rate (period ``diurnal_period_seconds``, relative
    amplitude ``diurnal_amplitude``) with topic-mix modulation: the topic
    population is split into a "day" and a "night" pool and the sampling
    weight swings with the same phase, so both the rate *and* the tag
    distribution drift periodically.

``adversarial``
    The carry table's worst case: every non-repeat document is a
    brand-new tagset type over never-reused tags, and the only repeats
    re-emit types created within the last ``adversarial_repeat_window``
    documents — so types (almost) never recur across report rounds and
    every delta round is pure misses.  First-occurrence type fraction per
    round stays >= 85% by construction.

``make_generator`` dispatches a :class:`WorkloadConfig` on its
``scenario`` field; ``scenario_preset`` builds a tuned config per
scenario.  Recorded traces of any generator replay through
``workloads/replay.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterator, Protocol, runtime_checkable

from ..core.documents import Document
from .generator import SCENARIO_NAMES, TwitterLikeGenerator, WorkloadConfig
from .topics import Topic


@runtime_checkable
class ScenarioGenerator(Protocol):
    """What every workload scenario generator provides.

    :class:`TwitterLikeGenerator` and all scenario subclasses satisfy this
    structurally; the pipeline, the replay recorder and the benchmarks
    depend only on this surface.
    """

    config: WorkloadConfig

    @property
    def current_time(self) -> float: ...

    def generate(self, n_documents: int) -> list[Document]: ...

    def generate_seconds(self, seconds: float) -> list[Document]: ...

    def stream(self) -> Iterator[Document]: ...

    def vocabulary(self) -> list[str]: ...


# --------------------------------------------------------------------- #
# Trending
# --------------------------------------------------------------------- #
#: Tags reserved per trend for its anchor tagset (never sampled into
#: background documents, so plateau recurrence stays structurally clean).
ANCHOR_TAGS_PER_TREND = 3


@dataclass(slots=True)
class _Trend:
    """One trend's lifecycle state: hazard curve plus reserved vocabulary."""

    name: str
    anchor: frozenset[str]
    body_tags: list[str]
    birth_time: float
    rise: float
    plateau: float
    decay: float
    weight: float = 1.0

    def phase(self, now: float) -> str:
        age = now - self.birth_time
        if age < 0:
            return "unborn"
        if age < self.rise:
            return "rise"
        if age < self.rise + self.plateau:
            return "plateau"
        if age < self.rise + self.plateau + self.decay:
            return "decay"
        return "dead"

    def popularity(self, now: float) -> float:
        """Hazard-curve weight: linear rise, flat plateau, linear decay."""
        age = now - self.birth_time
        if age < 0:
            return 0.0
        if age < self.rise:
            return self.weight * (age / self.rise)
        age -= self.rise
        if age < self.plateau:
            return self.weight
        age -= self.plateau
        if age < self.decay:
            return self.weight * (1.0 - age / self.decay)
        return 0.0


class TrendingGenerator(TwitterLikeGenerator):
    """Persistent topics plus rise/plateau/decay trends with anchor slots.

    Deterministic structure: trend births follow a fixed schedule (one
    every ``lifetime / trend_pool`` seconds), so trends with the same id
    residue modulo ``trend_pool`` are spaced exactly one lifetime apart —
    each of the ``trend_pool`` *slots* is owned by at most one live trend.
    Every ``cadence``-th document (``cadence = round(1 /
    trend_anchor_share)``) is an anchor position; position ``p`` belongs
    to slot ``(p // cadence) % trend_pool`` and re-emits that slot's
    anchor tagset iff the slot's trend is on its plateau.  A report round
    of ``D`` documents therefore observes each plateau anchor exactly
    ``D / (cadence * trend_pool)`` times whenever that product divides
    ``D`` — the unchanged-multiplicity condition the delta engine's carry
    table needs to re-assert a type without refolding it (see
    ``core/jaccard.py``).  End to end, Calculator round boundaries drift
    forward slightly each round (ticks fire at document-timestamp
    granularity), so in-system multiplicity stability additionally wants
    same-slot anchor spacing (``cadence * trend_pool`` interarrivals)
    large against that per-round drift — see the trending overrides in
    ``benchmarks/perf/throughput.py``.
    """

    def __init__(self, config: WorkloadConfig | None = None) -> None:
        super().__init__(config)
        cfg = self.config
        lifetime = (cfg.trend_rise_seconds + cfg.trend_plateau_seconds
                    + cfg.trend_decay_seconds)
        self._trend_birth_gap = lifetime / cfg.trend_pool
        # Offset the birth schedule so phase transitions (birth + rise,
        # + plateau, + decay) never coincide with report-round boundaries
        # — a transition exactly on a boundary lets float clock drift
        # decide which round sees the first/last anchor emission.
        self._next_trend_birth = 0.2 * self._trend_birth_gap
        self._next_trend_id = 0
        self._trends: list[_Trend] = []
        self._slots: dict[int, _Trend] = {}
        # Anchor cadence: every cadence-th document is an anchor position.
        self._anchor_cadence = (
            max(2, round(1.0 / cfg.trend_anchor_share))
            if cfg.trend_anchor_share > 0 else 0
        )
        # Mid-cadence anchor offset: with cadence * trend_pool dividing
        # the documents-per-round, offset-0 anchor positions would land
        # exactly on round boundaries — and the tick that closes a round
        # fires one document late whenever accumulated float clock drift
        # puts the boundary document's timestamp a hair below the
        # boundary, so the closing round steals the *next* document.
        # Mid-cadence keeps every anchor several interarrivals away from
        # either edge, so a +/-1-document boundary wobble only ever moves
        # background documents between rounds.
        self._anchor_offset = self._anchor_cadence // 2 if self._anchor_cadence else 0
        self._docs_emitted = 0

    @property
    def live_trends(self) -> list[_Trend]:
        """Trends currently inside their hazard curve (tests/analysis)."""
        return [t for t in self._trends if t.phase(self._clock) != "dead"]

    def _advance_dynamics(self) -> None:
        super()._advance_dynamics()
        cfg = self.config
        while self._clock >= self._next_trend_birth:
            trend_id = self._next_trend_id
            self._next_trend_id += 1
            base = f"trend{trend_id}"
            anchor = frozenset(
                f"{base}_anchor{i}" for i in range(ANCHOR_TAGS_PER_TREND)
            )
            body = [f"{base}_tag{i}" for i in range(cfg.tags_per_topic)]
            trend = _Trend(
                name=base,
                anchor=anchor,
                body_tags=body,
                birth_time=self._next_trend_birth,
                rise=cfg.trend_rise_seconds,
                plateau=cfg.trend_plateau_seconds,
                decay=cfg.trend_decay_seconds,
                weight=1.0 + 0.5 * self._rng.random(),
            )
            self._trends.append(trend)
            # The previous slot owner dies exactly when its successor is
            # born (same-slot births are one lifetime apart).
            self._slots[trend_id % cfg.trend_pool] = trend
            self._next_trend_birth += self._trend_birth_gap
        if self._trends and self._trends[0].phase(self._clock) == "dead":
            self._trends = [
                trend for trend in self._trends
                if trend.phase(self._clock) != "dead"
            ]

    def _sample_tags(self, n_tags: int) -> frozenset[str]:
        # Deterministic anchor schedule first: independent of the rng
        # stream and of plateau-set membership, so per-round anchor
        # multiplicities are exact.
        if self._anchor_cadence:
            position = self._docs_emitted
            self._docs_emitted += 1
            if position % self._anchor_cadence == self._anchor_offset:
                slot = (position // self._anchor_cadence) % self.config.trend_pool
                trend = self._slots.get(slot)
                if trend is not None and trend.phase(self._clock) == "plateau":
                    return trend.anchor
        if n_tags == 0:
            return frozenset()
        # Trend-flavoured background: sample a live trend by hazard weight.
        if self._trends and self._rng.random() < self.config.trend_mix:
            weights = [t.popularity(self._clock) for t in self._trends]
            total = sum(weights)
            if total > 0:
                pick = self._rng.random() * total
                cumulative = 0.0
                trend = self._trends[-1]
                for candidate, weight in zip(self._trends, weights):
                    cumulative += weight
                    if pick <= cumulative:
                        trend = candidate
                        break
                count = min(n_tags, len(trend.body_tags))
                return frozenset(self._rng.sample(trend.body_tags, count))
        return super()._sample_tags(n_tags)


# --------------------------------------------------------------------- #
# Burst / flash crowd
# --------------------------------------------------------------------- #
#: Vocabulary size of one flash-crowd topic (small: a burst is one story).
BURST_TOPIC_TAGS = 6


class BurstGenerator(TwitterLikeGenerator):
    """Legacy stream with superimposed short-lived flash-crowd spikes.

    Burst starts are a seeded Poisson process; while at least one burst is
    live the arrival rate is multiplied by ``burst_intensity`` and
    ``burst_share`` of the documents are about the burst's fresh topic.
    """

    def __init__(self, config: WorkloadConfig | None = None) -> None:
        super().__init__(config)
        self._burst_topics: list[Topic] = []
        self._burst_ends = 0.0
        self._next_burst_id = 0
        self._next_burst = self._sample_burst_gap()

    def _sample_burst_gap(self) -> float:
        rate = self.config.burst_rate_per_minute / 60.0
        if rate <= 0:
            return float("inf")
        return self._clock + self._rng.expovariate(rate)

    @property
    def in_burst(self) -> bool:
        """Whether the next document arrives inside a live burst window."""
        return self._clock < self._burst_ends

    def _advance_dynamics(self) -> None:
        super()._advance_dynamics()
        while self._clock >= self._next_burst:
            burst_id = self._next_burst_id
            self._next_burst_id += 1
            topic = Topic(
                name=f"burst{burst_id}",
                tags=[f"burst{burst_id}_tag{i}" for i in range(BURST_TOPIC_TAGS)],
                tag_skew=self.config.tag_skew,
                birth_time=self._clock,
            )
            self._burst_topics.append(topic)
            self._burst_ends = max(
                self._burst_ends,
                self._next_burst + self.config.burst_duration_seconds,
            )
            self._next_burst = self._sample_burst_gap()
        if not self.in_burst and self._burst_topics:
            self._burst_topics = []

    def _next_interarrival(self) -> float:
        if self.in_burst:
            return self._interarrival / self.config.burst_intensity
        return self._interarrival

    def _sample_tags(self, n_tags: int) -> frozenset[str]:
        if (n_tags > 0 and self.in_burst and self._burst_topics
                and self._rng.random() < self.config.burst_share):
            topic = self._burst_topics[-1]
            return frozenset(topic.sample_tags(n_tags, self._rng))
        return super()._sample_tags(n_tags)


# --------------------------------------------------------------------- #
# Diurnal
# --------------------------------------------------------------------- #
class DiurnalGenerator(TwitterLikeGenerator):
    """Sinusoidal arrival rate plus day/night topic-mix modulation.

    ``rate(t) = tweets_per_second * (1 + amplitude * sin(2*pi*t/period))``;
    the topic population is split into a day pool (even indices) and a
    night pool (odd indices) and the probability of sampling from the day
    pool swings with the same phase, so the *content* of the stream drifts
    with the clock, not just its volume.
    """

    def __init__(self, config: WorkloadConfig | None = None) -> None:
        super().__init__(config)
        topics = self._topics.topics
        self._day_pool = topics[0::2]
        self._night_pool = topics[1::2] or topics[0::2]

    def _phase(self) -> float:
        """Sine of the current diurnal phase, in [-1, 1]."""
        return math.sin(
            2.0 * math.pi * self._clock / self.config.diurnal_period_seconds
        )

    def _next_interarrival(self) -> float:
        rate = self.config.tweets_per_second * (
            1.0 + self.config.diurnal_amplitude * self._phase()
        )
        return 1.0 / rate

    def _sample_pool_tags(self, pool: list[Topic], n_tags: int) -> frozenset[str]:
        weights = [topic.popularity(self._clock) for topic in pool]
        total = sum(weights)
        pick = self._rng.random() * total if total > 0 else 0.0
        cumulative = 0.0
        chosen = pool[-1]
        for topic, weight in zip(pool, weights):
            cumulative += weight
            if pick <= cumulative:
                chosen = topic
                break
        return frozenset(chosen.sample_tags(n_tags, self._rng))

    def _sample_tags(self, n_tags: int) -> frozenset[str]:
        if n_tags == 0:
            return frozenset()
        if self._rng.random() < self.config.intra_topic_probability:
            day_share = 0.5 * (1.0 + self._phase())
            pool = (
                self._day_pool
                if self._rng.random() < day_share else self._night_pool
            )
            return self._sample_pool_tags(pool, n_tags)
        return super()._sample_tags(n_tags)


# --------------------------------------------------------------------- #
# Adversarial churn
# --------------------------------------------------------------------- #
class AdversarialChurnGenerator(TwitterLikeGenerator):
    """Worst case for the delta engine's carry table.

    Every non-repeat document is a brand-new tagset type over
    never-reused tags (a monotone tag counter), so no type — and no tag —
    recurs across report rounds; repeats only re-emit types created within
    the last ``adversarial_repeat_window`` documents, keeping the repeat
    horizon far below a report round.  The delta engine degenerates to
    pure carry misses (plus evictions as the table is bounded), which is
    the regression scenario the carry accounting exists to expose.
    """

    def __init__(self, config: WorkloadConfig | None = None) -> None:
        super().__init__(config)
        self._next_tag_id = 0
        self._recent_types: list[frozenset[str]] = []

    def _advance_dynamics(self) -> None:
        # No topic population at all: the churn is the workload.
        return

    def _sample_tags(self, n_tags: int) -> frozenset[str]:
        if n_tags == 0:
            return frozenset()
        cfg = self.config
        if (self._recent_types
                and self._rng.random() < cfg.adversarial_repeat_fraction):
            return self._rng.choice(self._recent_types)
        n_tags = max(2, n_tags)  # 1-tag documents produce no reportable type
        start = self._next_tag_id
        self._next_tag_id += n_tags
        tags = frozenset(f"adv{start + i}" for i in range(n_tags))
        self._recent_types.append(tags)
        if len(self._recent_types) > cfg.adversarial_repeat_window:
            del self._recent_types[: -cfg.adversarial_repeat_window]
        return tags

    def vocabulary(self) -> list[str]:
        """Tags minted so far (the universe grows with the stream)."""
        return [f"adv{i}" for i in range(self._next_tag_id)]


# --------------------------------------------------------------------- #
# Registry, factory, presets
# --------------------------------------------------------------------- #
SCENARIO_GENERATORS: dict[str, type[TwitterLikeGenerator]] = {
    "legacy": TwitterLikeGenerator,
    "trending": TrendingGenerator,
    "burst": BurstGenerator,
    "diurnal": DiurnalGenerator,
    "adversarial": AdversarialChurnGenerator,
}
assert tuple(SCENARIO_GENERATORS) == SCENARIO_NAMES

#: Per-scenario WorkloadConfig overrides applied by :func:`scenario_preset`.
#: Values chosen so a laptop-scale run (50 tps, a few thousand documents)
#: exhibits the scenario's shape within a handful of report rounds.
SCENARIO_PRESETS: dict[str, dict[str, Any]] = {
    "legacy": {},
    "trending": {
        "new_topic_rate": 0.0,      # the base population persists
        "intra_topic_probability": 0.95,
        "n_topics": 60,
    },
    "burst": {
        "new_topic_rate": 0.2,
        "n_topics": 80,
    },
    "diurnal": {
        "new_topic_rate": 0.0,
        "n_topics": 80,
    },
    "adversarial": {
        "untagged_allowed": False,  # every document churns the type space
    },
}


def make_generator(config: WorkloadConfig) -> ScenarioGenerator:
    """The scenario generator selected by ``config.scenario``."""
    config.validate()
    return SCENARIO_GENERATORS[config.scenario](config)


def scenario_preset(name: str, **overrides: Any) -> WorkloadConfig:
    """A tuned :class:`WorkloadConfig` for the named scenario.

    Explicit ``overrides`` always win over the preset values, so CLI
    arguments can refine a preset without losing its shape.
    """
    if name not in SCENARIO_PRESETS:
        raise ValueError(
            f"unknown scenario {name!r}; available: {', '.join(SCENARIO_NAMES)}"
        )
    values: dict[str, Any] = {"scenario": name}
    values.update(SCENARIO_PRESETS[name])
    values.update(overrides)
    return WorkloadConfig(**values)
