"""Descriptive statistics of a tweet workload.

Used to check that synthetic workloads reproduce the structural properties
the paper measured on real data (Section 5.1): the Zipf distribution of
tags per tweet, the number of distinct tags/tweets/tag pairs, and the
per-tag popularity skew.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Sequence

from ..core.documents import Document
from ..theory.zipf_model import empirical_skew


@dataclass(slots=True)
class WorkloadStatistics:
    """Summary statistics of a collection of documents."""

    n_documents: int
    n_tagged_documents: int
    n_distinct_tags: int
    n_distinct_tagsets: int
    n_distinct_tag_pairs: int
    tags_per_tweet_histogram: dict[int, int]
    tag_frequency: Counter

    @property
    def mean_tags_per_tweet(self) -> float:
        total = sum(m * count for m, count in self.tags_per_tweet_histogram.items())
        if self.n_documents == 0:
            return 0.0
        return total / self.n_documents

    def tags_per_tweet_skew(self) -> float:
        """Zipf skew fitted to the tags-per-tweet histogram.

        The histogram is read in rank order (0 tags = rank 1, 1 tag = rank 2,
        ...), matching the paper's measurement of ``s = 0.25``.
        """
        max_m = max(self.tags_per_tweet_histogram, default=0)
        counts = [self.tags_per_tweet_histogram.get(m, 0) for m in range(max_m + 1)]
        return empirical_skew(counts)

    def most_common_tags(self, n: int = 10) -> list[tuple[str, int]]:
        return self.tag_frequency.most_common(n)


def compute_statistics(documents: Iterable[Document]) -> WorkloadStatistics:
    """Compute :class:`WorkloadStatistics` over a document collection."""
    histogram: Counter = Counter()
    tag_frequency: Counter = Counter()
    tagsets: set[frozenset[str]] = set()
    pairs: set[tuple[str, str]] = set()
    n_documents = 0
    n_tagged = 0
    for document in documents:
        n_documents += 1
        histogram[len(document.tags)] += 1
        if not document.tags:
            continue
        n_tagged += 1
        tagsets.add(document.tags)
        for tag in document.tags:
            tag_frequency[tag] += 1
        for first, second in combinations(sorted(document.tags), 2):
            pairs.add((first, second))
    return WorkloadStatistics(
        n_documents=n_documents,
        n_tagged_documents=n_tagged,
        n_distinct_tags=len(tag_frequency),
        n_distinct_tagsets=len(tagsets),
        n_distinct_tag_pairs=len(pairs),
        tags_per_tweet_histogram=dict(histogram),
        tag_frequency=tag_frequency,
    )


def tags_per_tweet_frequencies(documents: Sequence[Document]) -> dict[int, float]:
    """Relative frequency of each tags-per-tweet count."""
    statistics = compute_statistics(documents)
    if statistics.n_documents == 0:
        return {}
    return {
        m: count / statistics.n_documents
        for m, count in sorted(statistics.tags_per_tweet_histogram.items())
    }
