"""Topic model of the synthetic Twitter-like workload.

The theoretical analysis of Section 5.1 argues that, as long as users select
tags from topic-specific vocabularies, the tag co-occurrence graph falls
apart into one connected component per topic — which is what makes the DS
algorithm viable.  Mixing tags across topics (probability ``1 - α``) lets a
giant component grow.  The synthetic workload reproduces exactly that
structure:

* a fixed or evolving population of topics, each with its own vocabulary of
  tags and a popularity weight (Zipf-distributed so a few topics dominate),
* within a topic, tag popularity is again Zipf-distributed,
* topics can be born and can decay over time to model trend dynamics
  (Section 7's motivation for evolving partitions).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence


@dataclass(slots=True)
class Topic:
    """A topic with its tag vocabulary and popularity weight."""

    name: str
    tags: list[str]
    weight: float = 1.0
    tag_skew: float = 1.0
    birth_time: float = 0.0
    decay_rate: float = 0.0

    def popularity(self, now: float) -> float:
        """Topic weight at time ``now`` after exponential decay since birth."""
        if self.decay_rate <= 0:
            return self.weight
        age = max(0.0, now - self.birth_time)
        return self.weight * (2.0 ** (-self.decay_rate * age))

    def sample_tags(self, count: int, rng: random.Random) -> list[str]:
        """Sample ``count`` distinct tags from the topic's Zipfian vocabulary."""
        count = min(count, len(self.tags))
        if count <= 0:
            return []
        weights = [1.0 / ((rank + 1) ** self.tag_skew) for rank in range(len(self.tags))]
        chosen: list[str] = []
        available = list(range(len(self.tags)))
        local_weights = list(weights)
        for _ in range(count):
            total = sum(local_weights)
            pick = rng.random() * total
            cumulative = 0.0
            for position, weight in enumerate(local_weights):
                cumulative += weight
                if pick <= cumulative:
                    chosen.append(self.tags[available[position]])
                    del available[position]
                    del local_weights[position]
                    break
        return chosen


@dataclass(slots=True)
class TopicModel:
    """A population of topics with Zipf-distributed popularity.

    Parameters
    ----------
    n_topics:
        Number of topics created at construction time.
    tags_per_topic:
        Vocabulary size of each topic.
    topic_skew:
        Zipf skew of topic popularity (larger = few topics dominate).
    tag_skew:
        Zipf skew of tag popularity within a topic.
    seed:
        Seed for reproducible topic construction.
    """

    n_topics: int = 200
    tags_per_topic: int = 30
    topic_skew: float = 1.0
    tag_skew: float = 1.0
    seed: int = 7
    topics: list[Topic] = field(default_factory=list)
    _next_topic_id: int = 0

    def __post_init__(self) -> None:
        rng = random.Random(self.seed)
        if not self.topics:
            for _ in range(self.n_topics):
                self.topics.append(self._new_topic(rng, birth_time=0.0))

    def _new_topic(self, rng: random.Random, birth_time: float) -> Topic:
        topic_id = self._next_topic_id
        self._next_topic_id += 1
        rank = topic_id + 1
        tags = [f"topic{topic_id}_tag{i}" for i in range(self.tags_per_topic)]
        return Topic(
            name=f"topic{topic_id}",
            tags=tags,
            weight=1.0 / (rank**self.topic_skew),
            tag_skew=self.tag_skew,
            birth_time=birth_time,
        )

    def spawn_topic(self, now: float, rng: random.Random, weight: float | None = None) -> Topic:
        """Introduce a new topic (a breaking trend) at time ``now``."""
        topic = self._new_topic(rng, birth_time=now)
        if weight is not None:
            topic.weight = weight
        self.topics.append(topic)
        return topic

    def vocabulary(self) -> list[str]:
        """All tags of all topics."""
        tags: list[str] = []
        for topic in self.topics:
            tags.extend(topic.tags)
        return tags

    def sample_topic(self, now: float, rng: random.Random) -> Topic:
        """Sample a topic proportionally to its current popularity."""
        weights = [topic.popularity(now) for topic in self.topics]
        total = sum(weights)
        if total <= 0:
            return rng.choice(self.topics)
        pick = rng.random() * total
        cumulative = 0.0
        for topic, weight in zip(self.topics, weights):
            cumulative += weight
            if pick <= cumulative:
                return topic
        return self.topics[-1]

    def sample_topics(
        self, count: int, now: float, rng: random.Random
    ) -> list[Topic]:
        """Sample ``count`` distinct topics (used for cross-topic tweets)."""
        count = min(count, len(self.topics))
        chosen: list[Topic] = []
        seen: set[str] = set()
        attempts = 0
        while len(chosen) < count and attempts < 20 * count:
            topic = self.sample_topic(now, rng)
            attempts += 1
            if topic.name not in seen:
                seen.add(topic.name)
                chosen.append(topic)
        return chosen


def uniform_topics(
    n_topics: int, tags_per_topic: int, prefix: str = "t"
) -> list[Topic]:
    """Equally popular topics with uniform in-topic tag usage (for tests)."""
    topics = []
    for topic_id in range(n_topics):
        tags = [f"{prefix}{topic_id}_{i}" for i in range(tags_per_topic)]
        topics.append(Topic(name=f"{prefix}{topic_id}", tags=tags, tag_skew=0.0))
    return topics
