"""Synthetic Twitter-like workloads, scenarios, traces and statistics."""

from .generator import (
    SCENARIO_NAMES,
    TwitterLikeGenerator,
    WorkloadConfig,
    generate_documents,
)
from .io import (
    document_to_record,
    load_documents,
    read_documents,
    record_to_document,
    write_documents,
)
from .replay import (
    load_trace,
    read_trace,
    read_trace_header,
    record_trace,
    replay_documents,
    write_trace,
)
from .scenarios import (
    SCENARIO_GENERATORS,
    AdversarialChurnGenerator,
    BurstGenerator,
    DiurnalGenerator,
    ScenarioGenerator,
    TrendingGenerator,
    make_generator,
    scenario_preset,
)
from .stats import WorkloadStatistics, compute_statistics, tags_per_tweet_frequencies
from .topics import Topic, TopicModel, uniform_topics

__all__ = [
    "SCENARIO_GENERATORS",
    "SCENARIO_NAMES",
    "AdversarialChurnGenerator",
    "BurstGenerator",
    "DiurnalGenerator",
    "ScenarioGenerator",
    "Topic",
    "TopicModel",
    "TrendingGenerator",
    "TwitterLikeGenerator",
    "WorkloadConfig",
    "WorkloadStatistics",
    "compute_statistics",
    "document_to_record",
    "generate_documents",
    "load_documents",
    "load_trace",
    "make_generator",
    "read_documents",
    "read_trace",
    "read_trace_header",
    "record_to_document",
    "record_trace",
    "replay_documents",
    "scenario_preset",
    "tags_per_tweet_frequencies",
    "uniform_topics",
    "write_documents",
    "write_trace",
]
