"""Synthetic Twitter-like workloads, file I/O and workload statistics."""

from .generator import TwitterLikeGenerator, WorkloadConfig, generate_documents
from .io import (
    document_to_record,
    load_documents,
    read_documents,
    record_to_document,
    write_documents,
)
from .stats import WorkloadStatistics, compute_statistics, tags_per_tweet_frequencies
from .topics import Topic, TopicModel, uniform_topics

__all__ = [
    "Topic",
    "TopicModel",
    "TwitterLikeGenerator",
    "WorkloadConfig",
    "WorkloadStatistics",
    "compute_statistics",
    "document_to_record",
    "generate_documents",
    "load_documents",
    "read_documents",
    "record_to_document",
    "tags_per_tweet_frequencies",
    "uniform_topics",
    "write_documents",
]
