"""Synthetic Twitter-like tweet stream generator.

The paper evaluates on six hours of real tweets from the Twitter streaming
API.  Real traces are not available offline, so the generator reproduces the
structural properties the paper measures and reasons about:

* the number of tags per tweet follows Zipf's law with skew ``s = 0.25``
  and a maximum of ``mmax`` tags (Section 5.1),
* tags come from topic-specific vocabularies; with probability
  ``1 - intra_topic_probability`` a tweet mixes tags from several topics,
  which is the mechanism that can grow a giant connected component,
* topic and in-topic tag popularity are Zipf-distributed, so a small number
  of tags carry most of the load (what makes load balancing hard),
* new topics appear over time and old ones decay, driving the partition
  dynamics of Section 7,
* tweets arrive at a configurable rate (``tweets_per_second``), so windows
  of "5 minutes" contain the same number of documents as the paper's.

The generator is fully deterministic given its seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from ..core.documents import Document
from ..theory.zipf_model import PAPER_MMAX, PAPER_SKEW, zipf_frequencies
from .topics import TopicModel

#: Every workload scenario a :class:`WorkloadConfig` may name.  The
#: generator classes live in ``workloads/scenarios.py`` (``legacy`` is
#: :class:`TwitterLikeGenerator` below); construct through
#: ``scenarios.make_generator``.
SCENARIO_NAMES = ("legacy", "trending", "burst", "diurnal", "adversarial")


@dataclass(slots=True)
class WorkloadConfig:
    """Configuration of the synthetic stream.

    Attributes
    ----------
    tweets_per_second:
        Arrival rate; the paper uses 1300 (real-world rate) and 2600.
    n_topics, tags_per_topic:
        Size of the topic population and of each topic vocabulary.
    topic_skew, tag_skew:
        Zipf skews of topic popularity and of in-topic tag popularity.
    tags_per_tweet_skew, max_tags_per_tweet:
        Parameters of the Zipf tags-per-tweet distribution (paper: 0.25, 8).
    intra_topic_probability:
        The ``α`` of Section 5.1: probability that all tags of a tweet come
        from a single topic vocabulary.
    untagged_allowed:
        Whether tweets with zero tags are generated (rank 1 of the Zipf
        distribution).  The pipeline drops them at the Parser, so disabling
        them simply makes every generated document useful.
    new_topic_rate:
        Expected number of newly born topics per minute (trend dynamics).
        ``0`` disables topic births entirely (a fixed topic population).
    topic_decay_rate:
        Exponential decay rate (per second) applied to newly born topics.
    scenario:
        Which scenario generator interprets this config: ``"legacy"`` (the
        original churny synthetic point) or one of the scenario presets in
        ``workloads.scenarios`` (``trending``, ``burst``, ``diurnal``,
        ``adversarial``).  Construct via ``scenarios.make_generator``.
    seed:
        Master seed; every run with the same config is identical.

    The ``trend_*`` / ``burst_*`` / ``diurnal_*`` / ``adversarial_*``
    fields parameterise the respective scenario generators and are ignored
    by the others; see ``workloads/scenarios.py`` for their semantics.
    """

    tweets_per_second: float = 1300.0
    n_topics: int = 400
    tags_per_topic: int = 25
    topic_skew: float = 1.0
    tag_skew: float = 1.0
    tags_per_tweet_skew: float = PAPER_SKEW
    max_tags_per_tweet: int = PAPER_MMAX
    intra_topic_probability: float = 0.95
    untagged_allowed: bool = True
    new_topic_rate: float = 0.5
    topic_decay_rate: float = 0.0005
    scenario: str = "legacy"
    seed: int = 42

    # --- trending scenario -------------------------------------------- #
    #: Number of anchor slots / concurrently live trends (sets the birth
    #: cadence).  For maximal carry reuse pick it so that
    #: ``round(1 / trend_anchor_share) * trend_pool`` divides the number
    #: of documents per report round (``tweets_per_second *
    #: report_interval_seconds``); the default 5 pairs with the default
    #: anchor share (cadence 3) to divide any multiple of 15.
    trend_pool: int = 5
    #: Hazard-curve phase durations of one trend (seconds).
    trend_rise_seconds: float = 30.0
    trend_plateau_seconds: float = 90.0
    trend_decay_seconds: float = 45.0
    #: Fraction of documents that are deterministic anchor re-emissions of
    #: a plateau trend's signature tagset (the carry-friendly recurrence).
    trend_anchor_share: float = 0.3
    #: Probability that a non-anchor document is about a live trend
    #: (sampled from its non-anchor vocabulary) instead of a base topic.
    trend_mix: float = 0.35

    # --- burst / flash-crowd scenario --------------------------------- #
    #: Expected burst starts per minute of stream time.
    burst_rate_per_minute: float = 2.0
    #: Lifetime of one burst (seconds).
    burst_duration_seconds: float = 15.0
    #: Arrival-rate multiplier while at least one burst is live.
    burst_intensity: float = 4.0
    #: Probability that a document arriving during a burst is about the
    #: burst's flash-crowd topic.
    burst_share: float = 0.7

    # --- diurnal scenario --------------------------------------------- #
    #: Period of the sinusoidal rate/topic-mix cycle (a simulated "day").
    diurnal_period_seconds: float = 240.0
    #: Relative swing of the arrival rate around ``tweets_per_second``
    #: (must stay below 1 so the rate never reaches zero).
    diurnal_amplitude: float = 0.6

    # --- adversarial-churn scenario ----------------------------------- #
    #: Fraction of documents that re-emit a recently created tagset type
    #: (everything else is a brand-new, never-recurring type).
    adversarial_repeat_fraction: float = 0.12
    #: How many recent types stay eligible for re-emission.
    adversarial_repeat_window: int = 40

    def validate(self) -> None:
        if self.tweets_per_second <= 0:
            raise ValueError("tweets_per_second must be positive")
        if not 0.0 <= self.intra_topic_probability <= 1.0:
            raise ValueError("intra_topic_probability must lie in [0, 1]")
        if self.max_tags_per_tweet < 1:
            raise ValueError("max_tags_per_tweet must be at least 1")
        if self.n_topics < 1 or self.tags_per_topic < 1:
            raise ValueError("need at least one topic with at least one tag")
        # new_topic_rate=0 must mean "no births" (birth gap = infinity), so
        # the field has to be a finite non-negative number: a negative or
        # NaN rate would silently disable births while *looking* like a
        # configured trend dynamic, and +inf would spin the birth loop.
        if not self.new_topic_rate >= 0 or self.new_topic_rate == float("inf"):
            raise ValueError("new_topic_rate must be a finite number >= 0")
        if not self.topic_decay_rate >= 0 or self.topic_decay_rate == float("inf"):
            raise ValueError("topic_decay_rate must be a finite number >= 0")
        if self.scenario not in SCENARIO_NAMES:
            raise ValueError(
                f"scenario must be one of {', '.join(SCENARIO_NAMES)}"
            )
        if self.trend_pool < 1:
            raise ValueError("trend_pool must be at least 1")
        if (self.trend_rise_seconds <= 0 or self.trend_plateau_seconds <= 0
                or self.trend_decay_seconds <= 0):
            raise ValueError("trend phase durations must be positive")
        if not 0.0 <= self.trend_anchor_share < 1.0:
            raise ValueError("trend_anchor_share must lie in [0, 1)")
        if not 0.0 <= self.trend_mix <= 1.0:
            raise ValueError("trend_mix must lie in [0, 1]")
        if self.burst_rate_per_minute < 0:
            raise ValueError("burst_rate_per_minute must be non-negative")
        if self.burst_duration_seconds <= 0:
            raise ValueError("burst_duration_seconds must be positive")
        if self.burst_intensity < 1.0:
            raise ValueError("burst_intensity must be at least 1")
        if not 0.0 <= self.burst_share <= 1.0:
            raise ValueError("burst_share must lie in [0, 1]")
        if self.diurnal_period_seconds <= 0:
            raise ValueError("diurnal_period_seconds must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must lie in [0, 1)")
        if not 0.0 <= self.adversarial_repeat_fraction < 1.0:
            raise ValueError("adversarial_repeat_fraction must lie in [0, 1)")
        if self.adversarial_repeat_window < 1:
            raise ValueError("adversarial_repeat_window must be at least 1")


class TwitterLikeGenerator:
    """Generates a deterministic stream of :class:`Document` objects."""

    def __init__(self, config: WorkloadConfig | None = None) -> None:
        self.config = config or WorkloadConfig()
        self.config.validate()
        self._rng = random.Random(self.config.seed)
        self._topics = TopicModel(
            n_topics=self.config.n_topics,
            tags_per_topic=self.config.tags_per_topic,
            topic_skew=self.config.topic_skew,
            tag_skew=self.config.tag_skew,
            seed=self.config.seed,
        )
        self._tag_count_weights = zipf_frequencies(
            self.config.max_tags_per_tweet, self.config.tags_per_tweet_skew
        )
        if not self.config.untagged_allowed:
            weights = self._tag_count_weights[1:]
            total = sum(weights)
            self._tag_count_weights = [0.0] + [w / total for w in weights]
        self._next_doc_id = 0
        self._clock = 0.0
        self._interarrival = 1.0 / self.config.tweets_per_second
        self._next_topic_birth = self._sample_topic_birth_gap()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def topic_model(self) -> TopicModel:
        """The underlying topic population (useful for analysis/tests)."""
        return self._topics

    @property
    def current_time(self) -> float:
        """Simulation time of the next document to be generated."""
        return self._clock

    def generate(self, n_documents: int) -> list[Document]:
        """Generate the next ``n_documents`` documents of the stream."""
        return [self._next_document() for _ in range(n_documents)]

    def generate_seconds(self, seconds: float) -> list[Document]:
        """Generate all documents arriving within the next ``seconds``."""
        deadline = self._clock + seconds
        documents = []
        while self._clock < deadline:
            documents.append(self._next_document())
        return documents

    def stream(self) -> Iterator[Document]:
        """An endless iterator over the stream."""
        while True:
            yield self._next_document()

    def vocabulary(self) -> list[str]:
        """All tags currently known to the topic model."""
        return self._topics.vocabulary()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _sample_topic_birth_gap(self) -> float:
        rate_per_second = self.config.new_topic_rate / 60.0
        if rate_per_second <= 0:
            return float("inf")
        return self._clock + self._rng.expovariate(rate_per_second)

    def _maybe_spawn_topics(self) -> None:
        while self._clock >= self._next_topic_birth:
            # New trends start popular and decay, mimicking bursts.
            weight = 0.5 + self._rng.random()
            topic = self._topics.spawn_topic(self._clock, self._rng, weight=weight)
            topic.decay_rate = self.config.topic_decay_rate
            self._next_topic_birth = self._sample_topic_birth_gap()

    def _advance_dynamics(self) -> None:
        """Per-document population dynamics hook (scenario override point)."""
        self._maybe_spawn_topics()

    def _next_interarrival(self) -> float:
        """Gap to the next arrival (scenario generators modulate the rate)."""
        return self._interarrival

    def _sample_n_tags(self) -> int:
        pick = self._rng.random()
        cumulative = 0.0
        for m, weight in enumerate(self._tag_count_weights):
            cumulative += weight
            if pick <= cumulative:
                return m
        return self.config.max_tags_per_tweet

    def _sample_tags(self, n_tags: int) -> frozenset[str]:
        if n_tags == 0:
            return frozenset()
        if self._rng.random() < self.config.intra_topic_probability:
            topic = self._topics.sample_topic(self._clock, self._rng)
            tags = topic.sample_tags(n_tags, self._rng)
        else:
            # Cross-topic tweet: pull tags from 2 (or more) distinct topics.
            n_sources = min(1 + self._rng.randint(1, 2), max(n_tags, 1))
            sources = self._topics.sample_topics(n_sources, self._clock, self._rng)
            tags = []
            for index, topic in enumerate(sources):
                share = n_tags // len(sources) + (1 if index < n_tags % len(sources) else 0)
                tags.extend(topic.sample_tags(share, self._rng))
        return frozenset(tags)

    def _next_document(self) -> Document:
        self._advance_dynamics()
        n_tags = self._sample_n_tags()
        tags = self._sample_tags(n_tags)
        document = Document(
            doc_id=self._next_doc_id,
            tags=tags,
            timestamp=self._clock,
        )
        self._next_doc_id += 1
        self._clock += self._next_interarrival()
        return document


def generate_documents(
    n_documents: int, config: WorkloadConfig | None = None
) -> list[Document]:
    """One-shot helper: generate ``n_documents`` with a fresh generator."""
    return TwitterLikeGenerator(config).generate(n_documents)
