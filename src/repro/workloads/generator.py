"""Synthetic Twitter-like tweet stream generator.

The paper evaluates on six hours of real tweets from the Twitter streaming
API.  Real traces are not available offline, so the generator reproduces the
structural properties the paper measures and reasons about:

* the number of tags per tweet follows Zipf's law with skew ``s = 0.25``
  and a maximum of ``mmax`` tags (Section 5.1),
* tags come from topic-specific vocabularies; with probability
  ``1 - intra_topic_probability`` a tweet mixes tags from several topics,
  which is the mechanism that can grow a giant connected component,
* topic and in-topic tag popularity are Zipf-distributed, so a small number
  of tags carry most of the load (what makes load balancing hard),
* new topics appear over time and old ones decay, driving the partition
  dynamics of Section 7,
* tweets arrive at a configurable rate (``tweets_per_second``), so windows
  of "5 minutes" contain the same number of documents as the paper's.

The generator is fully deterministic given its seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from ..core.documents import Document
from ..theory.zipf_model import PAPER_MMAX, PAPER_SKEW, zipf_frequencies
from .topics import TopicModel


@dataclass(slots=True)
class WorkloadConfig:
    """Configuration of the synthetic stream.

    Attributes
    ----------
    tweets_per_second:
        Arrival rate; the paper uses 1300 (real-world rate) and 2600.
    n_topics, tags_per_topic:
        Size of the topic population and of each topic vocabulary.
    topic_skew, tag_skew:
        Zipf skews of topic popularity and of in-topic tag popularity.
    tags_per_tweet_skew, max_tags_per_tweet:
        Parameters of the Zipf tags-per-tweet distribution (paper: 0.25, 8).
    intra_topic_probability:
        The ``α`` of Section 5.1: probability that all tags of a tweet come
        from a single topic vocabulary.
    untagged_allowed:
        Whether tweets with zero tags are generated (rank 1 of the Zipf
        distribution).  The pipeline drops them at the Parser, so disabling
        them simply makes every generated document useful.
    new_topic_rate:
        Expected number of newly born topics per minute (trend dynamics).
    topic_decay_rate:
        Exponential decay rate (per second) applied to newly born topics.
    seed:
        Master seed; every run with the same config is identical.
    """

    tweets_per_second: float = 1300.0
    n_topics: int = 400
    tags_per_topic: int = 25
    topic_skew: float = 1.0
    tag_skew: float = 1.0
    tags_per_tweet_skew: float = PAPER_SKEW
    max_tags_per_tweet: int = PAPER_MMAX
    intra_topic_probability: float = 0.95
    untagged_allowed: bool = True
    new_topic_rate: float = 0.5
    topic_decay_rate: float = 0.0005
    seed: int = 42

    def validate(self) -> None:
        if self.tweets_per_second <= 0:
            raise ValueError("tweets_per_second must be positive")
        if not 0.0 <= self.intra_topic_probability <= 1.0:
            raise ValueError("intra_topic_probability must lie in [0, 1]")
        if self.max_tags_per_tweet < 1:
            raise ValueError("max_tags_per_tweet must be at least 1")
        if self.n_topics < 1 or self.tags_per_topic < 1:
            raise ValueError("need at least one topic with at least one tag")


class TwitterLikeGenerator:
    """Generates a deterministic stream of :class:`Document` objects."""

    def __init__(self, config: WorkloadConfig | None = None) -> None:
        self.config = config or WorkloadConfig()
        self.config.validate()
        self._rng = random.Random(self.config.seed)
        self._topics = TopicModel(
            n_topics=self.config.n_topics,
            tags_per_topic=self.config.tags_per_topic,
            topic_skew=self.config.topic_skew,
            tag_skew=self.config.tag_skew,
            seed=self.config.seed,
        )
        self._tag_count_weights = zipf_frequencies(
            self.config.max_tags_per_tweet, self.config.tags_per_tweet_skew
        )
        if not self.config.untagged_allowed:
            weights = self._tag_count_weights[1:]
            total = sum(weights)
            self._tag_count_weights = [0.0] + [w / total for w in weights]
        self._next_doc_id = 0
        self._clock = 0.0
        self._interarrival = 1.0 / self.config.tweets_per_second
        self._next_topic_birth = self._sample_topic_birth_gap()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def topic_model(self) -> TopicModel:
        """The underlying topic population (useful for analysis/tests)."""
        return self._topics

    @property
    def current_time(self) -> float:
        """Simulation time of the next document to be generated."""
        return self._clock

    def generate(self, n_documents: int) -> list[Document]:
        """Generate the next ``n_documents`` documents of the stream."""
        return [self._next_document() for _ in range(n_documents)]

    def generate_seconds(self, seconds: float) -> list[Document]:
        """Generate all documents arriving within the next ``seconds``."""
        deadline = self._clock + seconds
        documents = []
        while self._clock < deadline:
            documents.append(self._next_document())
        return documents

    def stream(self) -> Iterator[Document]:
        """An endless iterator over the stream."""
        while True:
            yield self._next_document()

    def vocabulary(self) -> list[str]:
        """All tags currently known to the topic model."""
        return self._topics.vocabulary()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _sample_topic_birth_gap(self) -> float:
        rate_per_second = self.config.new_topic_rate / 60.0
        if rate_per_second <= 0:
            return float("inf")
        return self._clock + self._rng.expovariate(rate_per_second)

    def _maybe_spawn_topics(self) -> None:
        while self._clock >= self._next_topic_birth:
            # New trends start popular and decay, mimicking bursts.
            weight = 0.5 + self._rng.random()
            topic = self._topics.spawn_topic(self._clock, self._rng, weight=weight)
            topic.decay_rate = self.config.topic_decay_rate
            self._next_topic_birth = self._sample_topic_birth_gap()

    def _sample_n_tags(self) -> int:
        pick = self._rng.random()
        cumulative = 0.0
        for m, weight in enumerate(self._tag_count_weights):
            cumulative += weight
            if pick <= cumulative:
                return m
        return self.config.max_tags_per_tweet

    def _sample_tags(self, n_tags: int) -> frozenset[str]:
        if n_tags == 0:
            return frozenset()
        if self._rng.random() < self.config.intra_topic_probability:
            topic = self._topics.sample_topic(self._clock, self._rng)
            tags = topic.sample_tags(n_tags, self._rng)
        else:
            # Cross-topic tweet: pull tags from 2 (or more) distinct topics.
            n_sources = min(1 + self._rng.randint(1, 2), max(n_tags, 1))
            sources = self._topics.sample_topics(n_sources, self._clock, self._rng)
            tags = []
            for index, topic in enumerate(sources):
                share = n_tags // len(sources) + (1 if index < n_tags % len(sources) else 0)
                tags.extend(topic.sample_tags(share, self._rng))
        return frozenset(tags)

    def _next_document(self) -> Document:
        self._maybe_spawn_topics()
        n_tags = self._sample_n_tags()
        tags = self._sample_tags(n_tags)
        document = Document(
            doc_id=self._next_doc_id,
            tags=tags,
            timestamp=self._clock,
        )
        self._next_doc_id += 1
        self._clock += self._interarrival
        return document


def generate_documents(
    n_documents: int, config: WorkloadConfig | None = None
) -> list[Document]:
    """One-shot helper: generate ``n_documents`` with a fresh generator."""
    return TwitterLikeGenerator(config).generate(n_documents)
