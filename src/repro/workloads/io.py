"""Reading and writing tweet streams as JSON Lines files.

The paper's Source spout can replay tweets from a file for repeatable
experiments; this module provides the equivalent file format for the
reproduction: one JSON object per line with ``id``, ``timestamp``, ``tags``
and optional ``text`` fields.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

from ..core.documents import Document, make_tagset


def document_to_record(document: Document) -> dict:
    """Serialise a document to a plain JSON-compatible dictionary."""
    record = {
        "id": document.doc_id,
        "timestamp": document.timestamp,
        "tags": sorted(document.tags),
    }
    if document.text:
        record["text"] = document.text
    return record


def record_to_document(record: dict) -> Document:
    """Deserialise one JSON record into a :class:`Document`.

    Raises ``ValueError`` on malformed records so corrupt input files fail
    loudly rather than silently skewing the statistics.
    """
    try:
        doc_id = int(record["id"])
        timestamp = float(record.get("timestamp", 0.0))
        tags = record.get("tags", [])
    except (KeyError, TypeError, ValueError) as error:
        raise ValueError(f"malformed tweet record: {record!r}") from error
    if not isinstance(tags, (list, tuple, set, frozenset)):
        raise ValueError(f"malformed tags in record: {record!r}")
    return Document(
        doc_id=doc_id,
        tags=make_tagset(str(tag) for tag in tags),
        timestamp=timestamp,
        text=str(record.get("text", "")),
    )


def write_documents(documents: Iterable[Document], path: str | Path) -> int:
    """Write documents as JSON Lines; returns the number written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for document in documents:
            handle.write(json.dumps(document_to_record(document)) + "\n")
            count += 1
    return count


def read_documents(path: str | Path) -> Iterator[Document]:
    """Stream documents back from a JSON Lines file."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: invalid JSON in tweet file"
                ) from error
            yield record_to_document(record)


def load_documents(path: str | Path) -> list[Document]:
    """Eagerly load a whole tweet file into memory."""
    return list(read_documents(path))
