"""Recording and replaying workload traces.

A *trace* is a JSON Lines file whose first line is a header object and
whose remaining lines are document records in the tweet-file format of
:mod:`.io` (``id``/``timestamp``/``tags``/optional ``text``):

.. code-block:: text

    {"format": "repro-trace", "n_documents": 2, "scenario": "trending",
     "version": 1, "workload": {...}}
    {"id": 0, "timestamp": 0.0, "tags": ["a", "b"]}
    {"id": 1, "timestamp": 0.02, "tags": ["b", "c"]}

The header records provenance — which scenario and
:class:`~.generator.WorkloadConfig` produced the stream (``scenario`` is
``"external"`` and ``workload`` is ``null`` for traces converted from
foreign data).  Both the header and the records are serialised
deterministically (sorted keys, sorted tags), so recording the same
generator twice produces byte-identical files and a record → replay →
re-record round trip is the identity: replayed runs are exactly as
reproducible as live-generator runs, and external traces become
first-class workloads for `repro run --trace`.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Iterable, Iterator

from ..core.documents import Document
from .generator import WorkloadConfig
from .io import document_to_record, record_to_document

#: ``format`` discriminator of the trace header line.
TRACE_FORMAT = "repro-trace"
#: Current trace schema version (bump on incompatible header changes).
TRACE_VERSION = 1
#: ``scenario`` recorded for traces not produced by a known generator.
EXTERNAL_SCENARIO = "external"


def trace_header(
    config: WorkloadConfig | None, n_documents: int
) -> dict:
    """The header object describing a trace of ``n_documents`` documents."""
    return {
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "scenario": config.scenario if config else EXTERNAL_SCENARIO,
        "n_documents": n_documents,
        "workload": dataclasses.asdict(config) if config else None,
    }


def write_trace(
    documents: Iterable[Document],
    path: str | Path,
    config: WorkloadConfig | None = None,
) -> int:
    """Write a trace file; returns the number of documents written.

    The document stream is materialised first so the header can state
    ``n_documents`` up front (replayers can pre-size without scanning).
    """
    documents = list(documents)
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(
            json.dumps(trace_header(config, len(documents)), sort_keys=True)
            + "\n"
        )
        for document in documents:
            handle.write(json.dumps(document_to_record(document)) + "\n")
    return len(documents)


def record_trace(
    config: WorkloadConfig, n_documents: int, path: str | Path
) -> int:
    """Generate ``n_documents`` from ``config``'s scenario and dump a trace."""
    from .scenarios import make_generator  # local: scenarios imports generator

    generator = make_generator(config)
    return write_trace(generator.generate(n_documents), path, config)


def read_trace_header(path: str | Path) -> dict:
    """Parse and validate the header line of a trace file."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        first = handle.readline().strip()
    try:
        header = json.loads(first) if first else None
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}:1: invalid JSON in trace header") from error
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise ValueError(
            f"{path} is not a {TRACE_FORMAT} file (use `repro record` to "
            "create one, or load plain tweet files with --input)"
        )
    version = header.get("version")
    if version != TRACE_VERSION:
        raise ValueError(
            f"{path}: unsupported trace version {version!r} "
            f"(this build reads version {TRACE_VERSION})"
        )
    return header


def read_trace(path: str | Path) -> Iterator[Document]:
    """Stream the documents of a trace (header validated, then skipped)."""
    read_trace_header(path)
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        handle.readline()  # header
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: invalid JSON in trace"
                ) from error
            yield record_to_document(record)


def load_trace(path: str | Path) -> tuple[dict, list[Document]]:
    """Eagerly load a trace: ``(header, documents)``."""
    header = read_trace_header(path)
    documents = list(read_trace(path))
    expected = header.get("n_documents")
    if expected is not None and expected != len(documents):
        raise ValueError(
            f"{path}: header declares {expected} documents, "
            f"file holds {len(documents)} (truncated or corrupt trace)"
        )
    return header, documents


def replay_documents(path: str | Path) -> list[Document]:
    """The document stream of a trace, ready to feed a system run."""
    return load_trace(path)[1]
