"""repro: a reproduction of "Tracking Set Correlations at Large Scale".

The library tracks Jaccard correlations between co-occurring tags in a
stream of short documents (tweets) by partitioning the tag universe across
multiple Calculator nodes, as described by Alvanaki and Michel (SIGMOD
2014).  It contains:

* the four partitioning algorithms of the paper (DS, SCC, SCL, SCI), a
  hybrid DS+SCL splitter and classic graph-partitioning baselines
  (``repro.partitioning``),
* exact Jaccard computation via subset counters and inclusion–exclusion
  plus probabilistic sketch baselines (``repro.core``, ``repro.sketches``),
* a Storm-like single-process stream-processing substrate and the paper's
  operator topology (``repro.streamsim``, ``repro.operators``),
* the analytic models of Section 5 (``repro.theory``),
* a synthetic Twitter-like workload generator (``repro.workloads``),
* the end-to-end system and experiment sweeps (``repro.pipeline``) and
  offline analysis helpers (``repro.analysis``).

Quickstart
----------
>>> from repro import SystemConfig, TagCorrelationSystem, WorkloadConfig
>>> from repro.workloads import TwitterLikeGenerator
>>> docs = TwitterLikeGenerator(WorkloadConfig(seed=1)).generate(3000)
>>> config = SystemConfig.scaled_down("DS", scale=0.005)
>>> report = TagCorrelationSystem(config).run(docs)
>>> report.communication_avg >= 1.0
True

See ``README.md`` for the full quickstart (including the sketch-backed
approximate tracking mode) and ``docs/ARCHITECTURE.md`` for the dataflow.
"""

from .core import (
    CooccurrenceStatistics,
    Document,
    JaccardCalculator,
    PartitionAssignment,
    gini_coefficient,
)
from .partitioning import (
    ALGORITHMS,
    PAPER_ALGORITHMS,
    DisjointSetsPartitioner,
    HybridDSPartitioner,
    SCCPartitioner,
    SCIPartitioner,
    SCLPartitioner,
    make_partitioner,
)
from .pipeline import RunReport, SystemConfig, TagCorrelationSystem, run_system
from .workloads import TwitterLikeGenerator, WorkloadConfig

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "CooccurrenceStatistics",
    "DisjointSetsPartitioner",
    "Document",
    "HybridDSPartitioner",
    "JaccardCalculator",
    "PAPER_ALGORITHMS",
    "PartitionAssignment",
    "RunReport",
    "SCCPartitioner",
    "SCIPartitioner",
    "SCLPartitioner",
    "SystemConfig",
    "TagCorrelationSystem",
    "TwitterLikeGenerator",
    "WorkloadConfig",
    "gini_coefficient",
    "make_partitioner",
    "run_system",
    "__version__",
]
