"""Configuration of the end-to-end tag-correlation system.

Groups the experiment parameters of Section 8.1 (``k``, ``P``, ``thr``,
``tps``) with the operational constants of Section 8.2 (single-addition
threshold ``sn = 3``, quality statistics every 1000 notified tagsets,
5-minute report interval and 5-minute partitioning windows), scaled through
a single place so that benchmarks can shrink the workload while keeping the
paper's ratios.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any

from ..core.jaccard import DEFAULT_SUBSET_CACHE_SIZE, REPORTING_ENGINES
from ..store import COUNTER_STORES, DEFAULT_SPILL_THRESHOLD, TRACKER_STORES
from ..core.partition import PartitionSeed
from ..operators.controller import REPARTITION_POLICIES
from ..streamsim.executors import EXECUTOR_NAMES
from ..workloads.generator import SCENARIO_NAMES

#: Auto-sized process executors never spawn more workers than this: beyond a
#: handful of shards the Disseminator-side driver loop, not the Calculator
#: layer, is the bottleneck (see docs/PERFORMANCE.md).
MAX_AUTO_WORKERS = 4

#: Default values taken verbatim from Section 8.2.
PAPER_DEFAULTS = {
    "k": 10,
    "n_partitioners": 10,
    "repartition_threshold": 0.5,
    "tweets_per_second": 1300.0,
    "single_addition_threshold": 3,
    "quality_check_interval": 1000,
    "report_interval_seconds": 300.0,
    "window_seconds": 300.0,
}


@dataclass(slots=True)
class SystemConfig:
    """All knobs of the distributed tag-correlation pipeline."""

    algorithm: str = "DS"
    k: int = 10
    n_partitioners: int = 10
    n_parsers: int = 1
    n_disseminators: int = 1
    repartition_threshold: float = 0.5
    #: How the Disseminator's controller decides to ask for a full swap:
    #: ``"threshold"`` is the paper's either-or quality rule (avgCom or
    #: maxLoad degraded by more than ``thr``); ``"capacity"`` triggers on
    #: the combined per-document update cost of ``analysis.capacity``
    #: degrading by more than ``thr``; ``"fixed"`` swaps at the document
    #: counts of ``repartition_at``; ``"never"`` disables swaps (Single
    #: Additions still apply).
    repartition_policy: str = "threshold"
    #: Document counts at which the ``"fixed"`` policy forces a swap.
    repartition_at: tuple[int, ...] = ()
    #: What happens to Calculator state when a new partition map arrives
    #: mid-stream: ``"none"`` installs the map immediately and keeps the
    #: counters (the legacy behaviour); ``"migrate"`` runs the coordinated
    #: quiesce → migrate → install handoff (the counters are reported to
    #: the Tracker and reset, so post-swap state matches a fresh start
    #: under the new map).
    repartition_handoff: str = "none"
    #: Optional pre-installed partition map: the run starts with this
    #: assignment (epoch 0) instead of bootstrapping one, exactly as a run
    #: resumed after a migration would.  Used by the splice-equivalence
    #: suites.
    initial_partitions: PartitionSeed | None = None
    single_addition_threshold: int = 3
    quality_check_interval: int = 1000
    report_interval_seconds: float = 300.0
    window_mode: str = "count"
    window_size: float = 5000
    bootstrap_documents: int = 1000
    max_tags_per_document: int = 12
    tick_interval_seconds: float = 1.0
    include_centralized_baseline: bool = True
    algorithm_options: dict[str, Any] = field(default_factory=dict)

    #: Calculator mode: ``"exact"`` uses the paper's subset counters,
    #: ``"sketch"`` the MinHash/Count-Min approximate tracking mode.
    calculator: str = "exact"
    #: Union computation of exact-mode report rounds: ``"incremental"``
    #: folds each distinct observed tagset type's subset lattice once per
    #: round; ``"delta"`` makes rounds incremental *across* rounds (folds
    #: only types whose observation context changed, re-asserts clean
    #: recurring types from a carry table and defers shipping their
    #: unchanged coefficients to the drain); ``"scratch"`` re-walks the
    #: counter table per counted key (the original path).  Identical
    #: coefficients in all three — see the decision table in
    #: docs/ARCHITECTURE.md "Reporting path".
    reporting_engine: str = "incremental"
    #: Capacity of each exact Calculator's LRU cache of tagset →
    #: subset-tuple enumerations (repeated trending tagsets skip
    #: ``itertools.combinations`` re-enumeration).
    subset_cache_size: int = DEFAULT_SUBSET_CACHE_SIZE
    #: Backing table of each exact Calculator's subset counters:
    #: ``"dict"`` (default) keeps everything in RAM; ``"spill"`` freezes
    #: cold segments into sorted on-disk run files and merges them at
    #: report/drain time, bounding resident memory by ``spill_threshold``
    #: instead of window size.  Bit-identical coefficients either way —
    #: see docs/ARCHITECTURE.md "Counter store".
    counter_store: str = "dict"
    #: Root directory for spilled run files (``None`` = the system temp
    #: dir); each Calculator creates a private subdirectory beneath it.
    #: Only consulted when ``counter_store="spill"``.
    spill_dir: str | None = None
    #: Distinct hot keys per Calculator at which a segment is frozen to
    #: disk (the resident-memory bound of the spill store).
    spill_threshold: int = DEFAULT_SPILL_THRESHOLD
    #: Backing table of the Tracker's coefficient dedup table: ``"dict"``
    #: (default) retains every reported tagset's winner in RAM forever;
    #: ``"spill"`` freezes cold entries into sorted run files with the
    #: max-support dedup rule as the merge combiner, bounding resident
    #: coefficient entries by ``tracker_spill_threshold``.  Bit-identical
    #: coefficients, supports and duplicate accounting either way.
    tracker_store: str = "dict"
    #: Resident coefficient entries at which the tracker store spills
    #: (``None`` = inherit ``spill_threshold``).  Only consulted when
    #: ``tracker_store="spill"``.
    tracker_spill_threshold: int | None = None
    #: Coefficient triples per COEFFICIENTS emission and per drained
    #: shipment chunk: ``0`` (default) ships each report round / drain as
    #: one monolithic list; a positive value slices them into bounded
    #: chunks end-to-end (Calculator emit → executor drain protocol),
    #: capping the peak triple-list footprint.  Purely physical — the
    #: Tracker ingests the same triples in the same order either way.
    report_chunk_size: int = 0
    #: Routed tagsets per notification micro-batch (1 = unbatched legacy
    #: behaviour: one message per routed tagset per Calculator).
    notification_batch_size: int = 64
    #: Messages per routed link batch of the substrate (the unit one
    #: grouping call, one accounting update and one ``execute_batch``
    #: delivery covers): ``0`` = unlimited (one batch per run of
    #: same-stream emissions of a component invocation, the default),
    #: ``1`` = per-message delivery (the pre-slot-tuple wire cadence).
    #: Purely physical — logical metrics are identical at every setting.
    link_batch_size: int = 0
    #: MinHash signature width of the sketch mode (standard error of each
    #: Jaccard estimate is roughly ``1/sqrt(minhash_permutations)``).
    minhash_permutations: int = 512
    #: Seed of the shared MinHash permutation family.
    minhash_seed: int = 1
    #: Count-Min parameters for the sketch mode's support counts.
    countmin_epsilon: float = 0.002
    countmin_delta: float = 0.01
    #: Largest tag-combination size the sketch mode reports (the
    #: centralised baseline's cap).
    sketch_max_subset_size: int = 4

    #: Which workload scenario produced the document stream this run
    #: consumes (``workloads.SCENARIO_NAMES``), or ``None`` when unknown
    #: (externally supplied documents).  Pure provenance metadata: it does
    #: not change pipeline behaviour, but is stamped into
    #: ``RunReport.workload_scenario`` so bench cells, traces and
    #: equivalence fixtures stay attributable to their workload shape.
    scenario: str | None = None

    #: Execution engine: ``"inline"`` runs the whole topology depth-first in
    #: this process; ``"process"`` shards the Calculator/Tracker layer across
    #: ``multiprocessing`` workers (identical logical metrics, see
    #: docs/PERFORMANCE.md for when it pays off); ``"service"`` feeds the
    #: same depth-first loop from a bounded cross-thread ingest queue — the
    #: always-on engine behind ``repro.service`` (identical logical metrics
    #: to inline over the same document sequence, pinned by the batch≡served
    #: equivalence suite).
    executor: str = "inline"
    #: Worker processes of the process executor; ``0`` = auto (one per CPU
    #: core, capped at :data:`MAX_AUTO_WORKERS`).  Ignored in inline mode.
    workers: int = 0
    #: Bound of the service executor's ingest queue, in *batches*: a
    #: non-blocking submit against a full queue is refused with a
    #: ``backpressure`` error instead of buffering unboundedly.  Ignored by
    #: the other executors.
    service_queue_limit: int = 8

    def validate(self) -> None:
        if self.k < 1:
            raise ValueError("k must be at least 1")
        if self.n_partitioners < 1 or self.n_parsers < 1 or self.n_disseminators < 1:
            raise ValueError("operator parallelism must be at least 1")
        if self.window_mode not in ("count", "time"):
            raise ValueError("window_mode must be 'count' or 'time'")
        if self.window_size <= 0:
            raise ValueError("window_size must be positive")
        if self.bootstrap_documents < 1:
            raise ValueError("bootstrap_documents must be at least 1")
        if self.repartition_threshold < 0:
            raise ValueError("repartition_threshold must be non-negative")
        if self.repartition_policy not in REPARTITION_POLICIES:
            raise ValueError(
                "repartition_policy must be one of "
                f"{', '.join(REPARTITION_POLICIES)}"
            )
        if any(point < 1 for point in self.repartition_at):
            raise ValueError("repartition_at points must be positive document counts")
        if self.repartition_at and self.repartition_policy != "fixed":
            raise ValueError(
                "repartition_at requires repartition_policy='fixed'"
            )
        if self.repartition_handoff not in ("none", "migrate"):
            raise ValueError("repartition_handoff must be 'none' or 'migrate'")
        if self.initial_partitions is not None and self.initial_partitions.k != self.k:
            raise ValueError(
                f"initial_partitions has {self.initial_partitions.k} partitions "
                f"but k={self.k}"
            )
        if self.calculator not in ("exact", "sketch"):
            raise ValueError("calculator must be 'exact' or 'sketch'")
        if self.reporting_engine not in REPORTING_ENGINES:
            raise ValueError(
                f"reporting_engine must be one of {', '.join(REPORTING_ENGINES)}"
            )
        if self.subset_cache_size < 1:
            raise ValueError("subset_cache_size must be at least 1")
        if self.counter_store not in COUNTER_STORES:
            raise ValueError(
                f"counter_store must be one of {', '.join(COUNTER_STORES)}"
            )
        if self.spill_threshold < 1:
            raise ValueError("spill_threshold must be at least 1")
        if self.tracker_store not in TRACKER_STORES:
            raise ValueError(
                f"tracker_store must be one of {', '.join(TRACKER_STORES)}"
            )
        if (
            self.tracker_spill_threshold is not None
            and self.tracker_spill_threshold < 1
        ):
            raise ValueError("tracker_spill_threshold must be at least 1")
        if self.report_chunk_size < 0:
            raise ValueError(
                "report_chunk_size must be non-negative (0 = unchunked)"
            )
        if self.notification_batch_size < 1:
            raise ValueError("notification_batch_size must be at least 1")
        if self.link_batch_size < 0:
            raise ValueError("link_batch_size must be non-negative (0 = unlimited)")
        if self.minhash_permutations < 8:
            raise ValueError("minhash_permutations must be at least 8")
        if not 0.0 < self.countmin_epsilon < 1.0:
            raise ValueError("countmin_epsilon must be in (0, 1)")
        if not 0.0 < self.countmin_delta < 1.0:
            raise ValueError("countmin_delta must be in (0, 1)")
        if self.sketch_max_subset_size < 2:
            raise ValueError("sketch_max_subset_size must be at least 2")
        if self.scenario is not None and self.scenario not in SCENARIO_NAMES:
            raise ValueError(
                f"scenario must be one of {', '.join(SCENARIO_NAMES)} (or None)"
            )
        if self.executor not in EXECUTOR_NAMES:
            raise ValueError(
                f"executor must be one of {', '.join(EXECUTOR_NAMES)}"
            )
        if self.workers < 0:
            raise ValueError("workers must be non-negative (0 = auto)")
        if self.service_queue_limit < 1:
            raise ValueError("service_queue_limit must be at least 1")

    def resolved_workers(self) -> int:
        """Worker-process count of the process executor (resolves 0 = auto)."""
        if self.workers > 0:
            return self.workers
        return max(1, min(MAX_AUTO_WORKERS, os.cpu_count() or 1))

    def resolved_tracker_spill_threshold(self) -> int:
        """The tracker store's spill threshold (``None`` = inherit the
        Calculators' ``spill_threshold``)."""
        if self.tracker_spill_threshold is not None:
            return self.tracker_spill_threshold
        return self.spill_threshold

    def with_overrides(self, **overrides: Any) -> "SystemConfig":
        """A copy of the config with the given fields replaced."""
        return replace(self, **overrides)

    @classmethod
    def paper_defaults(cls, algorithm: str = "DS", **overrides: Any) -> "SystemConfig":
        """The default configuration of Section 8.2 (P=10, k=10, thr=0.5)."""
        config = cls(
            algorithm=algorithm,
            k=PAPER_DEFAULTS["k"],
            n_partitioners=PAPER_DEFAULTS["n_partitioners"],
            repartition_threshold=PAPER_DEFAULTS["repartition_threshold"],
            single_addition_threshold=PAPER_DEFAULTS["single_addition_threshold"],
            quality_check_interval=PAPER_DEFAULTS["quality_check_interval"],
            report_interval_seconds=PAPER_DEFAULTS["report_interval_seconds"],
        )
        return config.with_overrides(**overrides) if overrides else config

    @classmethod
    def scaled_down(
        cls,
        algorithm: str = "DS",
        scale: float = 0.02,
        **overrides: Any,
    ) -> "SystemConfig":
        """A laptop-scale configuration preserving the paper's ratios.

        ``scale`` shrinks the window size, bootstrap budget and quality-check
        interval together, so repartition cadence relative to the stream
        length stays comparable to the full-scale setup.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        window_documents = max(200, int(390_000 * scale))  # 5 min at 1300 tps
        config = cls(
            algorithm=algorithm,
            window_mode="count",
            window_size=window_documents,
            bootstrap_documents=max(100, int(window_documents * 0.4)),
            quality_check_interval=max(50, int(1000 * scale * 10)),
        )
        return config.with_overrides(**overrides) if overrides else config
