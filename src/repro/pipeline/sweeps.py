"""Parameter sweeps over the paper's experiment grid.

The evaluation varies four parameters — repartition threshold ``thr``,
number of Partitioners ``P``, number of partitions ``k`` and arrival rate
``tps`` — while comparing the four algorithms DS, SCI, SCC and SCL.  This
module runs those sweeps and collects the per-algorithm metric series that
the benchmark harness prints next to the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..core.documents import Document
from ..partitioning import PAPER_ALGORITHMS
from ..workloads import TwitterLikeGenerator, WorkloadConfig
from .config import SystemConfig
from .system import RunReport, TagCorrelationSystem


@dataclass(slots=True)
class SweepResult:
    """Reports of one sweep: ``results[algorithm][parameter_value]``."""

    parameter: str
    values: list[Any]
    algorithms: list[str]
    reports: dict[str, dict[Any, RunReport]] = field(default_factory=dict)

    def metric(self, name: str) -> dict[str, list[float]]:
        """Extract one summary metric as ``{algorithm: [value per parameter]}``."""
        series = {}
        for algorithm in self.algorithms:
            series[algorithm] = [
                self.reports[algorithm][value].summary()[name] for value in self.values
            ]
        return series

    def table(self, metric: str) -> list[tuple[Any, dict[str, float]]]:
        """Rows of ``(parameter value, {algorithm: metric})`` for printing."""
        rows = []
        for value in self.values:
            rows.append(
                (
                    value,
                    {
                        algorithm: self.reports[algorithm][value].summary()[metric]
                        for algorithm in self.algorithms
                    },
                )
            )
        return rows


def default_workload(
    n_documents: int = 8000,
    tweets_per_second: float = 1300.0,
    seed: int = 42,
    **overrides: Any,
) -> list[Document]:
    """The synthetic stand-in for the paper's 6-hour Twitter trace."""
    config = WorkloadConfig(
        tweets_per_second=tweets_per_second, seed=seed, **overrides
    )
    return TwitterLikeGenerator(config).generate(n_documents)


def run_sweep(
    parameter: str,
    values: Sequence[Any],
    documents_factory: Callable[[Any], Sequence[Document]],
    base_config: SystemConfig | None = None,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
) -> SweepResult:
    """Run every algorithm for every parameter value.

    ``parameter`` is either a :class:`SystemConfig` field name (``k``,
    ``n_partitioners``, ``repartition_threshold``, ...) or the special value
    ``"tps"``, which only affects the workload, not the system config.
    ``documents_factory`` maps a parameter value to the document stream used
    for that run, so rate-dependent sweeps can regenerate the workload.
    """
    base = base_config or SystemConfig.scaled_down()
    result = SweepResult(
        parameter=parameter, values=list(values), algorithms=list(algorithms)
    )
    for algorithm in algorithms:
        result.reports[algorithm] = {}
        for value in values:
            overrides: dict[str, Any] = {"algorithm": algorithm}
            if parameter != "tps":
                overrides[parameter] = value
            config = base.with_overrides(**overrides)
            documents = documents_factory(value)
            report = TagCorrelationSystem(config).run(documents)
            result.reports[algorithm][value] = report
    return result


def paper_parameter_grid() -> dict[str, list[Any]]:
    """The parameter values of Section 8.1."""
    return {
        "repartition_threshold": [0.2, 0.5],
        "n_partitioners": [3, 5, 10],
        "k": [5, 10, 20],
        "tps": [1300, 2600],
    }
