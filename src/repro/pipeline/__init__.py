"""High-level public API: configuration, the system, and parameter sweeps."""

from .config import PAPER_DEFAULTS, SystemConfig
from .sweeps import SweepResult, default_workload, paper_parameter_grid, run_sweep
from .system import RunReport, TagCorrelationSystem, run_system

__all__ = [
    "PAPER_DEFAULTS",
    "RunReport",
    "SweepResult",
    "SystemConfig",
    "TagCorrelationSystem",
    "default_workload",
    "paper_parameter_grid",
    "run_sweep",
    "run_system",
]
