"""The end-to-end tag-correlation system: topology assembly and run reports.

:class:`TagCorrelationSystem` wires the Figure-2 topology on top of the
stream-processing substrate, runs it over a stream of documents and collects
every metric of the paper's evaluation into a :class:`RunReport`:

* Communication — average notifications per routed tagset (Section 8.2.1),
* Processing load — per-Calculator notification counts, their Gini
  coefficient and the maximum share (Section 8.2.2),
* Jaccard accuracy — coverage and mean error against the centralised exact
  baseline for tagsets seen more than ``sn`` times (Section 8.2.3),
* Repartitions — count and trigger breakdown (Section 8.2.4),
* Quality over time — snapshots of communication and load between
  repartitions (Section 8.2.5),
* Batching — physical notification messages and the amortization factor of
  the batched Disseminator→Calculator engine,
* Sketch accuracy — MinHash/Count-Min parameters and tracked-key counts
  when the approximate tracking mode (``calculator="sketch"``) is active,
* Execution engine — which executor ran the topology (``executor_mode``)
  and how many worker processes the Calculator/Tracker layer was sharded
  over (``executor_workers``); logical metrics are executor-independent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.documents import Document
from ..core.jaccard import DEFAULT_SUBSET_CACHE_SIZE
from ..core.metrics import (
    JaccardErrorReport,
    gini_coefficient,
    jaccard_error,
    max_load_share,
)
from ..operators import (
    BaseCalculatorBolt,
    CalculatorBolt,
    CentralizedCalculatorBolt,
    DisseminatorBolt,
    DocumentSpout,
    MergerBolt,
    MigrationRecord,
    ParserBolt,
    PartitionInstall,
    PartitionerBolt,
    QualitySnapshot,
    RepartitionEvent,
    ServiceSpout,
    SketchCalculatorBolt,
    TrackerBolt,
)
from ..operators import streams
from ..partitioning import make_partitioner
from ..store import StoreConfig
from ..streamsim import (
    AsyncServiceExecutor,
    Cluster,
    Executor,
    ShardedProcessExecutor,
    TopologyBuilder,
    make_executor,
)
from .config import SystemConfig


@dataclass(frozen=True)
class ExactCalculatorFactory:
    """Picklable factory for exact-mode Calculators.

    The process executor pickles the remote layer's factories into its
    workers, so the Calculator factory cannot be a closure; a frozen
    dataclass carrying the constructor arguments is importable and
    picklable from any process.
    """

    report_interval: float = 300.0
    max_tags_per_document: int = 12
    reporting_engine: str = "incremental"
    subset_cache_size: int = DEFAULT_SUBSET_CACHE_SIZE
    counter_store: str = "dict"
    spill_dir: str | None = None
    spill_threshold: int | None = None
    report_chunk_size: int = 0

    def __call__(self) -> CalculatorBolt:
        return CalculatorBolt(
            report_interval=self.report_interval,
            max_tags_per_document=self.max_tags_per_document,
            reporting_engine=self.reporting_engine,
            subset_cache_size=self.subset_cache_size,
            counter_store=self.counter_store,
            spill_dir=self.spill_dir,
            spill_threshold=self.spill_threshold,
            report_chunk_size=self.report_chunk_size,
        )


@dataclass(frozen=True)
class SketchCalculatorFactory:
    """Picklable factory for sketch-mode Calculators (see above)."""

    report_interval: float = 300.0
    max_tags_per_document: int = 12
    num_perm: int = 512
    seed: int = 1
    countmin_epsilon: float = 0.002
    countmin_delta: float = 0.01
    max_subset_size: int = 4
    report_chunk_size: int = 0

    def __call__(self) -> SketchCalculatorBolt:
        return SketchCalculatorBolt(
            report_interval=self.report_interval,
            max_tags_per_document=self.max_tags_per_document,
            num_perm=self.num_perm,
            seed=self.seed,
            countmin_epsilon=self.countmin_epsilon,
            countmin_delta=self.countmin_delta,
            max_subset_size=self.max_subset_size,
            report_chunk_size=self.report_chunk_size,
        )


@dataclass(frozen=True)
class TrackerFactory:
    """Picklable factory for the Tracker bolt (see above).

    Carries the tracker-store selection into worker processes: under the
    process executor the Tracker is a remote component, so its spill store
    — when enabled — lives (and spills) inside a worker shard and ships
    its run manifest back at finalize time.
    """

    tracker_store: str = "dict"
    spill_dir: str | None = None
    spill_threshold: int | None = None

    def __call__(self) -> TrackerBolt:
        if self.tracker_store == "dict":
            return TrackerBolt()
        return TrackerBolt(
            tracker_store=self.tracker_store,
            store_config=StoreConfig().replacing(
                spill_dir=self.spill_dir,
                spill_threshold=self.spill_threshold,
            ),
        )


@dataclass(slots=True)
class RunReport:
    """All evaluation metrics of one run of the system."""

    algorithm: str
    config: SystemConfig
    documents_processed: int
    tagged_documents: int

    communication_avg: float
    calculator_loads: list[int]
    load_gini: float
    load_max_share: float

    n_repartitions: int
    repartition_reasons: dict[str, int]
    single_addition_requests: int
    single_additions_applied: int

    coefficients_reported: int
    duplicate_reports: int
    jaccard: JaccardErrorReport | None
    history: list[QualitySnapshot] = field(default_factory=list)
    repartition_events: list[RepartitionEvent] = field(default_factory=list)
    #: Every partition map installed over the run (epoch, seed values and
    #: whether a coordinated state migration preceded the install).
    partition_installs: list[PartitionInstall] = field(default_factory=list)
    #: Coordinated state-migration handoffs (committed and aborted), with
    #: per-handoff migrated-triple counts and wall-clock stall.
    migrations: list[MigrationRecord] = field(default_factory=list)
    #: Aggregate migration accounting (None when no handoff ran):
    #: ``handoffs``, ``aborted``, ``migrated_triples``, ``stall_seconds``.
    migration_stats: dict[str, float] | None = None
    #: Error descriptions of aborted migrations (old map stayed in force).
    migration_failures: list[str] = field(default_factory=list)

    #: Which workload scenario produced the consumed document stream
    #: (``SystemConfig.scenario`` provenance; None when unknown).
    workload_scenario: str | None = None
    #: Which Calculator implementation ran: "exact" or "sketch".
    calculator_mode: str = "exact"
    #: Physical batched notification tuples shipped Disseminator→Calculators.
    notification_messages: int = 0
    #: Logical notifications per physical message (≥ 1; the batching win).
    batch_amortization: float = 1.0
    #: Sketch-mode accuracy/size figures (None in exact mode): MinHash width,
    #: the per-estimate standard error bound and the tracked-key count.
    sketch_stats: dict[str, float] | None = None
    #: Which execution engine ran the topology: "inline" or "process".
    executor_mode: str = "inline"
    #: Worker processes the Calculator/Tracker layer was sharded over
    #: (1 in inline mode).
    executor_workers: int = 1
    #: Union computation of exact-mode report rounds: "incremental" (one
    #: subset-lattice fold per distinct observed tagset type), "delta"
    #: (cross-round: fold only dirty types, re-assert clean ones from the
    #: carry table) or "scratch" (the original per-key counter-table
    #: re-walk).  Identical coefficients in all three.
    reporting_engine: str = "incremental"
    #: Aggregate hit/miss/eviction accounting of the exact Calculators'
    #: subset-tuple LRU caches plus the delta engine's carry-table
    #: hits/misses/invalidations (None in sketch mode).
    subset_cache_stats: dict[str, int] | None = None
    #: Which backing table the exact Calculators counted into: "dict"
    #: (all-RAM, the default) or "spill" (out-of-core run files — see
    #: docs/ARCHITECTURE.md "Counter store").  Logical metrics are
    #: store-independent.
    counter_store: str = "dict"
    #: Aggregate spill-store accounting across exact Calculators (None
    #: under the dict store): spilled entries/runs/bytes, merge counts and
    #: merge-phase wall-clock, block-cache hits/misses/evictions and the
    #: delta carry log's blob/byte figures.  Wall-clock content — like
    #: ``timings``, informational only and excluded from the
    #: logical-equivalence contract.
    store_stats: dict[str, float] | None = None
    #: Which backing table the Tracker deduplicated into: "dict" (all-RAM,
    #: the default) or "spill" (out-of-core run files with the max-support
    #: rule as merge combiner).  Logical metrics are store-independent.
    tracker_store: str = "dict"
    #: The tracker spill store's accounting (None under the dict store):
    #: spilled entries/runs/bytes, merges, membership probes and
    #: block-cache counters.  Wall-clock content — informational only,
    #: excluded from the logical-equivalence contract.
    tracker_store_stats: dict[str, float] | None = None
    #: In-stream report-round attribution, aggregated over Calculators:
    #: ``rounds`` executed, their total wall-clock ``report_seconds``, the
    #: ``dirty_types``/``clean_types`` fold-vs-reuse split and the
    #: ``deferred_triples`` whose shipping moved to the drain.  Wall-clock
    #: content, so — like ``timings`` — informational only and excluded
    #: from the logical-equivalence contract (None without Calculators).
    report_round_stats: dict[str, float] | None = None
    #: Wall-clock phase breakdown of this run (seconds): "build" (topology
    #: assembly), "stream" (cluster execution) and "reporting" (final drain
    #: + metric collection).  Informational only — excluded from the
    #: logical-equivalence contract, unlike every field above.
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def jaccard_coverage(self) -> float:
        """Fraction of qualifying tagsets that received some coefficient."""
        return self.jaccard.coverage if self.jaccard is not None else 1.0

    @property
    def jaccard_mean_error(self) -> float:
        return self.jaccard.mean_absolute_error if self.jaccard is not None else 0.0

    def summary(self) -> dict[str, float]:
        """Compact numeric summary used by benchmarks and examples."""
        return {
            "communication": self.communication_avg,
            "load_gini": self.load_gini,
            "load_max_share": self.load_max_share,
            "repartitions": float(self.n_repartitions),
            "jaccard_error": self.jaccard_mean_error,
            "jaccard_coverage": self.jaccard_coverage,
            "single_additions": float(self.single_additions_applied),
            "notification_messages": float(self.notification_messages),
            "batch_amortization": self.batch_amortization,
        }


class TagCorrelationSystem:
    """Builds and runs the distributed tag-correlation topology."""

    def __init__(self, config: SystemConfig | None = None) -> None:
        self.config = config or SystemConfig()
        self.config.validate()
        self._cluster: Cluster | None = None

    # ------------------------------------------------------------------ #
    # Topology assembly
    # ------------------------------------------------------------------ #
    def build_cluster(self, documents: Iterable[Document] = ()) -> Cluster:
        """Assemble the Figure-2 topology over the given document stream.

        In service mode (``executor="service"``) the spout pulls from the
        executor's ingest queue instead of ``documents`` — pass documents
        via ``AsyncServiceExecutor.submit`` (or just call :meth:`run`,
        which submits and drains for you).
        """
        config = self.config
        executor = self._build_executor()
        builder = TopologyBuilder()

        # Declare the slot layout of every Figure-2 stream up front: the
        # interned schemas are the wire format (positional emission, slot
        # tuples) and let the builder validate fields groupings against the
        # declared fields.
        for schema in (
            streams.TWEETS,
            streams.TAGSETS,
            streams.PARTIAL_PARTITIONS,
            streams.PARTITIONS,
            streams.SINGLE_ADDITIONS,
            streams.MISSING_TAGSETS,
            streams.REPARTITION_REQUESTS,
            streams.NOTIFICATIONS,
            streams.COEFFICIENTS,
        ):
            builder.stream(schema)

        if isinstance(executor, AsyncServiceExecutor):
            builder.set_spout(streams.SOURCE, lambda: ServiceSpout(executor))
        else:
            builder.set_spout(streams.SOURCE, lambda: DocumentSpout(documents))

        builder.set_bolt(
            streams.PARSER,
            lambda: ParserBolt(config.max_tags_per_document),
            parallelism=config.n_parsers,
        ).shuffle_grouping(streams.SOURCE, streams.TWEETS)

        builder.set_bolt(
            streams.PARTITIONER,
            lambda: PartitionerBolt(
                algorithm=make_partitioner(config.algorithm, **config.algorithm_options),
                k=config.k,
                window_mode=config.window_mode,
                window_size=config.window_size,
                approximate_counts=config.calculator == "sketch",
                countmin_epsilon=config.countmin_epsilon,
                countmin_delta=config.countmin_delta,
            ),
            parallelism=config.n_partitioners,
        ).fields_grouping(streams.PARSER, ["tagset"], streams.TAGSETS).all_grouping(
            streams.DISSEMINATOR, streams.REPARTITION_REQUESTS
        )

        builder.set_bolt(
            streams.MERGER,
            lambda: MergerBolt(
                algorithm=make_partitioner(config.algorithm, **config.algorithm_options),
                k=config.k,
                initial_partitions=config.initial_partitions,
            ),
            parallelism=1,
        ).shuffle_grouping(streams.PARTITIONER, streams.PARTIAL_PARTITIONS).shuffle_grouping(
            streams.DISSEMINATOR, streams.MISSING_TAGSETS
        )

        builder.set_bolt(
            streams.DISSEMINATOR,
            lambda: DisseminatorBolt(
                k=config.k,
                repartition_threshold=config.repartition_threshold,
                single_addition_threshold=config.single_addition_threshold,
                quality_check_interval=config.quality_check_interval,
                bootstrap_documents=config.bootstrap_documents,
                notification_batch_size=config.notification_batch_size,
                repartition_policy=config.repartition_policy,
                repartition_at=config.repartition_at,
                repartition_handoff=config.repartition_handoff,
                initial_partitions=config.initial_partitions,
            ),
            parallelism=config.n_disseminators,
        ).shuffle_grouping(streams.PARSER, streams.TAGSETS).all_grouping(
            streams.MERGER, streams.PARTITIONS
        ).all_grouping(streams.MERGER, streams.SINGLE_ADDITIONS)

        builder.set_bolt(
            streams.CALCULATOR,
            self._calculator_factory(),
            parallelism=config.k,
        ).direct_grouping(streams.DISSEMINATOR, streams.NOTIFICATIONS)

        builder.set_bolt(
            streams.TRACKER,
            TrackerFactory(
                tracker_store=config.tracker_store,
                spill_dir=config.spill_dir,
                spill_threshold=config.resolved_tracker_spill_threshold(),
            ),
            parallelism=1,
        ).shuffle_grouping(streams.CALCULATOR, streams.COEFFICIENTS)

        if config.include_centralized_baseline:
            builder.set_bolt(
                streams.CENTRALIZED,
                lambda: CentralizedCalculatorBolt(
                    min_occurrences=config.single_addition_threshold
                ),
                parallelism=1,
            ).shuffle_grouping(streams.PARSER, streams.TAGSETS)

        return Cluster(
            builder.build(),
            tick_interval=config.tick_interval_seconds,
            executor=executor,
            link_batch_size=config.link_batch_size,
        )

    def _calculator_factory(self):
        """Factory for the configured Calculator mode (exact or sketch).

        Returns a picklable factory object (not a closure): the process
        executor ships it into worker processes.
        """
        config = self.config
        if config.calculator == "sketch":
            return SketchCalculatorFactory(
                report_interval=config.report_interval_seconds,
                max_tags_per_document=config.max_tags_per_document,
                num_perm=config.minhash_permutations,
                seed=config.minhash_seed,
                countmin_epsilon=config.countmin_epsilon,
                countmin_delta=config.countmin_delta,
                max_subset_size=config.sketch_max_subset_size,
            )
        return ExactCalculatorFactory(
            report_interval=config.report_interval_seconds,
            max_tags_per_document=config.max_tags_per_document,
            reporting_engine=config.reporting_engine,
            subset_cache_size=config.subset_cache_size,
            counter_store=config.counter_store,
            spill_dir=config.spill_dir,
            spill_threshold=config.spill_threshold,
            report_chunk_size=config.report_chunk_size,
        )

    def _build_executor(self) -> Executor:
        """The execution engine selected by ``SystemConfig.executor``.

        In process mode the Calculator/Tracker layer — the only pure sink
        layer of the Figure-2 topology — is sharded across workers; every
        upstream operator stays in the driver.
        """
        return make_executor(
            self.config.executor,
            workers=self.config.resolved_workers(),
            remote_components=(streams.CALCULATOR, streams.TRACKER),
            queue_limit=self.config.service_queue_limit,
            drain_chunk_size=self.config.report_chunk_size,
        )

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #
    def run(self, documents: Sequence[Document] | Iterable[Document]) -> RunReport:
        """Run the topology over the documents and gather the run report.

        ``RunReport.timings`` records the wall-clock phase breakdown
        (build / stream / reporting) consumed by the throughput harness.
        """
        t0 = time.perf_counter()
        cluster = self.build_cluster(documents)
        t1 = time.perf_counter()
        executor = cluster.executor
        if isinstance(executor, AsyncServiceExecutor):
            # Served-batch compatibility: queue the whole stream as one
            # batch and drain immediately, so a plain run() under
            # executor="service" is the single-writer loop over the same
            # document sequence a batch run would consume.
            executor.submit(documents)
            executor.request_drain()
        cluster.run()
        t2 = time.perf_counter()
        self._cluster = cluster
        report = self._collect_report(cluster)
        t3 = time.perf_counter()
        report.timings = {
            "build": t1 - t0,
            "stream": t2 - t1,
            "reporting": t3 - t2,
            # Wall-clock the stream phase spent inside coordinated state
            # handoffs (quiesce → migrate → install); 0.0 without any.
            # A subset of "stream", reported separately so the perf
            # harness can attribute it.
            "migration_stall": cluster.migration_stall_seconds,
        }
        return report

    @property
    def cluster(self) -> Cluster | None:
        """The last executed cluster (for inspection in tests and examples)."""
        return self._cluster

    def collect_report(self, cluster: Cluster) -> RunReport:
        """Collect the :class:`RunReport` of an externally driven cluster.

        The service daemon's path: it builds the cluster itself, drives it
        on a writer thread and — once the drain has finished — collects the
        final report here, exactly as :meth:`run` would have.  The cluster
        must be fully drained (``cluster.run()`` returned) before calling.
        """
        self._cluster = cluster
        return self._collect_report(cluster)

    # ------------------------------------------------------------------ #
    # Metric collection
    # ------------------------------------------------------------------ #
    def _collect_report(self, cluster: Cluster) -> RunReport:
        config = self.config
        parsers = [
            bolt for bolt in cluster.instances_of(streams.PARSER)
            if isinstance(bolt, ParserBolt)
        ]
        disseminators = [
            bolt
            for bolt in cluster.instances_of(streams.DISSEMINATOR)
            if isinstance(bolt, DisseminatorBolt)
        ]
        calculators = [
            bolt
            for bolt in cluster.instances_of(streams.CALCULATOR)
            if isinstance(bolt, BaseCalculatorBolt)
        ]
        trackers = [
            bolt for bolt in cluster.instances_of(streams.TRACKER)
            if isinstance(bolt, TrackerBolt)
        ]
        mergers = [
            bolt for bolt in cluster.instances_of(streams.MERGER)
            if isinstance(bolt, MergerBolt)
        ]
        tracker = trackers[0]

        # Final flush: counters still held by Calculators are reported to
        # the Tracker directly (the simulated clock stops with the stream).
        # With the process executor the drain already ran inside the worker
        # shards — the shipped result lists are replayed here in driver task
        # order, which is exactly the inline drain order.  Tracked-key
        # counts must be sampled before a drain resets them; worker-drained
        # runs shipped the pre-drain sample alongside the results.
        predrained = cluster.executor.drained_results()
        sketch_tracked_total = 0
        for bolt in calculators:
            if not isinstance(bolt, SketchCalculatorBolt):
                continue
            drained = predrained.get(bolt.task_id)
            if drained is not None and drained[2] is not None:
                sketch_tracked_total += drained[2]
            else:
                sketch_tracked_total += bolt.estimator.tracked_tagsets
        for calculator in calculators:
            drained = predrained.get(calculator.task_id)
            if drained is not None:
                triples, replays, _ = drained
            else:
                triples, replays = calculator.drain_payload()
                # Mirror the worker-side drain: drop the delta engine's
                # carried fold state now that no further round can reuse
                # it (accounting survives; see release_delta_state).
                release = getattr(calculator, "release_delta_state", None)
                if release is not None:
                    release()
            tracker.ingest(triples)
            if replays:
                # Coefficients the delta engine suppressed in-stream
                # (identical-value repeats), re-asserted with their
                # suppression counts so the Tracker's dedup table and
                # duplicate accounting match the ship-everything engines.
                tracker.ingest_repeated(replays)

        notifications = 0
        routed = 0
        unrouted = 0
        notification_messages = 0
        loads = [0] * config.k
        repartition_events: list[RepartitionEvent] = []
        history: list[QualitySnapshot] = []
        partition_installs: list[PartitionInstall] = []
        migrations: list[MigrationRecord] = []
        single_addition_requests = 0
        for disseminator in disseminators:
            metrics = disseminator.metrics
            notifications += metrics.communication.notifications
            routed += metrics.communication.routed_tagsets
            unrouted += metrics.unrouted_tagsets
            notification_messages += metrics.notification_messages
            for index, load in enumerate(metrics.load.loads(config.k)):
                loads[index] += load
            repartition_events.extend(metrics.repartitions)
            history.extend(metrics.history)
            partition_installs.extend(metrics.installs)
            migrations.extend(metrics.migrations)
            single_addition_requests += metrics.single_addition_requests
        repartition_events.sort(key=lambda event: event.documents_processed)
        history.sort(key=lambda snapshot: snapshot.documents_processed)
        partition_installs.sort(key=lambda install: install.documents_processed)
        migrations.sort(key=lambda record: record.documents_processed)

        migration_stats: dict[str, float] | None = None
        if migrations:
            migration_stats = {
                "handoffs": float(len(migrations)),
                "aborted": float(sum(1 for m in migrations if m.aborted)),
                "migrated_triples": float(
                    sum(m.migrated_triples for m in migrations)
                ),
                "stall_seconds": sum(m.stall_seconds for m in migrations),
            }

        communication_avg = notifications / routed if routed else 0.0
        reasons: dict[str, int] = {}
        for event in repartition_events:
            reasons[event.reason] = reasons.get(event.reason, 0) + 1

        jaccard_report = self._jaccard_report(cluster, tracker)

        batch_amortization = (
            notifications / notification_messages if notification_messages else 1.0
        )
        sketch_stats: dict[str, float] | None = None
        sketch_calculators = [
            bolt for bolt in calculators if isinstance(bolt, SketchCalculatorBolt)
        ]
        if config.calculator == "sketch" and sketch_calculators:
            sketch_stats = {
                "minhash_permutations": float(config.minhash_permutations),
                "estimate_stddev_bound": sketch_calculators[0].estimator.error_bound,
                "countmin_epsilon": config.countmin_epsilon,
                "tracked_tagsets": float(sketch_tracked_total),
            }

        subset_cache_stats: dict[str, int] | None = None
        exact_calculators = [
            bolt for bolt in calculators if isinstance(bolt, CalculatorBolt)
        ]
        if exact_calculators:
            subset_cache_stats = {
                "hits": 0, "misses": 0, "evictions": 0,
                "carry_hits": 0, "carry_misses": 0,
                "carry_invalidations": 0, "carry_evictions": 0,
            }
            for bolt in exact_calculators:
                stats = bolt.calculator.cache_stats
                for key in ("hits", "misses", "evictions"):
                    subset_cache_stats[key] += stats[key]
                carry = bolt.calculator.carry_stats
                for key in ("carry_hits", "carry_misses",
                            "carry_invalidations", "carry_evictions"):
                    subset_cache_stats[key] += carry[key]

        store_stats: dict[str, float] | None = None
        if config.counter_store == "spill" and exact_calculators:
            store_stats = {}
            for bolt in exact_calculators:
                per_bolt = bolt.calculator.store_stats
                if per_bolt is None:
                    continue
                for key, value in per_bolt.items():
                    store_stats[key] = store_stats.get(key, 0) + value

        tracker_store_stats: dict[str, float] | None = None
        if config.tracker_store == "spill":
            tracker_store_stats = tracker.store_stats()

        report_round_stats: dict[str, float] | None = None
        if calculators:
            report_round_stats = {
                "rounds": float(sum(b.report_rounds for b in calculators)),
                "report_seconds": sum(b.report_seconds for b in calculators),
                "dirty_types": float(sum(
                    b.calculator.counter.types_folded
                    for b in exact_calculators
                )),
                "clean_types": float(sum(
                    b.calculator.counter.types_reused
                    for b in exact_calculators
                )),
                "deferred_triples": float(sum(
                    b.coefficients_deferred for b in calculators
                )),
            }

        return RunReport(
            algorithm=config.algorithm,
            config=config,
            documents_processed=sum(
                spout.emitted for spout in cluster.instances_of(streams.SOURCE)  # type: ignore[attr-defined]
            ),
            tagged_documents=sum(parser.parsed for parser in parsers),
            communication_avg=communication_avg,
            calculator_loads=loads,
            load_gini=gini_coefficient(loads),
            load_max_share=max_load_share(loads),
            n_repartitions=len(repartition_events),
            repartition_reasons=reasons,
            single_addition_requests=single_addition_requests,
            single_additions_applied=sum(m.single_additions for m in mergers),
            coefficients_reported=len(tracker),
            duplicate_reports=tracker.duplicate_reports,
            jaccard=jaccard_report,
            history=history,
            repartition_events=repartition_events,
            partition_installs=partition_installs,
            migrations=migrations,
            migration_stats=migration_stats,
            migration_failures=list(cluster.migration_failures),
            workload_scenario=config.scenario,
            calculator_mode=config.calculator,
            notification_messages=notification_messages,
            batch_amortization=batch_amortization,
            sketch_stats=sketch_stats,
            executor_mode=config.executor,
            executor_workers=(
                cluster.executor.effective_workers
                if isinstance(cluster.executor, ShardedProcessExecutor)
                else 1
            ),
            reporting_engine=config.reporting_engine,
            subset_cache_stats=subset_cache_stats,
            counter_store=config.counter_store,
            store_stats=store_stats,
            tracker_store=config.tracker_store,
            tracker_store_stats=tracker_store_stats,
            report_round_stats=report_round_stats,
        )

    def _jaccard_report(
        self, cluster: Cluster, tracker: TrackerBolt
    ) -> JaccardErrorReport | None:
        if not self.config.include_centralized_baseline:
            return None
        baselines = [
            bolt
            for bolt in cluster.instances_of(streams.CENTRALIZED)
            if isinstance(bolt, CentralizedCalculatorBolt)
        ]
        if not baselines:
            return None
        ground_truth = baselines[0].ground_truth()
        # The lazy view probes the Tracker's dedup table in place — no dict
        # copy of tens of thousands of coefficients per error report.
        return jaccard_error(tracker.coefficient_view(), ground_truth)


def run_system(
    documents: Sequence[Document] | Iterable[Document],
    config: SystemConfig | None = None,
) -> RunReport:
    """One-shot helper: build, run and report."""
    return TagCorrelationSystem(config).run(documents)
