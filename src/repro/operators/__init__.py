"""The operators of the Figure-2 topology plus the centralised baseline."""

from .calculator import BaseCalculatorBolt, CalculatorBolt
from .sketch_calculator import SketchCalculatorBolt
from .centralized import CentralizedCalculatorBolt
from .disseminator import (
    DisseminatorBolt,
    DisseminatorMetrics,
    QualitySnapshot,
    RepartitionEvent,
    REASON_BOOTSTRAP,
    REASON_BOTH,
    REASON_COMMUNICATION,
    REASON_LOAD,
)
from .merger import MergerBolt
from .parser import ParserBolt, extract_hashtags
from .partitioner import PartitionerBolt, SlidingWindow
from .spouts import DocumentSpout, FileSpout
from .tracker import CoefficientView, TrackerBolt
from . import streams

__all__ = [
    "BaseCalculatorBolt",
    "CoefficientView",
    "CalculatorBolt",
    "SketchCalculatorBolt",
    "CentralizedCalculatorBolt",
    "DisseminatorBolt",
    "DisseminatorMetrics",
    "DocumentSpout",
    "FileSpout",
    "MergerBolt",
    "ParserBolt",
    "PartitionerBolt",
    "QualitySnapshot",
    "REASON_BOOTSTRAP",
    "REASON_BOTH",
    "REASON_COMMUNICATION",
    "REASON_LOAD",
    "RepartitionEvent",
    "SlidingWindow",
    "TrackerBolt",
    "extract_hashtags",
    "streams",
]
