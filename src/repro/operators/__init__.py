"""The operators of the Figure-2 topology plus the centralised baseline."""

from .calculator import BaseCalculatorBolt, CalculatorBolt
from .sketch_calculator import SketchCalculatorBolt
from .centralized import CentralizedCalculatorBolt
from .controller import REPARTITION_POLICIES, RepartitionController
from .disseminator import (
    DisseminatorBolt,
    DisseminatorMetrics,
    MigrationRecord,
    PartitionInstall,
    QualitySnapshot,
    RepartitionEvent,
    REASON_BOOTSTRAP,
    REASON_BOTH,
    REASON_COMMUNICATION,
    REASON_FORCED,
    REASON_LOAD,
)
from .merger import MergerBolt
from .parser import ParserBolt, extract_hashtags
from .partitioner import PartitionerBolt, SlidingWindow
from .spouts import DocumentSpout, FileSpout, ServiceSpout
from .tracker import (
    CoefficientView,
    SpillCoefficientView,
    TrackerBolt,
    TrackerSnapshot,
)
from . import streams

__all__ = [
    "BaseCalculatorBolt",
    "CoefficientView",
    "SpillCoefficientView",
    "CalculatorBolt",
    "SketchCalculatorBolt",
    "CentralizedCalculatorBolt",
    "DisseminatorBolt",
    "DisseminatorMetrics",
    "DocumentSpout",
    "FileSpout",
    "MergerBolt",
    "MigrationRecord",
    "ParserBolt",
    "PartitionInstall",
    "PartitionerBolt",
    "QualitySnapshot",
    "REASON_BOOTSTRAP",
    "REASON_BOTH",
    "REASON_COMMUNICATION",
    "REASON_FORCED",
    "REASON_LOAD",
    "REPARTITION_POLICIES",
    "RepartitionController",
    "RepartitionEvent",
    "ServiceSpout",
    "SlidingWindow",
    "TrackerBolt",
    "TrackerSnapshot",
    "extract_hashtags",
    "streams",
]
