"""The Tracker bolt: deduplicates coefficients reported by Calculators.

When a tag is replicated across partitions, several Calculators may report a
Jaccard coefficient for the same tagset.  The Tracker keeps, for every
tagset, the coefficient supported by the longest-tracked counter (maximum
``CN(s_i)``), the heuristic of Section 6.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.jaccard import JaccardResult
from ..streamsim.components import Bolt
from ..streamsim.tuples import TupleMessage
from .streams import COEFFICIENTS


@dataclass(slots=True)
class TrackedCoefficient:
    """The best coefficient seen so far for one tagset."""

    jaccard: float
    support: int
    reports: int = 1


class TrackerBolt(Bolt):
    """Selects, per tagset, the reported coefficient with maximum support."""

    def __init__(self) -> None:
        super().__init__()
        self._best: dict[frozenset[str], TrackedCoefficient] = {}
        self.reports_received = 0
        self.duplicate_reports = 0

    def execute(self, message: TupleMessage) -> None:
        if message.stream != COEFFICIENTS:
            return
        for tagset, jaccard, support in message["results"]:
            self.observe(
                JaccardResult(
                    tagset=frozenset(tagset),
                    jaccard=float(jaccard),
                    support=int(support),
                )
            )

    def observe(self, result: JaccardResult) -> None:
        """Record one reported coefficient (also used by the pipeline's flush)."""
        self.reports_received += 1
        existing = self._best.get(result.tagset)
        if existing is None:
            self._best[result.tagset] = TrackedCoefficient(
                jaccard=result.jaccard, support=result.support
            )
            return
        self.duplicate_reports += 1
        existing.reports += 1
        if result.support > existing.support:
            existing.jaccard = result.jaccard
            existing.support = result.support

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def coefficients(self, min_support: int = 0) -> dict[frozenset[str], float]:
        """Final coefficient per tagset, optionally filtered by support."""
        return {
            tagset: tracked.jaccard
            for tagset, tracked in self._best.items()
            if tracked.support >= min_support
        }

    def supports(self) -> dict[frozenset[str], int]:
        """Supporting counter value per tagset."""
        return {tagset: tracked.support for tagset, tracked in self._best.items()}

    def __len__(self) -> int:
        return len(self._best)
