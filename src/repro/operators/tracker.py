"""The Tracker bolt: deduplicates coefficients reported by Calculators.

When a tag is replicated across partitions, several Calculators may report a
Jaccard coefficient for the same tagset.  The Tracker keeps, for every
tagset, the coefficient supported by the longest-tracked counter (maximum
``CN(s_i)``), the heuristic of Section 6.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..core.jaccard import JaccardResult
from ..streamsim.components import Bolt
from ..streamsim.tuples import TupleMessage
from .streams import COEFFICIENTS


@dataclass(slots=True)
class TrackedCoefficient:
    """The best coefficient seen so far for one tagset."""

    jaccard: float
    support: int
    reports: int = 1


class TrackerBolt(Bolt):
    """Selects, per tagset, the reported coefficient with maximum support."""

    def __init__(self) -> None:
        super().__init__()
        self._best: dict[frozenset[str], TrackedCoefficient] = {}
        self.reports_received = 0
        self.duplicate_reports = 0

    def execute(self, message: TupleMessage) -> None:
        if message.stream != COEFFICIENTS:
            return
        self.ingest(message["results"])

    def ingest(
        self, results: "Iterable[tuple[frozenset[str], float, int]]"
    ) -> None:
        """Deduplicate a batch of ``(tagset, jaccard, support)`` wire triples.

        The hot path: one batched tuple per Calculator report round (and
        the end-of-run drain) carries every coefficient of the round, so
        the dedup loop runs inline on the triples instead of wrapping each
        in a :class:`JaccardResult`.
        """
        best = self._best
        received = 0
        duplicates = 0
        for tagset, jaccard, support in results:
            received += 1
            tagset = frozenset(tagset)
            existing = best.get(tagset)
            if existing is None:
                best[tagset] = TrackedCoefficient(
                    jaccard=float(jaccard), support=int(support)
                )
                continue
            duplicates += 1
            existing.reports += 1
            if support > existing.support:
                existing.jaccard = float(jaccard)
                existing.support = int(support)
        self.reports_received += received
        self.duplicate_reports += duplicates

    def observe(self, result: JaccardResult) -> None:
        """Record one reported coefficient (kept for single-result callers)."""
        self.ingest(((result.tagset, result.jaccard, result.support),))

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def coefficients(self, min_support: int = 0) -> dict[frozenset[str], float]:
        """Final coefficient per tagset, optionally filtered by support."""
        return {
            tagset: tracked.jaccard
            for tagset, tracked in self._best.items()
            if tracked.support >= min_support
        }

    def supports(self) -> dict[frozenset[str], int]:
        """Supporting counter value per tagset."""
        return {tagset: tracked.support for tagset, tracked in self._best.items()}

    def __len__(self) -> int:
        return len(self._best)
