"""The Tracker bolt: deduplicates coefficients reported by Calculators.

When a tag is replicated across partitions, several Calculators may report a
Jaccard coefficient for the same tagset.  The Tracker keeps, for every
tagset, the coefficient supported by the longest-tracked counter (maximum
``CN(s_i)``), the heuristic of Section 6.2.

Result access is lazy: :meth:`TrackerBolt.coefficient_view` exposes the
tracked coefficients as a read-only mapping over the live dedup table and
:meth:`TrackerBolt.iter_coefficients` streams them — the error report of a
run probes tens of thousands of tagsets without materialising a dict copy
per report.  :meth:`TrackerBolt.coefficients` still builds a plain dict for
callers that want a snapshot.

The dedup table itself is pluggable (``tracker_store``): the default
``"dict"`` keeps every winner in RAM exactly as before, while ``"spill"``
backs the bolt with :class:`repro.store.SpillingTrackerStore` — cold
entries freeze into sorted run files past a threshold, the max-support
rule becomes the run-merge combiner, and reads answer from a merged view
of hot dict + runs.  Both stores produce bit-identical coefficients,
supports and duplicate accounting (pinned by the equivalence suites).
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..core.jaccard import JaccardResult
from ..store import SpillingTrackerStore, StoreConfig, TRACKER_STORES
from ..streamsim.components import Bolt
from ..streamsim.tuples import TupleMessage
from .streams import COEFFICIENTS


@dataclass(slots=True)
class TrackedCoefficient:
    """The best coefficient seen so far for one tagset."""

    jaccard: float
    support: int
    reports: int = 1


class CoefficientView(Mapping):
    """Read-only mapping view over the Tracker's dedup table.

    Backed directly by the live ``tagset -> TrackedCoefficient`` dict:
    lookups and membership tests cost one dict probe and **no** per-report
    dict materialisation (the old ``coefficients()`` built a full copy every
    time the error report ran).  ``min_support`` filters transparently —
    filtered entries behave as absent.  Iteration length under a filter is
    O(n) on first use and cached until the Tracker ingests again.
    """

    __slots__ = ("_best", "_min_support", "_len", "_stamp", "_tracker")

    def __init__(self, tracker: "TrackerBolt", min_support: int = 0) -> None:
        self._tracker = tracker
        self._best = tracker._best
        self._min_support = min_support
        self._len: int | None = None
        self._stamp = tracker.reports_received

    def __getitem__(self, tagset: frozenset[str]) -> float:
        tracked = self._best[tagset]
        if tracked.support < self._min_support:
            raise KeyError(tagset)
        return tracked.jaccard

    def __contains__(self, tagset: object) -> bool:
        tracked = self._best.get(tagset)  # type: ignore[arg-type]
        return tracked is not None and tracked.support >= self._min_support

    def __iter__(self) -> Iterator[frozenset[str]]:
        min_support = self._min_support
        for tagset, tracked in self._best.items():
            if tracked.support >= min_support:
                yield tagset

    def __len__(self) -> int:
        if self._min_support <= 0:
            return len(self._best)
        if self._len is None or self._stamp != self._tracker.reports_received:
            self._stamp = self._tracker.reports_received
            self._len = sum(1 for _ in self)
        return self._len


class SpillCoefficientView(Mapping):
    """Read-only mapping over a spill-backed Tracker's merged table.

    The same contract as :class:`CoefficientView` — one logical probe per
    lookup, ``min_support`` filtering, cached filtered length — but each
    probe folds the hot segment with the live runs through the store's
    block cache instead of hitting one dict.
    """

    __slots__ = ("_store", "_min_support", "_len", "_stamp", "_tracker")

    def __init__(self, tracker: "TrackerBolt", min_support: int = 0) -> None:
        self._tracker = tracker
        self._store = tracker._store
        self._min_support = min_support
        self._len: int | None = None
        self._stamp = tracker.reports_received

    def __getitem__(self, tagset: frozenset[str]) -> float:
        record = self._store.get(tagset)
        if record is None or record[1] < self._min_support:
            raise KeyError(tagset)
        return record[0]

    def __contains__(self, tagset: object) -> bool:
        record = self._store.get(tagset)  # type: ignore[arg-type]
        return record is not None and record[1] >= self._min_support

    def __iter__(self) -> Iterator[frozenset[str]]:
        min_support = self._min_support
        for tagset, _jaccard, support, _reports in self._store.iter_entries():
            if support >= min_support:
                yield tagset

    def __len__(self) -> int:
        if self._min_support <= 0:
            return len(self._store)
        if self._len is None or self._stamp != self._tracker.reports_received:
            self._stamp = self._tracker.reports_received
            self._len = sum(1 for _ in self)
        return self._len


@dataclass(frozen=True, slots=True)
class TrackerSnapshot:
    """Immutable, round-consistent copy of the Tracker's dedup table.

    The service daemon's read path: the writer thread takes one snapshot per
    quiescent point (see ``AsyncServiceExecutor.on_quiescent``) and publishes
    it by plain reference assignment; query threads only ever touch the
    published snapshot, never the live table.  The live
    :class:`CoefficientView` is *not* safe for cross-thread reads — ingest
    mutates :class:`TrackedCoefficient` entries in place, so a concurrent
    reader could observe a torn jaccard/support pair.  A snapshot can't:
    every ``(jaccard, support)`` pair here was copied out atomically with
    respect to ingest (same thread), and the dataclass is frozen.
    """

    #: Monotone publication index (one per quiescent point, 0 = pre-ingest).
    round_index: int
    reports_received: int
    duplicate_reports: int
    #: ``tagset -> (jaccard, support)`` at snapshot time.
    entries: dict[frozenset[str], tuple[float, int]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.entries)

    def coefficient(
        self, tagset: Iterable[str]
    ) -> tuple[float, int] | None:
        """``(jaccard, support)`` of one tagset, or ``None`` if untracked."""
        return self.entries.get(frozenset(tagset))

    def top_k(
        self, k: int, min_support: int = 0
    ) -> list[tuple[frozenset[str], float, int]]:
        """The ``k`` highest-coefficient tagsets at this round.

        Deterministic: ties break on descending support, then on the sorted
        tag tuple, so two queries against the same snapshot always agree.
        """
        qualifying = [
            (tagset, jaccard, support)
            for tagset, (jaccard, support) in self.entries.items()
            if support >= min_support
        ]
        qualifying.sort(key=lambda row: (-row[1], -row[2], tuple(sorted(row[0]))))
        return qualifying[:k]

    def digest(self) -> str:
        """Order-independent hash of the snapshot's coefficient table.

        The soak suite's torn-read oracle: a query answer is consistent iff
        it matches the retained snapshot carrying the same round index, and
        snapshots compare by this digest.
        """
        lines = sorted(
            f"{','.join(sorted(tagset))}={jaccard!r}/{support}"
            for tagset, (jaccard, support) in self.entries.items()
        )
        hasher = hashlib.sha256()
        for line in lines:
            hasher.update(line.encode("utf-8"))
            hasher.update(b"\n")
        return hasher.hexdigest()


class TrackerBolt(Bolt):
    """Selects, per tagset, the reported coefficient with maximum support.

    ``tracker_store="dict"`` (the default) keeps the dedup table as a
    plain in-RAM dict; ``"spill"`` backs it with a
    :class:`~repro.store.SpillingTrackerStore` (``store_config`` tunes
    its spill directory/threshold/cache/merge knobs).
    """

    def __init__(
        self,
        tracker_store: str = "dict",
        store_config: StoreConfig | None = None,
    ) -> None:
        super().__init__()
        if tracker_store not in TRACKER_STORES:
            raise ValueError(
                f"unknown tracker_store {tracker_store!r}; "
                f"expected one of {TRACKER_STORES}"
            )
        self.tracker_store = tracker_store
        self._best: dict[frozenset[str], TrackedCoefficient] = {}
        self._store: SpillingTrackerStore | None = (
            SpillingTrackerStore(config=store_config)
            if tracker_store == "spill"
            else None
        )
        self.reports_received = 0
        self.duplicate_reports = 0

    def execute(self, message: TupleMessage) -> None:
        if message.schema is not COEFFICIENTS:
            return
        # COEFFICIENTS slot layout: (results, timestamp).
        self.ingest(message.values[0])

    def ingest(
        self, results: "Iterable[tuple[frozenset[str], float, int]]"
    ) -> None:
        """Deduplicate a batch of ``(tagset, jaccard, support)`` wire triples.

        The hot path: one batched tuple per Calculator report round (and
        the end-of-run drain) carries every coefficient of the round, so
        the dedup loop runs inline on the triples instead of wrapping each
        in a :class:`JaccardResult`.
        """
        if self._store is not None:
            received, duplicates = self._store.ingest(results)
            self.reports_received += received
            self.duplicate_reports += duplicates
            return
        best = self._best
        received = 0
        duplicates = 0
        for tagset, jaccard, support in results:
            received += 1
            tagset = frozenset(tagset)
            existing = best.get(tagset)
            if existing is None:
                best[tagset] = TrackedCoefficient(
                    jaccard=float(jaccard), support=int(support)
                )
                continue
            duplicates += 1
            existing.reports += 1
            if support > existing.support:
                existing.jaccard = float(jaccard)
                existing.support = int(support)
        self.reports_received += received
        self.duplicate_reports += duplicates

    def ingest_repeated(
        self,
        pairs: "Iterable[tuple[tuple[frozenset[str], float, int], int]]",
    ) -> None:
        """Ingest ``(triple, count)`` pairs — each triple ``count`` times.

        The delta reporting engine defers shipping triples whose value is
        bit-identical to one it already shipped; at drain time the deferred
        triples arrive here in compact form.  The effect on the dedup table
        and on the received/duplicate accounting is exactly that of calling
        :meth:`ingest` with the triple repeated ``count`` times — repeats
        of an identical triple never change the winning coefficient (equal
        support never displaces), they only count as duplicates — but the
        cost is one update per *distinct* triple.
        """
        if self._store is not None:
            received, duplicates = self._store.ingest_repeated(pairs)
            self.reports_received += received
            self.duplicate_reports += duplicates
            return
        best = self._best
        received = 0
        duplicates = 0
        for (tagset, jaccard, support), count in pairs:
            if count <= 0:
                continue
            received += count
            tagset = frozenset(tagset)
            existing = best.get(tagset)
            if existing is None:
                best[tagset] = TrackedCoefficient(
                    jaccard=float(jaccard), support=int(support), reports=count
                )
                duplicates += count - 1
                continue
            duplicates += count
            existing.reports += count
            if support > existing.support:
                existing.jaccard = float(jaccard)
                existing.support = int(support)
        self.reports_received += received
        self.duplicate_reports += duplicates

    def observe(self, result: JaccardResult) -> None:
        """Record one reported coefficient (kept for single-result callers)."""
        self.ingest(((result.tagset, result.jaccard, result.support),))

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def coefficient_view(self, min_support: int = 0) -> Mapping:
        """Lazy read-only mapping over the dedup table (no dict copy)."""
        if self._store is not None:
            return SpillCoefficientView(self, min_support)
        return CoefficientView(self, min_support)

    def iter_coefficients(
        self, min_support: int = 0
    ) -> Iterator[tuple[frozenset[str], float]]:
        """Stream ``(tagset, coefficient)`` pairs without materialising.

        Dict store: insertion order.  Spill store: encoded-key order (a
        merged sweep over hot segment + runs) — deterministic regardless
        of spill timing, with the same pairs either way.
        """
        if self._store is not None:
            for tagset, jaccard, support, _reports in self._store.iter_entries():
                if support >= min_support:
                    yield tagset, jaccard
            return
        for tagset, tracked in self._best.items():
            if tracked.support >= min_support:
                yield tagset, tracked.jaccard

    def coefficients(self, min_support: int = 0) -> dict[frozenset[str], float]:
        """Final coefficient per tagset as a snapshot dict (copies)."""
        return dict(self.iter_coefficients(min_support))

    def snapshot(self, round_index: int = 0):
        """Round-consistent immutable view of the dedup table.

        Must be called from the thread that ingests (the service writer
        thread, at a quiescent point); the returned snapshot may then be
        read freely from any thread.  The dict store copies the table into
        a :class:`TrackerSnapshot`; the spill store instead returns a
        run-backed view (:class:`repro.store.RunBackedTrackerSnapshot`)
        over its published run files plus the bounded hot segment — same
        query surface and digest, no full-table copy per quiescent point.
        """
        if self._store is not None:
            return self._store.snapshot(
                round_index, self.reports_received, self.duplicate_reports
            )
        return TrackerSnapshot(
            round_index=round_index,
            reports_received=self.reports_received,
            duplicate_reports=self.duplicate_reports,
            entries={
                tagset: (tracked.jaccard, tracked.support)
                for tagset, tracked in self._best.items()
            },
        )

    def supports(self) -> dict[frozenset[str], int]:
        """Supporting counter value per tagset."""
        if self._store is not None:
            return {
                tagset: support
                for tagset, _jaccard, support, _reports
                in self._store.iter_entries()
            }
        return {tagset: tracked.support for tagset, tracked in self._best.items()}

    def export_triples(self) -> list[tuple[frozenset[str], float, int]]:
        """The dedup table as ``(tagset, jaccard, support)`` wire triples.

        Dict store: insertion order; spill store: encoded-key order.
        Either way, re-ingesting the export into a fresh Tracker
        reproduces this one's winning coefficients exactly: the dedup rule
        (maximum support wins, equal support never displaces) makes ingest
        associative over concatenation of report streams — and order-
        insensitive across *distinct* tagsets, so the two orders are
        interchangeable.  The splice-equivalence suites use this to merge
        the trackers of a prefix run and a suffix run into the state one
        continuous run would hold.
        """
        if self._store is not None:
            return [
                (tagset, jaccard, support)
                for tagset, jaccard, support, _reports
                in self._store.iter_entries()
            ]
        return [
            (tagset, tracked.jaccard, tracked.support)
            for tagset, tracked in self._best.items()
        ]

    # ------------------------------------------------------------------ #
    # Store plumbing
    # ------------------------------------------------------------------ #
    def store_stats(self) -> dict[str, float] | None:
        """The spill store's accounting, or ``None`` for the dict store."""
        return self._store.stats() if self._store is not None else None

    def close(self) -> None:
        """Release the spill store's runs and directory (dict store: no-op)."""
        if self._store is not None:
            self._store.close()

    def __len__(self) -> int:
        if self._store is not None:
            return len(self._store)
        return len(self._best)
