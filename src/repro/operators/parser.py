"""The Parser bolt: extracts tagsets from raw tweets.

Parser instances receive tweets via shuffle grouping, extract and normalise
the hashtags (the reproduction treats the precomputed ``tags`` slot as the
hashtags; a text fallback extracts ``#tokens`` from the tweet body), drop
documents without tags, and emit ``(doc_id, timestamp, tagset)`` slot tuples
on the ``TAGSETS`` stream that both the Disseminator and the Partitioner
subscribe to.
"""

from __future__ import annotations

import re

from ..core.documents import make_tagset
from ..streamsim.components import Bolt
from ..streamsim.tuples import TupleMessage
from .streams import TAGSETS

_HASHTAG_PATTERN = re.compile(r"#(\w+)")


def extract_hashtags(text: str) -> frozenset[str]:
    """Extract ``#hashtags`` from a tweet body."""
    return make_tagset(_HASHTAG_PATTERN.findall(text))


class ParserBolt(Bolt):
    """Extracts the tagset of each incoming tweet."""

    def __init__(self, max_tags_per_document: int = 12) -> None:
        super().__init__()
        self._max_tags = max_tags_per_document
        self.parsed = 0
        self.dropped_untagged = 0
        self.truncated = 0

    def execute(self, message: TupleMessage) -> None:
        # TWEETS slot layout: (doc_id, timestamp, tags, text).
        doc_id, timestamp, tags, text = message.values
        if tags:
            tagset = make_tagset(tags)
        else:
            tagset = extract_hashtags(text or "")
        if not tagset:
            self.dropped_untagged += 1
            return
        if len(tagset) > self._max_tags:
            # Extremely long tag lists are almost always spam; cap them to
            # keep the subset counters tractable (real tweets carry < 10).
            tagset = frozenset(sorted(tagset)[: self._max_tags])
            self.truncated += 1
        self.parsed += 1
        self.emit(TAGSETS, doc_id, 0.0 if timestamp is None else timestamp, tagset)
