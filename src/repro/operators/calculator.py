"""The Calculator bolt: counts tagset notifications and reports coefficients.

Calculators are oblivious to the tags they own (Section 6.2): whatever
subsets the Disseminator sends them, they count.  Every received
notification ``{t_1, ..., t_n}`` increments the counters of *all* subsets of
the notification; every ``report_interval`` simulated seconds the maximum
possible number of Jaccard coefficients is computed from the counters, the
results are emitted to the Tracker and the counters are deleted.

Notifications arrive as ``NOTIFICATIONS`` slot tuples — ``(batch,
timestamp)`` where ``batch`` is the list of ``(tags, doc_id)`` entries of
one Disseminator micro-batch (a single entry per message when
``notification_batch_size == 1``).  :class:`BaseCalculatorBolt` unpacks the
batches (overriding :meth:`~repro.streamsim.components.Bolt.execute_batch`
to amortise per-message dispatch over whole link batches) and drives the
periodic reporting; the two concrete modes only differ in the estimator
behind :meth:`_observe`:

* :class:`CalculatorBolt` — the paper's exact subset counters
  (:class:`~repro.core.jaccard.JaccardCalculator`),
* :class:`~repro.operators.sketch_calculator.SketchCalculatorBolt` — the
  MinHash/Count-Min approximate mode
  (:class:`~repro.sketches.SketchJaccardEstimator`).
"""

from __future__ import annotations

import abc

from ..core.jaccard import (
    DEFAULT_SUBSET_CACHE_SIZE,
    JaccardCalculator,
    JaccardResult,
)
from ..streamsim.components import Bolt
from ..streamsim.tuples import TupleMessage
from .streams import COEFFICIENTS, NOTIFICATIONS


class BaseCalculatorBolt(Bolt):
    """Shared notification handling and periodic reporting of both modes."""

    #: Name of the mode as it appears in ``SystemConfig.calculator``.
    mode = "base"

    def __init__(self, report_interval: float = 300.0) -> None:
        super().__init__()
        if report_interval <= 0:
            raise ValueError("report_interval must be positive")
        self.report_interval = report_interval
        self.notifications_received = 0
        self.batches_received = 0
        self.reports_emitted = 0
        self._last_report = 0.0

    # ------------------------------------------------------------------ #
    # Mode-specific estimator interface
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _observe(self, tags, doc_id) -> None:
        """Record one tagset notification (``doc_id`` may be ``None``)."""

    @abc.abstractmethod
    def _report(self, reset: bool) -> list[JaccardResult]:
        """Coefficients of every tracked tagset of at least two tags."""

    def _report_triples(
        self, reset: bool
    ) -> list[tuple[frozenset[str], float, int]]:
        """:meth:`_report` as raw ``(tagset, jaccard, support)`` wire triples.

        The hot reporting path — periodic emits, the end-of-run drain and
        the Tracker all consume triples.  Modes whose estimator produces
        triples natively (the exact engine) override this to skip the
        :class:`JaccardResult` round-trip.
        """
        return [(r.tagset, r.jaccard, r.support) for r in self._report(reset=reset)]

    @property
    @abc.abstractmethod
    def observations(self) -> int:
        """Notifications recorded since the last resetting report."""

    # ------------------------------------------------------------------ #
    # Tuple handling
    # ------------------------------------------------------------------ #
    def execute(self, message: TupleMessage) -> None:
        self.execute_batch((message,))

    def execute_batch(self, messages) -> None:
        """Unpack a whole delivered link batch of notification tuples.

        The single entry point for notification handling (``execute``
        delegates here), so the unpack and accounting logic exists once.
        """
        observe = self._observe
        received = 0
        for message in messages:
            if message.schema is not NOTIFICATIONS:
                continue
            # NOTIFICATIONS slot layout: (batch, timestamp).
            batch = message.values[0]
            self.batches_received += 1
            received += len(batch)
            for tags, doc_id in batch:
                observe(tags, doc_id)
        self.notifications_received += received

    def tick(self, simulation_time: float) -> None:
        if simulation_time - self._last_report < self.report_interval:
            return
        self._last_report = simulation_time
        self._emit_report(simulation_time)

    def _emit_report(self, timestamp: float) -> None:
        if self.observations == 0:
            return
        results = self._report_triples(reset=True)
        if not results:
            return
        # One batched tuple per report round: shipping hundreds of thousands
        # of individual coefficient tuples through the substrate would
        # dominate the runtime without changing any of the paper's metrics.
        self.emit(COEFFICIENTS, results, timestamp)
        self.reports_emitted += len(results)

    def drain_triples(self) -> list[tuple[frozenset[str], float, int]]:
        """Report whatever is left in the counters, without emitting.

        The pipeline (or, under the process executor, the worker shard)
        calls this once at the end of a run, because the simulated clock
        stops advancing when the stream ends and a final tick would
        otherwise never fire.  Returns wire triples — the format the
        Tracker ingests.
        """
        return self._report_triples(reset=True)

    def drain_results(self) -> list[JaccardResult]:
        """:meth:`drain_triples`, wrapped as :class:`JaccardResult` objects."""
        return [JaccardResult(*triple) for triple in self.drain_triples()]


class CalculatorBolt(BaseCalculatorBolt):
    """Exact mode: subset counters and inclusion–exclusion (Equation 2).

    ``reporting_engine`` selects how report rounds recover union sizes —
    ``"incremental"`` (one subset-lattice fold per distinct observed tagset
    type) or the original ``"scratch"`` re-walk — and ``subset_cache_size``
    bounds the LRU cache of subset enumerations shared by the observe and
    report paths (see :mod:`repro.core.jaccard`).  Both engines report
    identical coefficients.
    """

    mode = "exact"

    def __init__(
        self,
        report_interval: float = 300.0,
        max_tags_per_document: int = 12,
        reporting_engine: str = "incremental",
        subset_cache_size: int = DEFAULT_SUBSET_CACHE_SIZE,
    ) -> None:
        super().__init__(report_interval=report_interval)
        self.calculator = JaccardCalculator(
            max_tags_per_document,
            reporting_engine=reporting_engine,
            subset_cache_size=subset_cache_size,
        )

    def _observe(self, tags, doc_id) -> None:
        self.calculator.observe(tags)

    def _report(self, reset: bool) -> list[JaccardResult]:
        return self.calculator.report(min_size=2, reset=reset)

    def _report_triples(
        self, reset: bool
    ) -> list[tuple[frozenset[str], float, int]]:
        return self.calculator.report_triples(min_size=2, reset=reset)

    @property
    def observations(self) -> int:
        return self.calculator.observations
