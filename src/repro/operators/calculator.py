"""The Calculator bolt: counts tagset notifications and reports coefficients.

Calculators are oblivious to the tags they own (Section 6.2): whatever
subsets the Disseminator sends them, they count.  Every received
notification ``{t_1, ..., t_n}`` increments the counters of *all* subsets of
the notification; every ``report_interval`` simulated seconds the maximum
possible number of Jaccard coefficients is computed from the counters, the
results are emitted to the Tracker and the counters are deleted.
"""

from __future__ import annotations

from ..core.jaccard import JaccardCalculator, JaccardResult
from ..streamsim.components import Bolt
from ..streamsim.tuples import TupleMessage
from .streams import COEFFICIENTS, NOTIFICATIONS


class CalculatorBolt(Bolt):
    """Counts notifications and periodically reports Jaccard coefficients."""

    def __init__(
        self,
        report_interval: float = 300.0,
        max_tags_per_document: int = 12,
    ) -> None:
        super().__init__()
        if report_interval <= 0:
            raise ValueError("report_interval must be positive")
        self.report_interval = report_interval
        self.calculator = JaccardCalculator(max_tags_per_document)
        self.notifications_received = 0
        self.reports_emitted = 0
        self._last_report = 0.0

    def execute(self, message: TupleMessage) -> None:
        if message.stream != NOTIFICATIONS:
            return
        self.calculator.observe(message["tags"])
        self.notifications_received += 1

    def tick(self, simulation_time: float) -> None:
        if simulation_time - self._last_report < self.report_interval:
            return
        self._last_report = simulation_time
        self._emit_report(simulation_time)

    def _emit_report(self, timestamp: float) -> None:
        if self.calculator.observations == 0:
            return
        results = self.calculator.report(min_size=2, reset=True)
        if not results:
            return
        # One batched tuple per report round: shipping hundreds of thousands
        # of individual coefficient tuples through the substrate would
        # dominate the runtime without changing any of the paper's metrics.
        self.emit(
            {
                "results": [(r.tagset, r.jaccard, r.support) for r in results],
                "timestamp": timestamp,
            },
            stream=COEFFICIENTS,
        )
        self.reports_emitted += len(results)

    def drain_results(self) -> list[JaccardResult]:
        """Report whatever is left in the counters without emitting.

        The pipeline calls this once at the end of a run, because the
        simulated clock stops advancing when the stream ends and a final
        tick would otherwise never fire.
        """
        return self.calculator.report(min_size=2, reset=True)
