"""The Calculator bolt: counts tagset notifications and reports coefficients.

Calculators are oblivious to the tags they own (Section 6.2): whatever
subsets the Disseminator sends them, they count.  Every received
notification ``{t_1, ..., t_n}`` increments the counters of *all* subsets of
the notification; every ``report_interval`` simulated seconds the maximum
possible number of Jaccard coefficients is computed from the counters, the
results are emitted to the Tracker and the counters are deleted.

Notifications arrive as ``NOTIFICATIONS`` slot tuples — ``(batch,
timestamp)`` where ``batch`` is the list of ``(tags, doc_id)`` entries of
one Disseminator micro-batch (a single entry per message when
``notification_batch_size == 1``).  :class:`BaseCalculatorBolt` unpacks the
batches (overriding :meth:`~repro.streamsim.components.Bolt.execute_batch`
to amortise per-message dispatch over whole link batches) and drives the
periodic reporting; the two concrete modes only differ in the estimator
behind :meth:`_observe`:

* :class:`CalculatorBolt` — the paper's exact subset counters
  (:class:`~repro.core.jaccard.JaccardCalculator`),
* :class:`~repro.operators.sketch_calculator.SketchCalculatorBolt` — the
  MinHash/Count-Min approximate mode
  (:class:`~repro.sketches.SketchJaccardEstimator`).
"""

from __future__ import annotations

import abc
import time

from ..core.jaccard import (
    DEFAULT_SUBSET_CACHE_SIZE,
    JaccardCalculator,
    JaccardResult,
)
from ..streamsim.components import Bolt
from ..streamsim.tuples import TupleMessage
from .streams import COEFFICIENTS, NOTIFICATIONS


class BaseCalculatorBolt(Bolt):
    """Shared notification handling and periodic reporting of both modes."""

    #: Name of the mode as it appears in ``SystemConfig.calculator``.
    mode = "base"

    def __init__(
        self, report_interval: float = 300.0, report_chunk_size: int = 0
    ) -> None:
        super().__init__()
        if report_interval <= 0:
            raise ValueError("report_interval must be positive")
        if report_chunk_size < 0:
            raise ValueError(
                "report_chunk_size must be non-negative (0 = unchunked)"
            )
        self.report_interval = report_interval
        #: Triples per COEFFICIENTS emission: 0 ships each round as one
        #: batched tuple (the default); a positive value slices rounds
        #: into bounded chunks, capping the largest list in flight.  The
        #: Tracker receives the same triples in the same order either way.
        self.report_chunk_size = report_chunk_size
        self.notifications_received = 0
        self.batches_received = 0
        self.reports_emitted = 0
        self._last_report = 0.0
        #: In-stream report rounds executed and their total wall-clock —
        #: the per-round attribution the perf harness consumes (rounds
        #: with nothing observed are skipped and not counted).
        self.report_rounds = 0
        self.report_seconds = 0.0
        #: Triples whose in-stream shipping was deferred (delta engine):
        #: identical-value repeats, re-asserted once at drain with their
        #: suppression counts.  Cumulative count in
        #: ``coefficients_deferred``; pending replays in ``_deferred``.
        self.coefficients_deferred = 0
        self._deferred: dict[tuple, int] = {}
        #: State-handoff accounting (live repartitioning): completed
        #: migrations and total triples shipped out of this bolt by them.
        self.migrations_completed = 0
        self.migrated_triples = 0

    # ------------------------------------------------------------------ #
    # Mode-specific estimator interface
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _observe(self, tags, doc_id) -> None:
        """Record one tagset notification (``doc_id`` may be ``None``)."""

    @abc.abstractmethod
    def _report(self, reset: bool) -> list[JaccardResult]:
        """Coefficients of every tracked tagset of at least two tags."""

    def _report_triples(
        self, reset: bool
    ) -> list[tuple[frozenset[str], float, int]]:
        """:meth:`_report` as raw ``(tagset, jaccard, support)`` wire triples.

        The hot reporting path — periodic emits, the end-of-run drain and
        the Tracker all consume triples.  Modes whose estimator produces
        triples natively (the exact engine) override this to skip the
        :class:`JaccardResult` round-trip.
        """
        return [(r.tagset, r.jaccard, r.support) for r in self._report(reset=reset)]

    def _report_round(
        self, reset: bool
    ) -> tuple[
        list[tuple[frozenset[str], float, int]],
        list[tuple[frozenset[str], float, int]],
    ]:
        """One in-stream round as ``(shipped, deferrable)`` triples.

        ``deferrable`` triples are bit-identical repeats of triples this
        bolt already shipped in an earlier round; in-stream rounds record
        them for drain-time re-assertion instead of re-shipping.  Only the
        exact mode's delta engine defers; everything else ships all.
        """
        return self._report_triples(reset=reset), []

    @property
    @abc.abstractmethod
    def observations(self) -> int:
        """Notifications recorded since the last resetting report."""

    # ------------------------------------------------------------------ #
    # Tuple handling
    # ------------------------------------------------------------------ #
    def execute(self, message: TupleMessage) -> None:
        self.execute_batch((message,))

    def execute_batch(self, messages) -> None:
        """Unpack a whole delivered link batch of notification tuples.

        The single entry point for notification handling (``execute``
        delegates here), so the unpack and accounting logic exists once.
        """
        observe = self._observe
        received = 0
        for message in messages:
            if message.schema is not NOTIFICATIONS:
                continue
            # NOTIFICATIONS slot layout: (batch, timestamp).
            batch = message.values[0]
            self.batches_received += 1
            received += len(batch)
            for tags, doc_id in batch:
                observe(tags, doc_id)
        self.notifications_received += received

    def tick(self, simulation_time: float) -> None:
        elapsed = simulation_time - self._last_report
        if elapsed < self.report_interval:
            return
        # Grid-aligned rounds: advance the report clock to the last grid
        # point at or before *now* instead of re-anchoring it at the tick
        # timestamp.  Ticks fire at document-timestamp granularity, so
        # ``= simulation_time`` absorbed the overshoot into the next round
        # and boundaries drifted forward ~0.1 s per round (see ROADMAP
        # item 4); on the fixed grid every round is exactly
        # ``report_interval`` long, which is what keeps continuously
        # *served* rounds (service mode) from drifting against wall-clock
        # schedules and raises the delta carry's clean rate on recurring
        # streams.
        self._last_report += self.report_interval * int(elapsed / self.report_interval)
        self._emit_report(simulation_time)

    def _emit_report(self, timestamp: float) -> None:
        if self.observations == 0:
            return
        start = time.perf_counter()
        results, deferrable = self._report_round(reset=True)
        if deferrable:
            # Suppressed repeats: re-asserted (with multiplicity) at drain,
            # so the Tracker's final state and duplicate accounting match
            # the ship-everything engines exactly.
            pending = self._deferred
            for triple in deferrable:
                pending[triple] = pending.get(triple, 0) + 1
            self.coefficients_deferred += len(deferrable)
        if results:
            # One batched tuple per report round (or per bounded chunk):
            # shipping hundreds of thousands of individual coefficient
            # tuples through the substrate would dominate the runtime
            # without changing any of the paper's metrics.
            self._emit_coefficients(results, timestamp)
            self.reports_emitted += len(results)
        self.report_rounds += 1
        self.report_seconds += time.perf_counter() - start

    def _emit_coefficients(
        self,
        results: list[tuple[frozenset[str], float, int]],
        timestamp: float,
    ) -> None:
        """Ship one round's triples, whole or in ``report_chunk_size`` slices.

        Chunking is purely physical: the Tracker ingests chunk after chunk
        in round order, which its dedup rule cannot distinguish from one
        monolithic ingest.
        """
        chunk = self.report_chunk_size
        if chunk <= 0 or len(results) <= chunk:
            self.emit(COEFFICIENTS, results, timestamp)
            return
        for start in range(0, len(results), chunk):
            self.emit(COEFFICIENTS, results[start:start + chunk], timestamp)

    def drain_payload(
        self,
    ) -> tuple[
        list[tuple[frozenset[str], float, int]],
        list[tuple[tuple[frozenset[str], float, int], int]],
    ]:
        """Final flush: remaining triples plus deferred ``(triple, count)``s.

        The pipeline (or, under the process executor, the worker shard)
        calls this once at the end of a run, because the simulated clock
        stops advancing when the stream ends and a final tick would
        otherwise never fire.  The first element is the final round's full
        result set; the second re-asserts every in-stream-suppressed triple
        with its suppression count (the Tracker ingests it via
        ``ingest_repeated``, reproducing the ship-everything accounting).
        """
        final = self._final_triples()
        replays = list(self._deferred.items())
        self._deferred = {}
        return final, replays

    def _final_triples(self) -> list[tuple[frozenset[str], float, int]]:
        """The final round's full result set (a resetting report).

        Modes with a cheaper one-shot flush (the exact engine's delta
        mode) override this.
        """
        return self._report_triples(reset=True)

    def drain_triples(self) -> list[tuple[frozenset[str], float, int]]:
        """:meth:`drain_payload` flattened to plain triples (replays expanded)."""
        final, replays = self.drain_payload()
        if replays:
            final = list(final)
            for triple, count in replays:
                final.extend([triple] * count)
        return final

    def drain_results(self) -> list[JaccardResult]:
        """:meth:`drain_triples`, wrapped as :class:`JaccardResult` objects."""
        return [JaccardResult(*triple) for triple in self.drain_triples()]

    # ------------------------------------------------------------------ #
    # State migration (live repartitioning handoff)
    # ------------------------------------------------------------------ #
    def prepare_migration(self) -> list[tuple[frozenset[str], float, int]]:
        """Phase one of the two-phase handoff: compute the migration payload
        without mutating any state.

        The payload is exactly what a drain would ship for the counted
        window.  Nothing is reset here — if any participant of the handoff
        fails to prepare, the coordinator aborts and this bolt continues
        under the old assignment as if nothing happened.  Deferred replays
        (``_deferred``) are *not* part of the payload: they re-assert
        triples already shipped in earlier rounds and stay queued for the
        end-of-run drain regardless of migrations in between.
        """
        return self._report_triples(reset=False)

    def commit_migration(
        self, payload: list[tuple[frozenset[str], float, int]], timestamp: float
    ) -> int:
        """Phase two: ship the prepared payload and reset the counted window.

        Emits the payload as one batched ``COEFFICIENTS`` tuple (the same
        shape as a report round), resets the mode's estimator the way a
        resetting report would, and rewinds the report clock to the
        fresh-bolt origin so the post-handoff cadence matches a run started
        under the new assignment.  Returns the number of migrated triples.
        """
        if payload:
            self._emit_coefficients(payload, timestamp)
        self._migration_reset()
        self._last_report = 0.0
        self.migrations_completed += 1
        self.migrated_triples += len(payload)
        return len(payload)

    def abort_migration(self) -> None:
        """Phase-one failure: nothing was mutated, so nothing to undo."""

    def _migration_reset(self) -> None:
        """Drop the counted window after its payload shipped (mode hook)."""
        raise NotImplementedError(
            f"calculator mode {self.mode!r} does not support state migration"
        )


class CalculatorBolt(BaseCalculatorBolt):
    """Exact mode: subset counters and inclusion–exclusion (Equation 2).

    ``reporting_engine`` selects how report rounds recover union sizes —
    ``"incremental"`` (one subset-lattice fold per distinct observed tagset
    type) or the original ``"scratch"`` re-walk — and ``subset_cache_size``
    bounds the LRU cache of subset enumerations shared by the observe and
    report paths (see :mod:`repro.core.jaccard`).  Both engines report
    identical coefficients.
    """

    mode = "exact"

    def __init__(
        self,
        report_interval: float = 300.0,
        max_tags_per_document: int = 12,
        reporting_engine: str = "incremental",
        subset_cache_size: int = DEFAULT_SUBSET_CACHE_SIZE,
        counter_store: str = "dict",
        spill_dir: str | None = None,
        spill_threshold: int | None = None,
        report_chunk_size: int = 0,
    ) -> None:
        super().__init__(
            report_interval=report_interval,
            report_chunk_size=report_chunk_size,
        )
        spill_options = {}
        if spill_threshold is not None:
            spill_options["spill_threshold"] = spill_threshold
        self.calculator = JaccardCalculator(
            max_tags_per_document,
            reporting_engine=reporting_engine,
            subset_cache_size=subset_cache_size,
            counter_store=counter_store,
            spill_dir=spill_dir,
            **spill_options,
        )

    def _observe(self, tags, doc_id) -> None:
        self.calculator.observe(tags)

    def _report(self, reset: bool) -> list[JaccardResult]:
        return self.calculator.report(min_size=2, reset=reset)

    def _report_triples(
        self, reset: bool
    ) -> list[tuple[frozenset[str], float, int]]:
        return self.calculator.report_triples(min_size=2, reset=reset)

    def _report_round(
        self, reset: bool
    ) -> tuple[
        list[tuple[frozenset[str], float, int]],
        list[tuple[frozenset[str], float, int]],
    ]:
        return self.calculator.report_round_triples(min_size=2, reset=reset)

    def _final_triples(self) -> list[tuple[frozenset[str], float, int]]:
        # The delta engine's one-shot final fold goes through the
        # incremental path: identical triples, no carry state built for a
        # round that can never recur.
        return self.calculator.drain_triples(min_size=2)

    def release_delta_state(self) -> None:
        """Drop the delta engine's carried fold state (post-drain slimming)."""
        self.calculator.release_delta_state()

    def prepare_migration(self) -> list[tuple[frozenset[str], float, int]]:
        # The base default (a non-resetting report) would route the delta
        # engine through its diffing path and mutate the carry baseline;
        # ``migration_triples`` is the side-effect-free drain equivalent.
        return self.calculator.migration_triples(min_size=2)

    def _migration_reset(self) -> None:
        self.calculator.reset_counts()

    @property
    def observations(self) -> int:
        return self.calculator.observations
