"""Components and declared stream schemas of the Figure-2 topology.

Keeping the identifiers in one place avoids typo-induced routing bugs and
documents the dataflow:

* ``source`` emits raw tweets to ``parser`` (shuffle),
* ``parser`` emits parsed tagsets to ``disseminator`` (shuffle) and
  ``partitioner`` (fields grouping on the tagset),
* ``partitioner`` emits partial partitions to ``merger``,
* ``merger`` broadcasts final partitions and single-addition decisions to
  all ``disseminator`` instances,
* ``disseminator`` sends notifications to ``calculator`` tasks (direct
  grouping), missing-tagset reports to ``merger`` and repartition requests
  to all ``partitioner`` instances,
* ``calculator`` emits Jaccard coefficients to ``tracker``.

Each stream constant is an interned
:class:`~repro.streamsim.tuples.StreamSchema`: simultaneously the stream's
name (a ``str`` subclass, so subscriptions and accounting keys are
unchanged) and its declared slot layout.  Operators emit positionally in
the declared field order and unpack ``message.values`` the same way; the
pipeline registers these schemas with the topology builder so fields
groupings are validated against the layouts at build time.
"""

from repro.streamsim.tuples import stream_schema

# Component names -------------------------------------------------------- #
SOURCE = "source"
PARSER = "parser"
PARTITIONER = "partitioner"
MERGER = "merger"
DISSEMINATOR = "disseminator"
CALCULATOR = "calculator"
TRACKER = "tracker"
CENTRALIZED = "centralized"

# Stream schemas --------------------------------------------------------- #
#: Raw tweets replayed by the Source.
TWEETS = stream_schema("tweets", ("doc_id", "timestamp", "tags", "text"))
#: Parsed, normalised tagsets (the Parser's output).
TAGSETS = stream_schema("tagsets", ("doc_id", "timestamp", "tagset"))
#: Per-Partitioner partial partitions of one repartition epoch.
PARTIAL_PARTITIONS = stream_schema(
    "partial_partitions",
    ("epoch", "partitioner_task", "tag_sets", "loads", "window_counts", "timestamp"),
)
#: The Merger's final k partitions plus their reference quality values.
PARTITIONS = stream_schema(
    "partitions", ("epoch", "tag_sets", "loads", "avg_com", "max_load", "timestamp")
)
#: Single-addition decisions broadcast by the Merger (Section 7.1).
SINGLE_ADDITIONS = stream_schema(
    "single_additions", ("tagset", "partition_index", "timestamp")
)
#: Uncovered tagsets the Disseminator reports to the Merger.
MISSING_TAGSETS = stream_schema("missing_tagsets", ("tagset", "count", "timestamp"))
#: Repartition requests broadcast to all Partitioners (Section 7.2).
REPARTITION_REQUESTS = stream_schema(
    "repartition_requests", ("epoch", "reason", "timestamp")
)
#: Notification micro-batches shipped to Calculators: ``batch`` is the list
#: of ``(tags, doc_id)`` entries of one Disseminator micro-batch (a single
#: entry per message when ``notification_batch_size == 1``).
NOTIFICATIONS = stream_schema("notifications", ("batch", "timestamp"))
#: One report round's ``(tagset, jaccard, support)`` wire triples.
COEFFICIENTS = stream_schema("coefficients", ("results", "timestamp"))
