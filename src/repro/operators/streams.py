"""Names of the components and streams of the Figure-2 topology.

Keeping the identifiers in one place avoids typo-induced routing bugs and
documents the dataflow:

* ``source`` emits raw tweets to ``parser`` (shuffle),
* ``parser`` emits parsed tagsets to ``disseminator`` (shuffle) and
  ``partitioner`` (fields grouping on the tagset),
* ``partitioner`` emits partial partitions to ``merger``,
* ``merger`` broadcasts final partitions and single-addition decisions to
  all ``disseminator`` instances,
* ``disseminator`` sends notifications to ``calculator`` tasks (direct
  grouping), missing-tagset reports to ``merger`` and repartition requests
  to all ``partitioner`` instances,
* ``calculator`` emits Jaccard coefficients to ``tracker``.
"""

# Component names -------------------------------------------------------- #
SOURCE = "source"
PARSER = "parser"
PARTITIONER = "partitioner"
MERGER = "merger"
DISSEMINATOR = "disseminator"
CALCULATOR = "calculator"
TRACKER = "tracker"
CENTRALIZED = "centralized"

# Stream names ----------------------------------------------------------- #
TWEETS = "tweets"
TAGSETS = "tagsets"
PARTIAL_PARTITIONS = "partial_partitions"
PARTITIONS = "partitions"
SINGLE_ADDITIONS = "single_additions"
MISSING_TAGSETS = "missing_tagsets"
REPARTITION_REQUESTS = "repartition_requests"
NOTIFICATIONS = "notifications"
COEFFICIENTS = "coefficients"
