"""Centralised exact baseline (Section 8.2.3), maintained incrementally.

To measure the accuracy loss of the distributed computation, the paper runs
a centralised approach that receives *all* tagsets and computes their exact
Jaccard coefficients over the whole run, never resetting its counters.  The
distributed system's error is the deviation of the Tracker's coefficients
from this ground truth, restricted to tagsets seen more than ``sn`` times.

The original implementation kept one document-id set per tag and derived
every ground-truth coefficient from raw set intersections/unions at the end
of the run — ~1.3 s of every instrumented benchmark run (see
docs/PERFORMANCE.md).  The incremental rewrite keeps only subset
*counters*: the counter of every tag combination of the document up to
``max_subset_size`` (sizes 1..s), from which ``ground_truth`` recovers
every union with inclusion–exclusion — at most ``2^s − 1`` dictionary
lookups per qualifying tagset instead of set algebra over thousands of
document ids.  Both paths compute the same integers: ``|⋂_{t∈K} T_t|`` is
exactly the number of documents annotated with all tags of ``K`` (document
ids are unique per document), and Equation (2) recovers ``|⋃_{t∈K} T_t|``
from the intersection counts of ``K``'s subsets.

Aggregation is **lazy**: nobody reads the baseline's counters until the
end-of-run error report, so ``observe`` only records the document's tagset
(one counter bump per document) and the subset-counter fold — one C-level
``Counter.update`` over the combination chains of all distinct observed
tagsets, weighted by multiplicity — runs once, at first ground-truth
access, in the *reporting* phase.  The streamed hot path no longer pays
hundreds of subset-tuple counts per document (the fold also dedups exact
tagset repeats, 10–20 % of real streams), while every derived number is
bit-identical to the eager per-document updates.

Unlike the Calculators, the baseline deliberately does *not* use the
subset-tuple LRU cache: it observes whole-document tagsets (not routed
sub-tagsets), which rarely repeat exactly, so cached enumerations would
miss far more often than they hit.
"""

from __future__ import annotations

from collections import Counter
from itertools import chain, combinations
from typing import Iterable

from ..core.jaccard import _union_size_from_tuple_counts
from ..streamsim.components import Bolt
from ..streamsim.tuples import TupleMessage
from .streams import TAGSETS


class CentralizedCalculatorBolt(Bolt):
    """Exact, single-node Jaccard computation used as ground truth."""

    def __init__(self, min_occurrences: int = 3, max_subset_size: int = 4) -> None:
        super().__init__()
        if min_occurrences < 1:
            raise ValueError("min_occurrences must be at least 1")
        if max_subset_size < 2:
            raise ValueError("max_subset_size must be at least 2")
        self.min_occurrences = min_occurrences
        self.max_subset_size = max_subset_size
        #: Tagsets observed since the last fold (tagset → multiplicity).
        self._pending: Counter = Counter()
        #: Lazily folded ``|⋂_{t∈K} T_t|`` per sorted tag tuple ``K``, sizes
        #: 1..s; grows by the pending delta at each ground-truth access.
        self._subset_counts: Counter = Counter()
        self._documents_seen = 0

    def execute(self, message: TupleMessage) -> None:
        if message.schema is not TAGSETS:
            return
        # TAGSETS slot layout: (doc_id, timestamp, tagset).
        doc_id, _, tagset = message.values
        self.observe(tagset, doc_id)

    def observe(self, tagset: frozenset[str], doc_id: object = None) -> None:
        """Record one document's tagset (also usable without the topology).

        ``doc_id`` is accepted for wire compatibility but unused: the
        incremental baseline assumes one call per distinct document, which
        is what the Parser guarantees.  Streaming cost is one counter bump;
        the subset fold is deferred to first ground-truth access.
        """
        self._documents_seen += 1
        if not tagset:
            return
        self._pending[tagset] += 1

    def _counts(self) -> Counter:
        """The subset counters; pending observations fold in on demand.

        Only the *delta* since the last fold is enumerated — counters only
        ever grow, so interleaved observe/read usage stays linear.  One
        C-level ``Counter.update`` over the concatenated combination chains
        of every distinct pending tagset; tagsets observed ``m`` times
        contribute their (materialised) enumeration ``m`` times, so the
        folded table is exactly what per-document eager updates would have
        produced.
        """
        pending = self._pending
        if pending:
            max_size = self.max_subset_size
            iterables: list[Iterable[tuple[str, ...]]] = []
            for tagset, multiplicity in pending.items():
                key = tuple(sorted(tagset))
                sizes = range(1, min(len(key), max_size) + 1)
                if multiplicity == 1:
                    iterables.extend(combinations(key, size) for size in sizes)
                else:
                    subsets = [
                        combo
                        for size in sizes
                        for combo in combinations(key, size)
                    ]
                    iterables.extend([subsets] * multiplicity)
            self._subset_counts.update(chain.from_iterable(iterables))
            self._pending = Counter()
        return self._subset_counts

    # ------------------------------------------------------------------ #
    # Ground truth
    # ------------------------------------------------------------------ #
    def qualifying_tagsets(self) -> list[frozenset[str]]:
        """Co-occurring tagsets seen more than ``min_occurrences`` times."""
        return [
            frozenset(key)
            for key, count in self._counts().items()
            if len(key) >= 2 and count > self.min_occurrences
        ]

    def jaccard(self, tagset: frozenset[str]) -> float:
        """Exact Jaccard coefficient of one tagset over the whole run.

        Computable for tagsets of up to ``max_subset_size`` tags (the cap of
        the maintained counters — the same cap the qualifying set obeys).
        """
        key = tuple(sorted(tagset))
        if len(key) > self.max_subset_size:
            raise ValueError(
                f"tagset has {len(key)} tags but the baseline only maintains "
                f"counters up to max_subset_size={self.max_subset_size}"
            )
        counts = self._counts()
        intersection = counts.get(key, 0)
        if intersection == 0:
            return 0.0
        union = _union_size_from_tuple_counts(key, counts)
        if union <= 0:
            return 0.0
        return intersection / union

    def ground_truth(self) -> dict[frozenset[str], float]:
        """Exact coefficients for every qualifying tagset."""
        counts = self._counts()
        truth: dict[frozenset[str], float] = {}
        for key, count in counts.items():
            if len(key) < 2 or count <= self.min_occurrences:
                continue
            union = _union_size_from_tuple_counts(key, counts)
            truth[frozenset(key)] = count / union if union > 0 else 0.0
        return truth

    def occurrence_count(self, tagset: frozenset[str]) -> int:
        """How many documents carried all tags of ``tagset``."""
        return self._counts().get(tuple(sorted(tagset)), 0)

    @property
    def documents_seen(self) -> int:
        return self._documents_seen
