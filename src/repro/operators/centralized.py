"""Centralised exact baseline (Section 8.2.3).

To measure the accuracy loss of the distributed computation, the paper runs
a centralised approach that receives *all* tagsets and computes their exact
Jaccard coefficients over the whole run, never resetting its counters.  The
distributed system's error is the deviation of the Tracker's coefficients
from this ground truth, restricted to tagsets seen more than ``sn`` times.
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations

from ..core.jaccard import exact_jaccard
from ..streamsim.components import Bolt
from ..streamsim.tuples import TupleMessage
from .streams import TAGSETS


class CentralizedCalculatorBolt(Bolt):
    """Exact, single-node Jaccard computation used as ground truth."""

    def __init__(self, min_occurrences: int = 3, max_subset_size: int = 4) -> None:
        super().__init__()
        if min_occurrences < 1:
            raise ValueError("min_occurrences must be at least 1")
        self.min_occurrences = min_occurrences
        self.max_subset_size = max_subset_size
        self._tag_documents: dict[str, set[int]] = {}
        self._subset_counts: Counter = Counter()
        self._documents_seen = 0

    def execute(self, message: TupleMessage) -> None:
        if message.stream != TAGSETS:
            return
        tagset: frozenset[str] = message["tagset"]
        doc_id = message.get("doc_id", self._documents_seen)
        self.observe(tagset, doc_id)

    def observe(self, tagset: frozenset[str], doc_id: int) -> None:
        """Record one document's tagset (also usable without the topology)."""
        self._documents_seen += 1
        for tag in tagset:
            self._tag_documents.setdefault(tag, set()).add(doc_id)
        tags = sorted(tagset)
        max_size = min(len(tags), self.max_subset_size)
        for size in range(2, max_size + 1):
            for combo in combinations(tags, size):
                self._subset_counts[frozenset(combo)] += 1

    # ------------------------------------------------------------------ #
    # Ground truth
    # ------------------------------------------------------------------ #
    def qualifying_tagsets(self) -> list[frozenset[str]]:
        """Co-occurring tagsets seen more than ``min_occurrences`` times."""
        return [
            tagset
            for tagset, count in self._subset_counts.items()
            if count > self.min_occurrences
        ]

    def jaccard(self, tagset: frozenset[str]) -> float:
        """Exact Jaccard coefficient of one tagset over the whole run."""
        document_sets = [self._tag_documents.get(tag, set()) for tag in tagset]
        return exact_jaccard(document_sets)

    def ground_truth(self) -> dict[frozenset[str], float]:
        """Exact coefficients for every qualifying tagset."""
        return {tagset: self.jaccard(tagset) for tagset in self.qualifying_tagsets()}

    def occurrence_count(self, tagset: frozenset[str]) -> int:
        """How many documents carried all tags of ``tagset``."""
        return self._subset_counts.get(frozenset(tagset), 0)

    @property
    def documents_seen(self) -> int:
        return self._documents_seen
