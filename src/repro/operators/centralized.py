"""Centralised exact baseline (Section 8.2.3), maintained incrementally.

To measure the accuracy loss of the distributed computation, the paper runs
a centralised approach that receives *all* tagsets and computes their exact
Jaccard coefficients over the whole run, never resetting its counters.  The
distributed system's error is the deviation of the Tracker's coefficients
from this ground truth, restricted to tagsets seen more than ``sn`` times.

The original implementation kept one document-id set per tag and derived
every ground-truth coefficient from raw set intersections/unions at the end
of the run — ~1.3 s of every instrumented benchmark run (see
docs/PERFORMANCE.md).  The incremental rewrite keeps only subset
*counters*: ``observe`` bumps the counters of all tag combinations of the
document up to ``max_subset_size`` (sizes 1..s, one C-level
``Counter.update`` over an ``itertools`` chain per document), and
``ground_truth`` recovers every union with inclusion–exclusion over those
counters — at most ``2^s − 1`` dictionary lookups per qualifying tagset
instead of set algebra over thousands of document ids.  Both paths compute
the same integers: ``|⋂_{t∈K} T_t|`` is exactly the number of documents
annotated with all tags of ``K`` (document ids are unique per document),
and Equation (2) recovers ``|⋃_{t∈K} T_t|`` from the intersection counts
of ``K``'s subsets.

Unlike the Calculators, the baseline deliberately does *not* use the
subset-tuple LRU cache: it observes whole-document tagsets (not routed
sub-tagsets), which rarely repeat exactly, so cached enumerations would
miss far more often than they hit.
"""

from __future__ import annotations

from collections import Counter
from itertools import chain, combinations

from ..core.jaccard import _union_size_from_tuple_counts
from ..streamsim.components import Bolt
from ..streamsim.tuples import TupleMessage
from .streams import TAGSETS


class CentralizedCalculatorBolt(Bolt):
    """Exact, single-node Jaccard computation used as ground truth."""

    def __init__(self, min_occurrences: int = 3, max_subset_size: int = 4) -> None:
        super().__init__()
        if min_occurrences < 1:
            raise ValueError("min_occurrences must be at least 1")
        if max_subset_size < 2:
            raise ValueError("max_subset_size must be at least 2")
        self.min_occurrences = min_occurrences
        self.max_subset_size = max_subset_size
        #: ``|⋂_{t∈K} T_t|`` per sorted tag tuple ``K``, sizes 1..s.
        self._subset_counts: Counter = Counter()
        self._documents_seen = 0

    def execute(self, message: TupleMessage) -> None:
        if message.stream != TAGSETS:
            return
        tagset: frozenset[str] = message["tagset"]
        self.observe(tagset, message.get("doc_id"))

    def observe(self, tagset: frozenset[str], doc_id: object = None) -> None:
        """Record one document's tagset (also usable without the topology).

        ``doc_id`` is accepted for wire compatibility but unused: the
        incremental baseline assumes one call per distinct document, which
        is what the Parser guarantees.
        """
        self._documents_seen += 1
        if not tagset:
            return
        key = tuple(sorted(tagset))
        self._subset_counts.update(
            chain.from_iterable(
                combinations(key, size)
                for size in range(1, min(len(key), self.max_subset_size) + 1)
            )
        )

    # ------------------------------------------------------------------ #
    # Ground truth
    # ------------------------------------------------------------------ #
    def qualifying_tagsets(self) -> list[frozenset[str]]:
        """Co-occurring tagsets seen more than ``min_occurrences`` times."""
        return [
            frozenset(key)
            for key, count in self._subset_counts.items()
            if len(key) >= 2 and count > self.min_occurrences
        ]

    def jaccard(self, tagset: frozenset[str]) -> float:
        """Exact Jaccard coefficient of one tagset over the whole run.

        Computable for tagsets of up to ``max_subset_size`` tags (the cap of
        the maintained counters — the same cap the qualifying set obeys).
        """
        key = tuple(sorted(tagset))
        if len(key) > self.max_subset_size:
            raise ValueError(
                f"tagset has {len(key)} tags but the baseline only maintains "
                f"counters up to max_subset_size={self.max_subset_size}"
            )
        intersection = self._subset_counts.get(key, 0)
        if intersection == 0:
            return 0.0
        union = _union_size_from_tuple_counts(key, self._subset_counts)
        if union <= 0:
            return 0.0
        return intersection / union

    def ground_truth(self) -> dict[frozenset[str], float]:
        """Exact coefficients for every qualifying tagset."""
        counts = self._subset_counts
        truth: dict[frozenset[str], float] = {}
        for key, count in counts.items():
            if len(key) < 2 or count <= self.min_occurrences:
                continue
            union = _union_size_from_tuple_counts(key, counts)
            truth[frozenset(key)] = count / union if union > 0 else 0.0
        return truth

    def occurrence_count(self, tagset: frozenset[str]) -> int:
        """How many documents carried all tags of ``tagset``."""
        return self._subset_counts.get(tuple(sorted(tagset)), 0)

    @property
    def documents_seen(self) -> int:
        return self._documents_seen
