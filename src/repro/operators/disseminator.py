"""The Disseminator bolt: routes tagsets to Calculators and monitors quality.

The Disseminator keeps the inverted index from tags to Calculators built
from the partitions it receives from the Merger (Section 3.3).  For every
parsed tagset it notifies each Calculator that owns at least one of the
tags, sending it exactly the subset of tags it owns (Section 6.2).

It is also the control centre of the dynamics of Section 7, with the
decision logic factored into :class:`~repro.operators.controller.\
RepartitionController`:

* tagsets not covered by any Calculator are counted; after ``sn``
  occurrences the Merger is asked to perform a *Single Addition*;
* rolling statistics over every ``z`` routed tagsets estimate the current
  average communication ``avgCom'`` and maximum load ``maxLoad'``; the
  configured policy (``threshold``, ``capacity``, ``fixed`` or ``never``)
  decides when to request a repartition from the Partitioners;
* all routing decisions are also accumulated into experiment-level metrics
  (total communication, per-Calculator loads, repartition log, quality time
  series) that the pipeline reads after the run.

Live repartitioning
-------------------
With ``repartition_handoff="none"`` (the historical behaviour) a new
assignment from the Merger is installed immediately: routing switches but
the Calculators keep whatever counts they accumulated under the old map.
With ``repartition_handoff="migrate"`` the Disseminator instead *stages*
the assignment and asks the cluster for a coordinated handoff at the next
quiescent point: pending notification micro-batches are flushed under the
old map, every Calculator's counted state is drained (two-phase: a
side-effect-free *prepare* computing the payload, then a *commit* shipping
it to the Tracker and resetting the counters), and only then is the staged
assignment installed and the stream resumed — no notification is lost or
duplicated, and a failed prepare aborts the whole handoff with the old map
intact.  :meth:`DisseminatorBolt.commit_staged` / :meth:`abort_staged` are
the cluster coordinator's callbacks; each outcome is recorded as a
:class:`MigrationRecord`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.metrics import CommunicationTracker, LoadTracker, gini_coefficient
from ..core.partition import PartitionAssignment, PartitionSeed
from ..streamsim.components import Bolt
from ..streamsim.tuples import TupleMessage
from .controller import (
    REASON_BOTH,
    REASON_COMMUNICATION,
    REASON_LOAD,
    RepartitionController,
)
from .streams import (
    CALCULATOR,
    MISSING_TAGSETS,
    NOTIFICATIONS,
    PARTITIONS,
    REPARTITION_REQUESTS,
    SINGLE_ADDITIONS,
    TAGSETS,
)

__all__ = [
    "DisseminatorBolt",
    "DisseminatorMetrics",
    "MigrationRecord",
    "PartitionInstall",
    "QualitySnapshot",
    "RepartitionEvent",
    "StagedRepartition",
    "REASON_BOOTSTRAP",
    "REASON_BOTH",
    "REASON_COMMUNICATION",
    "REASON_FORCED",
    "REASON_LOAD",
]

#: Reasons a repartition can be triggered for (Figure 6's breakdown).  The
#: quality-driven reasons live in :mod:`.controller`; these two are the
#: Disseminator's own (the initial map, and the ``fixed`` policy's
#: scheduled swaps).
REASON_BOOTSTRAP = "bootstrap"
REASON_FORCED = "forced"


@dataclass(slots=True)
class QualitySnapshot:
    """One point of the partition-quality time series (Figures 8 and 9)."""

    documents_processed: int
    timestamp: float
    avg_communication: float
    calculator_loads: tuple[int, ...]
    repartition_reason: str | None = None

    @property
    def load_gini(self) -> float:
        return gini_coefficient(self.calculator_loads)


@dataclass(slots=True)
class RepartitionEvent:
    """A repartition request issued by the Disseminator."""

    documents_processed: int
    timestamp: float
    reason: str


@dataclass(slots=True)
class PartitionInstall:
    """A completed assignment install (bootstrap, swap or seeded start).

    Records everything needed to resume a run from this point: the
    installed map with its loads and the reference quality adopted by the
    controller.  :meth:`seed` turns the record into the
    :class:`~repro.core.partition.PartitionSeed` a fresh run passes as
    ``SystemConfig.initial_partitions`` — the splice-equivalence suites
    rely on the round trip being lossless.
    """

    epoch: int
    documents_processed: int
    timestamp: float
    tag_sets: tuple[frozenset[str], ...]
    loads: tuple[int, ...]
    avg_com: float
    max_load: float
    via_migration: bool = False

    def seed(self) -> PartitionSeed:
        return PartitionSeed(
            tag_sets=self.tag_sets,
            loads=self.loads,
            avg_com=self.avg_com,
            max_load=self.max_load,
        )


@dataclass(slots=True)
class MigrationRecord:
    """Outcome of one coordinated state handoff (committed or aborted)."""

    epoch: int
    documents_processed: int
    timestamp: float
    migrated_triples: int
    stall_seconds: float
    aborted: bool = False
    error: str | None = None


@dataclass(slots=True)
class StagedRepartition:
    """An assignment parked between Merger delivery and handoff commit."""

    epoch: int
    tag_sets: tuple[frozenset[str], ...]
    loads: tuple[int, ...]
    avg_com: float | None
    max_load: float | None
    timestamp: float


@dataclass(slots=True)
class DisseminatorMetrics:
    """Experiment-level counters exposed to the pipeline after a run.

    ``communication`` counts *logical* notifications (one per routed tagset
    per Calculator, the paper's Section 8.2.1 metric) and is independent of
    the physical batching; ``notification_messages`` counts the batched
    tuples actually shipped to Calculators, so their ratio is the batching
    amortization factor.
    """

    communication: CommunicationTracker = field(default_factory=CommunicationTracker)
    load: LoadTracker = field(default_factory=LoadTracker)
    unrouted_tagsets: int = 0
    notified_tagsets: int = 0
    notification_messages: int = 0
    repartitions: list[RepartitionEvent] = field(default_factory=list)
    history: list[QualitySnapshot] = field(default_factory=list)
    single_addition_requests: int = 0
    installs: list[PartitionInstall] = field(default_factory=list)
    migrations: list[MigrationRecord] = field(default_factory=list)


class DisseminatorBolt(Bolt):
    """Routes tagsets, requests single additions and repartitions."""

    def __init__(
        self,
        k: int,
        repartition_threshold: float = 0.5,
        single_addition_threshold: int = 3,
        quality_check_interval: int = 1000,
        bootstrap_documents: int = 1000,
        notification_batch_size: int = 1,
        repartition_policy: str = "threshold",
        repartition_at: tuple[int, ...] = (),
        repartition_handoff: str = "none",
        initial_partitions: PartitionSeed | None = None,
    ) -> None:
        super().__init__()
        if notification_batch_size < 1:
            raise ValueError("notification_batch_size must be at least 1")
        if repartition_handoff not in ("none", "migrate"):
            raise ValueError(
                "repartition_handoff must be 'none' or 'migrate', "
                f"got {repartition_handoff!r}"
            )
        self.k = k
        self.controller = RepartitionController(
            k=k,
            policy=repartition_policy,
            threshold=repartition_threshold,
            single_addition_threshold=single_addition_threshold,
            quality_check_interval=quality_check_interval,
            forced_points=tuple(repartition_at),
        )
        self.bootstrap_documents = bootstrap_documents
        self.notification_batch_size = notification_batch_size
        self.repartition_handoff = repartition_handoff
        self.metrics = DisseminatorMetrics()

        # Pending notification batches, one list of (tags, doc_id) entries
        # per Calculator task.  Flushed every ``notification_batch_size``
        # routed tagsets, on every simulated-clock tick (bounded staleness)
        # and at end of stream.
        self._pending: dict[int, list[tuple[frozenset[str], object]]] = {}
        self._pending_tagsets = 0
        self._pending_timestamp = 0.0

        self._assignment: PartitionAssignment | None = None
        self._calculator_tasks: list[int] = []
        self._documents_seen = 0
        self._epoch = 0
        self._installed_epoch = -1
        self._awaiting_partitions = False
        self._staged: StagedRepartition | None = None
        if initial_partitions is not None:
            self._seed_initial(initial_partitions)

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #
    def on_prepare(self) -> None:
        assert self.context is not None
        try:
            self._calculator_tasks = self.context.task_ids(CALCULATOR)
        except KeyError:
            self._calculator_tasks = []

    @property
    def assignment(self) -> PartitionAssignment | None:
        """The currently installed partition assignment (None before bootstrap)."""
        return self._assignment

    @property
    def current_epoch(self) -> int:
        return self._installed_epoch

    @property
    def staged_handoff(self) -> StagedRepartition | None:
        """The assignment awaiting a coordinated handoff, if any."""
        return self._staged

    def _seed_initial(self, seed: PartitionSeed) -> None:
        """Start under a known assignment instead of bootstrapping one.

        Installs the seed as epoch 0 before any document arrives, adopting
        its recorded quality as the controller reference — exactly what a
        completed handoff at document 0 would have produced.  Bootstrap
        never fires (an assignment is present from the first tagset).
        """
        self._assignment = seed.build_assignment()
        self._installed_epoch = 0
        self.controller.set_reference(seed.avg_com, seed.max_load)
        self._record_install(epoch=0, timestamp=0.0, via_migration=False)
        self._record_snapshot(0.0, reason=None)

    # ------------------------------------------------------------------ #
    # Tuple handling
    # ------------------------------------------------------------------ #
    def execute(self, message: TupleMessage) -> None:
        schema = message.schema
        if schema is TAGSETS:
            self._handle_tagset(message)
        elif schema is PARTITIONS:
            self._install_partitions(message)
        elif schema is SINGLE_ADDITIONS:
            self._apply_single_addition(message)

    def execute_batch(self, messages) -> None:
        """Parser→Disseminator link batches are almost always tagsets."""
        handle = self._handle_tagset
        for message in messages:
            if message.schema is TAGSETS:
                handle(message)
            else:
                self.execute(message)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def _handle_tagset(self, message: TupleMessage) -> None:
        self._documents_seen += 1
        # TAGSETS slot layout: (doc_id, timestamp, tagset).
        doc_id, timestamp, tagset = message.values
        if timestamp is None:
            timestamp = 0.0
        if doc_id is None:
            doc_id = (self.task_id, self._documents_seen)

        if self._assignment is None:
            self.metrics.unrouted_tagsets += 1
            self._maybe_bootstrap(timestamp)
            self._maybe_forced_swap(timestamp)
            return

        routes, covered = self._assignment.route_and_covered(tagset)
        if not covered:
            self._register_missing(tagset, timestamp)
        if not routes:
            self.metrics.unrouted_tagsets += 1
            self.metrics.communication.record(0)
            self._maybe_forced_swap(timestamp)
            return

        for partition_index, tags in routes.items():
            task_id = self._task_for_partition(partition_index)
            if task_id is None:
                continue
            self._pending.setdefault(task_id, []).append((tags, doc_id))
        self._pending_tagsets += 1
        self._pending_timestamp = timestamp
        if self._pending_tagsets >= self.notification_batch_size:
            self._flush_notifications()
        n_notifications = len(routes)
        self.metrics.notified_tagsets += 1
        self.metrics.communication.record(n_notifications)
        for partition_index in routes:
            self.metrics.load.record(partition_index)
        self.controller.record_route(n_notifications, routes)
        self._maybe_check_quality(timestamp)
        self._maybe_forced_swap(timestamp)

    def _flush_notifications(self) -> None:
        """Ship one batched notification tuple per Calculator with pending work.

        With ``notification_batch_size == 1`` the engine degrades to the
        paper's unbatched cadence — one physical message per routed tagset
        per Calculator (each carrying a single-entry batch) — so the
        physical message count equals the logical notification count.
        """
        if not self._pending:
            self._pending_tagsets = 0
            return
        unbatched = self.notification_batch_size == 1
        timestamp = self._pending_timestamp
        for task_id, entries in self._pending.items():
            if not entries:
                continue
            if unbatched:
                # Legacy cadence: one physical message per routed tagset per
                # Calculator (each carrying a single-entry batch).
                for entry in entries:
                    self.emit_direct(task_id, NOTIFICATIONS, [entry], timestamp)
                    self.metrics.notification_messages += 1
            else:
                self.emit_direct(task_id, NOTIFICATIONS, entries, timestamp)
                self.metrics.notification_messages += 1
        self._pending = {}
        self._pending_tagsets = 0

    def tick(self, simulation_time: float) -> None:
        # Time-based flush bounds notification staleness to one tick even
        # when the stream is slower than the micro-batch size.
        self._flush_notifications()

    def flush(self) -> None:
        """End-of-stream hook: deliver the final partial micro-batch."""
        self._flush_notifications()

    def _task_for_partition(self, partition_index: int) -> int | None:
        if not self._calculator_tasks:
            return None
        if partition_index >= len(self._calculator_tasks):
            # More partitions than Calculators should not happen; route
            # modulo so the document is not lost, which mirrors Storm's
            # behaviour of hashing onto the available tasks.
            partition_index %= len(self._calculator_tasks)
        return self._calculator_tasks[partition_index]

    # ------------------------------------------------------------------ #
    # Partitions and single additions
    # ------------------------------------------------------------------ #
    def _install_partitions(self, message: TupleMessage) -> None:
        # PARTITIONS slot layout:
        # (epoch, tag_sets, loads, avg_com, max_load, timestamp).
        epoch, tag_sets, loads, avg_com, max_load, timestamp = message.values
        epoch = 0 if epoch is None else epoch
        if epoch <= self._installed_epoch:
            return
        if self._staged is not None and epoch <= self._staged.epoch:
            return
        if loads is None:
            loads = [0] * len(tag_sets)
        if self.repartition_handoff == "migrate" and self._assignment is not None:
            # Stage the assignment and hand control to the cluster: the
            # actual install happens in commit_staged() once every
            # Calculator's state has been drained.  Our own contribution to
            # the quiesce goes first — pending notification micro-batches
            # belong to the old map and must reach their Calculators before
            # any state moves.
            self._staged = StagedRepartition(
                epoch=epoch,
                tag_sets=tuple(frozenset(tags) for tags in tag_sets),
                loads=tuple(int(load) for load in loads),
                avg_com=avg_com,
                max_load=max_load,
                timestamp=0.0 if timestamp is None else timestamp,
            )
            self._flush_notifications()
            assert self.context is not None
            self.context.request_handoff(self.task_id, (CALCULATOR,))
            return
        self._apply_install(
            epoch, tag_sets, loads, avg_com, max_load,
            0.0 if timestamp is None else timestamp, via_migration=False,
        )

    def _apply_install(
        self,
        epoch: int,
        tag_sets,
        loads,
        avg_com: float | None,
        max_load: float | None,
        timestamp: float,
        via_migration: bool,
    ) -> None:
        partitions = PartitionAssignment.from_tag_sets(tag_sets)
        for partition, load in zip(partitions, loads):
            partition.load = int(load)
        self._assignment = partitions
        self._installed_epoch = epoch
        self._awaiting_partitions = False
        self.controller.set_reference(avg_com, max_load)
        self._record_install(epoch, timestamp, via_migration)
        self._record_snapshot(timestamp, reason=None)

    def _record_install(
        self, epoch: int, timestamp: float, via_migration: bool
    ) -> None:
        assert self._assignment is not None
        self.metrics.installs.append(
            PartitionInstall(
                epoch=epoch,
                documents_processed=self._documents_seen,
                timestamp=timestamp,
                tag_sets=tuple(
                    frozenset(tags) for tags in self._assignment.as_tag_sets()
                ),
                loads=tuple(self._assignment.loads()),
                avg_com=self.controller.reference_avg_com,
                max_load=self.controller.reference_max_load,
                via_migration=via_migration,
            )
        )

    # ------------------------------------------------------------------ #
    # Handoff callbacks (cluster coordinator)
    # ------------------------------------------------------------------ #
    def commit_staged(self, migrated_triples: int, stall_seconds: float) -> None:
        """Install the staged assignment after a successful state handoff."""
        staged = self._staged
        assert staged is not None, "commit_staged without a staged assignment"
        self._staged = None
        self._apply_install(
            staged.epoch, staged.tag_sets, staged.loads,
            staged.avg_com, staged.max_load, staged.timestamp,
            via_migration=True,
        )
        self.metrics.migrations.append(
            MigrationRecord(
                epoch=staged.epoch,
                documents_processed=self._documents_seen,
                timestamp=staged.timestamp,
                migrated_triples=migrated_triples,
                stall_seconds=stall_seconds,
            )
        )

    def abort_staged(self, error: str, stall_seconds: float = 0.0) -> None:
        """Drop the staged assignment after a failed handoff.

        The old assignment stays installed and routing continues as if the
        repartition had never been requested; the failure is recorded for
        ``RunReport.migration_failures``.  The request flag is cleared so
        the controller may ask again on a later window.
        """
        staged = self._staged
        assert staged is not None, "abort_staged without a staged assignment"
        self._staged = None
        self._awaiting_partitions = False
        self.metrics.migrations.append(
            MigrationRecord(
                epoch=staged.epoch,
                documents_processed=self._documents_seen,
                timestamp=staged.timestamp,
                migrated_triples=0,
                stall_seconds=stall_seconds,
                aborted=True,
                error=error,
            )
        )

    def _apply_single_addition(self, message: TupleMessage) -> None:
        if self._assignment is None:
            return
        # SINGLE_ADDITIONS slot layout: (tagset, partition_index, timestamp).
        raw_tagset, partition_index, _ = message.values
        tagset = frozenset(raw_tagset)
        index = int(partition_index)
        if index < self._assignment.k:
            self._assignment.add_tagset(index, tagset)
        self.controller.addition_applied(tagset)

    def _register_missing(self, tagset: frozenset[str], timestamp: float) -> None:
        count = self.controller.record_missing(tagset)
        if count is not None:
            self.metrics.single_addition_requests += 1
            self.emit(MISSING_TAGSETS, tagset, count, timestamp)

    # ------------------------------------------------------------------ #
    # Quality monitoring (Section 7.2)
    # ------------------------------------------------------------------ #
    def _maybe_bootstrap(self, timestamp: float) -> None:
        if self._awaiting_partitions:
            return
        if self._documents_seen >= self.bootstrap_documents:
            self._request_repartition(REASON_BOOTSTRAP, timestamp)

    def _maybe_check_quality(self, timestamp: float) -> None:
        if self._awaiting_partitions:
            return
        controller = self.controller
        if not controller.window_ready():
            return
        reason = controller.evaluate_window()
        self._record_snapshot(timestamp, reason=reason)
        if reason is not None:
            self._request_repartition(reason, timestamp)
        controller.reset_window()

    def _maybe_forced_swap(self, timestamp: float) -> None:
        """Fire a scheduled swap of the ``fixed`` policy when one is due.

        Called once per tagset on every path, so schedule points are
        consumed at the document that crosses them regardless of routing
        outcome — a point crossed before bootstrap (or while a request is
        in flight) is dropped, never deferred.
        """
        if self.controller.forced_swap_due(
            self._documents_seen,
            self._assignment is not None,
            self._awaiting_partitions,
        ):
            self._request_repartition(REASON_FORCED, timestamp)

    def _request_repartition(self, reason: str, timestamp: float) -> None:
        self._epoch += 1
        self._awaiting_partitions = True
        if reason != REASON_BOOTSTRAP:
            self.metrics.repartitions.append(
                RepartitionEvent(
                    documents_processed=self._documents_seen,
                    timestamp=timestamp,
                    reason=reason,
                )
            )
        self.emit(REPARTITION_REQUESTS, self._epoch, reason, timestamp)

    def _record_snapshot(self, timestamp: float, reason: str | None) -> None:
        controller = self.controller
        self.metrics.history.append(
            QualitySnapshot(
                documents_processed=self._documents_seen,
                timestamp=timestamp,
                avg_communication=controller.rolling_com.average,
                calculator_loads=tuple(controller.rolling_load.loads(self.k)),
                repartition_reason=reason,
            )
        )
