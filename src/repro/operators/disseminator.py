"""The Disseminator bolt: routes tagsets to Calculators and monitors quality.

The Disseminator keeps the inverted index from tags to Calculators built
from the partitions it receives from the Merger (Section 3.3).  For every
parsed tagset it notifies each Calculator that owns at least one of the
tags, sending it exactly the subset of tags it owns (Section 6.2).

It is also the control centre of the dynamics of Section 7:

* tagsets not covered by any Calculator are counted; after ``sn``
  occurrences the Merger is asked to perform a *Single Addition*;
* rolling statistics over every ``z`` routed tagsets estimate the current
  average communication ``avgCom'`` and maximum load ``maxLoad'``; when
  either exceeds its reference value by more than the threshold ``thr`` the
  Disseminator requests a repartition from the Partitioners;
* all routing decisions are also accumulated into experiment-level metrics
  (total communication, per-Calculator loads, repartition log, quality time
  series) that the pipeline reads after the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.metrics import CommunicationTracker, LoadTracker, gini_coefficient
from ..core.partition import PartitionAssignment
from ..streamsim.components import Bolt
from ..streamsim.tuples import TupleMessage
from .streams import (
    MISSING_TAGSETS,
    NOTIFICATIONS,
    PARTITIONS,
    REPARTITION_REQUESTS,
    SINGLE_ADDITIONS,
    TAGSETS,
)

#: Reasons a repartition can be triggered for (Figure 6's breakdown).
REASON_COMMUNICATION = "communication"
REASON_LOAD = "load"
REASON_BOTH = "both"
REASON_BOOTSTRAP = "bootstrap"


@dataclass(slots=True)
class QualitySnapshot:
    """One point of the partition-quality time series (Figures 8 and 9)."""

    documents_processed: int
    timestamp: float
    avg_communication: float
    calculator_loads: tuple[int, ...]
    repartition_reason: str | None = None

    @property
    def load_gini(self) -> float:
        return gini_coefficient(self.calculator_loads)


@dataclass(slots=True)
class RepartitionEvent:
    """A repartition request issued by the Disseminator."""

    documents_processed: int
    timestamp: float
    reason: str


@dataclass(slots=True)
class DisseminatorMetrics:
    """Experiment-level counters exposed to the pipeline after a run.

    ``communication`` counts *logical* notifications (one per routed tagset
    per Calculator, the paper's Section 8.2.1 metric) and is independent of
    the physical batching; ``notification_messages`` counts the batched
    tuples actually shipped to Calculators, so their ratio is the batching
    amortization factor.
    """

    communication: CommunicationTracker = field(default_factory=CommunicationTracker)
    load: LoadTracker = field(default_factory=LoadTracker)
    unrouted_tagsets: int = 0
    notified_tagsets: int = 0
    notification_messages: int = 0
    repartitions: list[RepartitionEvent] = field(default_factory=list)
    history: list[QualitySnapshot] = field(default_factory=list)
    single_addition_requests: int = 0


class DisseminatorBolt(Bolt):
    """Routes tagsets, requests single additions and repartitions."""

    def __init__(
        self,
        k: int,
        repartition_threshold: float = 0.5,
        single_addition_threshold: int = 3,
        quality_check_interval: int = 1000,
        bootstrap_documents: int = 1000,
        notification_batch_size: int = 1,
    ) -> None:
        super().__init__()
        if repartition_threshold < 0:
            raise ValueError("repartition_threshold must be non-negative")
        if single_addition_threshold < 1:
            raise ValueError("single_addition_threshold must be at least 1")
        if notification_batch_size < 1:
            raise ValueError("notification_batch_size must be at least 1")
        self.k = k
        self.thr = repartition_threshold
        self.sn = single_addition_threshold
        self.z = quality_check_interval
        self.bootstrap_documents = bootstrap_documents
        self.notification_batch_size = notification_batch_size
        self.metrics = DisseminatorMetrics()

        # Pending notification batches, one list of (tags, doc_id) entries
        # per Calculator task.  Flushed every ``notification_batch_size``
        # routed tagsets, on every simulated-clock tick (bounded staleness)
        # and at end of stream.
        self._pending: dict[int, list[tuple[frozenset[str], object]]] = {}
        self._pending_tagsets = 0
        self._pending_timestamp = 0.0

        self._assignment: PartitionAssignment | None = None
        self._calculator_tasks: list[int] = []
        self._reference_avg_com: float = 1.0
        self._reference_max_load: float = 1.0
        self._rolling_com = CommunicationTracker()
        self._rolling_load = LoadTracker()
        self._missing_counts: dict[frozenset[str], int] = {}
        self._requested_additions: set[frozenset[str]] = set()
        self._documents_seen = 0
        self._epoch = 0
        self._installed_epoch = -1
        self._awaiting_partitions = False

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #
    def on_prepare(self) -> None:
        assert self.context is not None
        from .streams import CALCULATOR

        try:
            self._calculator_tasks = self.context.task_ids(CALCULATOR)
        except KeyError:
            self._calculator_tasks = []

    @property
    def assignment(self) -> PartitionAssignment | None:
        """The currently installed partition assignment (None before bootstrap)."""
        return self._assignment

    @property
    def current_epoch(self) -> int:
        return self._installed_epoch

    # ------------------------------------------------------------------ #
    # Tuple handling
    # ------------------------------------------------------------------ #
    def execute(self, message: TupleMessage) -> None:
        schema = message.schema
        if schema is TAGSETS:
            self._handle_tagset(message)
        elif schema is PARTITIONS:
            self._install_partitions(message)
        elif schema is SINGLE_ADDITIONS:
            self._apply_single_addition(message)

    def execute_batch(self, messages) -> None:
        """Parser→Disseminator link batches are almost always tagsets."""
        handle = self._handle_tagset
        for message in messages:
            if message.schema is TAGSETS:
                handle(message)
            else:
                self.execute(message)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def _handle_tagset(self, message: TupleMessage) -> None:
        self._documents_seen += 1
        # TAGSETS slot layout: (doc_id, timestamp, tagset).
        doc_id, timestamp, tagset = message.values
        if timestamp is None:
            timestamp = 0.0
        if doc_id is None:
            doc_id = (self.task_id, self._documents_seen)

        if self._assignment is None:
            self.metrics.unrouted_tagsets += 1
            self._maybe_bootstrap(timestamp)
            return

        routes, covered = self._assignment.route_and_covered(tagset)
        if not covered:
            self._register_missing(tagset, timestamp)
        if not routes:
            self.metrics.unrouted_tagsets += 1
            self.metrics.communication.record(0)
            return

        for partition_index, tags in routes.items():
            task_id = self._task_for_partition(partition_index)
            if task_id is None:
                continue
            self._pending.setdefault(task_id, []).append((tags, doc_id))
        self._pending_tagsets += 1
        self._pending_timestamp = timestamp
        if self._pending_tagsets >= self.notification_batch_size:
            self._flush_notifications()
        n_notifications = len(routes)
        self.metrics.notified_tagsets += 1
        self.metrics.communication.record(n_notifications)
        self._rolling_com.record(n_notifications)
        for partition_index in routes:
            self.metrics.load.record(partition_index)
            self._rolling_load.record(partition_index)
        self._maybe_check_quality(timestamp)

    def _flush_notifications(self) -> None:
        """Ship one batched notification tuple per Calculator with pending work.

        With ``notification_batch_size == 1`` the engine degrades to the
        paper's unbatched cadence — one physical message per routed tagset
        per Calculator (each carrying a single-entry batch) — so the
        physical message count equals the logical notification count.
        """
        if not self._pending:
            self._pending_tagsets = 0
            return
        unbatched = self.notification_batch_size == 1
        timestamp = self._pending_timestamp
        for task_id, entries in self._pending.items():
            if not entries:
                continue
            if unbatched:
                # Legacy cadence: one physical message per routed tagset per
                # Calculator (each carrying a single-entry batch).
                for entry in entries:
                    self.emit_direct(task_id, NOTIFICATIONS, [entry], timestamp)
                    self.metrics.notification_messages += 1
            else:
                self.emit_direct(task_id, NOTIFICATIONS, entries, timestamp)
                self.metrics.notification_messages += 1
        self._pending = {}
        self._pending_tagsets = 0

    def tick(self, simulation_time: float) -> None:
        # Time-based flush bounds notification staleness to one tick even
        # when the stream is slower than the micro-batch size.
        self._flush_notifications()

    def flush(self) -> None:
        """End-of-stream hook: deliver the final partial micro-batch."""
        self._flush_notifications()

    def _task_for_partition(self, partition_index: int) -> int | None:
        if not self._calculator_tasks:
            return None
        if partition_index >= len(self._calculator_tasks):
            # More partitions than Calculators should not happen; route
            # modulo so the document is not lost, which mirrors Storm's
            # behaviour of hashing onto the available tasks.
            partition_index %= len(self._calculator_tasks)
        return self._calculator_tasks[partition_index]

    # ------------------------------------------------------------------ #
    # Partitions and single additions
    # ------------------------------------------------------------------ #
    def _install_partitions(self, message: TupleMessage) -> None:
        # PARTITIONS slot layout:
        # (epoch, tag_sets, loads, avg_com, max_load, timestamp).
        epoch, tag_sets, loads, avg_com, max_load, timestamp = message.values
        epoch = 0 if epoch is None else epoch
        if epoch <= self._installed_epoch:
            return
        if loads is None:
            loads = [0] * len(tag_sets)
        partitions = PartitionAssignment.from_tag_sets(tag_sets)
        for partition, load in zip(partitions, loads):
            partition.load = int(load)
        self._assignment = partitions
        self._installed_epoch = epoch
        self._awaiting_partitions = False
        self._reference_avg_com = max(
            float(avg_com) if avg_com is not None else 1.0, 1e-9
        )
        self._reference_max_load = max(
            float(max_load) if max_load is not None else 1.0, 1e-9
        )
        self._rolling_com.reset()
        self._rolling_load.reset()
        self._missing_counts.clear()
        self._requested_additions.clear()
        self._record_snapshot(
            0.0 if timestamp is None else timestamp, reason=None
        )

    def _apply_single_addition(self, message: TupleMessage) -> None:
        if self._assignment is None:
            return
        # SINGLE_ADDITIONS slot layout: (tagset, partition_index, timestamp).
        raw_tagset, partition_index, _ = message.values
        tagset = frozenset(raw_tagset)
        index = int(partition_index)
        if index < self._assignment.k:
            self._assignment.add_tagset(index, tagset)
        self._missing_counts.pop(tagset, None)
        self._requested_additions.discard(tagset)

    def _register_missing(self, tagset: frozenset[str], timestamp: float) -> None:
        if tagset in self._requested_additions:
            return
        count = self._missing_counts.get(tagset, 0) + 1
        self._missing_counts[tagset] = count
        if count >= self.sn:
            self._requested_additions.add(tagset)
            self.metrics.single_addition_requests += 1
            self.emit(MISSING_TAGSETS, tagset, count, timestamp)

    # ------------------------------------------------------------------ #
    # Quality monitoring (Section 7.2)
    # ------------------------------------------------------------------ #
    def _maybe_bootstrap(self, timestamp: float) -> None:
        if self._awaiting_partitions:
            return
        if self._documents_seen >= self.bootstrap_documents:
            self._request_repartition(REASON_BOOTSTRAP, timestamp)

    def _maybe_check_quality(self, timestamp: float) -> None:
        if self._awaiting_partitions:
            return
        if self._rolling_com.routed_tagsets < self.z:
            return
        current_com = self._rolling_com.average
        current_load = self._rolling_load.max_share(self.k)
        com_degraded = current_com > self._reference_avg_com * (1.0 + self.thr)
        load_degraded = current_load > self._reference_max_load * (1.0 + self.thr)
        reason: str | None = None
        if com_degraded and load_degraded:
            reason = REASON_BOTH
        elif com_degraded:
            reason = REASON_COMMUNICATION
        elif load_degraded:
            reason = REASON_LOAD
        self._record_snapshot(timestamp, reason=reason)
        if reason is not None:
            self._request_repartition(reason, timestamp)
        self._rolling_com.reset()
        self._rolling_load.reset()

    def _request_repartition(self, reason: str, timestamp: float) -> None:
        self._epoch += 1
        self._awaiting_partitions = True
        if reason != REASON_BOOTSTRAP:
            self.metrics.repartitions.append(
                RepartitionEvent(
                    documents_processed=self._documents_seen,
                    timestamp=timestamp,
                    reason=reason,
                )
            )
        self.emit(REPARTITION_REQUESTS, self._epoch, reason, timestamp)

    def _record_snapshot(self, timestamp: float, reason: str | None) -> None:
        self.metrics.history.append(
            QualitySnapshot(
                documents_processed=self._documents_seen,
                timestamp=timestamp,
                avg_communication=self._rolling_com.average,
                calculator_loads=tuple(self._rolling_load.loads(self.k)),
                repartition_reason=reason,
            )
        )
