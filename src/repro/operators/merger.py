"""The Merger bolt: combines partial partitions into the final ``k`` partitions.

With ``P`` parallel Partitioner instances, each one only sees (and
partitions) a subset of the window's tagsets.  The Merger collects the
partial results of all Partitioners for an epoch and produces the final
``k`` partitions (Section 6.2):

* for DS, the received pieces are disjoint sets of the per-Partitioner
  windows; the Merger re-unions pieces that share tags (they belong to the
  same global connected component) and then packs them into ``k``
  partitions with the greedy phase 2 of Algorithm 1;
* for the set-cover algorithms, the received pieces are the Partitioners'
  partitions, which the Merger treats as input tagsets for another run of
  the same algorithm — "the Merger can be viewed as another Partitioner".

The Merger also owns the live assignment between repartitions: the
Disseminator reports tagsets that no Calculator covers, and the Merger picks
the best partition for them (a *Single Addition*, Section 7.1) and
broadcasts the decision.

Together with the final partitions the Merger ships the reference quality
values ``avgCom`` and ``maxLoad``, computed over the merged window contents,
which the Disseminator later compares against its rolling statistics.
"""

from __future__ import annotations

from collections import Counter

from ..core.cooccurrence import CooccurrenceStatistics
from ..core.metrics import max_load_share
from ..core.partition import PartitionAssignment, PartitionSeed
from ..partitioning import (
    DisjointSet,
    DisjointSetsPartitioner,
    Partitioner,
    merge_disjoint_sets,
)
from ..core.union_find import UnionFind
from ..streamsim.components import Bolt
from ..streamsim.tuples import TupleMessage
from .streams import MISSING_TAGSETS, PARTIAL_PARTITIONS, PARTITIONS, SINGLE_ADDITIONS


def _statistics_from_weighted_tagsets(
    weighted: dict[frozenset[str], int]
) -> CooccurrenceStatistics:
    """Build statistics where each tagset occurs ``weight`` times.

    Synthetic documents are assigned in disjoint blocks, so the load of a
    tag equals the total weight of the tagsets containing it.
    """
    return CooccurrenceStatistics.from_tagset_counts(
        {tagset: max(1, int(weight)) for tagset, weight in weighted.items()}
    )


class MergerBolt(Bolt):
    """Collects partial partitions, emits final partitions, handles additions."""

    def __init__(
        self,
        algorithm: Partitioner,
        k: int,
        initial_partitions: PartitionSeed | None = None,
    ) -> None:
        super().__init__()
        self.algorithm = algorithm
        self.k = k
        self.merges_performed = 0
        self.single_additions = 0
        self._pending: dict[int, list[TupleMessage]] = {}
        self._current_assignment: PartitionAssignment | None = None
        self._expected_partials = 1
        if initial_partitions is not None:
            # A seeded run (SystemConfig.initial_partitions) resumes under a
            # known assignment: the Merger must own it from the start so
            # Single Additions are placed against the same map (with the
            # same loads) a continued run would use — without a copy here,
            # MISSING_TAGSETS would be dropped silently until the first
            # merge.
            self._current_assignment = initial_partitions.build_assignment()

    def on_prepare(self) -> None:
        assert self.context is not None
        from .streams import PARTITIONER  # local import to avoid cycle at module load

        try:
            self._expected_partials = self.context.parallelism(PARTITIONER)
        except KeyError:
            # Topologies without a Partitioner component (tests) default to 1.
            self._expected_partials = 1

    # ------------------------------------------------------------------ #
    # Tuple handling
    # ------------------------------------------------------------------ #
    def execute(self, message: TupleMessage) -> None:
        schema = message.schema
        if schema is PARTIAL_PARTITIONS:
            self._collect_partial(message)
        elif schema is MISSING_TAGSETS:
            self._single_addition(message)

    def _collect_partial(self, message: TupleMessage) -> None:
        epoch = message.values[0]
        epoch = 0 if epoch is None else epoch
        bucket = self._pending.setdefault(epoch, [])
        bucket.append(message)
        if len(bucket) >= self._expected_partials:
            del self._pending[epoch]
            self._merge(epoch, bucket)

    # ------------------------------------------------------------------ #
    # Merging
    # ------------------------------------------------------------------ #
    def _merge(self, epoch: int, partials: list[TupleMessage]) -> None:
        pieces: list[tuple[frozenset[str], int]] = []
        window_counts: Counter = Counter()
        timestamp = 0.0
        for partial in partials:
            # PARTIAL_PARTITIONS slot layout:
            # (epoch, partitioner_task, tag_sets, loads, window_counts, timestamp).
            _, _, tag_sets, loads, partial_counts, partial_ts = partial.values
            timestamp = max(timestamp, partial_ts if partial_ts is not None else 0.0)
            for tags, load in zip(tag_sets, loads):
                pieces.append((frozenset(tags), int(load)))
            for tags, count in (partial_counts or {}).items():
                window_counts[frozenset(tags)] += int(count)

        if not pieces and not window_counts:
            # Nothing observed yet; emit an empty assignment so the
            # Disseminator does not wait forever.
            assignment = PartitionAssignment.empty(self.k)
        elif isinstance(self.algorithm, DisjointSetsPartitioner):
            assignment = self._merge_disjoint_sets(pieces, window_counts)
        else:
            assignment = self._merge_set_cover(pieces)

        self._current_assignment = assignment
        self.merges_performed += 1
        avg_com, max_load = self._reference_quality(assignment, window_counts)
        self.emit(
            PARTITIONS,
            epoch,
            [frozenset(p.tags) for p in assignment],
            [p.load for p in assignment],
            avg_com,
            max_load,
            timestamp,
        )

    def _merge_disjoint_sets(
        self,
        pieces: list[tuple[frozenset[str], int]],
        window_counts: Counter,
    ) -> PartitionAssignment:
        """Re-union pieces sharing tags, then pack them into ``k`` partitions."""
        forest: UnionFind[str] = UnionFind()
        for tags, _ in pieces:
            forest.union_all(tags)
        merged_stats = _statistics_from_weighted_tagsets(dict(window_counts))
        disjoint_sets = [
            DisjointSet(tags=frozenset(tags), load=merged_stats.load(tags))
            for tags in forest.components().values()
        ]
        return merge_disjoint_sets(disjoint_sets, self.k)

    def _merge_set_cover(
        self, pieces: list[tuple[frozenset[str], int]]
    ) -> PartitionAssignment:
        """Treat the received partitions as tagsets and re-run the algorithm."""
        weighted = {tags: load for tags, load in pieces if tags}
        statistics = _statistics_from_weighted_tagsets(weighted)
        return self.algorithm.partition(statistics, self.k)

    def _reference_quality(
        self, assignment: PartitionAssignment, window_counts: Counter
    ) -> tuple[float, float]:
        """avgCom and maxLoad of the new partitions over the window contents."""
        if not window_counts:
            return 1.0, 1.0 / max(assignment.k, 1)
        notifications = 0
        routed = 0
        loads = [0] * assignment.k
        for tagset, count in window_counts.items():
            routes = assignment.route(tagset)
            if not routes:
                continue
            notifications += len(routes) * count
            routed += count
            for index in routes:
                loads[index] += count
        avg_com = notifications / routed if routed else 1.0
        return avg_com, max_load_share(loads)

    # ------------------------------------------------------------------ #
    # Single additions (Section 7.1)
    # ------------------------------------------------------------------ #
    def _single_addition(self, message: TupleMessage) -> None:
        # MISSING_TAGSETS slot layout: (tagset, count, timestamp).
        raw_tagset, count, timestamp = message.values
        tagset = frozenset(raw_tagset)
        load = 1 if count is None else int(count)
        if self._current_assignment is None or self._current_assignment.k == 0:
            return
        assignment = self._current_assignment
        existing = assignment.covering_partitions(tagset)
        if existing:
            index = existing[0]
        else:
            index = self.algorithm.best_partition_for_addition(
                assignment, tagset, load=load
            )
            assignment.add_tagset(index, tagset, load=load)
            self.single_additions += 1
        self.emit(
            SINGLE_ADDITIONS,
            tagset,
            index,
            0.0 if timestamp is None else timestamp,
        )
