"""The Partitioner bolt: turns a window of tagsets into tag partitions.

Each Partitioner instance receives parsed tagsets via fields grouping on the
tagset (so identical tagsets always hit the same instance), maintains a
sliding window over them and — whenever the Disseminator requests a
repartition — runs the configured partitioning algorithm on the window
contents and ships the result to the Merger.

Following Section 6.2, the behaviour depends on the algorithm:

* for DS, Partitioners run only phase 1 (they emit the disjoint sets of
  their window, not ``k`` packed partitions) so the Merger can recombine
  components that are split across Partitioner instances;
* for the set-cover algorithms, Partitioners emit ``k`` partitions which the
  Merger treats as input tagsets for another run of the same algorithm.

Every emission also carries the window's tagset counts so the Merger can
compute the reference quality values (``avgCom`` and ``maxLoad``) of the
final partitions.
"""

from __future__ import annotations

from collections import deque

from ..core.cooccurrence import CooccurrenceStatistics
from ..partitioning import DisjointSetsPartitioner, Partitioner, find_disjoint_sets
from ..sketches.countmin import CountMinSketch
from ..streamsim.components import Bolt
from ..streamsim.tuples import TupleMessage
from .streams import PARTIAL_PARTITIONS, REPARTITION_REQUESTS, TAGSETS


class SlidingWindow:
    """Count- or time-based sliding window over ``(timestamp, tagset)`` pairs."""

    def __init__(self, mode: str = "count", size: float = 5000) -> None:
        if mode not in ("count", "time"):
            raise ValueError("window mode must be 'count' or 'time'")
        if size <= 0:
            raise ValueError("window size must be positive")
        self.mode = mode
        self.size = size
        self._items: deque[tuple[float, frozenset[str]]] = deque()

    def add(self, timestamp: float, tagset: frozenset[str]) -> None:
        self._items.append((timestamp, tagset))
        self._evict(timestamp)

    def _evict(self, now: float) -> None:
        if self.mode == "count":
            while len(self._items) > self.size:
                self._items.popleft()
        else:
            horizon = now - self.size
            while self._items and self._items[0][0] < horizon:
                self._items.popleft()

    def tagsets(self) -> list[frozenset[str]]:
        return [tagset for _, tagset in self._items]

    def statistics(self) -> CooccurrenceStatistics:
        """Co-occurrence statistics of the current window contents."""
        statistics = CooccurrenceStatistics()
        for position, (timestamp, tagset) in enumerate(self._items):
            # Window positions serve as synthetic document identifiers.
            statistics.add_document(
                _WindowDocument(doc_id=position, tags=tagset, timestamp=timestamp)
            )
        return statistics

    def __len__(self) -> int:
        return len(self._items)


def sketch_tagset_counts(
    tagset_counts: dict[tuple[str, ...], int],
    epsilon: float = 0.002,
    delta: float = 0.01,
) -> dict[tuple[str, ...], int]:
    """Route per-tagset counts through a Count-Min sketch.

    The approximate tracking mode uses this when shipping window counts to
    the Merger, exercising the sketch path end-to-end: the *counting table*
    is a fixed-size Count-Min instead of one exact counter per distinct
    tagset, so the Merger's reference quality statistics must tolerate the
    sketch's additive over-estimation (at most ``epsilon`` times the window
    size, with probability ``1 - delta``).  The key set is still enumerated
    exactly — this trades accuracy for a sketched counting table; it is a
    demonstration of the sketch path, not an asymptotic memory win.
    """
    sketch = CountMinSketch(epsilon=epsilon, delta=delta)
    for key, count in tagset_counts.items():
        sketch.add(key, count)
    return {key: sketch.estimate(key) for key in tagset_counts}


class _WindowDocument:
    """Lightweight Document stand-in to avoid re-validating frozen sets."""

    __slots__ = ("doc_id", "tags", "timestamp")

    def __init__(self, doc_id: int, tags: frozenset[str], timestamp: float) -> None:
        self.doc_id = doc_id
        self.tags = tags
        self.timestamp = timestamp


class PartitionerBolt(Bolt):
    """Computes tag partitions over its sliding window on request."""

    def __init__(
        self,
        algorithm: Partitioner,
        k: int,
        window_mode: str = "count",
        window_size: float = 5000,
        approximate_counts: bool = False,
        countmin_epsilon: float = 0.002,
        countmin_delta: float = 0.01,
    ) -> None:
        super().__init__()
        self.algorithm = algorithm
        self.k = k
        self.window = SlidingWindow(mode=window_mode, size=window_size)
        self.approximate_counts = approximate_counts
        self.countmin_epsilon = countmin_epsilon
        self.countmin_delta = countmin_delta
        self.partitions_created = 0
        self._served_epochs: set[int] = set()

    def execute(self, message: TupleMessage) -> None:
        schema = message.schema
        if schema is TAGSETS:
            # TAGSETS slot layout: (doc_id, timestamp, tagset).
            _, timestamp, tagset = message.values
            self.window.add(0.0 if timestamp is None else timestamp, tagset)
        elif schema is REPARTITION_REQUESTS:
            self._create_partitions(message)

    def _create_partitions(self, message: TupleMessage) -> None:
        epoch, _reason, timestamp = message.values
        epoch = 0 if epoch is None else epoch
        if epoch in self._served_epochs:
            # Every Disseminator instance broadcasts its request; serve each
            # epoch once.
            return
        self._served_epochs.add(epoch)
        statistics = self.window.statistics()
        tag_sets, loads = self._partition(statistics)
        window_counts = {
            tuple(sorted(tagset)): count
            for tagset, count in statistics.tagset_counts.items()
        }
        if self.approximate_counts:
            # Sketch mode: the Merger's reference statistics tolerate the
            # Count-Min over-estimate, so the counting table is sketched.
            window_counts = sketch_tagset_counts(
                window_counts,
                epsilon=self.countmin_epsilon,
                delta=self.countmin_delta,
            )
        self.partitions_created += 1
        self.emit(
            PARTIAL_PARTITIONS,
            epoch,
            self.task_index,
            tag_sets,
            loads,
            window_counts,
            0.0 if timestamp is None else timestamp,
        )

    def _partition(
        self, statistics: CooccurrenceStatistics
    ) -> tuple[list[frozenset[str]], list[int]]:
        """Run the algorithm; DS emits raw disjoint sets (phase 1 only)."""
        if isinstance(self.algorithm, DisjointSetsPartitioner):
            disjoint_sets = find_disjoint_sets(statistics)
            return (
                [ds.tags for ds in disjoint_sets],
                [ds.load for ds in disjoint_sets],
            )
        assignment = self.algorithm.partition(statistics, self.k)
        tag_sets = []
        loads = []
        for partition in assignment:
            if not partition.tags:
                continue
            tag_sets.append(frozenset(partition.tags))
            loads.append(partition.load)
        return tag_sets, loads
