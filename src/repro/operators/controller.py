"""Online repartitioning decisions: policies over rolling quality statistics.

The Disseminator observes every routing decision; this controller turns
those observations into the Section 7 control actions — *when* to request a
full repartition and *when* a missing tagset has earned a Single Addition.
Extracting the decision logic from the bolt serves two purposes: the same
policy code can be replayed offline against a recorded run (the
``tests/analysis`` cross-checks of the Figure-6 trace), and alternative
policies can be swapped in without touching the routing hot path.

Policies
--------
``threshold``
    The paper's rule (Section 7.2): over every window of ``z`` routed
    tagsets, request a repartition when the rolling average communication
    *or* the rolling maximum load share exceeds its reference value (from
    the installed partitioning) by more than ``thr``.
``capacity``
    Derived from the :mod:`repro.analysis.capacity` model: request a
    repartition when the *sustainable arrival rate* of the rolling window
    state drops below the reference state's rate by more than ``thr`` —
    equivalently, when the per-document update cost of the bottleneck
    Calculator (``communication × max_load_share``, both clamped to the
    model's floors) grows beyond ``(1 + thr)×`` the reference cost.  Unlike
    ``threshold`` this tolerates one metric degrading while the other
    improves, because only their product bounds throughput.
``fixed``
    Deterministic swaps at configured document counts
    (``SystemConfig.repartition_at``) — the lever the equivalence and
    fault-injection suites use to force a swap at a known point.
``never``
    No post-bootstrap swaps at all (the bootstrap install still happens
    unless an initial assignment is seeded).

All policies leave Single Additions active; only full-swap triggering
differs.
"""

from __future__ import annotations

from ..core.metrics import CommunicationTracker, LoadTracker

REPARTITION_POLICIES = ("threshold", "capacity", "fixed", "never")

#: Reasons (re-exported by :mod:`.disseminator` for Figure 6's breakdown).
REASON_COMMUNICATION = "communication"
REASON_LOAD = "load"
REASON_BOTH = "both"


class RepartitionController:
    """Decides full swaps vs. single additions from rolling statistics.

    The controller owns the rolling trackers (the Disseminator records into
    them via :meth:`record_route`), the reference quality of the installed
    assignment, the missing-tagset counters behind Single Additions, and
    the forced-swap schedule of the ``fixed`` policy.  It never emits
    anything — the Disseminator turns its decisions into control tuples.
    """

    def __init__(
        self,
        k: int,
        policy: str = "threshold",
        threshold: float = 0.5,
        single_addition_threshold: int = 3,
        quality_check_interval: int = 1000,
        forced_points: tuple[int, ...] = (),
        mean_tags_per_notification: float = 2.5,
    ) -> None:
        if policy not in REPARTITION_POLICIES:
            raise ValueError(
                f"unknown repartition policy {policy!r}; "
                f"expected one of {REPARTITION_POLICIES}"
            )
        if threshold < 0:
            raise ValueError("repartition_threshold must be non-negative")
        if single_addition_threshold < 1:
            raise ValueError("single_addition_threshold must be at least 1")
        self.k = k
        self.policy = policy
        self.thr = threshold
        self.sn = single_addition_threshold
        self.z = quality_check_interval
        self.mean_tags_per_notification = mean_tags_per_notification
        self._forced = tuple(sorted({int(point) for point in forced_points}))
        self._next_forced = 0
        self._reference_avg_com: float = 1.0
        self._reference_max_load: float = 1.0
        self.rolling_com = CommunicationTracker()
        self.rolling_load = LoadTracker()
        self._missing_counts: dict[frozenset[str], int] = {}
        self._requested_additions: set[frozenset[str]] = set()

    # ------------------------------------------------------------------ #
    # Reference state (set on every install)
    # ------------------------------------------------------------------ #
    @property
    def reference_avg_com(self) -> float:
        return self._reference_avg_com

    @property
    def reference_max_load(self) -> float:
        return self._reference_max_load

    def set_reference(self, avg_com: float | None, max_load: float | None) -> None:
        """Adopt a freshly installed assignment's quality as the reference.

        Mirrors the historical install semantics exactly: missing values
        default to 1.0 and both references are floored at ``1e-9``.  Also
        resets the rolling window and the missing-tagset counters (the new
        map may cover previously missing tagsets).
        """
        self._reference_avg_com = max(
            float(avg_com) if avg_com is not None else 1.0, 1e-9
        )
        self._reference_max_load = max(
            float(max_load) if max_load is not None else 1.0, 1e-9
        )
        self.reset_window()
        self._missing_counts.clear()
        self._requested_additions.clear()

    # ------------------------------------------------------------------ #
    # Rolling window
    # ------------------------------------------------------------------ #
    def record_route(self, n_notifications: int, partition_indices) -> None:
        """Account one routed tagset into the rolling window."""
        self.rolling_com.record(n_notifications)
        record_load = self.rolling_load.record
        for index in partition_indices:
            record_load(index)

    def window_ready(self) -> bool:
        """Whether a full window of ``z`` routed tagsets has accumulated."""
        return self.rolling_com.routed_tagsets >= self.z

    def reset_window(self) -> None:
        self.rolling_com.reset()
        self.rolling_load.reset()

    def evaluate_window(self) -> str | None:
        """Policy decision for the completed window: a reason, or ``None``.

        Reads (but does not reset) the rolling trackers; the caller records
        its quality snapshot and then calls :meth:`reset_window`.
        """
        current_com = self.rolling_com.average
        current_load = self.rolling_load.max_share(self.k)
        if self.policy == "threshold":
            return self._evaluate_threshold(current_com, current_load)
        if self.policy == "capacity":
            return self._evaluate_capacity(current_com, current_load)
        return None

    def _evaluate_threshold(
        self, current_com: float, current_load: float
    ) -> str | None:
        """The paper's either-or rule, ported 1:1 from the Disseminator."""
        com_degraded = current_com > self._reference_avg_com * (1.0 + self.thr)
        load_degraded = current_load > self._reference_max_load * (1.0 + self.thr)
        if com_degraded and load_degraded:
            return REASON_BOTH
        if com_degraded:
            return REASON_COMMUNICATION
        if load_degraded:
            return REASON_LOAD
        return None

    def _evaluate_capacity(
        self, current_com: float, current_load: float
    ) -> str | None:
        """Trigger on sustainable-rate degradation under the capacity model.

        The node throughput and the ``2^m - 1`` notification-cost factor
        cancel in the reference/current rate ratio, so the decision reduces
        to comparing clamped ``communication × max_load_share`` products —
        but the clamping (fan-out ≥ 1, share ≥ 1/k) makes this genuinely
        different from multiplying the raw metrics.
        """
        # Imported lazily: the analysis package's __init__ pulls in modules
        # that import the operator layer, so a module-level import here
        # would close a cycle during package initialisation.
        from ..analysis.capacity import per_document_update_cost

        m = self.mean_tags_per_notification
        reference_cost = per_document_update_cost(
            self._reference_avg_com, self._reference_max_load, self.k, m
        )
        current_cost = per_document_update_cost(
            current_com, current_load, self.k, m
        )
        if current_cost <= reference_cost * (1.0 + self.thr):
            return None
        com_ratio = max(current_com, 1.0) / max(self._reference_avg_com, 1.0)
        load_ratio = max(current_load, 1.0 / max(self.k, 1)) / max(
            self._reference_max_load, 1.0 / max(self.k, 1)
        )
        if com_ratio > 1.0 and load_ratio > 1.0:
            return REASON_BOTH
        if com_ratio >= load_ratio:
            return REASON_COMMUNICATION
        return REASON_LOAD

    # ------------------------------------------------------------------ #
    # Forced swaps (``fixed`` policy)
    # ------------------------------------------------------------------ #
    def forced_swap_due(
        self, documents_seen: int, has_assignment: bool, awaiting: bool
    ) -> bool:
        """Whether a configured swap point has been crossed.

        Consumes every schedule point at or below ``documents_seen`` — a
        point crossed while no assignment is installed (or while a previous
        request is still in flight) is dropped, not deferred, so a stale
        point can never fire at an unpredictable later document.
        """
        due = False
        while (
            self._next_forced < len(self._forced)
            and documents_seen >= self._forced[self._next_forced]
        ):
            self._next_forced += 1
            due = True
        return due and self.policy == "fixed" and has_assignment and not awaiting

    # ------------------------------------------------------------------ #
    # Single additions (Section 7.1)
    # ------------------------------------------------------------------ #
    def record_missing(self, tagset: frozenset[str]) -> int | None:
        """Count one uncovered occurrence; return the count when a Single
        Addition becomes due (the ``sn``-th occurrence), else ``None``."""
        if tagset in self._requested_additions:
            return None
        count = self._missing_counts.get(tagset, 0) + 1
        self._missing_counts[tagset] = count
        if count < self.sn:
            return None
        self._requested_additions.add(tagset)
        return count

    def addition_applied(self, tagset: frozenset[str]) -> None:
        """The Merger placed the tagset — stop counting it."""
        self._missing_counts.pop(tagset, None)
        self._requested_additions.discard(tagset)
