"""Tweet sources (the topology's Spout).

The paper's Source produces a stream of tweets either live from Twitter's
streaming API or replayed from a file for repeatability.  The reproduction
offers the same two flavours minus the live API: an in-memory document
source (fed by the synthetic generator or by a loaded trace) and a
JSON-Lines file source.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

from ..core.documents import Document
from ..streamsim.components import Spout
from ..workloads.io import read_documents
from .streams import TWEETS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..streamsim.executors import AsyncServiceExecutor


class DocumentSpout(Spout):
    """Replays an iterable of :class:`Document` objects."""

    def __init__(self, documents: Iterable[Document]) -> None:
        super().__init__()
        self._documents: Iterator[Document] = iter(documents)
        self.emitted = 0

    def next_tuple(self) -> bool:
        try:
            document = next(self._documents)
        except StopIteration:
            return False
        self.emit(
            TWEETS,
            document.doc_id,
            document.timestamp,
            document.tags,
            document.text,
        )
        self.emitted += 1
        return True


class ServiceSpout(Spout):
    """Pulls documents from an :class:`AsyncServiceExecutor`'s ingest queue.

    The always-on flavour of :class:`DocumentSpout`: instead of replaying a
    pre-materialised iterable, each ``next_tuple`` call asks the service
    executor for the next queued document — blocking while the queue is
    idle — and reports exhaustion only once a drain has been requested and
    the queue is empty.  Emission order and wire format are identical to
    :class:`DocumentSpout` over the same document sequence, which is what
    the batch≡served equivalence suite pins.
    """

    def __init__(self, executor: "AsyncServiceExecutor") -> None:
        super().__init__()
        self._executor = executor
        self.emitted = 0

    def next_tuple(self) -> bool:
        document = self._executor.next_document()
        if document is None:
            return False
        self.emit(
            TWEETS,
            document.doc_id,
            document.timestamp,
            document.tags,
            document.text,
        )
        self.emitted += 1
        return True


class FileSpout(DocumentSpout):
    """Replays tweets from a JSON-Lines file written by ``repro.workloads.io``."""

    def __init__(self, path: str | Path) -> None:
        super().__init__(read_documents(path))
        self.path = Path(path)
