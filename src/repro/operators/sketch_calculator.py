"""The sketch-mode Calculator: approximate tracking via MinHash + Count-Min.

Drop-in replacement for the exact :class:`~repro.operators.CalculatorBolt`
(Section 6.2) selected with ``SystemConfig(calculator="sketch")``.  Instead
of exact subset counters and inclusion–exclusion, it feeds every incoming
notification into a :class:`~repro.sketches.SketchJaccardEstimator`:

* the document id of each notification updates one MinHash signature per
  owned tag, so the Jaccard coefficient of any tagset is later estimated
  directly from the signatures (standard error ``1/sqrt(num_perm)``);
* a Count-Min sketch supplies the support counts ``CN(s_i)`` that the
  Tracker uses to deduplicate reports from replicated tags.

Per-document work drops from enumerating all ``2^m`` subsets of an
``m``-tag notification to ``m`` signature updates plus the ``O(m^4)``
tracked report keys, and counter memory is bounded by the sketch widths
instead of the number of observed tag combinations.  Reporting cadence and
counter resets mirror the exact Calculator, so the two modes are directly
comparable in the Figure-5 error curves.
"""

from __future__ import annotations

from ..core.jaccard import JaccardResult
from ..sketches import SketchJaccardEstimator
from .calculator import BaseCalculatorBolt


class SketchCalculatorBolt(BaseCalculatorBolt):
    """Estimates Jaccard coefficients from sketches instead of exact counters."""

    mode = "sketch"

    def __init__(
        self,
        report_interval: float = 300.0,
        max_tags_per_document: int = 12,
        num_perm: int = 512,
        seed: int = 1,
        countmin_epsilon: float = 0.002,
        countmin_delta: float = 0.01,
        max_subset_size: int = 4,
        report_chunk_size: int = 0,
    ) -> None:
        super().__init__(
            report_interval=report_interval,
            report_chunk_size=report_chunk_size,
        )
        self.estimator = SketchJaccardEstimator(
            num_perm=num_perm,
            seed=seed,
            countmin_epsilon=countmin_epsilon,
            countmin_delta=countmin_delta,
            max_subset_size=max_subset_size,
            max_tags_per_document=max_tags_per_document,
        )
        self._fallback_doc_id = 0

    def _observe(self, tags, doc_id) -> None:
        if doc_id is None:
            # Unique synthetic id; only reached by hand-built test tuples —
            # the Disseminator always forwards the Parser's doc_id.
            self._fallback_doc_id += 1
            doc_id = ("_synthetic", self.task_id, self._fallback_doc_id)
        self.estimator.observe(tags, doc_id)

    def _report(self, reset: bool) -> list[JaccardResult]:
        return self.estimator.report(min_size=2, reset=reset)

    def _migration_reset(self) -> None:
        # Same reset a resetting report performs: drop the signatures,
        # tracked keys and Count-Min counters wholesale.
        self.estimator.clear()

    @property
    def observations(self) -> int:
        return self.estimator.observations
