"""Topology definition: components, parallelism, streams and subscriptions.

A topology is a directed graph of named components.  Every component is
registered with a *factory* (so that each parallel task gets its own
instance and therefore its own state, as in Storm) and a parallelism degree.
Consumers subscribe to ``(producer, stream)`` pairs with a grouping that
decides which task receives each tuple.

Streams are declared with their field layout at topology-build time:
:meth:`TopologyBuilder.stream` registers the interned
:class:`~repro.streamsim.tuples.StreamSchema` of a stream name, and
:meth:`Topology.validate` then checks that fields groupings only reference
declared fields — slot-layout typos fail at build time instead of hashing
``None`` silently at run time.  Subscriptions to undeclared streams remain
legal (ad-hoc test topologies route purely by name).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .components import Bolt, Component, Spout
from .groupings import (
    AllGrouping,
    DirectGrouping,
    FieldsGrouping,
    Grouping,
    LocalGrouping,
    ShuffleGrouping,
)
from .tuples import DEFAULT_STREAM, StreamSchema

ComponentFactory = Callable[[], Component]


@dataclass(slots=True)
class ComponentSpec:
    """Declaration of one component of the topology."""

    name: str
    factory: ComponentFactory
    parallelism: int
    is_spout: bool


@dataclass(slots=True)
class Subscription:
    """One edge of the topology graph."""

    consumer: str
    producer: str
    stream: str
    grouping: Grouping


@dataclass(slots=True)
class Topology:
    """A fully declared topology, ready to be deployed on the cluster."""

    components: dict[str, ComponentSpec] = field(default_factory=dict)
    subscriptions: list[Subscription] = field(default_factory=list)
    #: Declared stream layouts, keyed by stream name.
    streams: dict[str, StreamSchema] = field(default_factory=dict)

    def spouts(self) -> list[ComponentSpec]:
        return [spec for spec in self.components.values() if spec.is_spout]

    def bolts(self) -> list[ComponentSpec]:
        return [spec for spec in self.components.values() if not spec.is_spout]

    def subscribers_of(self, producer: str, stream: str) -> list[Subscription]:
        return [
            subscription
            for subscription in self.subscriptions
            if subscription.producer == producer and subscription.stream == stream
        ]

    def validate(self) -> None:
        """Check that every subscription references declared components."""
        for subscription in self.subscriptions:
            if subscription.producer not in self.components:
                raise ValueError(
                    f"subscription references unknown producer {subscription.producer!r}"
                )
            if subscription.consumer not in self.components:
                raise ValueError(
                    f"subscription references unknown consumer {subscription.consumer!r}"
                )
            if self.components[subscription.consumer].is_spout:
                raise ValueError(
                    f"spout {subscription.consumer!r} cannot subscribe to a stream"
                )
            schema = self.streams.get(str(subscription.stream))
            if schema is not None and isinstance(subscription.grouping, FieldsGrouping):
                unknown = set(subscription.grouping.fields) - set(schema.fields)
                if unknown:
                    raise ValueError(
                        f"fields grouping of {subscription.consumer!r} on stream "
                        f"{schema.name!r} references undeclared fields "
                        f"{sorted(unknown)}; layout is {schema.fields}"
                    )
        if not self.spouts():
            raise ValueError("a topology needs at least one spout")


class _BoltDeclarer:
    """Fluent helper returned by :meth:`TopologyBuilder.set_bolt`."""

    def __init__(self, builder: "TopologyBuilder", name: str) -> None:
        self._builder = builder
        self._name = name

    def shuffle_grouping(self, producer: str, stream: str = DEFAULT_STREAM, seed: int = 0) -> "_BoltDeclarer":
        self._builder._subscribe(self._name, producer, stream, ShuffleGrouping(seed))
        return self

    def fields_grouping(
        self, producer: str, fields: list[str], stream: str = DEFAULT_STREAM
    ) -> "_BoltDeclarer":
        self._builder._subscribe(self._name, producer, stream, FieldsGrouping(fields))
        return self

    def all_grouping(self, producer: str, stream: str = DEFAULT_STREAM) -> "_BoltDeclarer":
        self._builder._subscribe(self._name, producer, stream, AllGrouping())
        return self

    def direct_grouping(self, producer: str, stream: str = DEFAULT_STREAM) -> "_BoltDeclarer":
        self._builder._subscribe(self._name, producer, stream, DirectGrouping())
        return self

    def local_grouping(self, producer: str, stream: str = DEFAULT_STREAM, seed: int = 0) -> "_BoltDeclarer":
        self._builder._subscribe(self._name, producer, stream, LocalGrouping(seed))
        return self


class TopologyBuilder:
    """Builds a :class:`Topology`, mirroring Storm's ``TopologyBuilder`` API."""

    def __init__(self) -> None:
        self._topology = Topology()

    def stream(
        self, name: str | StreamSchema, fields: tuple[str, ...] | None = None
    ) -> StreamSchema:
        """Declare a stream's field layout; returns the interned schema.

        Accepts either ``stream(name, fields=(...))`` or an already-interned
        :class:`StreamSchema` (``stream(TAGSETS)``).  Re-declaring a name
        with a different layout is a build error — one topology, one layout
        per stream.
        """
        if isinstance(name, StreamSchema) and fields is None:
            schema = name
        else:
            if fields is None:
                raise ValueError(f"stream {name!r} needs a field layout")
            schema = StreamSchema(str(name), tuple(fields))
        existing = self._topology.streams.get(schema.name)
        if existing is not None and existing is not schema:
            raise ValueError(
                f"stream {schema.name!r} declared twice with different "
                f"layouts: {existing.fields} vs {schema.fields}"
            )
        self._topology.streams[schema.name] = schema
        return schema

    def set_spout(
        self, name: str, factory: ComponentFactory, parallelism: int = 1
    ) -> None:
        """Register a spout with the given parallelism."""
        self._declare(name, factory, parallelism, is_spout=True)

    def set_bolt(
        self, name: str, factory: ComponentFactory, parallelism: int = 1
    ) -> _BoltDeclarer:
        """Register a bolt; returns a declarer to attach its subscriptions."""
        self._declare(name, factory, parallelism, is_spout=False)
        return _BoltDeclarer(self, name)

    def build(self) -> Topology:
        """Validate and return the topology."""
        self._topology.validate()
        return self._topology

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _declare(
        self, name: str, factory: ComponentFactory, parallelism: int, is_spout: bool
    ) -> None:
        if name in self._topology.components:
            raise ValueError(f"component {name!r} declared twice")
        if parallelism < 1:
            raise ValueError(f"parallelism of {name!r} must be at least 1")
        probe = factory()
        expected = Spout if is_spout else Bolt
        if not isinstance(probe, expected):
            raise TypeError(
                f"factory for {name!r} must produce a {expected.__name__}, "
                f"got {type(probe).__name__}"
            )
        self._topology.components[name] = ComponentSpec(
            name=name, factory=factory, parallelism=parallelism, is_spout=is_spout
        )

    def _subscribe(
        self, consumer: str, producer: str, stream: str, grouping: Grouping
    ) -> None:
        self._topology.subscriptions.append(
            Subscription(
                consumer=consumer, producer=producer, stream=stream, grouping=grouping
            )
        )
